"""Shared infrastructure for the benchmark harness.

Every file in this directory regenerates one table or figure of the
paper's evaluation: it runs the experiment through the simulator, prints
the reproduced rows/series next to the paper's published values, and
records the headline numbers in the pytest-benchmark ``extra_info`` so
``pytest benchmarks/ --benchmark-only`` leaves a machine-readable record.

Experiments run at reduced memory scale (see ``repro.experiments.Scale``
and EXPERIMENTS.md); *shapes* — orderings, ratios, crossovers — are the
reproduction target, not absolute numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import Scale

#: default scale for benchmark experiments (48 GB machine -> 384 MB).
BENCH_SCALE = Scale(1 / 128)

#: worker processes for runner-backed benchmarks (0/1 = in-process).
SWEEP_JOBS = int(os.environ.get("REPRO_SWEEP_JOBS", "4"))


@pytest.fixture
def scale() -> Scale:
    return BENCH_SCALE


def sweep_results(experiment: str, scale: Scale = BENCH_SCALE,
                  jobs: int | None = None) -> dict:
    """Fetch an experiment's grid through the cached sweep runner.

    Returns ``{(case, policy): result}`` for every cell.  Unchanged
    reruns are served from the result cache (``.sweep-cache`` or
    ``$REPRO_SWEEP_CACHE``), so the pytest assertions re-check cached
    cells without re-simulating; ``repro sweep clean`` forces a rerun.
    Raises if any cell failed, with its captured error.
    """
    from repro.runner import ResultCache, cells_for, run_sweep

    cells = cells_for(experiment, scale.denominator)
    report = run_sweep(
        cells,
        jobs=SWEEP_JOBS if jobs is None else jobs,
        cache=ResultCache(),
        retries=0,
    )
    bad = [o for o in report.outcomes if not o.good]
    if bad:
        detail = "; ".join(
            f"{o.cell.cell_id}: {o.status} ({(o.error or '').splitlines()[-1]})"
            for o in bad
        )
        raise RuntimeError(f"{len(bad)} sweep cells failed: {detail}")
    return {(o.cell.case, o.cell.policy): o.result for o in report.outcomes}


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
