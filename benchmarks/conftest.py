"""Shared infrastructure for the benchmark harness.

Every file in this directory regenerates one table or figure of the
paper's evaluation: it runs the experiment through the simulator, prints
the reproduced rows/series next to the paper's published values, and
records the headline numbers in the pytest-benchmark ``extra_info`` so
``pytest benchmarks/ --benchmark-only`` leaves a machine-readable record.

Experiments run at reduced memory scale (see ``repro.experiments.Scale``
and EXPERIMENTS.md); *shapes* — orderings, ratios, crossovers — are the
reproduction target, not absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import Scale

#: default scale for benchmark experiments (48 GB machine -> 384 MB).
BENCH_SCALE = Scale(1 / 128)


@pytest.fixture
def scale() -> Scale:
    return BENCH_SCALE


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
