"""Ablations for the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these isolate the contribution of
individual HawkEye mechanisms by switching them off or distorting them:

1. **Dual zero/non-zero free lists + pre-zeroing** — HawkEye with
   pre-zeroing disabled pays synchronous zeroing like Linux, erasing the
   Table 8 spin-up win.
2. **Fine-grained access_map** (10 buckets) vs a degenerate 1-bucket map
   — with a single bucket HawkEye loses the hot-first ordering and its
   Figure 6 recovery advantage shrinks toward VA-order scanning.
3. **Bloat-recovery watermarks** — recovery disabled (watermarks at 100 %)
   reproduces the Linux OOM in the Figure 1 experiment; the emergency
   path alone is enough to survive, but recovers later.
4. **Non-temporal stores** — already ablated in Figure 10 (cached vs NT).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import banner, run_once
from repro.core import access_map as am
from repro.errors import OutOfMemoryError
from repro.experiments import POLICIES, Scale, fragment, make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.redis import RedisFig1
from repro.workloads.spinup import KVMSpinUp
from repro.workloads.xsbench import XSBench


def test_ablation_prezero_disabled(benchmark, scale):
    """Without async pre-zeroing, HawkEye's huge faults cost 465 µs again."""

    def experiment():
        out = {}
        for label, overrides in (
            ("prezero on", {}),
            ("prezero off", {"prezero_enabled": False}),
        ):
            kernel = make_kernel(96 * GB, "hawkeye-g", scale, boot_zeroed=False)
            kernel.policy.config.prezero_enabled = overrides.get("prezero_enabled", True)
            if kernel.policy.config.prezero_enabled:
                kernel.policy.prezero._limiter.per_second = 1e9
                kernel.run_epochs(2)
            run = kernel.spawn(KVMSpinUp(scale=scale.factor))
            kernel.run(max_epochs=500)
            stats = run.proc.stats
            out[label] = stats.fault_time_us / max(stats.faults, 1)
        return out

    result = run_once(benchmark, experiment)
    banner("Ablation: async pre-zeroing (KVM spin-up, avg huge-fault µs)")
    print(format_table(["configuration", "avg fault µs"],
                       [[k, round(v, 1)] for k, v in result.items()]))
    assert result["prezero on"] == pytest.approx(13.0, rel=0.2)
    assert result["prezero off"] == pytest.approx(465.0, rel=0.05)


def test_ablation_access_map_resolution(benchmark, scale):
    """One coarse bucket loses the hot-first promotion ordering."""

    def run_with_buckets(nbuckets):
        original = (am.NUM_BUCKETS, am.BUCKET_WIDTH)
        am.NUM_BUCKETS, am.BUCKET_WIDTH = nbuckets, 512 // nbuckets + 1
        try:
            kernel = make_kernel(96 * GB, "hawkeye-g", scale)
            fragment(kernel)
            run = kernel.spawn(XSBench(scale=scale.factor, work_us=700 * SEC))
            kernel.run(max_epochs=4000)
            return run.elapsed_us / SEC
        finally:
            am.NUM_BUCKETS, am.BUCKET_WIDTH = original

    def experiment():
        return {n: run_with_buckets(n) for n in (1, 10)}

    result = run_once(benchmark, experiment)
    banner("Ablation: access_map bucket count (XSBench, fragmented)")
    print(format_table(["buckets", "time s"],
                       [[n, round(t, 1)] for n, t in result.items()]))
    # ten buckets must not be slower; typically it is faster because the
    # high-VA hot regions are promoted before the cold low-VA ones
    assert result[10] <= result[1] * 1.02


def test_ablation_bloat_recovery_paths(benchmark, scale):
    """Watermark thread + emergency path vs emergency-only vs none."""

    def run_fig1(watermark_high, emergency):
        kernel = make_kernel(48 * GB, "hawkeye-g", scale)
        policy = kernel.policy
        policy.bloat.watermarks.high = watermark_high
        policy.bloat.watermarks.low = watermark_high - 0.15
        if not emergency:
            policy.on_memory_pressure = lambda pages_needed: 0
        run = kernel.spawn(RedisFig1(scale=scale.factor))
        try:
            kernel.run(max_epochs=4000)
        except OutOfMemoryError:
            return {"outcome": "OOM", "recovered": kernel.stats.bloat_pages_recovered}
        return {
            "outcome": "completed" if run.finished else "running",
            "recovered": kernel.stats.bloat_pages_recovered,
        }

    def experiment():
        return {
            "watermarks + emergency": run_fig1(0.85, True),
            "emergency only": run_fig1(0.999, True),
            "no recovery": run_fig1(0.999, False),
        }

    result = run_once(benchmark, experiment)
    banner("Ablation: bloat-recovery paths on the Figure 1 workload")
    print(format_table(
        ["configuration", "outcome", "pages recovered"],
        [[k, v["outcome"], v["recovered"]] for k, v in result.items()],
    ))
    assert result["watermarks + emergency"]["outcome"] == "completed"
    assert result["emergency only"]["outcome"] == "completed"
    assert result["no recovery"]["outcome"] == "OOM"
    # the proactive watermark thread starts recovering before the cliff
    assert (result["watermarks + emergency"]["recovered"]
            >= result["emergency only"]["recovered"] * 0.5)


def test_ablation_wss_vs_measured_ordering(benchmark, scale):
    """§2.4's strawman run head-to-head: rank the Table 9 mixed set by
    estimated WSS instead of measured overheads.

    A WSS-ordered allocator serves mg.D (larger working set, ~1%
    overhead) ahead of cg.D (39%); HawkEye-PMU serves cg.D first.  The
    sensitive workload's completion time shows the cost of the wrong
    signal."""
    from repro.core.wss import wss_overhead_belief
    from repro.experiments import fragment
    from repro.workloads.npb import NPBWorkload

    def run_variant(use_wss):
        kernel = make_kernel(96 * GB, "hawkeye-pmu", scale)
        fragment(kernel)
        if use_wss:
            kernel.policy.engine.measured_overhead = (
                lambda proc: wss_overhead_belief(kernel, proc)
            )
        cg = kernel.spawn(NPBWorkload("cg.D", scale=scale.factor, work_us=500 * SEC))
        kernel.spawn(NPBWorkload("mg.D", scale=scale.factor, work_us=2000 * SEC))
        while not cg.finished and kernel.stats.epochs < 4000:
            kernel.run_epoch()
        assert cg.finished
        return cg.elapsed_us / SEC

    def experiment():
        return {
            "ranked by measured overhead (PMU)": run_variant(False),
            "ranked by estimated WSS (§2.4 strawman)": run_variant(True),
        }

    result = run_once(benchmark, experiment)
    banner("Ablation: promotion ranking signal — measured overhead vs WSS")
    print(format_table(["ranking signal", "cg.D completion s"],
                       [[k, round(v, 1)] for k, v in result.items()]))
    assert (result["ranked by measured overhead (PMU)"]
            < result["ranked by estimated WSS (§2.4 strawman)"])


def test_ablation_bloat_recovery_vs_samepage_merging(benchmark, scale):
    """§3.2's cost claim, measured: recovering zero-filled bloat via the
    bloat-recovery scan (early-exit after ~10 bytes on in-use pages) is
    far cheaper in CPU time than generic same-page merging, which must
    read whole pages to prove equality — and both converge to the same
    amount of memory recovered."""
    from repro.mem.samepage import SamePageMerger
    from repro.units import MB
    from repro.workloads.microbench import SparseTouch

    def bloated_kernel():
        kernel = make_kernel(8 * GB, "linux-2mb", scale, kcompactd=False)
        run = kernel.spawn(SparseTouch(4 * GB, stride_pages=4,
                                       scale=scale.factor, hold_us=1e12))
        kernel.run_epochs(2)
        proc = run.proc
        # demote everything so both mechanisms work on base mappings
        for hvpn in list(proc.page_table.huge):
            kernel.demote_region(proc, hvpn)
        return kernel, proc

    def via_bloat_recovery():
        kernel, proc = bloated_kernel()
        cpu_before = kernel.stats.bloat_cpu_us
        recovered = 0
        for hvpn in list(proc.regions):
            got, scanned = kernel.dedup_zero_pages(proc, hvpn)
            recovered += got
        cpu = kernel.stats.bloat_scan_bytes * kernel.costs.scan_byte_us
        return recovered, cpu

    def via_samepage_merging():
        kernel, proc = bloated_kernel()
        merger = SamePageMerger(kernel, pages_per_sec=1e12)
        recovered = 0
        for _ in range(4):
            recovered += merger.run_epoch()
        cpu = merger.bytes_compared * kernel.costs.scan_byte_us \
            + kernel.stats.khugepaged_cpu_us
        return recovered, cpu

    def experiment():
        return {
            "bloat recovery (zero-scan)": via_bloat_recovery(),
            "same-page merging (ksm)": via_samepage_merging(),
        }

    result = run_once(benchmark, experiment)
    banner("Ablation: reclaiming zero bloat — §3.2 scan vs generic ksm")
    print(format_table(
        ["mechanism", "pages recovered", "CPU ms"],
        [[k, pages, round(cpu / 1000.0, 2)] for k, (pages, cpu) in result.items()],
    ))
    scan_pages, scan_cpu = result["bloat recovery (zero-scan)"]
    ksm_pages, ksm_cpu = result["same-page merging (ksm)"]
    # both find the same zero bloat...
    assert scan_pages == ksm_pages
    # ...but ksm pays full-page reads plus per-page compare overhead
    assert ksm_cpu > 2 * scan_cpu
