"""Figure 10 — worst-case cache interference from async pre-zeroing.

Paper setup (§4): "we run our workloads while simultaneously zero-filling
pages on a separate core sharing the same L3 cache at a high rate of
0.25M pages per second (1 GBps) with and without non-temporal memory
stores".  Caching stores slow co-runners by up to 27 % (omnetpp);
non-temporal hints cut this to ~6 % — residual memory traffic only.  The
production thread is rate-limited (~10 K pages/s), shrinking the effect
proportionally.

The bench reproduces that setup: a synthetic fixed-rate zeroing thread
publishes its bandwidth each epoch, and each victim workload's progress
rate takes the hit through the executor's interference path according to
its cache sensitivity (calibrated so omnetpp lands on 27 %/6 %).
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.core.prezero import PreZeroThread
from repro.experiments import make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, MB, SEC
from repro.workloads.base import (
    AccessProfile,
    MmapOp,
    Phase,
    RegionAccessSpec,
    TouchOp,
    Workload,
)

#: cache sensitivity of each Figure 10 workload (omnetpp = worst case).
WORKLOADS = {
    "NPB (avg)": 0.30,
    "Parsec (avg)": 0.33,
    "redis": 0.45,
    "omnetpp": 1.00,
    "xalancbmk": 0.80,
}

#: the experiment's zeroing rate: 0.25M pages/s = 1 GB/s.
WORST_CASE_PAGES_PER_SEC = GB / 4096

#: the production thread's rate limit the paper quotes (10 K pages/s).
PRODUCTION_PAGES_PER_SEC = 10_000.0

PAPER_OMNETPP = {"cached": 0.27, "nt": 0.06}


class Victim(Workload):
    """A compute workload whose progress the zeroing thread can disturb."""

    def __init__(self, name, sensitivity, work_s=50.0):
        self.name = name
        self.sensitivity = sensitivity
        self.work_s = work_s

    def build_phases(self):
        profile = AccessProfile(
            specs=[RegionAccessSpec("heap", coverage=64)],
            access_rate=0.5,
            cache_sensitivity=self.sensitivity,
        )
        return [
            Phase("alloc", ops=[MmapOp("heap", 16 * MB), TouchOp("heap")]),
            Phase("compute", work_us=self.work_s * SEC, profile=profile),
        ]


class FixedRateZeroer(PreZeroThread):
    """The paper's separate-core zeroing thread: a constant page rate,
    independent of demand (it re-zeroes already-zero pages if needed)."""

    def __init__(self, kernel, pages_per_sec, non_temporal):
        super().__init__(kernel, pages_per_sec=pages_per_sec,
                         non_temporal=non_temporal)
        self.pages_per_sec = pages_per_sec

    def run_epoch(self) -> int:
        pages = int(self.pages_per_sec * self.kernel.config.epoch_us / SEC)
        self.kernel.stats.pages_prezeroed += pages
        self.kernel.stats.prezero_cpu_us += self.kernel.costs.zero_base_us * pages
        self._publish_interference(pages)
        return pages


def run_victim(name, sensitivity, non_temporal, rate, scale):
    kernel = make_kernel(8 * GB, "linux-4kb", scale=scale, kcompactd=False)
    if rate > 0:
        zeroer = FixedRateZeroer(kernel, rate, non_temporal)
        kernel.epoch_hooks.append(lambda k: zeroer.run_epoch())
    victim = kernel.spawn(Victim(name, sensitivity))
    while not victim.finished and kernel.stats.epochs < 500:
        kernel.run_epoch()
    assert victim.finished
    return victim.elapsed_us


def test_fig10_prezero_interference(benchmark, scale):
    def experiment():
        out = {}
        for name, sensitivity in WORKLOADS.items():
            base = run_victim(name, sensitivity, True, rate=0, scale=scale)
            cached = run_victim(name, sensitivity, False,
                                rate=WORST_CASE_PAGES_PER_SEC, scale=scale)
            nt = run_victim(name, sensitivity, True,
                            rate=WORST_CASE_PAGES_PER_SEC, scale=scale)
            out[name] = {"cached": cached / base - 1.0, "nt": nt / base - 1.0}
        # the rate-limited production configuration, worst-case victim
        prod = run_victim("omnetpp", 1.0, True,
                          rate=PRODUCTION_PAGES_PER_SEC, scale=scale)
        base = run_victim("omnetpp", 1.0, True, rate=0, scale=scale)
        out["omnetpp @10K pages/s (production)"] = {
            "cached": float("nan"), "nt": prod / base - 1.0,
        }
        return out

    table = run_once(benchmark, experiment)
    banner("Figure 10: slowdown under 1 GB/s zeroing, cached vs non-temporal stores")
    rows = [
        [name, f"{v['cached'] * 100:.1f}%", f"{v['nt'] * 100:.1f}%",
         "27% / 6%" if name == "omnetpp" else "-"]
        for name, v in table.items()
    ]
    print(format_table(
        ["workload", "caching stores", "non-temporal stores", "paper"], rows
    ))

    omnetpp = table["omnetpp"]
    assert abs(omnetpp["cached"] - PAPER_OMNETPP["cached"]) < 0.05
    assert abs(omnetpp["nt"] - PAPER_OMNETPP["nt"]) < 0.03
    for name, v in table.items():
        if name.endswith("(production)"):
            continue
        # non-temporal stores always cut the interference substantially
        assert v["nt"] < v["cached"] * 0.45 + 0.01, name
        # omnetpp is the worst case
        assert v["cached"] <= omnetpp["cached"] + 0.01, name
    # rate-limiting makes the production thread's overhead negligible
    assert table["omnetpp @10K pages/s (production)"]["nt"] < 0.01
    benchmark.extra_info["omnetpp_cached"] = round(omnetpp["cached"], 3)
    benchmark.extra_info["omnetpp_nt"] = round(omnetpp["nt"], 3)
