"""Figure 11 — overcommitted virtualisation: pre-zeroing + KSM vs ballooning.

Paper: VMs with ~150 GB of peak demand on a 96 GB host (SSD swap).  With
HawkEye in the guests, freed guest memory is pre-zeroed and same-page-
merged away at the host — giving Redis 2.3x and MongoDB 1.42x the
throughput of the no-ballooning baseline, essentially matching explicit
balloon drivers; PageRank pays a small COW-fault penalty versus
ballooning.

Reproduced: three VMs (Redis churn, MongoDB, PageRank) oversubscribe the
host ~1.5x.  Configurations: no return channel (baseline), balloon
drivers, and transparent HawkEye-guests + host KSM.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import fragment, make_hypervisor, make_vm
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.graph import PageRank
from repro.workloads.redis import MongoDB, RedisChurn

HOST_GB = 64
SERVE_S = 500.0

CONFIGS = {
    "no-ballooning": {"guest": "linux-2mb", "balloon": False},
    "ballooning": {"guest": "linux-2mb", "balloon": True},
    "hawkeye+ksm": {"guest": "hawkeye-g", "balloon": False},
}


#: both return channels (balloon and pre-zero+KSM) get the same page
#: processing rate, so the comparison isolates the *mechanism*.
CHANNEL_PAGES_PER_SEC = 1e6


def run_config(name, cfg, scale):
    hyp = make_hypervisor(HOST_GB * GB, "linux-2mb", scale,
                          swap_bytes_full=96 * GB)
    hyp.enable_ksm(pages_per_sec=scale.rate(CHANNEL_PAGES_PER_SEC))
    vm_redis = make_vm(hyp, "redis", 48 * GB, cfg["guest"], scale)
    vm_mongo = make_vm(hyp, "mongo", 32 * GB, cfg["guest"], scale)
    vm_rank = make_vm(hyp, "pagerank", 24 * GB, cfg["guest"], scale)
    if cfg["balloon"]:
        hyp.enable_ballooning(pages_per_sec=scale.rate(CHANNEL_PAGES_PER_SEC))
    if cfg["guest"].startswith("hawkeye"):
        for vm in (vm_redis, vm_mongo, vm_rank):
            vm.guest.policy.prezero._limiter.per_second = scale.rate(CHANNEL_PAGES_PER_SEC)

    # Redis churns: 40 GB peak, 60 % deleted -> most of its VM is free
    # again, *if* a channel exists to tell the host.
    redis_wl = RedisChurn(scale=scale.factor, dataset_bytes=40 * GB,
                          insert_rate_pages_per_sec=4e6,
                          settle_us=60 * SEC, serve_us=SERVE_S * SEC)
    redis = vm_redis.spawn(redis_wl)
    mongo = vm_mongo.spawn(MongoDB(scale=scale.factor, dataset_bytes=24 * GB,
                                   serve_us=SERVE_S * SEC,
                                   insert_rate_pages_per_sec=4e6))
    rank = vm_rank.spawn(PageRank(scale=scale.factor, footprint_bytes=16 * GB,
                                  work_us=300 * SEC))
    epochs = 0
    runs = [redis, mongo, rank]
    while any(not r.finished for r in runs) and epochs < 3000:
        hyp.run_epoch()
        epochs += 1
    return {
        "redis_kops": redis.served.get("serve", 0.0) / SERVE_S / 1000.0,
        "mongo_kops": mongo.served.get("serve", 0.0) / SERVE_S / 1000.0,
        "pagerank_s": rank.elapsed_us / SEC if rank.finished else float("inf"),
        "swap_outs": hyp.host.swap.swap_outs,
        "ksm_merged": hyp.host.stats.ksm_merged_pages,
    }


def test_fig11_overcommit(benchmark, scale):
    results = run_once(
        benchmark, lambda: {n: run_config(n, c, scale) for n, c in CONFIGS.items()}
    )
    banner("Figure 11: overcommitted host (1.6x), throughput normalised to no-ballooning")
    base = results["no-ballooning"]
    rows = []
    for name, r in results.items():
        rows.append([
            name,
            f"{r['redis_kops']:.1f}K ({r['redis_kops'] / max(base['redis_kops'], 1e-9):.2f}x)",
            f"{r['mongo_kops']:.1f}K ({r['mongo_kops'] / max(base['mongo_kops'], 1e-9):.2f}x)",
            f"{r['pagerank_s']:.0f}s ({base['pagerank_s'] / r['pagerank_s']:.2f}x)",
            r["swap_outs"], r["ksm_merged"],
        ])
    print(format_table(
        ["configuration", "redis tput", "mongo tput", "pagerank time",
         "host swap-outs", "ksm merged"],
        rows,
    ))
    print("paper: HawkEye+KSM gives Redis 2.3x, MongoDB 1.42x over "
          "no-ballooning, ≈ ballooning; PageRank slightly worse.")

    hawk, balloon = results["hawkeye+ksm"], results["ballooning"]
    # the transparent channel must clearly beat the no-channel baseline
    assert hawk["redis_kops"] > base["redis_kops"] * 1.2
    assert hawk["mongo_kops"] > base["mongo_kops"] * 1.1
    # ... and roughly match explicit ballooning
    assert hawk["redis_kops"] > balloon["redis_kops"] * 0.8
    assert hawk["mongo_kops"] > balloon["mongo_kops"] * 0.8
    # mechanism evidence: swapping drops, merging happens
    assert hawk["swap_outs"] < base["swap_outs"]
    assert hawk["ksm_merged"] > 0
    benchmark.extra_info.update({
        n: {"redis_x": round(r["redis_kops"] / max(base["redis_kops"], 1e-9), 2)}
        for n, r in results.items()
    })
