"""Figure 1 — Redis RSS across insert / delete / re-insert phases.

Paper result: on a 48 GB machine, Linux and Ingens both hit OOM during
phase P3 — Linux with ~28 GB of bloat (20 GB useful), Ingens with ~20 GB
(28 GB useful) — while HawkEye recovers the bloat and completes with the
dataset fully resident.

Reproduced here (scaled): Linux OOMs first with the most bloat, Ingens
OOMs later with less, HawkEye finishes with RSS ≈ useful data.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.errors import OutOfMemoryError
from repro.experiments import make_kernel, useful_bytes
from repro.metrics.series import SeriesRecorder
from repro.metrics.tables import format_table
from repro.units import GB, MB, SEC
from repro.workloads.redis import RedisFig1

POLICIES = ["linux-2mb", "ingens-90", "hawkeye-g"]

PAPER = {  # per policy: (OOM?, useful GB at limit / end on 48 GB)
    "linux-2mb": (True, 20.0),
    "ingens-90": (True, 28.0),
    "hawkeye-g": (False, 45.0),
}


def run_policy(policy, scale):
    kernel = make_kernel(48 * GB, policy, scale)
    recorder = SeriesRecorder(kernel, every_epochs=10)
    recorder.probe("rss_mb", lambda k: sum(p.rss_pages() for p in k.processes) * 4096 / MB)
    run = kernel.spawn(RedisFig1(scale=scale.factor))
    oom = False
    try:
        kernel.run(max_epochs=4000)
    except OutOfMemoryError:
        oom = True
    proc = run.proc
    return {
        "policy": policy,
        "oom": oom,
        "finished": run.finished,
        "t_end_s": kernel.now_us / SEC,
        "rss_mb": proc.rss_pages() * 4096 / MB,
        "useful_mb": useful_bytes(kernel, proc) / MB,
        "recovered_pages": kernel.stats.bloat_pages_recovered,
        "rss_series": recorder["rss_mb"],
    }


def test_fig1_redis_bloat(benchmark, scale):
    results = run_once(benchmark, lambda: [run_policy(p, scale) for p in POLICIES])
    banner("Figure 1: Redis RSS under insert/delete-80%/re-insert (scaled 1/128)")
    rows = []
    for r in results:
        bloat = r["rss_mb"] - r["useful_mb"]
        paper_oom, paper_useful = PAPER[r["policy"]]
        rows.append([
            r["policy"], "OOM" if r["oom"] else "completed",
            round(r["rss_mb"], 1), round(r["useful_mb"], 1), round(bloat, 1),
            r["recovered_pages"],
            "OOM" if paper_oom else "completed", paper_useful,
        ])
    print(format_table(
        ["policy", "outcome", "RSS MB", "useful MB", "bloat MB",
         "recovered pages", "paper outcome", "paper useful GB"],
        rows,
    ))
    print("\nRSS over time (MB):")
    for r in results:
        series = r["rss_series"]
        samples = [f"{t:.0f}s:{v:.0f}" for t, v in
                   list(zip(series.times, series.values))[:: max(1, len(series) // 10)]]
        print(f"  {r['policy']:10s} " + "  ".join(samples))

    by_policy = {r["policy"]: r for r in results}
    # the paper's qualitative result
    assert by_policy["linux-2mb"]["oom"]
    assert by_policy["ingens-90"]["oom"]
    assert not by_policy["hawkeye-g"]["oom"]
    assert by_policy["hawkeye-g"]["finished"]
    # Ingens preserves more useful data at the limit than Linux
    assert by_policy["ingens-90"]["useful_mb"] > by_policy["linux-2mb"]["useful_mb"]
    # HawkEye ends bloat-free
    hawk = by_policy["hawkeye-g"]
    assert hawk["rss_mb"] - hawk["useful_mb"] < 0.1 * hawk["rss_mb"]
    benchmark.extra_info.update({
        r["policy"]: {"oom": r["oom"], "useful_mb": round(r["useful_mb"], 1)}
        for r in results
    })
