"""Figure 1 — Redis RSS across insert / delete / re-insert phases.

Paper result: on a 48 GB machine, Linux and Ingens both hit OOM during
phase P3 — Linux with ~28 GB of bloat (20 GB useful), Ingens with ~20 GB
(28 GB useful) — while HawkEye recovers the bloat and completes with the
dataset fully resident.

Reproduced here (scaled): Linux OOMs first with the most bloat, Ingens
OOMs later with less, HawkEye finishes with RSS ≈ useful data.

The cells come through the sweep runner (``repro.runner.adapters.run_fig1``
holds the experiment body); cached results re-check instantly.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once, sweep_results
from repro.metrics.tables import format_table
from repro.runner.adapters import FIG1_POLICIES as POLICIES
from repro.runner.adapters import run_fig1

PAPER = {  # per policy: (OOM?, useful GB at limit / end on 48 GB)
    "linux-2mb": (True, 20.0),
    "ingens-90": (True, 28.0),
    "hawkeye-g": (False, 45.0),
}


def run_policy(policy, scale):
    """One Figure-1 cell in-process (kept for `repro bench fig1 --profile`)."""
    return run_fig1("redis-fig1", policy, scale)


def test_fig1_redis_bloat(benchmark, scale):
    table = run_once(benchmark, lambda: sweep_results("fig1", scale))
    results = [table[("redis-fig1", p)] for p in POLICIES]
    banner("Figure 1: Redis RSS under insert/delete-80%/re-insert (scaled 1/128)")
    rows = []
    for r in results:
        bloat = r["rss_mb"] - r["useful_mb"]
        paper_oom, paper_useful = PAPER[r["policy"]]
        rows.append([
            r["policy"], "OOM" if r["oom"] else "completed",
            round(r["rss_mb"], 1), round(r["useful_mb"], 1), round(bloat, 1),
            r["recovered_pages"],
            "OOM" if paper_oom else "completed", paper_useful,
        ])
    print(format_table(
        ["policy", "outcome", "RSS MB", "useful MB", "bloat MB",
         "recovered pages", "paper outcome", "paper useful GB"],
        rows,
    ))
    print("\nRSS over time (MB):")
    for r in results:
        series = r["rss_series"]
        pairs = list(zip(series["times"], series["values"]))
        samples = [f"{t:.0f}s:{v:.0f}" for t, v in
                   pairs[:: max(1, len(pairs) // 10)]]
        print(f"  {r['policy']:10s} " + "  ".join(samples))

    by_policy = {r["policy"]: r for r in results}
    # the paper's qualitative result
    assert by_policy["linux-2mb"]["oom"]
    assert by_policy["ingens-90"]["oom"]
    assert not by_policy["hawkeye-g"]["oom"]
    assert by_policy["hawkeye-g"]["finished"]
    # Ingens preserves more useful data at the limit than Linux
    assert by_policy["ingens-90"]["useful_mb"] > by_policy["linux-2mb"]["useful_mb"]
    # HawkEye ends bloat-free
    hawk = by_policy["hawkeye-g"]
    assert hawk["rss_mb"] - hawk["useful_mb"] < 0.1 * hawk["rss_mb"]
    benchmark.extra_info.update({
        r["policy"]: {"oom": r["oom"], "useful_mb": round(r["useful_mb"], 1)}
        for r in results
    })
