"""Figure 3 — average distance to the first non-zero byte in 4 KiB pages.

Paper: across 56 diverse workloads, an in-use page's first non-zero byte
sits on average 9.11 bytes in — so HawkEye's zero-scan classifies in-use
pages after ~10 byte reads, making bloat-recovery cost proportional to
the number of *bloat* pages rather than total memory.

The bench materialises pages with the catalogued per-suite offsets and
measures the scan through the frame table's content model, verifying both
the per-suite bars and the aggregate mean, plus the asymmetric scan-cost
property itself.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.kernel.costs import CostModel
from repro.mem.frames import FrameTable
from repro.metrics.tables import format_table
from repro.units import BASE_PAGE_SIZE
from repro.workloads import catalog

PAGES_PER_WORKLOAD = 512


def measure():
    costs = CostModel()
    results = []
    total_weighted = 0.0
    total_weight = 0
    for suite, mean_offset in catalog.FIRST_NONZERO_BYTES.items():
        weight = catalog.FIRST_NONZERO_WEIGHTS[suite]
        frames = FrameTable(PAGES_PER_WORKLOAD)
        for f in range(PAGES_PER_WORKLOAD):
            # deterministic offsets around the suite mean (clamped >= 0)
            offset = max(0, int(round(mean_offset)) + (f % 7) - 3)
            frames.write(f, first_nonzero=offset)
        scanned = sum(frames.scan_cost_bytes(f) for f in range(PAGES_PER_WORKLOAD))
        avg_distance = scanned / PAGES_PER_WORKLOAD - 1  # scan reads offset+1
        scan_us = costs.scan_page_us(scanned)
        results.append((suite, weight, avg_distance, scan_us))
        total_weighted += avg_distance * weight
        total_weight += weight
    zero_page_cost = costs.scan_page_us(BASE_PAGE_SIZE)
    return results, total_weighted / total_weight, zero_page_cost


def test_fig3_first_nonzero(benchmark):
    results, overall_mean, zero_cost = run_once(benchmark, measure)
    banner("Figure 3: average distance to the first non-zero byte (bytes)")
    rows = [
        [suite, weight, round(avg, 2), round(scan_us, 3),
         catalog.FIRST_NONZERO_BYTES[suite]]
        for suite, weight, avg, scan_us in results
    ]
    rows.append(["OVERALL (weighted)", sum(r[1] for r in rows), round(overall_mean, 2),
                 "", catalog.FIRST_NONZERO_PAPER_MEAN])
    print(format_table(
        ["suite/workload", "#workloads", "measured distance",
         "scan µs / 512 pages", "paper distance"],
        rows,
    ))
    assert abs(overall_mean - catalog.FIRST_NONZERO_PAPER_MEAN) < 0.5
    # scanning an average in-use page is >300x cheaper than a zero page
    in_use_cost = CostModel().scan_page_us(int(overall_mean) + 1)
    print(f"\nzero-page scan: {zero_cost:.3f} µs; "
          f"in-use page scan: {in_use_cost:.5f} µs "
          f"({zero_cost / in_use_cost:.0f}x cheaper)")
    assert zero_cost / in_use_cost > 300
    benchmark.extra_info["mean_distance_bytes"] = round(overall_mean, 2)
