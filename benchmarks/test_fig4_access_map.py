"""Figure 4 — the access_map worked example.

The paper shows three processes A, B, C with regions spread over the ten
access-coverage buckets and derives HawkEye-G's global promotion order:

    A1, B1, C1, C2, B2, C3, C4, B3, B4, A2, C5, A3

The bench reconstructs that exact state in three simulated processes and
drives the real HawkEye-G promotion engine; the observed promotion
sequence must match the paper's, including the round-robin among
processes populated at the same bucket index.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.core.access_map import AccessMap
from repro.core.promotion import PromotionEngine
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import Linux4KPolicy
from repro.tlb.perf import PMUCounters
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.process import Process

#: Figure 4 state: per process, labelled regions at bucket indices.
FIG4 = {
    "A": [("A1", 9), ("A2", 4), ("A3", 2)],
    "B": [("B1", 9), ("B2", 8), ("B3", 6), ("B4", 5)],
    "C": [("C1", 9), ("C2", 9), ("C3", 7), ("C4", 7), ("C5", 3)],
}

PAPER_ORDER = ["A1", "B1", "C1", "C2", "B2", "C3", "C4", "B3", "B4", "A2", "C5", "A3"]


def build_and_promote():
    # base-page fault path: the regions must be promotion *candidates*
    kernel = Kernel(KernelConfig(mem_bytes=128 * MB), Linux4KPolicy)
    access_maps: dict[int, AccessMap] = {}
    labels: dict[tuple[int, int], str] = {}
    for pname, regions in FIG4.items():
        proc = Process(pname)
        kernel.processes.append(proc)
        kernel.pmu[proc.pid] = PMUCounters()
        vma = kernel.mmap(proc, len(regions) * 2 * MB, "heap")
        amap = AccessMap()
        # populate each region with resident base pages, then place it in
        # its Figure 4 bucket (insert tail-first so heads match labels)
        for i, (label, bucket) in reversed(list(enumerate(regions))):
            base = vma.start + i * PAGES_PER_HUGE
            for p in range(PAGES_PER_HUGE):
                kernel.fault(proc, base + p)
            hvpn = base >> 9
            amap.update(hvpn, bucket * 50 + 25)
            labels[(proc.pid, hvpn)] = label
        access_maps[proc.pid] = amap

    engine = PromotionEngine(kernel, access_maps, promote_per_sec=1e9, variant="g")
    promoted: list[str] = []
    original = kernel.promote_region

    def spy(proc, hvpn):
        result = original(proc, hvpn)
        if result is not None:
            promoted.append(labels[(proc.pid, hvpn)])
        return result

    kernel.promote_region = spy
    engine.run_epoch()
    return promoted


def test_fig4_access_map(benchmark):
    promoted = run_once(benchmark, build_and_promote)
    banner("Figure 4: HawkEye-G global promotion order")
    print("paper:    " + ", ".join(PAPER_ORDER))
    print("observed: " + ", ".join(promoted))
    assert promoted == PAPER_ORDER
    benchmark.extra_info["order"] = ",".join(promoted)
