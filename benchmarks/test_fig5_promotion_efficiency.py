"""Figure 5 — speedup and time saved per huge-page promotion, recovering
from a fragmented state.

Paper: starting fragmented, HawkEye's access-coverage-guided promotion
recovers MMU overheads faster than VA-order scanning — up to 22 % speedup
over never-promoting, 13 %/12 %/6 % over Linux and Ingens for Graph500,
XSBench and cg.D — and saves far more execution time per promotion
(HawkEye-PMU up to 44x more efficient than Linux on XSBench, because it
stops promoting once measured overhead drops below 2 %).

The 15 cells come through the sweep runner
(``repro.runner.adapters.run_fig5`` holds the experiment body), so
``repro sweep run fig5 --jobs 4`` pre-warms this test's cache.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once, sweep_results
from repro.metrics.tables import format_table
from repro.runner.adapters import FIG5_POLICIES as POLICIES
from repro.runner.adapters import FIG5_WORKLOADS as WORKLOADS


def test_fig5_promotion_efficiency(benchmark, scale):
    cells = run_once(benchmark, lambda: sweep_results("fig5", scale))
    table = {
        wname: {p: cells[(wname, p)] for p in POLICIES} for wname in WORKLOADS
    }
    banner("Figure 5: speedup over 4KB and time saved per promotion (fragmented start)")
    rows = []
    for wname, per_policy in table.items():
        base = per_policy["linux-4kb"]["time_s"]
        for policy in POLICIES[1:]:
            r = per_policy[policy]
            saved = base - r["time_s"]
            per_promo = saved / r["promotions"] if r["promotions"] else 0.0
            rows.append([
                wname, policy, round(r["time_s"], 1),
                f"{base / r['time_s']:.3f}x",
                r["promotions"], round(per_promo, 2),
            ])
    print(format_table(
        ["workload", "policy", "time s", "speedup vs 4KB",
         "promotions", "saved s/promotion"],
        rows,
    ))

    for wname, per_policy in table.items():
        base = per_policy["linux-4kb"]["time_s"]
        hawk_g = per_policy["hawkeye-g"]
        hawk_pmu = per_policy["hawkeye-pmu"]
        linux = per_policy["linux-2mb"]
        # HawkEye beats (or at worst matches) Linux's VA-order promotion
        assert hawk_g["time_s"] <= linux["time_s"] * 1.02, wname
        # both HawkEye variants gain clearly over never promoting
        assert base / hawk_g["time_s"] > 1.05, wname
        # PMU variant is the most promotion-efficient (Figure 5 right)
        def eff(r):
            return (base - r["time_s"]) / max(r["promotions"], 1)

        assert eff(hawk_pmu) >= eff(linux), wname
        assert eff(hawk_pmu) >= eff(hawk_g) * 0.9, wname
    benchmark.extra_info.update({
        w: {p: round(per[p]["time_s"], 1) for p in POLICIES}
        for w, per in table.items()
    })
