"""Figure 6 — access pattern, MMU overhead and promotions over time.

Paper: Graph500's and XSBench's hot regions sit in *high* virtual
addresses.  Starting fragmented, both HawkEye variants eliminate the MMU
overhead in ~300 s, while Linux and Ingens — promoting from low to high
VAs — still show high overheads after 1000 s.

The bench records the overhead and promotion time series and compares
the time each policy needs to push overhead below half its starting
value.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import fragment, make_kernel
from repro.metrics.series import SeriesRecorder
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.graph import Graph500
from repro.workloads.xsbench import XSBench

POLICIES = ["linux-2mb", "ingens-90", "hawkeye-pmu", "hawkeye-g"]
HORIZON_EPOCHS = 1100


def run_case(wl_factory, policy, scale):
    kernel = make_kernel(96 * GB, policy, scale)
    fragment(kernel)
    recorder = SeriesRecorder(kernel, every_epochs=10)
    run = kernel.spawn(wl_factory())
    recorder.probe("overhead", lambda k: run.proc.mmu_overhead)
    recorder.probe("promotions", lambda k: run.proc.stats.promotions)
    kernel.run_epochs(HORIZON_EPOCHS)
    overhead = recorder["overhead"]
    initial = max(overhead.values[:3] or [0.0])
    half_time = None
    for t, v in zip(overhead.times, overhead.values):
        if initial > 0 and v <= initial / 2:
            half_time = t
            break
    return {
        "initial": initial,
        "final": overhead.last(),
        "half_time_s": half_time,
        "promotions": recorder["promotions"].last(),
        "series": overhead,
    }


def test_fig6_promotion_timeline(benchmark, scale):
    def experiment():
        out = {}
        for wname, factory in (
            ("graph500", lambda: Graph500(scale=scale.factor, work_us=1e12)),
            ("xsbench", lambda: XSBench(scale=scale.factor, work_us=1e12)),
        ):
            out[wname] = {p: run_case(factory, p, scale) for p in POLICIES}
        return out

    table = run_once(benchmark, experiment)
    banner("Figure 6: MMU overhead over time after fragmentation")
    rows = []
    for wname, per_policy in table.items():
        for policy, r in per_policy.items():
            rows.append([
                wname, policy,
                f"{r['initial'] * 100:.1f}%", f"{r['final'] * 100:.1f}%",
                "never" if r["half_time_s"] is None else f"{r['half_time_s']:.0f}s",
                int(r["promotions"]),
            ])
    print(format_table(
        ["workload", "policy", "initial ovh", "final ovh",
         "time to halve ovh", "promotions"],
        rows,
    ))
    for wname, per_policy in table.items():
        hawk = per_policy["hawkeye-g"]
        linux = per_policy["linux-2mb"]
        ingens = per_policy["ingens-90"]
        assert hawk["half_time_s"] is not None, wname
        # hot regions in high VAs: VA-order scanners halve overhead later
        # (or never within the horizon)
        for r in (linux, ingens):
            if r["half_time_s"] is not None:
                assert r["half_time_s"] > hawk["half_time_s"], wname
        # HawkEye ends with (near-)eliminated overheads
        assert hawk["final"] < 0.35 * hawk["initial"], wname
    benchmark.extra_info.update({
        w: {p: per[p]["half_time_s"] for p in POLICIES} for w, per in table.items()
    })
