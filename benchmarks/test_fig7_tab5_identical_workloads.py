"""Figure 7 / Table 5 — three identical instances run concurrently.

Paper: with 3x Graph500 (and separately 3x XSBench) under fragmentation,
Linux promotes one process at a time (FCFS), creating a long performance
imbalance; Ingens promotes proportionally but from low VAs, helping
nobody; HawkEye distributes promotions across instances by access
coverage and achieves 1.13–1.15x average speedup over Linux (Table 5).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import banner, run_once
from repro.experiments import fragment, make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.graph import Graph500
from repro.workloads.xsbench import XSBench

POLICIES = ["linux-4kb", "linux-2mb", "ingens-90", "hawkeye-pmu", "hawkeye-g"]
#: paper-length runs (Table 5: ~2280 s / ~2430 s under Linux-4KB): the
#: fairness effects need execution times comparable to the promotion
#: timescale.  Runs use 2 s epochs to stay fast.
WORK_S = {"graph500": 1980.0, "xsbench": 2070.0}
INSTANCES = 3

PAPER_SPEEDUPS = {  # Table 5 averages over Linux-4KB
    "graph500": {"linux-2mb": 1.02, "ingens-90": 1.01, "hawkeye-pmu": 1.14, "hawkeye-g": 1.13},
    "xsbench": {"linux-2mb": 1.00, "ingens-90": 1.00, "hawkeye-pmu": 1.15, "hawkeye-g": 1.15},
}


def run_case(wname, wl_cls, policy, scale):
    kernel = make_kernel(96 * GB, policy, scale, epoch_us=2 * SEC)
    fragment(kernel)
    runs = [
        kernel.spawn(wl_cls(scale=scale.factor, work_us=WORK_S[wname] * SEC,
                            name=f"{wl_cls.__name__.lower()}-{i + 1}"))
        for i in range(INSTANCES)
    ]
    kernel.run(max_epochs=8000)
    times = [r.elapsed_us / SEC for r in runs]
    promos = [r.proc.stats.promotions for r in runs]
    return {"times": times, "promotions": promos}


def test_fig7_tab5_identical_workloads(benchmark, scale):
    def experiment():
        out = {}
        for wname, wl_cls in (("graph500", Graph500), ("xsbench", XSBench)):
            out[wname] = {p: run_case(wname, wl_cls, p, scale) for p in POLICIES}
        return out

    table = run_once(benchmark, experiment)
    banner("Table 5 / Figure 7: three identical instances, fragmented start")
    rows = []
    for wname, per_policy in table.items():
        base_avg = statistics.mean(per_policy["linux-4kb"]["times"])
        for policy in POLICIES:
            r = per_policy[policy]
            avg = statistics.mean(r["times"])
            rows.append([
                wname, policy,
                " / ".join(f"{t:.0f}" for t in r["times"]),
                round(avg, 1),
                f"{base_avg / avg:.3f}x",
                " / ".join(str(p) for p in r["promotions"]),
                PAPER_SPEEDUPS[wname].get(policy, "-"),
            ])
    print(format_table(
        ["workload", "policy", "times s (3 instances)", "avg s",
         "speedup vs 4KB", "promotions", "paper speedup"],
        rows,
    ))

    for wname, per_policy in table.items():
        base_avg = statistics.mean(per_policy["linux-4kb"]["times"])
        hawk_avg = statistics.mean(per_policy["hawkeye-g"]["times"])
        linux_avg = statistics.mean(per_policy["linux-2mb"]["times"])
        # HawkEye clearly beats Linux on average (paper: 1.13-1.15x)
        assert linux_avg / hawk_avg > 1.03, wname
        assert base_avg / hawk_avg > 1.07, wname
        # fairness: HawkEye's promotions are spread evenly; Linux's not
        linux_promos = per_policy["linux-2mb"]["promotions"]
        hawk_promos = per_policy["hawkeye-g"]["promotions"]
        if max(linux_promos) > 0 and max(hawk_promos) > 0:
            linux_spread = max(linux_promos) - min(linux_promos)
            hawk_spread = max(hawk_promos) - min(hawk_promos)
            assert hawk_spread <= max(linux_spread, 2), wname
    benchmark.extra_info.update({
        w: {p: round(statistics.mean(per[p]["times"]), 1) for p in POLICIES}
        for w, per in table.items()
    })
