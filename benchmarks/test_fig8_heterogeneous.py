"""Figure 8 — TLB-sensitive workloads co-running with a light Redis server.

Paper: a lightly-loaded Redis (40M keys, 10K req/s) looks huge and
uniformly hot.  Linux's FCFS khugepaged serves whoever launched first
("Before" vs "After" flips its results); Ingens's proportional policy
favours the large-memory Redis either way.  HawkEye promotes by (expected
or measured) MMU overhead and delivers 15–60 % speedups for the sensitive
workloads regardless of launch order.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import fragment, make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.graph import Graph500
from repro.workloads.npb import NPBWorkload
from repro.workloads.redis import RedisLight
from repro.workloads.xsbench import XSBench

POLICIES = ["linux-4kb", "linux-2mb", "ingens-90", "hawkeye-pmu", "hawkeye-g"]
WORK_S = 400.0

SENSITIVE = {
    "graph500": lambda scale: Graph500(scale=scale.factor, work_us=WORK_S * SEC),
    "xsbench": lambda scale: XSBench(scale=scale.factor, work_us=WORK_S * SEC),
    "cg.D": lambda scale: NPBWorkload("cg.D", scale=scale.factor, work_us=WORK_S * SEC),
}


def run_pair(wl_factory, policy, scale, redis_first):
    kernel = make_kernel(96 * GB, policy, scale)
    fragment(kernel)
    redis = RedisLight(scale=scale.factor, serve_us=3000 * SEC,
                       insert_rate_pages_per_sec=2e6)
    if redis_first:
        kernel.spawn(redis)
        run = kernel.spawn(wl_factory(scale))
    else:
        run = kernel.spawn(wl_factory(scale))
        kernel.spawn(redis)
    while not run.finished and kernel.stats.epochs < 8000:
        kernel.run_epoch()
    assert run.finished
    return run.elapsed_us / SEC


def test_fig8_heterogeneous(benchmark, scale):
    def experiment():
        out = {}
        for wname, factory in SENSITIVE.items():
            out[wname] = {}
            for policy in POLICIES:
                out[wname][policy] = {
                    "before": run_pair(factory, policy, scale, redis_first=False),
                    "after": run_pair(factory, policy, scale, redis_first=True),
                }
        return out

    table = run_once(benchmark, experiment)
    banner("Figure 8: speedup over 4KB pages, sensitive workload ± launch order")
    rows = []
    for wname, per_policy in table.items():
        for policy in POLICIES[1:]:
            r = per_policy[policy]
            rows.append([
                wname, policy,
                f"{per_policy['linux-4kb']['before'] / r['before']:.3f}x",
                f"{per_policy['linux-4kb']['after'] / r['after']:.3f}x",
            ])
    print(format_table(
        ["workload", "policy", "speedup (Before)", "speedup (After)"], rows
    ))

    for wname, per_policy in table.items():
        base_b = per_policy["linux-4kb"]["before"]
        base_a = per_policy["linux-4kb"]["after"]
        linux = per_policy["linux-2mb"]
        for variant in ("hawkeye-pmu", "hawkeye-g"):
            hawk = per_policy[variant]
            sp_before = base_b / hawk["before"]
            sp_after = base_a / hawk["after"]
            # HawkEye gains in both orders (paper: 15-60%)
            assert sp_before > 1.05 and sp_after > 1.05, (wname, variant)
            # ... and is order-insensitive
            assert abs(sp_before - sp_after) < 0.08, (wname, variant)
        # Linux is order-sensitive: launching Redis first hurts the
        # sensitive workload relative to launching it last
        assert (base_a / linux["after"]) <= (base_b / linux["before"]) + 0.02, wname
    benchmark.extra_info.update({
        w: {p: round(base := per[p]["before"], 1) for p in POLICIES}
        for w, per in table.items()
    })
