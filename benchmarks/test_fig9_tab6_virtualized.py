"""Figure 9 / Table 6 — virtualised performance: HawkEye at host, guest
or both layers.

Table 6's configurations:

* **host** — two VMs; VM-1 runs Redis (TLB-insensitive), VM-2 the
  TLB-sensitive workloads.  HawkEye replaces the *host* kernel only.
* **guest** — one big VM running both; HawkEye inside the guest only.
* **both** — two VMs, HawkEye at host and guests.

Paper: 18–90 % speedups over Linux-everywhere, often larger than
bare-metal because nested walks amplify MMU overheads (e.g. cg.D).
Baseline for each config is the same layout with Linux at every layer.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import fragment, make_hypervisor, make_vm
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.npb import NPBWorkload
from repro.workloads.redis import RedisLight
from repro.workloads.xsbench import XSBench

WORK_S = 300.0

CONFIGS = {  # name -> (host policy, guest policy, two_vms)
    "linux (baseline)": ("linux-2mb", "linux-2mb", True),
    "hawkeye-host": ("hawkeye-g", "linux-2mb", True),
    "hawkeye-guest": ("linux-2mb", "hawkeye-g", False),
    "hawkeye-both": ("hawkeye-g", "hawkeye-g", True),
}


def sensitive_workloads(scale):
    return [
        XSBench(scale=scale.factor, work_us=WORK_S * SEC),
        NPBWorkload("cg.D", scale=scale.factor, work_us=WORK_S * SEC),
    ]


def run_config(host_policy, guest_policy, two_vms, scale):
    hyp = make_hypervisor(96 * GB, host_policy, scale)
    fragment(hyp.host)
    redis = RedisLight(scale=scale.factor, dataset_bytes=20 * GB,
                       serve_us=4000 * SEC, insert_rate_pages_per_sec=2e6)
    if two_vms:
        vm1 = make_vm(hyp, "vm-redis", 30 * GB, guest_policy, scale)
        vm2 = make_vm(hyp, "vm-sens", 48 * GB, guest_policy, scale)
        fragment(vm2.guest)
        vm1.spawn(redis)
        runs = [vm2.spawn(wl) for wl in sensitive_workloads(scale)]
    else:
        vm = make_vm(hyp, "vm-all", 80 * GB, guest_policy, scale)
        fragment(vm.guest)
        vm.spawn(redis)
        runs = [vm.spawn(wl) for wl in sensitive_workloads(scale)]
    epochs = 0
    while any(not r.finished for r in runs) and epochs < 9000:
        hyp.run_epoch()
        epochs += 1
    assert all(r.finished for r in runs)
    return {r.proc.name: r.elapsed_us / SEC for r in runs}


def test_fig9_tab6_virtualized(benchmark, scale):
    def experiment():
        return {
            name: run_config(h, g, two, scale)
            for name, (h, g, two) in CONFIGS.items()
        }

    table = run_once(benchmark, experiment)
    banner("Figure 9 / Table 6: virtualised speedups over Linux host+guest")
    baseline = table["linux (baseline)"]
    workload_names = list(baseline)
    rows = []
    for config, times in table.items():
        row = [config]
        for w in workload_names:
            row.append(round(times[w], 1))
            row.append(f"{baseline[w] / times[w]:.3f}x")
        rows.append(row)
    headers = ["configuration"]
    for w in workload_names:
        headers += [f"{w} s", f"{w} speedup"]
    print(format_table(headers, rows))

    for w in workload_names:
        # every HawkEye placement helps (or at worst is neutral), and the
        # full deployment is clearly the best — the Figure 9 shape
        assert table["hawkeye-guest"][w] < baseline[w], w
        assert table["hawkeye-host"][w] <= baseline[w] * 1.03, w
        assert table["hawkeye-both"][w] < table["hawkeye-guest"][w], w
        assert table["hawkeye-both"][w] < baseline[w] * 0.95, w
    benchmark.extra_info.update({
        cfg: {w: round(baseline[w] / times[w], 3) for w in workload_names}
        for cfg, times in table.items()
    })
