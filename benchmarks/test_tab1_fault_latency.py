"""Table 1 — page faults, allocation latency and performance for the
alloc-touch-free microbenchmark (~100 GB of allocations over 10 rounds).

Paper values (full scale):

====================  ========  =======  =========  ==========  ========
event                 Linux4K   Linux2M  Ingens90   no-zero 4K  no-zero 2M
# page faults         26.2M     51.5K    26.2M      26.2M       51.5K
total fault time (s)  92.6      23.9     92.8       69.5        0.7
avg fault time (µs)   3.5       465      3.5        2.65        13
====================  ========  =======  =========  ==========  ========

The "no page-zeroing" columns are realised by HawkEye with warmed
pre-zero lists — the mechanism §3.1 builds to make that hypothetical the
common case.

The cells come through the sweep runner (``repro.runner.adapters.run_tab1``
holds the experiment body); cached results re-check instantly.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once, sweep_results
from repro.metrics.tables import format_table
from repro.runner.adapters import run_tab1

CONFIGS = [
    # (label, policy, paper avg fault µs)
    ("linux-4kb", "linux-4kb", 3.5),
    ("linux-2mb", "linux-2mb", 465.0),
    ("ingens-90", "ingens-90", 3.5),
    ("hawkeye-4kb (no-zero)", "hawkeye-4kb", 2.65),
    ("hawkeye-2mb (no-zero)", "hawkeye-g", 13.0),
]


def run_config(label, policy, scale):
    """One Table-1 cell in-process (kept for `repro bench tab1 --profile`)."""
    return {"label": label, **run_tab1("alloc-touch-free", policy, scale)}


def test_tab1_fault_latency(benchmark, scale):
    table = run_once(benchmark, lambda: sweep_results("tab1", scale))
    results = [
        {"label": label, **table[("alloc-touch-free", policy)]}
        for label, policy, _ in CONFIGS
    ]
    banner("Table 1: fault counts and latency, alloc-touch-free x10 (scaled)")
    rows = [
        [r["label"], r["faults"], round(r["fault_time_s"], 3),
         round(r["avg_fault_us"], 2), paper_avg]
        for r, (_, _, paper_avg) in zip(results, CONFIGS)
    ]
    print(format_table(
        ["configuration", "# faults", "fault time s (scaled)",
         "avg fault µs", "paper avg µs"],
        rows,
    ))

    by = {r["label"]: r for r in results}
    base = by["linux-4kb"]
    huge = by["linux-2mb"]
    # 512x fewer faults with THP (paper: 26.2M -> 51.5K, >500x)
    assert base["faults"] == huge["faults"] * 512
    # Ingens doesn't reduce fault count (async promotion only)
    assert by["ingens-90"]["faults"] == base["faults"]
    # average latencies land on the paper's measurements
    assert abs(base["avg_fault_us"] - 3.5) < 0.2
    assert abs(huge["avg_fault_us"] - 465) < 10
    assert abs(by["hawkeye-4kb (no-zero)"]["avg_fault_us"] - 2.65) < 0.2
    assert abs(by["hawkeye-2mb (no-zero)"]["avg_fault_us"] - 13) < 2
    # fault-time ordering: no-zero 2MB << sync 2MB << 4KB variants
    # (paper: 0.7s << 23.9s << 92.6s)
    assert by["hawkeye-2mb (no-zero)"]["fault_time_s"] < huge["fault_time_s"] / 10
    assert huge["fault_time_s"] < base["fault_time_s"]
    assert by["hawkeye-4kb (no-zero)"]["fault_time_s"] < base["fault_time_s"]
    benchmark.extra_info.update(
        {r["label"]: round(r["avg_fault_us"], 2) for r in results}
    )
