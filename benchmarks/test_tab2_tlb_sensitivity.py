"""Table 2 — TLB-sensitive applications per benchmark suite.

Paper: of 79 applications across seven suites, only 15 gain more than 3 %
from huge pages.  The bench classifies every catalogued application by
running its TLB profile through the hardware model (speedup = overhead
eliminated by full promotion) and compares per-suite counts with the
paper's column.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.metrics.tables import format_table
from repro.tlb.mmu_model import MMUModel, RegionLoad
from repro.workloads import catalog


def classify_all():
    model = MMUModel()
    results = {}
    for app in catalog.APPLICATIONS:
        load_4k = RegionLoad(2000, 512.0, 0.0, 1.0, app.pattern)
        load_2m = RegionLoad(2000, 512.0, 1.0, 1.0, app.pattern)
        o4k = model.epoch([load_4k], access_rate=app.access_rate).overhead
        o2m = model.epoch([load_2m], access_rate=app.access_rate).overhead
        speedup = (1.0 - o2m) / (1.0 - o4k) - 1.0
        results[app.name] = (app.suite, speedup, speedup > catalog.SENSITIVITY_THRESHOLD)
    return results


def test_tab2_tlb_sensitivity(benchmark):
    results = run_once(benchmark, classify_all)
    banner("Table 2: TLB-sensitive applications per suite (>3% modelled speedup)")
    rows = []
    total_apps = total_sensitive = 0
    for suite, (paper_total, paper_sensitive) in catalog.TABLE2_PAPER.items():
        apps = [name for name, (s, _, _) in results.items() if s == suite]
        sensitive = [name for name in apps if results[name][2]]
        rows.append([
            suite, len(apps), len(sensitive),
            f"{paper_total}/{paper_sensitive}",
            ", ".join(sorted(sensitive)) or "-",
        ])
        total_apps += len(apps)
        total_sensitive += len(sensitive)
        assert len(apps) == paper_total
        assert len(sensitive) == paper_sensitive, suite
    rows.append(["Total", total_apps, total_sensitive, "79/15", ""])
    print(format_table(
        ["suite", "apps", "TLB sensitive", "paper (apps/sens)", "which"], rows
    ))
    assert total_apps == 79
    assert total_sensitive == 15
    benchmark.extra_info["sensitive"] = total_sensitive
