"""Table 3 — NPB class-D memory characteristics and MMU overheads.

Paper columns: RSS, WSS, native-4K TLB-miss rate, MMU overhead at 4 KiB
and 2 MiB, and the huge-page speedup native and virtualised.  The
headline: working-set size predicts overhead poorly — mg.D (24 GB WSS)
has ~1 % overhead while cg.D (7–8 GB WSS) has 39 %.

Each workload runs to steady state under Linux-4KB and Linux-2MB; the
virtual column applies the nested walk-cost model with 4K host backing.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.npb import NPB_SPECS, NPBWorkload

ORDER = ["bt.D", "sp.D", "lu.D", "mg.D", "cg.D", "ft.D", "ua.D"]


def measure(which, scale):
    spec = NPB_SPECS[which]
    out = {"workload": which}
    for label, policy in (("4k", "linux-4kb"), ("2m", "linux-2mb")):
        kernel = make_kernel(96 * GB, policy, scale)
        run = kernel.spawn(NPBWorkload(which, scale=scale.factor, work_us=600 * SEC))
        kernel.run_epochs(30)
        proc = run.proc
        out[f"overhead_{label}"] = proc.mmu_overhead
        if label == "4k":
            # report the model's TLB miss rate and the nested overhead
            profile = proc.access_profile
            loads = profile.loads(kernel, proc)
            epoch = kernel.mmu.epoch(loads, profile.access_rate)
            out["miss_rate"] = epoch.tlb_miss_rate
            nested = kernel.mmu.epoch(loads, profile.access_rate, host_huge_fraction=0.0)
            out["overhead_4k_virtual"] = nested.overhead
        out[f"rss_{label}"] = proc.rss_pages() * 4096 / GB / scale.factor
    out["speedup_native"] = (1 - out["overhead_2m"]) / (1 - out["overhead_4k"])
    out["speedup_virtual"] = (1 - out["overhead_2m"]) / (1 - out["overhead_4k_virtual"])
    return out


def test_tab3_npb_characteristics(benchmark, scale):
    results = run_once(benchmark, lambda: [measure(w, scale) for w in ORDER])
    banner("Table 3: NPB class-D MMU overheads and huge-page speedups")
    rows = []
    for r in results:
        spec = NPB_SPECS[r["workload"]]
        rows.append([
            r["workload"],
            f"{r['rss_4k']:.0f}GB",
            f"{r['miss_rate'] * 100:.1f}%",
            f"{r['overhead_4k'] * 100:.2f}%",
            f"{r['overhead_2m'] * 100:.2f}%",
            f"{r['speedup_native']:.2f}x",
            f"{r['speedup_virtual']:.2f}x",
            f"{spec.paper_overhead_4k * 100:.2f}% / {spec.paper_overhead_2m * 100:.2f}%",
            f"{spec.paper_speedup_native}x / {spec.paper_speedup_virtual}x",
        ])
    print(format_table(
        ["workload", "RSS", "miss rate", "4K ovh", "2M ovh",
         "native speedup", "virtual speedup", "paper ovh 4K/2M", "paper speedups"],
        rows,
    ))
    by = {r["workload"]: r for r in results}
    # calibration: every 4K overhead within tolerance of Table 3
    for which, r in by.items():
        paper = NPB_SPECS[which].paper_overhead_4k
        assert abs(r["overhead_4k"] - paper) <= max(0.02, paper * 0.35), which
        assert r["overhead_2m"] < 0.05
    # the WSS-is-a-poor-predictor headline
    assert by["mg.D"]["overhead_4k"] < by["cg.D"]["overhead_4k"] / 10
    # virtualisation amplifies cg.D the most (paper: 1.62x -> 2.7x)
    assert by["cg.D"]["speedup_virtual"] > by["cg.D"]["speedup_native"] * 1.3
    benchmark.extra_info.update(
        {w: round(by[w]["overhead_4k"], 4) for w in ORDER}
    )
