"""Table 4 — the performance-counter methodology for measuring MMU overhead.

``MMU overhead = (C1 + C2) * 100 / C3`` with
C1 = DTLB_LOAD_MISSES_WALK_DURATION, C2 = DTLB_STORE_MISSES_WALK_DURATION,
C3 = CPU_CLK_UNHALTED.

The bench validates the emulated counter path end-to-end: a workload with
a known modelled overhead runs to steady state, and the overhead read
back through the Table 4 formula must agree with the model's ground
truth — this is the signal HawkEye-PMU acts on.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.microbench import RandomAccess, SequentialAccess
from repro.workloads.npb import NPBWorkload


def measure(workload, scale):
    kernel = make_kernel(96 * GB, "linux-4kb", scale)
    run = kernel.spawn(workload)
    kernel.run_epochs(40)
    proc = run.proc
    pmu = kernel.pmu[proc.pid]
    return {
        "workload": workload.name,
        "c1": pmu.dtlb_load_walk_duration,
        "c2": pmu.dtlb_store_walk_duration,
        "c3": pmu.cpu_clk_unhalted,
        "pmu_overhead": pmu.read_overhead(),
        "model_overhead": proc.mmu_overhead,
    }


def test_tab4_pmu_methodology(benchmark, scale):
    workloads = [
        NPBWorkload("cg.D", scale=scale.factor, work_us=600 * SEC),
        NPBWorkload("mg.D", scale=scale.factor, work_us=600 * SEC),
        RandomAccess(scale=scale.factor, work_us=600 * SEC),
        SequentialAccess(scale=scale.factor, work_us=600 * SEC),
    ]
    results = run_once(benchmark, lambda: [measure(w, scale) for w in workloads])
    banner("Table 4: MMU overhead via emulated DTLB walk-duration counters")
    rows = [
        [r["workload"], f"{r['c1']:.3g}", f"{r['c2']:.3g}", f"{r['c3']:.3g}",
         f"{r['pmu_overhead'] * 100:.2f}%", f"{r['model_overhead'] * 100:.2f}%"]
        for r in results
    ]
    print(format_table(
        ["workload", "C1 (load walks)", "C2 (store walks)",
         "C3 (cycles)", "(C1+C2)/C3", "model ground truth"],
        rows,
    ))
    for r in results:
        # the counter path must agree with the model's steady state;
        # lifetime counters include the fault-heavy startup, so compare
        # loosely but meaningfully
        assert abs(r["pmu_overhead"] - r["model_overhead"]) < 0.1, r["workload"]
        assert r["c1"] > r["c2"] > 0 or r["model_overhead"] == 0
    benchmark.extra_info.update(
        {r["workload"]: round(r["pmu_overhead"], 4) for r in results}
    )
