"""Table 7 — Redis memory consumption vs throughput after churn.

Paper (8M pairs inserted, 60 % deleted):

==========================  ===========  ========  ==========
kernel                      self-tuning  memory    throughput
Linux-4KB                   no           16.2 GB   106.1 K/s
Linux-2MB                   no           33.2 GB   113.8 K/s
Ingens-90%                  no           16.3 GB   106.8 K/s
Ingens-50%                  no           33.1 GB   113.4 K/s
HawkEye (no mem pressure)   yes          33.2 GB   113.6 K/s
HawkEye (mem pressure)      yes          16.2 GB   105.8 K/s
==========================  ===========  ========  ==========

The trade-off: keeping huge pages costs the memory the deleted keys
occupied (khugepaged-style collapse turns it into zero-filled bloat);
releasing it costs the huge-page throughput edge.  Only HawkEye moves
between the two regimes at runtime, driven by memory pressure.

Memory pressure for the last row is induced by a co-resident allocation
that pushes the system over the 85 % watermark.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, MB, SEC
from repro.workloads.base import MmapOp, Phase, TouchOp, Workload
from repro.workloads.redis import RedisChurn

CONFIGS = [
    ("linux-4kb", "linux-4kb", False, "16.2GB / 106.1K"),
    ("linux-2mb", "linux-2mb", False, "33.2GB / 113.8K"),
    ("ingens-90", "ingens-90-fixed", False, "16.3GB / 106.8K"),
    ("ingens-50", "ingens-50-fixed", False, "33.1GB / 113.4K"),
    ("hawkeye (no pressure)", "hawkeye-g", False, "33.2GB / 113.6K"),
    ("hawkeye (pressure)", "hawkeye-g", True, "16.2GB / 105.8K"),
]

#: khugepaged at the scaled rate needs ~1650 s to re-collapse the full
#: heap, matching the paper's timescale.
SETTLE_S = 1800.0


class PressureHog(Workload):
    """Co-resident allocation that raises memory pressure past 85 %.

    It grabs its memory after Redis's insert+delete churn, so peak demand
    never exceeds physical memory; the pressure acts on the *re-collapse*
    phase, which is where HawkEye's self-tuning decision lives."""

    name = "hog"

    def __init__(self, nbytes, delay_us=60 * SEC):
        self.nbytes = nbytes
        self.delay_us = delay_us

    def build_phases(self):
        from repro.workloads.base import SleepOp

        return [
            Phase("wait", ops=[SleepOp(self.delay_us)]),
            Phase("grab", ops=[MmapOp("hog", self.nbytes), TouchOp("hog")]),
            Phase("hold", duration_us=6000 * SEC),
        ]


def run_config(label, policy, pressure, scale):
    kernel = make_kernel(48 * GB, policy, scale, epoch_us=2 * SEC)
    wl = RedisChurn(scale=scale.factor, insert_rate_pages_per_sec=2e6,
                    settle_us=SETTLE_S * SEC, serve_us=200 * SEC)
    run = kernel.spawn(wl)
    if pressure:
        kernel.spawn(PressureHog(scale.bytes(20 * GB)))
    while not run.finished and kernel.stats.epochs < 4000:
        kernel.run_epoch()
    served = run.served.get("serve", 0.0)
    throughput_k = served / (wl.serve_us / SEC) / 1000.0
    return {
        "label": label,
        "rss_gb_fullscale": run.proc.rss_pages() * 4096 / GB / scale.factor,
        "throughput_k": throughput_k,
    }


def test_tab7_bloat_vs_performance(benchmark, scale):
    results = run_once(
        benchmark, lambda: [run_config(l, p, pr, scale) for l, p, pr, _ in CONFIGS]
    )
    banner("Table 7: Redis memory vs throughput after 60% deletion")
    rows = [
        [r["label"], f"{r['rss_gb_fullscale']:.1f}GB", f"{r['throughput_k']:.1f}K/s", paper]
        for r, (_, _, _, paper) in zip(results, CONFIGS)
    ]
    print(format_table(["configuration", "memory (full-scale)", "throughput", "paper"], rows))

    by = {r["label"]: r for r in results}
    lean, full = by["linux-4kb"], by["linux-2mb"]
    # the trade-off's two poles: ~2x memory for ~7% more throughput
    assert full["rss_gb_fullscale"] > 1.6 * lean["rss_gb_fullscale"]
    assert full["throughput_k"] > lean["throughput_k"] * 1.04
    # Ingens-90 lands on the lean pole, Ingens-50 nearer the full pole
    assert by["ingens-90"]["rss_gb_fullscale"] < 1.3 * lean["rss_gb_fullscale"]
    # HawkEye self-tunes: full-pole without pressure ...
    hawk_free = by["hawkeye (no pressure)"]
    assert hawk_free["rss_gb_fullscale"] > 1.5 * lean["rss_gb_fullscale"]
    assert hawk_free["throughput_k"] > lean["throughput_k"] * 1.03
    # ... lean pole under pressure
    hawk_tight = by["hawkeye (pressure)"]
    assert hawk_tight["rss_gb_fullscale"] < 1.35 * lean["rss_gb_fullscale"]
    benchmark.extra_info.update({
        r["label"]: {"gb": round(r["rss_gb_fullscale"], 1),
                     "kops": round(r["throughput_k"], 1)}
        for r in results
    })
