"""Table 8 — performance implications of asynchronous page pre-zeroing.

Paper (fault-bound workloads, 36–45 GB footprints):

===================  =========  =========  =========  ==========  ==========
workload             Linux-4KB  Linux-2MB  Ingens-90  HawkEye-4K  HawkEye-2M
Redis 2MB-values     233 op/s   437        192        236         551
SparseHash (s)       50.1       17.2       51.5       46.6        10.6
HACC-IO (s)          6.5        4.5        6.6        6.5         4.2
JVM spin-up (s)      37.7       18.6       52.7       29.8        1.37
KVM spin-up (s)      40.6       9.7        41.8       30.2        0.70
===================  =========  =========  =========  ==========  ==========

Shape to reproduce: huge pages cut fault counts 512x; synchronous huge
zeroing eats most of that win; pre-zeroing (HawkEye-2MB) recovers it —
most dramatically for VM spin-up (13.8x over Linux-2MB).  Ingens's
utilisation-threshold promotion costs extra faults on these
high-spatial-locality workloads, making it the slowest column.

The 25 cells come through the sweep runner
(``repro.runner.adapters.run_tab8`` holds the experiment body), so
``repro sweep run tab8 --jobs 4`` pre-warms this test's cache.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once, sweep_results
from repro.metrics.tables import format_table
from repro.runner.adapters import TAB8_POLICIES as POLICIES

PAPER = {
    "redis-bulk": [233, 437, 192, 236, 551],
    "sparsehash": [50.1, 17.2, 51.5, 46.6, 10.6],
    "hacc-io": [6.5, 4.5, 6.6, 6.5, 4.2],
    "jvm-spinup": [37.7, 18.6, 52.7, 29.8, 1.37],
    "kvm-spinup": [40.6, 9.7, 41.8, 30.2, 0.70],
}


def test_tab8_fast_faults(benchmark, scale):
    cells = run_once(benchmark, lambda: sweep_results("tab8", scale))
    table = {
        w: [cells[(w, p)]["value"] for p in POLICIES] for w in PAPER
    }
    banner("Table 8: async pre-zeroing on fault-bound workloads "
           "(times s, redis in values/s; scaled)")
    rows = []
    for wname, values in table.items():
        row = [wname]
        for v, paper in zip(values, PAPER[wname]):
            row.append(f"{v:.3g} ({paper})")
        rows.append(row)
    print(format_table(
        ["workload (measured (paper))"] + list(POLICIES), rows
    ))

    idx = {p: i for i, p in enumerate(POLICIES)}
    for wname, values in table.items():
        if wname == "redis-bulk":
            # higher is better: HawkEye-2MB > Linux-2MB > 4KB ≈ HawkEye-4KB > Ingens
            assert values[idx["hawkeye-g"]] > values[idx["linux-2mb"]]
            assert values[idx["linux-2mb"]] > values[idx["linux-4kb"]]
            assert values[idx["ingens-90"]] <= values[idx["linux-4kb"]]
            assert values[idx["hawkeye-4kb"]] >= values[idx["linux-4kb"]]
        else:
            # lower is better
            assert values[idx["hawkeye-g"]] < values[idx["linux-2mb"]], wname
            assert values[idx["linux-2mb"]] < values[idx["linux-4kb"]], wname
            assert values[idx["hawkeye-4kb"]] <= values[idx["linux-4kb"]], wname
            assert values[idx["ingens-90"]] >= values[idx["linux-4kb"]] * 0.98, wname
    # the headline: VM spin-up >10x faster with pre-zeroed huge pages
    kvm = table["kvm-spinup"]
    ratio = kvm[idx["linux-2mb"]] / kvm[idx["hawkeye-g"]]
    print(f"\nKVM spin-up speedup Linux-2MB -> HawkEye-2MB: {ratio:.1f}x (paper: 13.8x)")
    assert ratio > 8
    benchmark.extra_info["kvm_spinup_speedup"] = round(ratio, 1)
