"""Table 9 — HawkEye-PMU vs HawkEye-G on mixed workload sets.

Paper: two sets, each pairing a TLB-sensitive with a TLB-insensitive
workload that has *identical access-coverage*:

=================  ========  =====  ============  ===========
workload           overhead  4KB s  HawkEye-PMU   HawkEye-G
random (4GB)       60 %      582    328 (1.77x)   413 (1.41x)
sequential (4GB)   <1 %      517    535           532
cg.D (16GB)        39 %      1952   1202 (1.62x)  1450 (1.35x)
mg.D (24GB)        <1 %      1363   1364          1377
=================  ========  =====  ============  ===========

HawkEye-G cannot tell the pairs apart (same coverage) and splits its
promotion budget; HawkEye-PMU reads the measured overheads and serves
only the workload that benefits — up to 36 % better.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once
from repro.experiments import fragment, make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.microbench import RandomAccess, SequentialAccess
from repro.workloads.npb import NPBWorkload

SETS = {
    "random+sequential": lambda scale: [
        RandomAccess(scale=scale.factor, work_us=233 * SEC),
        SequentialAccess(scale=scale.factor, work_us=514 * SEC),
    ],
    "cg.D+mg.D": lambda scale: [
        NPBWorkload("cg.D", scale=scale.factor, work_us=500 * SEC),
        NPBWorkload("mg.D", scale=scale.factor, work_us=560 * SEC),
    ],
}

POLICIES = ["linux-4kb", "hawkeye-pmu", "hawkeye-g"]


def run_set(make_workloads, policy, scale):
    kernel = make_kernel(96 * GB, policy, scale)
    fragment(kernel)
    runs = [kernel.spawn(wl) for wl in make_workloads(scale)]
    kernel.run(max_epochs=6000)
    assert all(r.finished for r in runs)
    return {r.proc.name: r.elapsed_us / SEC for r in runs}


def test_tab9_pmu_vs_g(benchmark, scale):
    def experiment():
        return {
            sname: {p: run_set(factory, p, scale) for p in POLICIES}
            for sname, factory in SETS.items()
        }

    table = run_once(benchmark, experiment)
    banner("Table 9: HawkEye-PMU vs HawkEye-G on mixed sensitivity sets")
    rows = []
    for sname, per_policy in table.items():
        base = per_policy["linux-4kb"]
        for wname in base:
            rows.append([
                sname, wname, round(base[wname], 1),
                f"{round(per_policy['hawkeye-pmu'][wname], 1)} "
                f"({base[wname] / per_policy['hawkeye-pmu'][wname]:.2f}x)",
                f"{round(per_policy['hawkeye-g'][wname], 1)} "
                f"({base[wname] / per_policy['hawkeye-g'][wname]:.2f}x)",
            ])
    print(format_table(
        ["set", "workload", "4KB s", "HawkEye-PMU s", "HawkEye-G s"], rows
    ))

    for sname, sensitive in (("random+sequential", "random-4g"), ("cg.D+mg.D", "cg.D")):
        base = table[sname]["linux-4kb"][sensitive]
        pmu = table[sname]["hawkeye-pmu"][sensitive]
        g = table[sname]["hawkeye-g"][sensitive]
        # both help the sensitive workload; PMU helps strictly more
        assert base / g > 1.1, sname
        assert base / pmu > base / g, sname
        # insensitive workloads are unharmed by either variant
        insensitive = [w for w in table[sname]["linux-4kb"] if w != sensitive][0]
        for variant in ("hawkeye-pmu", "hawkeye-g"):
            ratio = table[sname][variant][insensitive] / table[sname]["linux-4kb"][insensitive]
            assert ratio < 1.06, (sname, variant)
    benchmark.extra_info.update({
        s: {p: {w: round(t, 1) for w, t in per.items()} for p, per in pp.items()}
        for s, pp in table.items()
    })
