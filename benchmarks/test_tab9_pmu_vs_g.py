"""Table 9 — HawkEye-PMU vs HawkEye-G on mixed workload sets.

Paper: two sets, each pairing a TLB-sensitive with a TLB-insensitive
workload that has *identical access-coverage*:

=================  ========  =====  ============  ===========
workload           overhead  4KB s  HawkEye-PMU   HawkEye-G
random (4GB)       60 %      582    328 (1.77x)   413 (1.41x)
sequential (4GB)   <1 %      517    535           532
cg.D (16GB)        39 %      1952   1202 (1.62x)  1450 (1.35x)
mg.D (24GB)        <1 %      1363   1364          1377
=================  ========  =====  ============  ===========

HawkEye-G cannot tell the pairs apart (same coverage) and splits its
promotion budget; HawkEye-PMU reads the measured overheads and serves
only the workload that benefits — up to 36 % better.

The cells come through the sweep runner (``repro.runner.adapters.run_tab9``
holds the experiment body); cached results re-check instantly.
"""

from __future__ import annotations

from benchmarks.conftest import banner, run_once, sweep_results
from repro.metrics.tables import format_table
from repro.runner.adapters import TAB9_POLICIES as POLICIES
from repro.runner.adapters import TAB9_SETS as SETS


def test_tab9_pmu_vs_g(benchmark, scale):
    cells = run_once(benchmark, lambda: sweep_results("tab9", scale))
    table = {
        sname: {p: cells[(sname, p)]["times_s"] for p in POLICIES}
        for sname in SETS
    }
    banner("Table 9: HawkEye-PMU vs HawkEye-G on mixed sensitivity sets")
    rows = []
    for sname, per_policy in table.items():
        base = per_policy["linux-4kb"]
        for wname in base:
            rows.append([
                sname, wname, round(base[wname], 1),
                f"{round(per_policy['hawkeye-pmu'][wname], 1)} "
                f"({base[wname] / per_policy['hawkeye-pmu'][wname]:.2f}x)",
                f"{round(per_policy['hawkeye-g'][wname], 1)} "
                f"({base[wname] / per_policy['hawkeye-g'][wname]:.2f}x)",
            ])
    print(format_table(
        ["set", "workload", "4KB s", "HawkEye-PMU s", "HawkEye-G s"], rows
    ))

    for sname, sensitive in (("random+sequential", "random-4g"), ("cg.D+mg.D", "cg.D")):
        base = table[sname]["linux-4kb"][sensitive]
        pmu = table[sname]["hawkeye-pmu"][sensitive]
        g = table[sname]["hawkeye-g"][sensitive]
        # both help the sensitive workload; PMU helps strictly more
        assert base / g > 1.1, sname
        assert base / pmu > base / g, sname
        # insensitive workloads are unharmed by either variant
        insensitive = [w for w in table[sname]["linux-4kb"] if w != sensitive][0]
        for variant in ("hawkeye-pmu", "hawkeye-g"):
            ratio = table[sname][variant][insensitive] / table[sname]["linux-4kb"][insensitive]
            assert ratio < 1.06, (sname, variant)
    benchmark.extra_info.update({
        s: {p: {w: round(t, 1) for w, t in per.items()} for p, per in pp.items()}
        for s, pp in table.items()
    })
