#!/usr/bin/env python3
"""Writing your own huge-page policy against the public interface.

The policy interface (`repro.policies.base.HugePagePolicy`) is the same
seam the paper's systems plug into.  This example implements
**SecondTouch**, a deliberately simple policy:

* faults always map base pages (like Ingens/FreeBSD);
* a region becomes promotion-eligible only once access-bit sampling has
  seen it accessed in two *different* sampling periods (a crude
  recency+frequency filter);
* eligible regions are promoted oldest-first with a rate limit.

It then races SecondTouch against Linux and HawkEye on a fragmented
machine — not because SecondTouch is good (it is not), but to show that
a ~40-line policy is a first-class citizen: same experiments, same
metrics, same benchmarks.

Run:  python examples/custom_policy.py
"""

from repro.experiments import POLICIES, Scale, fragment, make_kernel
from repro.kernel.kthread import RateLimiter
from repro.metrics.tables import format_table
from repro.policies.base import HugePagePolicy
from repro.units import GB, SEC
from repro.workloads.xsbench import XSBench

SCALE = Scale(1 / 128)


class SecondTouchPolicy(HugePagePolicy):
    """Promote a region after it was seen accessed in two samples."""

    name = "second-touch"

    def __init__(self, kernel, promote_per_sec=10.0):
        super().__init__(kernel)
        self._limiter = RateLimiter(promote_per_sec, kernel.config.epoch_us)
        self._touches: dict[tuple[int, int], int] = {}
        self._eligible: list[tuple[int, int]] = []  # FIFO of (pid, hvpn)

    def fault_size(self, proc, vma, vpn):
        return "base"

    def on_sample(self, proc):
        for hvpn, region in proc.regions.items():
            if region.is_huge or region.last_coverage == 0:
                continue
            key = (proc.pid, hvpn)
            count = self._touches.get(key, 0) + 1
            self._touches[key] = count
            if count == 2:
                self._eligible.append(key)

    def on_epoch(self):
        self._limiter.refill()
        procs = {p.pid: p for p in self.kernel.processes}
        while self._eligible and self._limiter.take():
            pid, hvpn = self._eligible.pop(0)
            proc = procs.get(pid)
            if proc is None or self.kernel.promote_region(proc, hvpn) is None:
                continue


def main() -> None:
    # Register it alongside the built-ins so every helper can use it.
    POLICIES["second-touch"] = lambda scale: (
        lambda kernel: SecondTouchPolicy(kernel, promote_per_sec=scale.rate(10.0))
    )

    rows = []
    for policy in ("linux-2mb", "second-touch", "hawkeye-g"):
        kernel = make_kernel(48 * GB, policy, SCALE)
        fragment(kernel)
        run = kernel.spawn(XSBench(scale=SCALE.factor, work_us=700 * SEC))
        kernel.run(max_epochs=3000)
        rows.append([
            policy, round(run.elapsed_us / SEC, 1),
            run.proc.stats.promotions,
            f"{run.proc.mmu_overhead * 100:.1f}%",
        ])
    print(format_table(
        ["policy", "time s", "promotions", "final MMU overhead"],
        rows,
        title="XSBench, fragmented start (custom policy vs built-ins)",
    ))
    print(
        "\nSecondTouch waits two sampling periods (60 s) before promoting\n"
        "anything, and promotes in discovery order rather than hotness\n"
        "order — both visible in its time relative to HawkEye."
    )


if __name__ == "__main__":
    main()
