#!/usr/bin/env python3
"""Huge-page fairness across processes (paper Figures 7 and 8).

Two demonstrations:

1. *Identical tenants* — three Graph500 instances start together on a
   fragmented machine.  Linux's khugepaged serves them strictly one at a
   time (FCFS); HawkEye interleaves by access coverage.

2. *Heterogeneous tenants* — a TLB-sensitive workload shares the machine
   with a big, lightly-loaded Redis whose pages all look "hot" to
   coverage-based accounting.  Policies that treat contiguity as the
   resource feed Redis; HawkEye-PMU reads measured MMU overheads and
   feeds the workload that actually stalls on the TLB.

Run:  python examples/multi_tenant_fairness.py
"""

from repro.experiments import Scale, fragment, make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.graph import Graph500
from repro.workloads.redis import RedisLight

SCALE = Scale(1 / 128)


def identical_tenants() -> None:
    print("--- three identical Graph500 instances, fragmented start ---")
    rows = []
    for policy in ("linux-2mb", "ingens-90", "hawkeye-g"):
        kernel = make_kernel(96 * GB, policy, SCALE)
        fragment(kernel)
        runs = [
            kernel.spawn(Graph500(scale=SCALE.factor, work_us=700 * SEC,
                                  name=f"graph500-{i + 1}"))
            for i in range(3)
        ]
        kernel.run(max_epochs=3000)
        rows.append([
            policy,
            " / ".join(f"{r.elapsed_us / SEC:.0f}" for r in runs),
            " / ".join(str(r.proc.stats.promotions) for r in runs),
        ])
    print(format_table(
        ["policy", "completion times s", "promotions per instance"], rows
    ))
    print("Linux finishes one tenant early and starves the rest;\n"
          "HawkEye spreads promotions and completion times evenly.\n")


def heterogeneous_tenants() -> None:
    print("--- TLB-sensitive tenant next to a lightly-loaded Redis ---")
    rows = []
    for policy in ("linux-2mb", "ingens-90", "hawkeye-pmu"):
        kernel = make_kernel(96 * GB, policy, SCALE)
        fragment(kernel)
        kernel.spawn(RedisLight(scale=SCALE.factor, serve_us=3000 * SEC,
                                insert_rate_pages_per_sec=2e6))
        sens = kernel.spawn(Graph500(scale=SCALE.factor, work_us=500 * SEC,
                                     name="sensitive"))
        while not sens.finished and kernel.stats.epochs < 4000:
            kernel.run_epoch()
        redis_promos = kernel.stats.promotions_by_process.get("redis-light", 0)
        sens_promos = kernel.stats.promotions_by_process.get("sensitive", 0)
        rows.append([
            policy, f"{sens.elapsed_us / SEC:.0f}",
            sens_promos, redis_promos,
            f"{sens.proc.mmu_overhead * 100:.1f}%",
        ])
    print(format_table(
        ["policy", "sensitive time s", "promos to sensitive",
         "promos to redis", "sensitive final ovh"],
        rows,
    ))
    print("HawkEye-PMU starves the Redis of pointless huge pages and\n"
          "eliminates the sensitive tenant's MMU overhead instead.")


def main() -> None:
    identical_tenants()
    heterogeneous_tenants()


if __name__ == "__main__":
    main()
