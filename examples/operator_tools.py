#!/usr/bin/env python3
"""Operator tooling: tracing, /proc views, limits and dynamic watermarks.

Beyond reproducing the paper, the library ships the tooling an operator
of such a kernel would want:

* an **event log** recording every promotion/demotion decision with
  timestamps (the raw material of the paper's Figures 6/7);
* **/proc-style snapshots** (meminfo, vmstat, per-process smaps);
* the paper's §3.5 extensions: **huge-page limits** (cgroup-style caps
  that stop one tenant monopolising contiguity) and **dynamic
  watermarks** that adapt bloat recovery to allocation volatility.

Run:  python examples/operator_tools.py
"""

from repro.core.hawkeye import HawkEyePolicy
from repro.experiments import Scale, fragment
from repro.kernel import procfs
from repro.kernel.kernel import Kernel, KernelConfig
from repro.metrics.events import EventKind, EventLog
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.graph import Graph500
from repro.workloads.redis import RedisLight

SCALE = Scale(1 / 128)


def make_kernel(limits=None):
    config = KernelConfig(
        mem_bytes=SCALE.bytes(96 * GB),
        kcompactd_pages_per_sec=SCALE.rate(20_000),
    )
    return Kernel(
        config,
        lambda k: HawkEyePolicy(
            k,
            variant="g",
            promote_per_sec=SCALE.rate(10.0),
            prezero_pages_per_sec=SCALE.rate(100_000),
            huge_page_limits=limits,
            dynamic_watermarks=True,
        ),
    )


def main() -> None:
    # Cap the Redis tenant at 8 huge pages; the batch job is unlimited.
    kernel = make_kernel(limits={"redis-light": 8})
    log = EventLog().attach(kernel)
    fragment(kernel)

    kernel.spawn(RedisLight(scale=SCALE.factor, serve_us=1500 * SEC,
                            insert_rate_pages_per_sec=2e6))
    batch = kernel.spawn(Graph500(scale=SCALE.factor, work_us=600 * SEC))
    while not batch.finished and kernel.stats.epochs < 3000:
        kernel.run_epoch()

    print("# Promotions per tenant (event log)")
    print(format_table(
        ["tenant", "promotions"],
        [[name, count] for name, count in sorted(log.promotions_by_process().items())],
    ))
    redis_proc = kernel.processes[0]
    print(f"\nRedis holds {len(redis_proc.page_table.huge)} huge pages "
          f"(cap: 8); cap refusals: {kernel.policy.limits.refusals}")

    print("\n# Promotion timeline (events per 60 s bucket)")
    for bucket, count in sorted(log.timeline(EventKind.PROMOTION, 60.0).items()):
        print(f"  {bucket:6.0f}s {'#' * count} ({count})")

    print("\n# meminfo")
    print(procfs.format_meminfo(kernel))

    print("\n# smaps of the batch tenant")
    rows = procfs.smaps(kernel, batch.proc)
    print(format_table(
        ["vma", "size kB", "rss kB", "anon huge kB", "hint"],
        [[r["name"], r["size_kb"], r["rss_kb"], r["anon_huge_kb"], r["hint"]]
         for r in rows],
    ))

    wm = kernel.policy.bloat.watermarks
    print(f"\ndynamic watermarks settled at high={wm.high:.2f} low={wm.low:.2f} "
          f"(static defaults: 0.85/0.70)")


if __name__ == "__main__":
    main()
