#!/usr/bin/env python3
"""Quickstart: simulate huge-page policies on a TLB-hungry workload.

Builds a simulated 48 GB machine (scaled 1/64), fragments its memory the
way the paper's experiments do, runs the same XSBench-like workload under
five policies, and prints what each policy achieved.

Run:  python examples/quickstart.py
"""

from repro.experiments import Scale, fragment, make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.xsbench import XSBench

SCALE = Scale(1 / 64)
POLICIES = ["linux-4kb", "linux-2mb", "ingens-90", "hawkeye-pmu", "hawkeye-g"]


def run(policy: str) -> dict:
    # a kernel = physical memory + page tables + the chosen policy
    kernel = make_kernel(48 * GB, policy, SCALE)

    # the paper's setup: fragment physical memory with file-cache pages
    # before the workload starts, so huge pages are initially unavailable
    fragment(kernel)

    # XSBench: ~10 GB footprint, hot data in the *high* virtual addresses
    # (the access pattern that defeats address-order promotion scans)
    run = kernel.spawn(XSBench(scale=SCALE.factor, work_us=800 * SEC))
    kernel.run(max_epochs=3000)

    proc = run.proc
    return {
        "policy": policy,
        "time_s": run.elapsed_us / SEC,
        "faults": proc.stats.faults,
        "promotions": proc.stats.promotions,
        "final MMU overhead": f"{proc.mmu_overhead * 100:.1f}%",
        "PMU overhead (lifetime)": f"{kernel.pmu[proc.pid].read_overhead() * 100:.1f}%",
    }


def main() -> None:
    results = [run(policy) for policy in POLICIES]
    baseline = results[0]["time_s"]
    rows = [
        [r["policy"], round(r["time_s"], 1), f"{baseline / r['time_s']:.3f}x",
         r["faults"], r["promotions"], r["final MMU overhead"],
         r["PMU overhead (lifetime)"]]
        for r in results
    ]
    print(format_table(
        ["policy", "time s", "speedup", "faults", "promotions",
         "final MMU ovh", "lifetime ovh"],
        rows,
        title="XSBench on a fragmented 48 GB machine (scaled 1/64)",
    ))
    print(
        "\nHawkEye promotes the hot (high-VA) regions first, so it recovers\n"
        "from fragmentation-induced MMU overheads faster than the kernels\n"
        "that scan virtual addresses in order."
    )


if __name__ == "__main__":
    main()
