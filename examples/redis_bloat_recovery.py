#!/usr/bin/env python3
"""Memory bloat and recovery: the paper's Figure 1 story, interactively.

A Redis-like server inserts a 45 GB dataset, deletes 80 % of its keys,
then re-inserts large values until the dataset reaches 45 GB again.
Under Linux and Ingens, khugepaged-style collapse re-maps the freed pages
as zero-filled bloat and the machine runs out of memory; HawkEye's
watermark-triggered bloat recovery de-duplicates the zero pages and the
workload completes.

Run:  python examples/redis_bloat_recovery.py
"""

from repro.errors import OutOfMemoryError
from repro.experiments import Scale, make_kernel, useful_bytes
from repro.metrics.series import SeriesRecorder
from repro.units import GB, MB, SEC
from repro.workloads.redis import RedisFig1

SCALE = Scale(1 / 128)


def run(policy: str) -> None:
    kernel = make_kernel(48 * GB, policy, SCALE)
    recorder = SeriesRecorder(kernel, every_epochs=30)
    recorder.probe("rss", lambda k: sum(p.rss_pages() for p in k.processes) * 4096 / MB)
    workload = RedisFig1(scale=SCALE.factor)
    run = kernel.spawn(workload)

    outcome = "completed"
    try:
        kernel.run(max_epochs=4000)
    except OutOfMemoryError as exc:
        outcome = f"OUT OF MEMORY ({exc})"

    proc = run.proc
    rss = proc.rss_pages() * 4096 / MB
    useful = useful_bytes(kernel, proc) / MB
    print(f"\n=== {policy} ===")
    print(f"outcome: {outcome}")
    print(f"final RSS {rss:.0f} MB, useful data {useful:.0f} MB, "
          f"bloat {rss - useful:.0f} MB")
    print(f"bloat pages recovered by the kernel: "
          f"{kernel.stats.bloat_pages_recovered}")
    series = recorder["rss"]
    peak = max(series.values) if len(series) else 1.0
    print("RSS timeline (each bar = 30 s):")
    for t, v in zip(series.times[::4], series.values[::4]):
        bar = "#" * int(40 * v / peak)
        print(f"  {t:6.0f}s {v:7.0f} MB |{bar}")


def main() -> None:
    for policy in ("linux-2mb", "ingens-90", "hawkeye-g"):
        run(policy)
    print(
        "\nLinux and Ingens re-collapse the sparsely-used old heap into\n"
        "zero-filled huge pages until memory runs out; HawkEye detects the\n"
        "zero-filled bloat (scanning ~10 bytes per in-use page), demotes the\n"
        "offending huge pages and maps their zero pages copy-on-write onto\n"
        "the canonical zero frame."
    )


if __name__ == "__main__":
    main()
