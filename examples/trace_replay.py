#!/usr/bin/env python3
"""Replaying an application trace instead of hand-modelling it.

A trace is a plain text file of memory behaviour — allocations, touches,
madvise hints, frees, compute and serving phases.  This example writes a
trace describing a cache-like application (load, madvise, serve, churn),
replays it under three policies, and prints what each policy did with it.

Run:  python examples/trace_replay.py
"""

import tempfile

from repro.experiments import Scale, make_kernel
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.trace import TraceWorkload

SCALE = Scale(1 / 128)

TRACE = """
# a cache-like application, as a trace
mmap    heap 24GB
mmap    scratch 4GB
advise  scratch nohugepage          # metadata: keep it on base pages
touch   heap 0 4194304 rate=2000000 # load 16 GB of values, client-paced
touch   scratch
compute 120s region=heap coverage=400 access_rate=5

free    heap sparse=0.5             # churn: half the keys expire
serve   300s rate=80000 cost=9      # keep serving while fragmented
compute 60s region=heap coverage=200 access_rate=5
"""


def main() -> None:
    with tempfile.NamedTemporaryFile("w", suffix=".trace", delete=False) as fh:
        fh.write(TRACE)
        path = fh.name

    rows = []
    for policy in ("linux-4kb", "linux-2mb", "hawkeye-g"):
        kernel = make_kernel(48 * GB, policy, SCALE)
        workload = TraceWorkload.from_file(path, name="cache-app", scale=SCALE.factor)
        run = kernel.spawn(workload)
        kernel.run(max_epochs=3000)
        proc = run.proc
        rows.append([
            policy,
            round(run.elapsed_us / SEC, 1),
            round(sum(run.served.values()) / 1000.0, 1),
            proc.stats.faults,
            proc.stats.huge_faults,
            proc.stats.promotions,
            proc.stats.demotions,
        ])
    print(format_table(
        ["policy", "time s", "requests served (K)", "faults",
         "huge faults", "promotions", "demotions"],
        rows,
        title="Replaying the same trace under three policies",
    ))
    print(
        "\nThe scratch VMA's MADV_NOHUGEPAGE hint kept it on base pages\n"
        "under every policy; only the heap was eligible for huge pages."
    )


if __name__ == "__main__":
    main()
