#!/usr/bin/env python3
"""Virtualised huge pages and transparent memory return (Figures 9/11).

Part 1 — nested address translation: the same cg.D workload runs inside
a VM with HawkEye at the guest, the host, both, or neither.  Nested page
walks amplify MMU overheads, so promotion policy matters *more* under
virtualisation.

Part 2 — transparent ballooning: a guest allocates and frees a large
buffer.  With HawkEye in the guest, the freed memory is pre-zeroed and
the host's KSM merges it away — the host gets its memory back without any
para-virtual balloon driver.

Run:  python examples/virtualized_overcommit.py
"""

from repro.experiments import Scale, fragment, make_hypervisor, make_vm
from repro.metrics.tables import format_table
from repro.units import GB, MB, SEC
from repro.workloads.base import ContentSpec, FreeOp, MmapOp, Phase, TouchOp, Workload
from repro.workloads.npb import NPBWorkload

SCALE = Scale(1 / 128)


def nested_translation() -> None:
    print("--- cg.D inside a VM: HawkEye at guest/host/both ---")
    rows = []
    for name, host_policy, guest_policy in (
        ("linux host+guest", "linux-2mb", "linux-2mb"),
        ("hawkeye host", "hawkeye-g", "linux-2mb"),
        ("hawkeye guest", "linux-2mb", "hawkeye-g"),
        ("hawkeye both", "hawkeye-g", "hawkeye-g"),
    ):
        hyp = make_hypervisor(96 * GB, host_policy, SCALE)
        fragment(hyp.host)
        vm = make_vm(hyp, "vm1", 48 * GB, guest_policy, SCALE)
        fragment(vm.guest)
        run = vm.spawn(NPBWorkload("cg.D", scale=SCALE.factor, work_us=300 * SEC))
        hyp.run(max_epochs=4000)
        rows.append([
            name, f"{run.elapsed_us / SEC:.0f}",
            f"{vm._host_huge_fraction * 100:.0f}%",
            len(run.proc.page_table.huge),
        ])
    print(format_table(
        ["configuration", "cg.D time s", "host huge backing", "guest huge pages"],
        rows,
    ))
    print()


class ChurnGuest(Workload):
    name = "churn"

    def __init__(self, nbytes):
        self.nbytes = nbytes

    def build_phases(self):
        return [
            Phase("alloc+free", ops=[
                MmapOp("buf", self.nbytes),
                TouchOp("buf", content=ContentSpec(first_nonzero=0)),
                FreeOp("buf"),
            ]),
            Phase("idle", duration_us=300 * SEC),
        ]


def transparent_ballooning() -> None:
    print("--- freed guest memory returning to the host via KSM ---")
    rows = []
    for guest_policy in ("linux-2mb", "hawkeye-g"):
        hyp = make_hypervisor(96 * GB, "linux-2mb", SCALE)
        vm = make_vm(hyp, "vm1", 24 * GB, guest_policy, SCALE)
        ksm = hyp.enable_ksm(pages_per_sec=SCALE.rate(1e6))
        if guest_policy.startswith("hawkeye"):
            vm.guest.policy.prezero._limiter.per_second = SCALE.rate(1e6)
        vm.spawn(ChurnGuest(SCALE.bytes(12 * GB)))
        hyp.run(max_epochs=400)
        rows.append([
            guest_policy,
            f"{vm.host_proc.rss_pages() * 4096 / MB:.0f} MB",
            ksm.merged_pages,
        ])
    print(format_table(
        ["guest policy", "host memory still held", "pages KSM merged"], rows
    ))
    print("Without guest pre-zeroing, freed guest pages keep stale data and\n"
          "KSM cannot merge them: the host never gets the memory back.")


def main() -> None:
    nested_translation()
    transparent_ballooning()


if __name__ == "__main__":
    main()
