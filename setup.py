"""Legacy setup shim: enables `pip install -e .` without a wheel package.

All metadata lives in pyproject.toml (read by setuptools >= 61).
"""

from setuptools import setup

setup()
