"""repro — a policy-level reproduction of HawkEye (ASPLOS 2019).

HawkEye: Efficient Fine-grained OS Support for Huge Pages
(Panwar, Bansal, Gopinath).

The package simulates an operating system's huge-page management stack —
buddy allocator, page tables, page-fault path, background promotion
threads — over an analytic TLB/page-walk hardware model, and implements
the paper's policies:

>>> from repro import Kernel, KernelConfig, HawkEyePolicy
>>> from repro.units import GB
>>> kernel = Kernel(KernelConfig(mem_bytes=1 * GB),
...                 lambda k: HawkEyePolicy(k, variant="g"))

See ``examples/quickstart.py`` for an end-to-end tour and DESIGN.md for
the full system inventory.
"""

from repro.core.hawkeye import HawkEyeConfig, HawkEyePolicy
from repro.errors import (
    AllocationError,
    ConfigError,
    InvalidAddressError,
    OutOfMemoryError,
    ReproError,
)
from repro.kernel.costs import CostModel
from repro.kernel.kernel import Kernel, KernelConfig
from repro.patterns import Pattern
from repro.policies.freebsd import FreeBSDPolicy
from repro.policies.ingens import IngensPolicy
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy
from repro.tlb.tlb import TLBConfig

__version__ = "1.0.0"

__all__ = [
    "AllocationError",
    "ConfigError",
    "CostModel",
    "FreeBSDPolicy",
    "HawkEyeConfig",
    "HawkEyePolicy",
    "IngensPolicy",
    "InvalidAddressError",
    "Kernel",
    "KernelConfig",
    "Linux4KPolicy",
    "LinuxTHPPolicy",
    "OutOfMemoryError",
    "Pattern",
    "ReproError",
    "TLBConfig",
    "__version__",
]
