"""Decision provenance and memory forensics: who allocated, who decided.

Two coordinated ledgers behind one :class:`AuditLog`, the analogue of
Linux's ``page_owner`` + a policy decision audit trail:

1. The **frame provenance ledger** (:class:`FrameLedger`) — numpy-columned
   per-frame records: allocating pid, allocation order/epoch/site, plus a
   bounded per-frame lifecycle ring (promoted, demoted, migrated
   node→node, compacted, swapped, zeroed, KSM-merged, freed).  It is fed
   from the frame table's own mutation seams (``mark_allocated`` /
   ``mark_free`` / ``zero_fill``) and from the lifecycle sites in the
   kernel, compaction, swap, KSM and NUMA-balancing code, so provenance
   travels with page content across migration and compaction — exactly
   the way ``__folio_copy_owner`` moves ``page_owner`` info.

2. The **policy decision audit** — every accept/reject at a decision
   point (promotion scoring, collapse target-node choice, bloat-recovery
   victim selection, knumad migration candidacy, rate-limiter budget
   denials) lands as a :class:`DecisionRecord` carrying the inputs the
   policy actually read (coverage EMA, thresholds, budget remaining, …)
   and the outcome + reason.  Records feed a per-point **funnel**
   (candidates → eligible → budget-passed → acted) and a per-reason
   rejection breakdown, and — when a tracer is attached — each decision
   also emits a zero-span ``decision.*`` tracepoint, so decisions show up
   as instants in the Perfetto export and in the attribution table.

Zero-cost-when-disabled contract (same as ``repro.trace``): every site is
guarded by the module-level :data:`enabled` flag first, so a kernel with
no audit attached pays one bool test per potential record, and ``repro
bench epoch`` holds the attached-but-silent state under the same <5 %
ceiling as tracing.

Usage::

    from repro import audit

    log = audit.attach(kernel)
    ... run the workload ...
    print(audit.format_funnel(log.funnel_summary()))
    for rec in log.decisions_for(pid=proc.pid, hvpn=hvpn):
        print(rec)
    audit.detach(kernel)
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro import trace
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

#: Global master switch, managed by :func:`attach` / :func:`detach`.
#: Recording sites test this module attribute before anything else, so a
#: kernel with no audit log pays a single bool check per potential record.
enabled: bool = False

#: Number of kernels with an audit log currently attached.
_attached: int = 0

#: per-frame lifecycle ring slots (newest events win once full).
RING_SLOTS = 8

#: most recent DecisionRecords kept for `repro why` (older ones age out;
#: the funnel and rejection counters stay exact regardless).
DECISION_CAPACITY = 4096

# ---------------------------------------------------------------------- #
# frame lifecycle event codes (int8 in the ring)                          #
# ---------------------------------------------------------------------- #

EV_NONE = 0
EV_PROMOTED = 1
EV_DEMOTED = 2
EV_MIGRATED = 3       # arg = destination node
EV_COMPACTED = 4      # arg = source frame the content came from
EV_SWAPPED_OUT = 5
EV_SWAPPED_IN = 6
EV_ZEROED = 7
EV_KSM_MERGED = 8     # arg = canonical frame the mapping now points at
EV_FREED = 9

EVENT_NAMES = {
    EV_NONE: "-",
    EV_PROMOTED: "promoted",
    EV_DEMOTED: "demoted",
    EV_MIGRATED: "migrated",
    EV_COMPACTED: "compacted",
    EV_SWAPPED_OUT: "swapped_out",
    EV_SWAPPED_IN: "swapped_in",
    EV_ZEROED: "zeroed",
    EV_KSM_MERGED: "ksm_merged",
    EV_FREED: "freed",
}

# ---------------------------------------------------------------------- #
# allocation-site codes (int8 column)                                     #
# ---------------------------------------------------------------------- #

SITE_UNKNOWN = 0
SITE_FAULT = 1        # demand fault / COW / swap-in allocation
SITE_PROMOTE = 2      # copy-based promotion (collapse) target block
SITE_COMPACT = 3      # compaction migration target
SITE_NUMA = 4         # knumad migration target
SITE_KERNEL = 5       # kernel-owned (zero page, replicas, …)
SITE_PREEXISTING = 6  # allocated before the audit log attached

SITE_NAMES = {
    SITE_UNKNOWN: "?",
    SITE_FAULT: "fault",
    SITE_PROMOTE: "promote",
    SITE_COMPACT: "compact",
    SITE_NUMA: "numa",
    SITE_KERNEL: "kernel",
    SITE_PREEXISTING: "preexisting",
}

#: funnel stage names, in order; a decision that reached stage ``k``
#: increments stages ``0..k-1`` (every decision is at least a candidate).
FUNNEL_STAGES = ("candidates", "eligible", "budget_passed", "acted")

#: decision point -> tracepoint kind for the zero-span instant.
_DECISION_KINDS = {
    "promote": trace.TraceKind.DECISION_PROMOTE,
    "collapse_node": trace.TraceKind.DECISION_COLLAPSE,
    "bloat": trace.TraceKind.DECISION_BLOAT,
    "knumad": trace.TraceKind.DECISION_KNUMAD,
    "fault_size": trace.TraceKind.DECISION_FAULT,
}

#: kernel-owned allocations carry this owner pid (kernel.KERNEL_OWNER;
#: duplicated here to keep the import graph acyclic).
_KERNEL_OWNER = -3


class FrameLedger:
    """page_owner-style per-frame provenance, numpy-columned.

    One row per physical frame: the allocation columns are overwritten on
    every (re)allocation; :attr:`live` mirrors the frame table's
    ``allocated`` bitmap while the ledger is enabled; the lifecycle ring
    keeps the last :data:`RING_SLOTS` events per frame (older events are
    overwritten, ``ev_len`` keeps the true total).
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        n = kernel.frames.num_frames
        #: per-ledger gate, kept in lockstep with ``AuditLog.enabled``.
        self.enabled = True
        self.live = np.zeros(n, dtype=bool)
        self.alloc_pid = np.full(n, -1, dtype=np.int32)
        self.alloc_order = np.full(n, -1, dtype=np.int8)
        self.alloc_epoch = np.full(n, -1, dtype=np.int32)
        self.alloc_site = np.zeros(n, dtype=np.int8)
        self.ev_code = np.zeros((n, RING_SLOTS), dtype=np.int8)
        self.ev_epoch = np.zeros((n, RING_SLOTS), dtype=np.int32)
        self.ev_arg = np.zeros((n, RING_SLOTS), dtype=np.int32)
        self.ev_len = np.zeros(n, dtype=np.int32)
        #: total ring-event recordings (cheap health counter).
        self.events_recorded = 0

    # -- frame-table hooks --------------------------------------------- #

    def on_alloc(self, start: int, count: int, owner: int) -> None:
        """A frame range was marked allocated: open fresh records."""
        sl = slice(start, start + count)
        self.live[sl] = True
        self.alloc_pid[sl] = owner
        self.alloc_order[sl] = max(count.bit_length() - 1, 0)
        self.alloc_epoch[sl] = self.kernel.stats.epochs
        self.alloc_site[sl] = (
            SITE_KERNEL if owner == _KERNEL_OWNER else SITE_FAULT)
        self.ev_len[sl] = 0

    def on_free(self, start: int, count: int) -> None:
        """A frame range was marked free: close records, keep forensics."""
        self.live[start:start + count] = False
        self.record(start, count, EV_FREED)

    def on_zero(self, start: int, count: int) -> None:
        """A frame range had its content zero-filled."""
        self.record(start, count, EV_ZEROED)

    # -- lifecycle recording ------------------------------------------- #

    def record(self, start: int, count: int, ev: int, arg: int = 0) -> None:
        """Append one lifecycle event to each frame in the range."""
        epoch = self.kernel.stats.epochs
        if count == 1:
            pos = self.ev_len[start] % RING_SLOTS
            self.ev_code[start, pos] = ev
            self.ev_epoch[start, pos] = epoch
            self.ev_arg[start, pos] = arg
            self.ev_len[start] += 1
        else:
            idx = np.arange(start, start + count)
            pos = self.ev_len[idx] % RING_SLOTS
            self.ev_code[idx, pos] = ev
            self.ev_epoch[idx, pos] = epoch
            self.ev_arg[idx, pos] = arg
            self.ev_len[idx] += 1
        self.events_recorded += count

    def set_site(self, start: int, count: int, site: int) -> None:
        """Re-attribute an allocation to a non-fault site (post-alloc)."""
        self.alloc_site[start:start + count] = site

    def copy_provenance(self, old: int, new: int, count: int = 1) -> None:
        """Provenance travels with page content (migration/compaction)."""
        so, sn = slice(old, old + count), slice(new, new + count)
        self.alloc_pid[sn] = self.alloc_pid[so]
        self.alloc_order[sn] = self.alloc_order[so]
        self.alloc_epoch[sn] = self.alloc_epoch[so]
        self.alloc_site[sn] = self.alloc_site[so]
        self.ev_code[sn] = self.ev_code[so]
        self.ev_epoch[sn] = self.ev_epoch[so]
        self.ev_arg[sn] = self.ev_arg[so]
        self.ev_len[sn] = self.ev_len[so]

    # -- queries -------------------------------------------------------- #

    def frame_events(self, frame: int) -> list[tuple[str, int, int]]:
        """The frame's buffered ring as ``(name, epoch, arg)``, oldest first."""
        total = int(self.ev_len[frame])
        kept = min(total, RING_SLOTS)
        out = []
        for i in range(total - kept, total):
            pos = i % RING_SLOTS
            out.append((EVENT_NAMES[int(self.ev_code[frame, pos])],
                        int(self.ev_epoch[frame, pos]),
                        int(self.ev_arg[frame, pos])))
        return out

    def describe(self, frame: int) -> dict:
        """One frame's provenance record as a plain dict."""
        return {
            "frame": frame,
            "live": bool(self.live[frame]),
            "pid": int(self.alloc_pid[frame]),
            "order": int(self.alloc_order[frame]),
            "epoch": int(self.alloc_epoch[frame]),
            "site": SITE_NAMES.get(int(self.alloc_site[frame]), "?"),
            "events": self.frame_events(frame),
        }


@dataclass
class DecisionRecord:
    """One policy decision with the numbers the policy actually compared.

    ``hvpn`` is -1 for decisions not scoped to a region (e.g. a budget
    denial that stopped a whole scan).  ``stage`` is the deepest funnel
    stage the candidate reached (see :data:`FUNNEL_STAGES`).
    """

    t_us: float
    epoch: int
    point: str
    process: str
    pid: int
    hvpn: int
    outcome: str            # "accept" | "reject"
    reason: str
    stage: int              # 1..len(FUNNEL_STAGES)
    inputs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form (stage rendered by name, times in seconds)."""
        return {
            "t_s": self.t_us / SEC,
            "epoch": self.epoch,
            "point": self.point,
            "process": self.process,
            "pid": self.pid,
            "hvpn": self.hvpn,
            "outcome": self.outcome,
            "reason": self.reason,
            "stage": FUNNEL_STAGES[self.stage - 1],
            "inputs": dict(self.inputs),
        }

    def __str__(self) -> str:  # pragma: no cover - CLI rendering aid
        where = f" hvpn={self.hvpn}" if self.hvpn >= 0 else ""
        nums = ", ".join(f"{k}={v:g}" if isinstance(v, (int, float))
                         else f"{k}={v}" for k, v in self.inputs.items())
        return (f"[{self.t_us / SEC:9.3f}s] {self.point:<13} "
                f"{self.process:<12}{where} {self.outcome}:{self.reason}"
                + (f" ({nums})" if nums else ""))


class AuditLog:
    """Per-kernel audit sink: frame ledger + decision records + funnel."""

    def __init__(self, kernel: "Kernel",
                 capacity: int = DECISION_CAPACITY) -> None:
        self.kernel = kernel
        self.capacity = capacity
        self.ledger = FrameLedger(kernel)
        #: most recent decisions (oldest age out at ``capacity``).
        self.decisions: collections.deque[DecisionRecord] = \
            collections.deque(maxlen=capacity)
        #: total decisions ever recorded (exact, unlike the deque).
        self.recorded = 0
        #: point -> [candidates, eligible, budget_passed, acted] (exact).
        self.funnel: dict[str, list[int]] = {}
        #: point -> {reason: count} for rejects (exact).
        self.rejections: dict[str, dict[str, int]] = {}
        self._enabled = True

    # -- gating --------------------------------------------------------- #

    @property
    def enabled(self) -> bool:
        """Per-log gate; False pauses both ledgers while staying attached."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = value
        self.ledger.enabled = value

    @property
    def dropped(self) -> int:
        """Decisions no longer replayable by ``repro why`` (aged out)."""
        return max(0, self.recorded - len(self.decisions))

    # -- decision recording --------------------------------------------- #

    def decide(self, point: str, process: str, pid: int, hvpn: int,
               outcome: str, reason: str, stage: int,
               inputs: dict | None = None) -> None:
        """Record one accept/reject at a decision point.

        ``stage`` is the deepest funnel stage reached (1 = candidate only,
        4 = acted); the funnel counters for every stage up to it are
        incremented, so ``candidates >= eligible >= budget_passed >=
        acted`` holds per point by construction.
        """
        f = self.funnel.get(point)
        if f is None:
            f = self.funnel[point] = [0, 0, 0, 0]
        for i in range(stage):
            f[i] += 1
        if outcome != "accept":
            rej = self.rejections.setdefault(point, {})
            rej[reason] = rej.get(reason, 0) + 1
        kernel = self.kernel
        self.decisions.append(DecisionRecord(
            t_us=kernel.now_us, epoch=kernel.stats.epochs, point=point,
            process=process, pid=pid, hvpn=hvpn, outcome=outcome,
            reason=reason, stage=stage, inputs=inputs or {}))
        self.recorded += 1
        # Decisions double as zero-span tracepoints: instants in the
        # Perfetto export, a `decision` row in the attribution table.
        if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            kind = _DECISION_KINDS.get(point)
            if kind is not None:
                tp.emit(kind, process, 0.0,
                        hvpn if hvpn >= 0 else None,
                        f"{outcome}:{reason}")

    # -- queries -------------------------------------------------------- #

    def decisions_for(self, pid: int | None = None,
                      hvpn: int | None = None,
                      point: str | None = None,
                      limit: int | None = None) -> list[DecisionRecord]:
        """Most recent matching decisions, newest first."""
        out = []
        for rec in reversed(self.decisions):
            if pid is not None and rec.pid != pid:
                continue
            if hvpn is not None and rec.hvpn != hvpn:
                continue
            if point is not None and rec.point != point:
                continue
            out.append(rec)
            if limit is not None and len(out) >= limit:
                break
        return out

    def funnel_summary(self) -> dict[str, dict[str, int]]:
        """point -> {stage: count}, points sorted by name."""
        return {
            point: dict(zip(FUNNEL_STAGES, counts))
            for point, counts in sorted(self.funnel.items())
        }

    def rejection_summary(self) -> dict[str, dict[str, int]]:
        """point -> {reason: count}, both levels sorted."""
        return {
            point: {r: n for r, n in sorted(reasons.items())}
            for point, reasons in sorted(self.rejections.items())
        }


# ---------------------------------------------------------------------- #
# attachment (mirrors repro.trace)                                        #
# ---------------------------------------------------------------------- #


def attach(kernel: "Kernel", capacity: int = DECISION_CAPACITY) -> AuditLog:
    """Attach an :class:`AuditLog` to ``kernel``; arm the global flag.

    Idempotent: returns the existing log if one is attached.  Frames
    already allocated when the log attaches are backfilled as
    ``preexisting`` records (owner from the frame table), so the
    live-record invariant holds from the first step.
    """
    global enabled, _attached
    if kernel.audit is not None:
        return kernel.audit
    log = AuditLog(kernel, capacity)
    kernel.audit = log
    frames = kernel.frames
    frames.ledger = log.ledger
    pre = frames.allocated.copy()
    ledger = log.ledger
    ledger.live[:] = pre
    ledger.alloc_pid[pre] = frames.owner[pre]
    ledger.alloc_order[pre] = 0
    ledger.alloc_epoch[pre] = kernel.stats.epochs
    ledger.alloc_site[pre] = SITE_PREEXISTING
    _attached += 1
    enabled = True
    return log


def detach(kernel: "Kernel") -> AuditLog | None:
    """Detach ``kernel``'s audit log; disarm the flag when none remain."""
    global enabled, _attached
    log = kernel.audit
    if log is None:
        return None
    kernel.audit = None
    kernel.frames.ledger = None
    _attached -= 1
    if _attached <= 0:
        _attached = 0
        enabled = False
    return log


def reset() -> None:
    """Force the module back to the no-audit state (test isolation)."""
    global enabled, _attached
    enabled = False
    _attached = 0


# ---------------------------------------------------------------------- #
# rendering                                                               #
# ---------------------------------------------------------------------- #


def format_funnel(summary: dict[str, dict[str, int]],
                  rejections: dict[str, dict[str, int]] | None = None,
                  title: str = "decision funnel") -> str:
    """Render the funnel (and optional rejection breakdown) as text."""
    from repro.metrics.tables import format_table

    rows = [
        [point] + [counts[stage] for stage in FUNNEL_STAGES]
        for point, counts in summary.items()
    ]
    out = format_table(["point", *FUNNEL_STAGES], rows, title=title)
    if rejections:
        rej_rows = [
            [point, reason, count]
            for point, reasons in rejections.items()
            for reason, count in reasons.items()
        ]
        out += "\n" + format_table(
            ["point", "reason", "rejections"], rej_rows,
            title="rejections by reason")
    return out
