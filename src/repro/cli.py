"""Command-line interface: run simulations without writing a script.

Examples::

    python -m repro list
    python -m repro run xsbench --policy hawkeye-g --fragment
    python -m repro compare cg.D --policies linux-4kb,linux-2mb,hawkeye-g
    python -m repro bench fig1
    python -m repro trace run redis-fig1 --policy hawkeye-g --summary
    python -m repro trace view trace.jsonl --kind fault --summary
    python -m repro top xsbench --interval 30
    python -m repro heat xsbench --watch 1 --epochs 12
    python -m repro heat --cache-dir .sweep-cache --process gups
    python -m repro pagemap xsbench --region 16384
    python -m repro why redis-fig1 --point promote --limit 10
    python -m repro audit xsbench --json
    python -m repro numa --policy hawkeye-g --nodes 2
    python -m repro sweep run tab1 tab8 --jobs 4
    python -m repro sweep status

``run`` executes one workload under one policy and prints a summary plus
/proc-style snapshots; ``compare`` races one workload across policies;
``bench`` shells out to the pytest benchmark that regenerates a paper
table or figure; ``trace`` records or replays the kernel tracepoint
stream (JSONL, per-subsystem attribution, latency histograms); ``top``
watches a run through periodic /proc-style snapshots; ``heat`` runs
with the DAMON-style spatial monitor attached and draws access /
utilization / bloat heatmaps, adaptive monitoring regions and WSS
percentiles — live, or aggregated from a sweep cache; ``pagemap`` /
``why`` / ``audit`` run a workload with the decision-provenance audit
attached and answer, respectively, *where is this memory and where did
it come from*, *why did the policy (not) act on this region*, and *how
did candidates funnel into actions*; ``sweep`` drives
experiment grids through the cached, fanned-out sweep runner
(``repro.runner``) with per-cell crash isolation and resume.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import OutOfMemoryError
from repro.experiments import POLICIES, Scale, fragment, make_kernel
from repro.kernel import procfs
from repro.metrics.tables import format_table
from repro.units import GB, SEC
from repro.workloads.catalog import WORKLOADS

#: bench shorthand -> pytest file.
BENCHES = {
    "fig1": "test_fig1_redis_bloat.py",
    "tab1": "test_tab1_fault_latency.py",
    "tab2": "test_tab2_tlb_sensitivity.py",
    "tab3": "test_tab3_npb_characteristics.py",
    "tab4": "test_tab4_pmu_methodology.py",
    "fig3": "test_fig3_first_nonzero.py",
    "fig4": "test_fig4_access_map.py",
    "fig5": "test_fig5_promotion_efficiency.py",
    "fig6": "test_fig6_promotion_timeline.py",
    "fig7": "test_fig7_tab5_identical_workloads.py",
    "tab5": "test_fig7_tab5_identical_workloads.py",
    "fig8": "test_fig8_heterogeneous.py",
    "fig9": "test_fig9_tab6_virtualized.py",
    "tab6": "test_fig9_tab6_virtualized.py",
    "tab7": "test_tab7_bloat_vs_performance.py",
    "tab8": "test_tab8_fast_faults.py",
    "fig10": "test_fig10_prezero_interference.py",
    "fig11": "test_fig11_overcommit.py",
    "tab9": "test_tab9_pmu_vs_g.py",
    "ablations": "test_ablation_design_choices.py",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the `repro` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HawkEye (ASPLOS'19) huge-page management simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available policies and workloads")

    def common(p):
        p.add_argument("--policy", default="hawkeye-g", choices=sorted(POLICIES))
        p.add_argument("--mem-gb", type=float, default=48.0,
                       help="full-scale machine memory (default 48)")
        p.add_argument("--scale", type=int, default=128,
                       help="linear memory scale divisor (default 128)")
        p.add_argument("--fragment", action="store_true",
                       help="fragment memory before the workload starts")
        p.add_argument("--max-epochs", type=int, default=6000)
        p.add_argument("--nodes", type=int, default=1,
                       help="NUMA nodes; memory splits into equal zones "
                            "(default 1 = UMA)")
        p.add_argument("--numa-balance", action="store_true",
                       help="enable the knumad hint-fault balancer "
                            "(multi-node only)")

    run_p = sub.add_parser("run", help="run one workload under one policy")
    run_p.add_argument("workload", choices=sorted(WORKLOADS))
    common(run_p)
    run_p.add_argument("--procfs", action="store_true",
                       help="print meminfo/vmstat snapshots at the end")

    cmp_p = sub.add_parser("compare", help="race one workload across policies")
    cmp_p.add_argument("workload", choices=sorted(WORKLOADS))
    common(cmp_p)
    cmp_p.add_argument("--policies",
                       default="linux-4kb,linux-2mb,ingens-90,hawkeye-g",
                       help="comma-separated policy list")

    bench_p = sub.add_parser(
        "bench",
        help="regenerate a paper table/figure, or run a microbenchmark "
             "(touch fault throughput, epoch engine throughput)",
    )
    bench_p.add_argument("target", nargs="?", default="touch",
                         choices=sorted(BENCHES) + ["touch", "epoch"],
                         help="paper bench name, 'touch' (default) for the "
                              "fault-throughput microbenchmark, or 'epoch' "
                              "for the vectorized epoch-engine benchmark")
    bench_p.add_argument("--profile", action="store_true",
                         help="print a cProfile hot-path report instead of timings")
    bench_p.add_argument("--json", action="store_true",
                         help="emit the result as JSON (touch/epoch targets only)")
    bench_p.add_argument("--check", metavar="BASELINE",
                         help="compare against a baseline JSON; exit 1 on >25%% "
                              "regression of the benchmark's speedup ratio")
    bench_p.add_argument("--update-baseline", metavar="BASELINE",
                         help="write the result to a baseline JSON file "
                              "(touch/epoch targets only)")

    def trace_filters(p):
        p.add_argument("--kind", default=None,
                       help="comma-separated tracepoint names or subsystems "
                            "(e.g. fault,promote.collapse)")
        p.add_argument("--process", default=None,
                       help="only events attributed to this process name")
        p.add_argument("--since", type=float, default=None,
                       help="only events at or after this simulated second")
        p.add_argument("--until", type=float, default=None,
                       help="only events before this simulated second")
        p.add_argument("--summary", action="store_true",
                       help="print the per-subsystem time-attribution table")
        p.add_argument("--hist", action="store_true",
                       help="print log2 latency histograms per tracepoint")

    trace_p = sub.add_parser(
        "trace", help="record or replay the kernel tracepoint stream")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)

    trace_run_p = trace_sub.add_parser(
        "run", help="run a workload with tracing on; write a JSONL trace")
    trace_run_p.add_argument("workload", choices=sorted(WORKLOADS))
    common(trace_run_p)
    trace_run_p.add_argument("--out", default="trace.jsonl",
                             help="JSONL output path (default trace.jsonl)")
    trace_run_p.add_argument("--capacity", type=int, default=None,
                             help="trace ring-buffer capacity in events")
    trace_run_p.add_argument("--heat", action="store_true",
                             help="also attach the spatial heat monitor so "
                                  "heat.* WSS counter samples land in the "
                                  "trace (Perfetto counter tracks after "
                                  "'trace export --chrome')")
    trace_filters(trace_run_p)

    trace_view_p = trace_sub.add_parser(
        "view", help="filter and summarise a recorded JSONL trace")
    trace_view_p.add_argument("file", help="JSONL trace written by 'trace run'")
    trace_view_p.add_argument("--limit", type=int, default=20,
                              help="events to print (default 20; 0 = none)")
    trace_filters(trace_view_p)

    trace_export_p = trace_sub.add_parser(
        "export", help="convert a recorded JSONL trace to another format")
    trace_export_p.add_argument("file", help="JSONL trace written by 'trace run'")
    trace_export_p.add_argument("--chrome", action="store_true",
                                help="emit Chrome trace-event JSON "
                                     "(chrome://tracing, ui.perfetto.dev)")
    trace_export_p.add_argument("--out", default=None,
                                help="output path (default: input with .json)")
    trace_export_p.add_argument("--kind", default=None,
                                help="comma-separated tracepoint names or "
                                     "subsystems to keep")
    trace_export_p.add_argument("--process", default=None,
                                help="only events attributed to this process")
    trace_export_p.add_argument("--since", type=float, default=None,
                                help="only events at or after this simulated second")
    trace_export_p.add_argument("--until", type=float, default=None,
                                help="only events before this simulated second")

    numa_p = sub.add_parser(
        "numa", help="race NUMA placement modes for one workload")
    numa_p.add_argument("--policy", default="hawkeye-g",
                        choices=sorted(POLICIES))
    numa_p.add_argument("--nodes", type=int, default=2,
                        help="NUMA nodes (default 2)")
    numa_p.add_argument("--scale", type=int, default=64,
                        help="linear memory scale divisor (default 64)")
    numa_p.add_argument("--modes", default="local,interleave,balanced,replicated",
                        help="comma-separated placement modes")

    top_p = sub.add_parser(
        "top", help="run a workload printing periodic /proc-style snapshots")
    top_p.add_argument("workload", choices=sorted(WORKLOADS))
    common(top_p)
    top_p.add_argument("--interval", type=float, default=30.0,
                       help="simulated seconds between snapshots (default 30)")
    top_p.add_argument("--trace", action="store_true",
                       help="attach a tracer so the trace drop column is live")
    top_p.add_argument("--trace-capacity", type=int, default=None,
                       help="tracer ring-buffer capacity (with --trace)")
    top_p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                       help="refresh the snapshot row in place, at most once "
                            "per wall-clock SECONDS, instead of appending "
                            "one row per interval")
    top_p.add_argument("--tenants", action="store_true",
                       help="append fleet aggregate columns (tenant count, "
                            "spawn/exit rates, OOM kills); pair with "
                            "--fleet-rate to drive churn")
    top_p.add_argument("--fleet-rate", type=float, default=None,
                       metavar="PER_S",
                       help="attach a fleet manager spawning tenants at this "
                            "Poisson rate alongside the workload "
                            "(implies --tenants)")

    fleet_p = sub.add_parser(
        "fleet",
        help="drive multi-tenant churn (Poisson arrivals, OOM killer) and "
             "report per-class QoS")
    fleet_p.add_argument("--policy", default="hawkeye-g",
                         choices=sorted(POLICIES))
    fleet_p.add_argument("--mem-gb", type=float, default=64.0,
                         help="machine memory in GB at full scale "
                              "(default 64)")
    fleet_p.add_argument("--scale", type=int, default=128,
                         help="linear memory scale divisor (default 128)")
    fleet_p.add_argument("--rate", type=float, default=2.0,
                         help="tenant arrival rate per simulated second "
                              "(default 2.0)")
    fleet_p.add_argument("--tenants", type=int, default=200,
                         help="tenant lifetimes to complete (default 200)")
    fleet_p.add_argument("--seed", type=int, default=0,
                         help="arrival/footprint RNG seed (default 0)")
    fleet_p.add_argument("--max-epochs", type=int, default=4000,
                         help="epoch budget (default 4000)")
    fleet_p.add_argument("--batch-cap", type=int, default=8,
                         help="huge-page group cap for the batch-* tier "
                              "(0 disables; default 8)")
    fleet_p.add_argument("--json", action="store_true",
                         help="emit the full QoS result as JSON")

    pagemap_p = sub.add_parser(
        "pagemap",
        help="run a workload, then dump its regions with frame provenance "
             "(a /proc/pid/pagemap + kpageflags + page_owner view)")
    pagemap_p.add_argument("workload", choices=sorted(WORKLOADS))
    common(pagemap_p)
    pagemap_p.add_argument("--region", type=int, default=None, metavar="HVPN",
                           help="expand this huge region frame by frame "
                                "instead of the per-region table")
    pagemap_p.add_argument("--limit", type=int, default=40,
                           help="rows to print (default 40; 0 = all)")

    why_p = sub.add_parser(
        "why",
        help="run a workload, then replay the recent policy decisions "
             "for its regions with the exact numbers the policy compared")
    why_p.add_argument("workload", choices=sorted(WORKLOADS))
    common(why_p)
    why_p.add_argument("--region", type=int, default=None, metavar="HVPN",
                       help="only decisions scoped to this huge region")
    why_p.add_argument("--point", default=None,
                       choices=["promote", "collapse_node", "bloat",
                                "knumad", "fault_size"],
                       help="only decisions from this decision point")
    why_p.add_argument("--limit", type=int, default=20,
                       help="decisions to print, newest first (default 20)")

    audit_p = sub.add_parser(
        "audit",
        help="decision-funnel summary (candidates → eligible → "
             "budget-passed → acted): live run, or aggregated from a "
             "sweep cache when no workload is given")
    audit_p.add_argument("workload", nargs="?", default=None,
                         choices=sorted(WORKLOADS))
    common(audit_p)
    audit_p.add_argument("--cache-dir", default=None,
                         help="sweep cache to aggregate captured decision "
                              "audits from (without a workload)")
    audit_p.add_argument("--json", action="store_true",
                         help="emit the funnel and rejection breakdown "
                              "as JSON")

    heat_p = sub.add_parser(
        "heat",
        help="DAMON-style spatial access heatmap: adaptive monitoring "
             "regions, per-region bloat and WSS percentiles — live run, "
             "or aggregated from a sweep cache when no workload is given")
    heat_p.add_argument("workload", nargs="?", default=None,
                        choices=sorted(WORKLOADS))
    common(heat_p)
    heat_p.add_argument("--process", default=None,
                        help="only this process name")
    heat_p.add_argument("--region", type=int, default=None, metavar="HVPN",
                        help="show the monitoring region covering this "
                             "huge-page number (plus its bin's time series) "
                             "instead of the full heatmap")
    heat_p.add_argument("--epochs", type=int, default=None, metavar="N",
                        help="keep only the last N sample rows")
    heat_p.add_argument("--matrix", default="heat",
                        choices=["heat", "util", "huge", "bloat"],
                        help="which spatial matrix to draw (default heat)")
    heat_p.add_argument("--bins", type=int, default=None,
                        help="spatial bins per process (default 64)")
    heat_p.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                        help="repaint the heatmap in place during the run, "
                             "at most once per wall-clock SECONDS")
    heat_p.add_argument("--json", action="store_true",
                        help="emit the full monitor snapshot as JSON")
    heat_p.add_argument("--cache-dir", default=None,
                        help="sweep cache to aggregate captured heat "
                             "snapshots from (without a workload)")
    heat_p.add_argument("--svg-dir", default=None, metavar="DIR",
                        help="also write standalone SVG heatmaps (one per "
                             "process × matrix) into DIR")

    sweep_p = sub.add_parser(
        "sweep", help="run experiment grids through the cached sweep runner")
    sweep_sub = sweep_p.add_subparsers(dest="sweep_command", required=True)

    def sweep_common(p):
        p.add_argument("--cache-dir", default=None,
                       help="result cache directory (default .sweep-cache, "
                            "or $REPRO_SWEEP_CACHE)")

    sweep_run_p = sweep_sub.add_parser(
        "run", help="execute a selection of experiment cells")
    sweep_run_p.add_argument(
        "selectors", nargs="*", default=["all"],
        help="cell selectors: all | EXP | EXP/CASE | EXP:POLICY | "
             "EXP/CASE:POLICY (default: all)")
    sweep_common(sweep_run_p)
    sweep_run_p.add_argument("--jobs", type=int, default=1,
                             help="worker processes (default 1 = in-process)")
    sweep_run_p.add_argument("--timeout", type=float, default=None,
                             help="per-cell wall-clock budget in seconds "
                                  "(default 900)")
    sweep_run_p.add_argument("--retries", type=int, default=None,
                             help="extra attempts per failed cell (default 1)")
    sweep_run_p.add_argument("--scale", type=int, default=128,
                             help="linear memory scale divisor (default 128)")
    sweep_run_p.add_argument("--force", action="store_true",
                             help="re-execute cells even when cached")
    sweep_run_p.add_argument("--resume", action="store_true",
                             help="re-run the last sweep's manifest, skipping "
                                  "completed cells (selectors are ignored)")
    sweep_run_p.add_argument("--json", action="store_true",
                             help="emit per-cell records as JSON Lines instead "
                                  "of the table")
    sweep_run_p.add_argument("--csv", metavar="PATH", default=None,
                             help="also write per-cell records as CSV to PATH")
    sweep_run_p.add_argument("--require-cached", action="store_true",
                             help="exit 1 if any cell actually executed "
                                  "(CI warm-cache check)")
    sweep_run_p.add_argument("--scenario", action="append", metavar="FILE",
                             default=None,
                             help="register a scenario file as an experiment "
                                  "before selecting cells (repeatable); with "
                                  "no explicit selectors, only the scenario "
                                  "cells run")

    sweep_status_p = sweep_sub.add_parser(
        "status", help="show the last sweep's manifest and cache contents")
    sweep_common(sweep_status_p)

    sweep_clean_p = sweep_sub.add_parser(
        "clean", help="delete cached results and the sweep manifest")
    sweep_common(sweep_clean_p)

    scenario_p = sub.add_parser(
        "scenario",
        help="validate, list or run declarative scenario files")
    scenario_sub = scenario_p.add_subparsers(dest="scenario_command",
                                             required=True)

    scenario_run_p = scenario_sub.add_parser(
        "run", help="execute scenario files through the cached sweep runner")
    scenario_run_p.add_argument("files", nargs="+", metavar="FILE",
                                help="scenario files (.yaml/.yml/.json)")
    sweep_common(scenario_run_p)
    scenario_run_p.add_argument("--jobs", type=int, default=1,
                                help="worker processes (default 1)")
    scenario_run_p.add_argument("--timeout", type=float, default=None,
                                help="per-cell wall-clock budget in seconds "
                                     "(default 900)")
    scenario_run_p.add_argument("--retries", type=int, default=None,
                                help="extra attempts per failed cell "
                                     "(default 1)")
    scenario_run_p.add_argument("--scale", type=int, default=128,
                                help="linear memory scale divisor "
                                     "(default 128)")
    scenario_run_p.add_argument("--force", action="store_true",
                                help="re-execute cells even when cached")
    scenario_run_p.add_argument("--json", action="store_true",
                                help="emit per-cell records as JSON Lines")
    scenario_run_p.add_argument("--csv", metavar="PATH", default=None,
                                help="also write per-cell records as CSV")
    scenario_run_p.add_argument("--require-cached", action="store_true",
                                help="exit 1 if any cell actually executed")

    scenario_validate_p = scenario_sub.add_parser(
        "validate", help="check scenario files against the schema")
    scenario_validate_p.add_argument("files", nargs="+", metavar="FILE")

    scenario_list_p = scenario_sub.add_parser(
        "list", help="list the scenarios in a directory")
    scenario_list_p.add_argument("--dir", default="examples/scenarios",
                                 help="directory to scan "
                                      "(default examples/scenarios)")

    report_p = sub.add_parser(
        "report", help="render or regression-check a sweep cache")
    report_sub = report_p.add_subparsers(dest="report_command", required=True)

    report_html_p = report_sub.add_parser(
        "html", help="write a self-contained HTML dashboard from the cache")
    sweep_common(report_html_p)
    report_html_p.add_argument("--out", default="report.html",
                               help="output path (default report.html)")
    report_html_p.add_argument("--title", default="HawkEye repro — run report",
                               help="dashboard title")

    report_regress_p = report_sub.add_parser(
        "regress",
        help="compare the cache against a baseline; exit 1 on regression")
    report_regress_p.add_argument(
        "baseline", help="baseline JSON (see benchmarks/baselines/)")
    sweep_common(report_regress_p)
    report_regress_p.add_argument("--warn", type=float, default=None,
                                  help="warn band as a relative delta "
                                       "(default: the baseline's, else 0.01)")
    report_regress_p.add_argument("--fail", type=float, default=None,
                                  help="fail band as a relative delta "
                                       "(default: the baseline's, else 0.05)")
    report_regress_p.add_argument("--bless", action="store_true",
                                  help="write the cache's current metrics to "
                                       "BASELINE instead of comparing")
    report_regress_p.add_argument("--note", default="",
                                  help="free-form note stored when blessing")
    report_regress_p.add_argument("--verbose", action="store_true",
                                  help="print every metric delta, not just "
                                       "the flagged ones")

    return parser


def _execute(workload_name: str, policy: str, args, setup=None) -> dict:
    scale = Scale(1.0 / args.scale)
    kernel = make_kernel(
        args.mem_gb * GB, policy, scale,
        numa_nodes=getattr(args, "nodes", 1),
        numa_balance=getattr(args, "numa_balance", False),
    )
    if args.fragment:
        fragment(kernel)
    if setup is not None:
        setup(kernel)
    _, factory = WORKLOADS[workload_name]
    run = kernel.spawn(factory(scale.factor))
    outcome = "completed"
    try:
        kernel.run(max_epochs=args.max_epochs)
    except OutOfMemoryError:
        outcome = "OOM"
    if not run.finished and outcome == "completed":
        outcome = f"timeout after {args.max_epochs} epochs"
    proc = run.proc
    return {
        "kernel": kernel,
        "run": run,
        "policy": policy,
        "outcome": outcome,
        "time_s": run.elapsed_us / SEC,
        "faults": proc.stats.faults,
        "promotions": proc.stats.promotions,
        "demotions": proc.stats.demotions,
        "mmu_overhead": kernel.pmu[proc.pid].read_overhead(),
    }


def cmd_list() -> int:
    """`repro list`: print the policy, workload and bench registries."""
    print(format_table(
        ["policy"], [[name] for name in sorted(POLICIES)],
        title="Policies",
    ))
    print()
    print(format_table(
        ["workload", "description"],
        [[name, desc] for name, (desc, _) in sorted(WORKLOADS.items())],
        title="Workloads",
    ))
    print()
    print(format_table(
        ["bench", "file"],
        [[k, v] for k, v in sorted(BENCHES.items())],
        title="Paper benches (repro bench <name>)",
    ))
    return 0


def cmd_run(args) -> int:
    """`repro run`: execute one workload under one policy; print a summary."""
    result = _execute(args.workload, args.policy, args)
    print(format_table(
        ["field", "value"],
        [
            ["workload", args.workload],
            ["policy", result["policy"]],
            ["outcome", result["outcome"]],
            ["time (simulated s)", round(result["time_s"], 1)],
            ["page faults", result["faults"]],
            ["promotions", result["promotions"]],
            ["demotions", result["demotions"]],
            ["lifetime MMU overhead", f"{result['mmu_overhead'] * 100:.2f}%"],
        ],
    ))
    if args.procfs:
        kernel = result["kernel"]
        print("\n# meminfo\n" + procfs.format_meminfo(kernel))
        print("\n# vmstat")
        for k, v in procfs.vmstat(kernel).items():
            print(f"{k} {int(v)}")
    return 0 if result["outcome"] == "completed" else 1


def cmd_compare(args) -> int:
    """`repro compare`: race one workload across several policies."""
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        print(f"unknown policies: {', '.join(unknown)}", file=sys.stderr)
        return 2
    results = [_execute(args.workload, p, args) for p in policies]
    finished = [r for r in results if r["outcome"] == "completed"]
    base = finished[0]["time_s"] if finished else None
    rows = []
    for r in results:
        speedup = f"{base / r['time_s']:.3f}x" if base and r["outcome"] == "completed" else "-"
        rows.append([
            r["policy"], r["outcome"], round(r["time_s"], 1), speedup,
            r["faults"], r["promotions"],
            f"{r['mmu_overhead'] * 100:.2f}%",
        ])
    print(format_table(
        ["policy", "outcome", "time s", f"speedup vs {policies[0]}",
         "faults", "promotions", "lifetime ovh"],
        rows,
        title=f"{args.workload} on {args.mem_gb:.0f} GB (1/{args.scale} scale"
              f"{', fragmented' if args.fragment else ''})",
    ))
    return 0


def cmd_bench(args) -> int:
    """`repro bench`: paper benches via pytest, or the touch microbenchmark."""
    import subprocess
    from pathlib import Path

    if args.target == "touch":
        return _cmd_bench_touch(args)
    if args.target == "epoch":
        return _cmd_bench_epoch(args)

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    target = bench_dir / BENCHES[args.target]
    if args.profile:
        from repro import perf

        # pytest-benchmark's timed block cannot be profiled (it installs
        # its own sys profiler hook), so profile the experiment function.
        import importlib.util

        spec = importlib.util.spec_from_file_location(target.stem, target)
        module = importlib.util.module_from_spec(spec)
        sys.path.insert(0, str(bench_dir))
        try:
            spec.loader.exec_module(module)
            run = getattr(module, "run_policy", None) or getattr(module, "run_config", None)
            if run is None:
                print(f"{target.name} exposes no run_policy/run_config to profile",
                      file=sys.stderr)
                return 2
            import inspect

            fill = {"policy": "hawkeye-g", "label": "profile", "scale": Scale(1 / 128)}
            kwargs = {
                name: fill[name]
                for name in inspect.signature(run).parameters
                if name in fill
            }
            print(perf.profile_target(lambda: run(**kwargs), args.target))
        finally:
            sys.path.remove(str(bench_dir))
        return 0
    return subprocess.call([
        sys.executable, "-m", "pytest", str(target),
        "--benchmark-only", "-q", "-s",
    ])


def _cmd_bench_touch(args) -> int:
    """The touch-throughput microbenchmark with baseline check support."""
    import json

    from repro import perf

    if args.check:
        import os

        if not os.path.exists(args.check):
            print(f"baseline file not found: {args.check}", file=sys.stderr)
            return 2
    if args.profile:
        print(perf.profile_touch())
        return 0
    result = perf.touch_benchmark()
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(perf.format_touch_report(result))
    if args.update_baseline:
        with open(args.update_baseline, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"baseline written to {args.update_baseline}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = perf.check_regression(result, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        # Keep stdout valid JSON under --json: status goes to stderr.
        print(f"within tolerance of {args.check} "
              f"(baseline speedup {baseline['speedup']:.2f}x)",
              file=sys.stderr if args.json else sys.stdout)
    return 0


def _cmd_bench_epoch(args) -> int:
    """The epoch-engine throughput benchmark with baseline check support."""
    import json

    from repro import perf

    if args.check:
        import os

        if not os.path.exists(args.check):
            print(f"baseline file not found: {args.check}", file=sys.stderr)
            return 2
    if args.profile:
        print(perf.profile_epoch())
        return 0
    result = perf.epoch_benchmark()
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(perf.format_epoch_report(result))
    if args.update_baseline:
        with open(args.update_baseline, "w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")
        print(f"baseline written to {args.update_baseline}")
    if args.check:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = perf.check_epoch_regression(result, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        # Keep stdout valid JSON under --json: status goes to stderr.
        print(f"within tolerance of {args.check} "
              f"(baseline speedup {baseline['speedup']:.2f}x)",
              file=sys.stderr if args.json else sys.stdout)
    return 0


def _trace_kinds(args) -> list[str] | None:
    """Parse the --kind filter into a list of names/subsystems."""
    if not args.kind:
        return None
    return [k.strip() for k in args.kind.split(",") if k.strip()]


def _event_histograms(events):
    """Per-kind log2 latency histograms rebuilt from an event stream."""
    from repro import trace

    by_kind: dict = {}
    for e in events:
        if e.span_us > 0.0:
            by_kind.setdefault(e.kind, trace.LatencyHistogram()).add(e.span_us)
    return by_kind


def _print_trace_reports(events, args, exact_attribution=None,
                         exact_histograms=None) -> None:
    """Shared --summary/--hist rendering for trace run/view.

    The --summary percentile rows are interpolated from the log2
    buckets: the estimate lands in the true quantile's bucket, so it is
    within 2x of the true latency (see LatencyHistogram.quantile).
    """
    from repro import trace

    if args.summary:
        table = exact_attribution if exact_attribution is not None else trace.attribution(events)
        print(trace.format_attribution(table))
        hists = exact_histograms if exact_histograms is not None \
            else _event_histograms(events)
        if hists:
            rows = []
            for kind in sorted(hists, key=lambda k: k.value):
                p = hists[kind].percentiles()
                rows.append((kind.value, hists[kind].count,
                             round(p["p50"], 1), round(p["p95"], 1),
                             round(p["p99"], 1)))
            print(format_table(
                ["kind", "n", "p50_us", "p95_us", "p99_us"], rows,
                title="latency percentiles "
                      "(log2-bucket interpolation, within 2x):"))
    if args.hist:
        by_kind = _event_histograms(events)
        for kind in sorted(by_kind, key=lambda k: k.value):
            print(trace.format_histogram(by_kind[kind], kind.value))


def _cmd_trace_run(args) -> int:
    """`repro trace run`: record a traced run and write a JSONL trace."""
    from repro import trace
    from repro.metrics.export import trace_to_jsonl

    tracer_box: list[trace.Tracer] = []

    def setup(kernel):
        capacity = args.capacity if args.capacity else trace.DEFAULT_CAPACITY
        tracer_box.append(trace.attach(kernel, capacity))
        if args.heat:
            from repro import heat

            heat.attach(kernel)

    result = _execute(args.workload, args.policy, args, setup=setup)
    tracer = tracer_box[0]
    kinds = _trace_kinds(args)
    filtered = tracer.filter(kinds, args.process, args.since, args.until)
    with open(args.out, "w") as fh:
        fh.write(trace_to_jsonl(filtered))
    unfiltered = kinds is None and args.process is None \
        and args.since is None and args.until is None
    print(f"{args.workload}/{args.policy}: {result['outcome']}, "
          f"{result['time_s']:.1f} simulated s")
    print(f"{sum(tracer.counts.values())} events emitted "
          f"({tracer.dropped} dropped by the ring buffer); "
          f"{len(filtered)} written to {args.out}")
    # With no filters the tracer's incremental counters give the exact
    # attribution even when the ring buffer dropped events.
    _print_trace_reports(
        filtered, args,
        exact_attribution=tracer.attribution() if unfiltered else None,
        exact_histograms=tracer.histograms if unfiltered else None,
    )
    return 0 if result["outcome"] == "completed" else 1


def _cmd_trace_view(args) -> int:
    """`repro trace view`: filter and summarise a recorded JSONL trace."""
    import os

    from repro import trace
    from repro.metrics.export import trace_from_jsonl

    if not os.path.exists(args.file):
        print(f"trace file not found: {args.file}", file=sys.stderr)
        return 2
    with open(args.file) as fh:
        events = trace_from_jsonl(fh.read())
    filtered = trace.filter_events(
        events, _trace_kinds(args), args.process, args.since, args.until)
    print(f"{len(filtered)} events (of {len(events)} in {args.file})")
    for e in filtered[: args.limit]:
        print(e)
    if args.limit and len(filtered) > args.limit:
        print(f"... {len(filtered) - args.limit} more "
              f"(raise --limit to see them)")
    _print_trace_reports(filtered, args)
    return 0


def _cmd_trace_export(args) -> int:
    """`repro trace export`: convert a JSONL trace to Chrome trace JSON."""
    import os

    from repro import trace
    from repro.metrics.export import trace_from_jsonl, trace_to_chrome

    if not args.chrome:
        print("choose an export format: --chrome", file=sys.stderr)
        return 2
    if not os.path.exists(args.file):
        print(f"trace file not found: {args.file}", file=sys.stderr)
        return 2
    with open(args.file) as fh:
        events = trace_from_jsonl(fh.read())
    filtered = trace.filter_events(
        events, _trace_kinds(args), args.process, args.since, args.until)
    out = args.out or (os.path.splitext(args.file)[0] + ".chrome.json")
    with open(out, "w") as fh:
        fh.write(trace_to_chrome(filtered))
    print(f"{len(filtered)} events (of {len(events)} in {args.file}) "
          f"written to {out}; open in chrome://tracing or ui.perfetto.dev")
    return 0


def cmd_trace(args) -> int:
    """`repro trace`: dispatch to the run/view/export sub-commands."""
    if args.trace_command == "run":
        return _cmd_trace_run(args)
    if args.trace_command == "view":
        return _cmd_trace_view(args)
    return _cmd_trace_export(args)


def cmd_numa(args) -> int:
    """`repro numa`: race placement modes on an asymmetric workload.

    Each mode runs the registry's ``numa`` experiment cell (the compute
    workload homed on node 0), so the table matches `repro sweep run
    numa` output for the same policy and node count.
    """
    from repro.experiments import reset_sim_state
    from repro.runner.adapters import NUMA_CASES, run_numa

    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    cases = [f"{mode}-{args.nodes}" for mode in modes]
    unknown = [c for c in cases if c not in NUMA_CASES]
    if unknown:
        print(f"unknown numa cases: {', '.join(unknown)} "
              f"(have {', '.join(NUMA_CASES)})", file=sys.stderr)
        return 2
    scale = Scale(1.0 / args.scale)
    rows = []
    for mode, case in zip(modes, cases):
        reset_sim_state()
        r = run_numa(case, args.policy, scale)
        rows.append([
            mode, round(r["time_s"], 1),
            f"{r['remote_walk_share'] * 100:.1f}%",
            r["hint_faults"], r["pages_migrated"], r["huge_migrated"],
            r["pt_replica_pages"], r["promotions"],
        ])
    print(format_table(
        ["mode", "time s", "remote walk", "hint flt", "pg migr",
         "huge migr", "pt replica pg", "promotions"],
        rows,
        title=f"{args.policy} across {args.nodes} nodes (1/{args.scale} scale)",
    ))
    return 0


#: columns of the `repro top` display, in print order.  ``trdrop/s`` is
#: the tracer ring-buffer drop rate — "-" with no tracer attached, 0
#: for a lossless trace, nonzero when the recorded trace is lossy.
TOP_COLUMNS = [
    "t_s", "free_mb", "alloc_%", "thp_mb", "fmfi",
    "pgfault/s", "promo/s", "split/s", "swap/s", "trdrop/s",
]


def cmd_top(args) -> int:
    """`repro top`: run a workload printing periodic snapshot rows.

    Each row is a /proc-style sample: meminfo gauges plus vmstat counter
    *rates* over the interval — like watching ``vmstat <interval>`` on
    the machine while the experiment runs.  With ``--watch SECONDS`` the
    latest row repaints in place (ANSI cursor-up), throttled to one
    repaint per wall-clock SECONDS — a one-line live dashboard instead
    of a scrolling log.
    """
    import time

    from repro.metrics.tables import ColumnStream, InPlacePainter

    columns = list(TOP_COLUMNS)
    nodes = getattr(args, "nodes", 1)
    if nodes > 1:
        # per-node placement columns, fed by procfs.numastat; single-node
        # output stays byte-identical (no extra columns, no numastat call).
        for n in range(nodes):
            columns += [f"n{n}_free", f"n{n}_alloc"]
        columns.append("numamig/s")
    fleet_rate = getattr(args, "fleet_rate", None)
    tenants = getattr(args, "tenants", False) or fleet_rate is not None
    if tenants:
        # fleet aggregate columns; without --tenants/--fleet-rate the
        # default output stays byte-identical (no extra columns).
        columns += ["tenants", "spawn/s", "exit/s", "oomk"]
    stream = ColumnStream(columns)
    print(stream.header())
    state = {"last_t": 0.0, "last_vmstat": None, "last_numastat": None,
             "last_fleet": None, "last_wall": 0.0}
    painter = InPlacePainter()
    watch = getattr(args, "watch", None)

    def snapshot(kernel):
        t_s = kernel.now_us / SEC
        if state["last_vmstat"] is not None and t_s - state["last_t"] < args.interval:
            return
        vm = procfs.vmstat(kernel)
        prev = state["last_vmstat"]
        dt = t_s - state["last_t"]
        if prev is None or dt <= 0:
            rates = {k: 0.0 for k in vm}
        else:
            rates = {k: (vm[k] - prev[k]) / dt for k in vm}
        mem = procfs.meminfo(kernel)
        row = [
            f"{t_s:.0f}",
            f"{mem['MemFree'] // 1024}",
            f"{100.0 * mem['MemAllocated'] / mem['MemTotal']:.1f}",
            f"{mem['AnonHugePages'] // 1024}",
            f"{kernel.fmfi():.2f}",
            f"{rates['pgfault']:.0f}",
            f"{rates['thp_collapse_alloc'] + rates['thp_promote_inplace']:.1f}",
            f"{rates['thp_split']:.1f}",
            f"{rates['pswpout'] + rates['pswpin']:.1f}",
            "-" if not vm["trace_attached"] else f"{rates['trace_dropped']:.0f}",
        ]
        if nodes > 1:
            ns = procfs.numastat(kernel)
            prev_ns = state["last_numastat"]
            for n in range(nodes):
                # pages -> MB at 4 KiB pages: 256 pages per MB.
                row.append(f"{ns[f'node{n}_free_pages'] // 256}")
                row.append(f"{ns[f'node{n}_allocated_pages'] // 256}")
            migrated = ns["numa_pages_migrated"] + 512 * ns["numa_huge_migrated"]
            if prev_ns is None or dt <= 0:
                row.append("0")
            else:
                prev_migrated = (prev_ns["numa_pages_migrated"]
                                 + 512 * prev_ns["numa_huge_migrated"])
                row.append(f"{(migrated - prev_migrated) / dt:.0f}")
            state["last_numastat"] = ns
        if tenants:
            fleet = kernel.fleet
            spawned = fleet.spawned if fleet is not None else 0
            exited = fleet.exited if fleet is not None else 0
            prev_fl = state["last_fleet"]
            if prev_fl is None or dt <= 0:
                spawn_rate = exit_rate = 0.0
            else:
                spawn_rate = (spawned - prev_fl[0]) / dt
                exit_rate = (exited - prev_fl[1]) / dt
            row += [
                f"{fleet.active if fleet is not None else 0}",
                f"{spawn_rate:.1f}",
                f"{exit_rate:.1f}",
                f"{fleet.oom_kills if fleet is not None else 0}",
            ]
            state["last_fleet"] = (spawned, exited)
        line = stream.row(row)
        if watch is None:
            print(line)
        else:
            wall = time.monotonic()
            if not painter.drawn or wall - state["last_wall"] >= watch:
                painter.paint(line)
                state["last_wall"] = wall
        state["last_t"] = t_s
        state["last_vmstat"] = vm

    def setup(kernel):
        if args.trace:
            from repro import trace

            capacity = args.trace_capacity or trace.DEFAULT_CAPACITY
            # drops are surfaced in the trdrop/s column; the one-shot
            # RuntimeWarning would just interleave with the table.
            trace.attach(kernel, capacity, warn_on_drop=False)
        if fleet_rate is not None:
            from repro.fleet import FleetManager, FleetSpec

            FleetManager(kernel, FleetSpec(rate_per_s=fleet_rate),
                         scale_factor=1.0 / args.scale)
        kernel.epoch_hooks.append(snapshot)

    try:
        result = _execute(args.workload, args.policy, args, setup=setup)
    finally:
        # Ctrl-C can land between the clear sequence and the rewrite,
        # leaving the cursor on a blanked row; make sure the terminal
        # is handed back on a fresh line either way.
        if watch is not None:
            painter.finish()
    print(f"{args.workload}/{args.policy}: {result['outcome']}, "
          f"{result['time_s']:.1f} simulated s, {result['faults']} faults, "
          f"{result['promotions']} promotions")
    return 0 if result["outcome"] == "completed" else 1


def cmd_fleet(args) -> int:
    """`repro fleet`: multi-tenant churn with per-class QoS reporting.

    Drives Poisson arrivals through the kernel until ``--tenants``
    lifetimes complete, with the fleet OOM killer shaving pressure
    peaks, then prints the fairness/tail summary (or the full JSON
    result with ``--json``).
    """
    import json

    from repro.fleet import FleetManager, FleetSpec
    from repro.fleet.experiment import drive_fleet, fleet_result

    scale = Scale(1.0 / args.scale)
    kernel = make_kernel(args.mem_gb * GB, args.policy, scale,
                         boot_zeroed=True)
    group_limits = {"batch-*": args.batch_cap} if args.batch_cap else {}
    spec = FleetSpec(rate_per_s=args.rate, seed=args.seed,
                     group_limits=group_limits)
    manager = FleetManager(kernel, spec, scale_factor=scale.factor)
    epochs = drive_fleet(kernel, manager, args.tenants, args.max_epochs)
    result = fleet_result(kernel, manager, epochs)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0 if result["exited"] >= args.tenants else 1
    print(f"fleet/{args.policy}: {result['exited']} lifetimes in "
          f"{result['t_end_s']:.0f} simulated s ({epochs} epochs), "
          f"peak {result['peak_active']} active")
    print(f"  oom kills {result['oom_kills']} "
          f"(protected {result['protected_kills']}), "
          f"deferred {result['deferred']}, "
          f"limit refusals {result['limit_refusals']}")
    print(f"  fault latency p50 {result['fault_p50_us']:.1f}us "
          f"p99 {result['fault_p99_us']:.1f}us, "
          f"fairness spread {result['fairness_spread']:.3f}")
    for name, cls in result["classes"].items():
        print(f"  {name:<6} tenants {cls['tenants']:<5} "
              f"oomk {cls['oom_kills']:<4} "
              f"cov {cls['mean_huge_coverage']:.2f} "
              f"bloat {cls['mean_bloat_mb']:.1f}MB "
              f"p50 {cls['fault_p50_us']:.1f}us "
              f"p99 {cls['fault_p99_us']:.1f}us")
    return 0 if result["exited"] >= args.tenants else 1


def _attach_audit(args):
    """Shared setup for pagemap/why/audit: run with the audit attached."""
    from repro import audit

    log_box: list = []

    def setup(kernel):
        log_box.append(audit.attach(kernel))

    result = _execute(args.workload, args.policy, args, setup=setup)
    return result, log_box[0]


def cmd_pagemap(args) -> int:
    """`repro pagemap`: region/frame dump with flags and provenance.

    The per-region table is the /proc/pid/pagemap view (what maps
    where); ``--region`` expands one huge region frame by frame with
    kpageflags-style flag letters and the page_owner-style provenance
    columns (allocation site/pid/epoch, last lifecycle event).
    """
    from repro.units import PAGES_PER_HUGE

    result, log = _attach_audit(args)
    kernel, proc = result["kernel"], result["run"].proc
    ledger = log.ledger
    numa = kernel.numa
    node_of = (numa.allocator.node_map.node_of
               if numa is not None else (lambda _f: 0))
    pt = proc.page_table

    def prov(frame):
        d = ledger.describe(frame)
        if not d["events"]:
            return d, "-"
        name, epoch, _arg = d["events"][-1]
        return d, f"{name}@{epoch}"

    status = 0 if result["outcome"] == "completed" else 1
    if args.region is not None:
        hvpn = args.region
        huge = pt.huge.get(hvpn)
        rows = []
        for vpn in range(hvpn * PAGES_PER_HUGE, (hvpn + 1) * PAGES_PER_HUGE):
            if huge is not None:
                frame = huge.frame + (vpn - hvpn * PAGES_PER_HUGE)
                flags = ("HA" if huge.accessed else "H-") \
                    + ("D" if huge.dirty else "-")
            else:
                pte = pt.base.get(vpn)
                if pte is None:
                    continue
                frame = pte.frame
                flags = ("-" + ("A" if pte.accessed else "-")
                         + ("D" if pte.dirty else "-")
                         + ("Z" if pte.shared_zero else "")
                         + ("C" if pte.shared_cow else ""))
            d, last = prov(frame)
            rows.append([vpn, frame, flags, node_of(frame),
                         "yes" if d["live"] else "no", d["site"],
                         d["pid"], d["epoch"], last])
        shown = rows[: args.limit] if args.limit else rows
        print(format_table(
            ["vpn", "frame", "flags", "node", "live", "site",
             "alloc pid", "alloc epoch", "last event"],
            shown,
            title=f"{args.workload} pid {proc.pid} region {args.region} "
                  f"(flags: Huge/Accessed/Dirty, Zero-shared, Cow-shared)",
        ))
        if args.limit and len(rows) > len(shown):
            print(f"... {len(rows) - len(shown)} more mapped pages "
                  f"(raise --limit)")
        return status

    rows = []
    for region in sorted(proc.regions.values(), key=lambda r: r.hvpn):
        hvpn = region.hvpn
        huge = pt.huge.get(hvpn)
        if huge is not None:
            frame, mapping = huge.frame, "huge"
        else:
            frame, mapping = -1, "base"
            for vpn in range(hvpn * PAGES_PER_HUGE,
                             (hvpn + 1) * PAGES_PER_HUGE):
                pte = pt.base.get(vpn)
                if pte is not None:
                    frame = pte.frame
                    break
        if frame < 0:
            continue
        d, last = prov(frame)
        rows.append([hvpn, mapping, region.resident,
                     f"{region.coverage_ema:.1f}", frame, node_of(frame),
                     d["site"], d["pid"], d["epoch"], last])
    shown = rows[: args.limit] if args.limit else rows
    print(format_table(
        ["region", "map", "resident", "ema", "head frame", "node", "site",
         "alloc pid", "alloc epoch", "last event"],
        shown,
        title=f"{args.workload}/{args.policy} pid {proc.pid}: "
              f"{len(rows)} populated regions "
              f"(provenance of each region's head frame)",
    ))
    if args.limit and len(rows) > len(shown):
        print(f"... {len(rows) - len(shown)} more regions "
              f"(raise --limit, or --region HVPN to zoom in)")
    return status


def cmd_why(args) -> int:
    """`repro why`: replay recent policy decisions with their inputs.

    Prints the newest :class:`~repro.audit.DecisionRecord`\\ s affecting
    the workload's process — each line carries the exact numbers the
    policy compared (coverage EMA, thresholds, budget left, …), so "why
    was this region never promoted" is answerable after the fact.
    Kernel-thread decisions (pid -1, e.g. a budget denial that stopped
    a whole scan) are included: they affect every process.
    """
    result, log = _attach_audit(args)
    proc = result["run"].proc
    records = [
        rec for rec in log.decisions_for(hvpn=args.region, point=args.point)
        if rec.pid == proc.pid or rec.pid < 0
    ]
    shown = records[: args.limit] if args.limit else records
    scope = "".join([
        f" region={args.region}" if args.region is not None else "",
        f" point={args.point}" if args.point else "",
    ])
    print(f"{len(records)} replayable decisions for pid {proc.pid}{scope} "
          f"({log.recorded} recorded, {log.dropped} aged out of the "
          f"{log.capacity}-record ring); newest first:")
    for rec in shown:
        print(rec)
    if len(records) > len(shown):
        print(f"... {len(records) - len(shown)} more (raise --limit)")
    if not records:
        print("  (none matched — the policy never weighed this scope; "
              "run `repro audit` for the full funnel)")
    return 0 if result["outcome"] == "completed" else 1


def cmd_audit(args) -> int:
    """`repro audit`: the decision funnel, live or from a sweep cache."""
    import json

    from repro import audit

    if args.workload is None:
        return _cmd_audit_cache(args)
    result, log = _attach_audit(args)
    doc = {
        "workload": args.workload,
        "policy": args.policy,
        "outcome": result["outcome"],
        "funnel": log.funnel_summary(),
        "rejections": log.rejection_summary(),
        "recorded": log.recorded,
        "dropped": log.dropped,
    }
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(audit.format_funnel(
            doc["funnel"], doc["rejections"],
            title=f"decision funnel: {args.workload}/{args.policy} "
                  f"({log.recorded} decisions)"))
    return 0 if result["outcome"] == "completed" else 1


def _cmd_audit_cache(args) -> int:
    """Aggregate captured decision audits across a sweep cache."""
    import json

    from repro import audit
    from repro.report.data import latest_envelopes

    cache, _ = _sweep_paths(args)
    cells: dict[str, dict] = {}
    total_funnel: dict[str, dict[str, int]] = {}
    total_rej: dict[str, dict[str, int]] = {}
    envelopes = latest_envelopes(cache)
    for cell_id in sorted(envelopes):
        for artifact in envelopes[cell_id].get("telemetry") or []:
            decisions = artifact.get("decisions") or {}
            if not decisions:
                continue
            cells[cell_id] = decisions
            for point, stages in (decisions.get("funnel") or {}).items():
                agg = total_funnel.setdefault(
                    point, {s: 0 for s in audit.FUNNEL_STAGES})
                for stage, count in stages.items():
                    agg[stage] += count
            for point, reasons in (decisions.get("rejections") or {}).items():
                rej = total_rej.setdefault(point, {})
                for reason, count in reasons.items():
                    rej[reason] = rej.get(reason, 0) + count
    if args.json:
        print(json.dumps(
            {"cells": cells,
             "total": {"funnel": total_funnel, "rejections": total_rej}},
            indent=2, sort_keys=True))
        return 0
    if not cells:
        print(f"no captured decision audits in {cache.root} "
              f"(cells cached before the audit layer, or audit disabled)")
        return 0
    print(audit.format_funnel(
        {p: total_funnel[p] for p in sorted(total_funnel)},
        {p: dict(sorted(total_rej[p].items())) for p in sorted(total_rej)},
        title=f"decision funnel: {len(cells)} cells in {cache.root}"))
    return 0


def _print_heat_proc(proc_snap: dict, args) -> None:
    """One process's heat view: heatmap + regions + WSS, or one region."""
    from repro import heat

    if args.region is not None:
        lo, hi = proc_snap.get("span", (0, 0))
        region = next((r for r in proc_snap.get("regions") or []
                       if r["start"] <= args.region < r["end"]), None)
        if region is None:
            print(f"hvpn {args.region} is outside "
                  f"{proc_snap.get('process')}'s monitored span [{lo},{hi})")
            return
        print(format_table(
            ["span_hvpn", "width", "sample", "ema", "density", "age"],
            [[f"[{region['start']},{region['end']})",
              region["end"] - region["start"], region["sample"],
              region["ema"], region["density"], region["age"]]],
            title=f"monitoring region covering hvpn {args.region} — "
                  f"{proc_snap.get('process')}"))
        nb = proc_snap.get("bins") or 1
        if hi > lo:
            col = min(nb - 1, (args.region - lo) * nb // (hi - lo))
            rows = [[t, row[col]] for t, row in
                    zip(proc_snap.get("t_s") or [],
                        proc_snap.get(args.matrix) or [])
                    if col < len(row)]
            if args.epochs is not None:
                rows = rows[-args.epochs:]
            print(format_table(["t_s", args.matrix], rows,
                               title=f"bin {col} ({args.matrix}) over time"))
        return
    print(heat.format_heatmap(proc_snap, epochs=args.epochs,
                              matrix=args.matrix))
    print()
    print(heat.format_regions(proc_snap))
    print()
    print(heat.format_wss(proc_snap))


def cmd_heat(args) -> int:
    """`repro heat`: spatial access heatmap, live or from a sweep cache."""
    import json

    from repro import heat
    from repro.metrics.tables import InPlacePainter

    if args.workload is None:
        return _cmd_heat_cache(args)
    monitor_box: list = []
    painter = InPlacePainter()
    state = {"last_wall": 0.0, "last_samples": 0}

    def repaint(kernel):
        import time

        monitor = monitor_box[0]
        # only redraw when a new access-bit sample was folded, throttled
        # to one repaint per --watch wall-clock seconds.
        if monitor.samples == state["last_samples"]:
            return
        wall = time.monotonic()
        if painter.drawn and wall - state["last_wall"] < args.watch:
            return
        state["last_samples"] = monitor.samples
        state["last_wall"] = wall
        blocks = []
        for pid in sorted(monitor.procs):
            snap = monitor.procs[pid].snapshot()
            if args.process and snap["process"] != args.process:
                continue
            blocks.append(heat.format_heatmap(
                snap, epochs=args.epochs or 12, matrix=args.matrix))
        if blocks:
            painter.paint("\n\n".join(blocks))

    def setup(kernel):
        config = {}
        if args.bins:
            config["nbins"] = args.bins
        monitor_box.append(heat.attach(kernel, **config))
        if args.watch is not None:
            kernel.epoch_hooks.append(repaint)

    try:
        result = _execute(args.workload, args.policy, args, setup=setup)
    finally:
        if args.watch is not None:
            painter.finish()
    snapshot = monitor_box[0].snapshot()
    procs = snapshot["processes"]
    if args.process:
        procs = [p for p in procs if p.get("process") == args.process]
        if not procs:
            print(f"no monitored process named {args.process!r}",
                  file=sys.stderr)
            return 2
    if args.svg_dir:
        from repro.report.html import write_heat_svgs

        written = write_heat_svgs(
            {"processes": procs}, args.svg_dir,
            label=f"{args.workload}-{args.policy}")
        print(f"{len(written)} SVG heatmap(s) written to {args.svg_dir}",
              file=sys.stderr)
    if args.json:
        print(json.dumps(
            {"workload": args.workload, "policy": args.policy,
             "outcome": result["outcome"], "samples": snapshot["samples"],
             "processes": procs}, indent=2))
        return 0 if result["outcome"] == "completed" else 1
    for i, proc_snap in enumerate(procs):
        if i:
            print()
        _print_heat_proc(proc_snap, args)
    print(f"\n{args.workload}/{args.policy}: {result['outcome']}, "
          f"{snapshot['samples']} access-bit samples folded")
    return 0 if result["outcome"] == "completed" else 1


def _cmd_heat_cache(args) -> int:
    """Aggregate captured heat snapshots across a sweep cache."""
    import json

    from repro.report.data import latest_envelopes

    cache, _ = _sweep_paths(args)
    cells: dict[str, dict] = {}
    for cell_id, env in sorted(latest_envelopes(cache).items()):
        for artifact in env.get("telemetry") or []:
            snap = artifact.get("heat") or {}
            if snap.get("processes"):
                cells[cell_id] = snap
    if args.json:
        print(json.dumps({"cells": cells}, indent=2, sort_keys=True))
        return 0
    if not cells:
        print(f"no captured heat snapshots in {cache.root} "
              f"(cells cached before the heat layer)")
        return 0
    if args.svg_dir:
        from repro.report.html import write_heat_svgs

        written = [path for cell_id, snap in cells.items()
                   for path in write_heat_svgs(snap, args.svg_dir,
                                               label=cell_id)]
        print(f"{len(written)} SVG heatmap(s) written to {args.svg_dir}",
              file=sys.stderr)
    rows = []
    for cell_id, snap in cells.items():
        for proc in snap.get("processes") or ():
            if args.process and proc.get("process") != args.process:
                continue
            wss = proc.get("wss") or {}
            rows.append([cell_id, proc.get("process"),
                         proc.get("samples", 0),
                         len(proc.get("regions") or ()),
                         proc.get("hot_regions", 0),
                         wss.get("p50", ""), wss.get("p95", ""),
                         wss.get("p99", "")])
    print(format_table(
        ["cell", "process", "samples", "regions", "hot",
         "wss_p50", "wss_p95", "wss_p99"],
        rows, title=f"heat: {len(cells)} cells in {cache.root}"))
    if args.process:
        # with a process filter the cache view also renders the full
        # per-cell heatmaps, same layout as a live run.
        for cell_id, snap in cells.items():
            for proc in snap.get("processes") or ():
                if proc.get("process") != args.process:
                    continue
                print(f"\n[{cell_id}]")
                _print_heat_proc(proc, args)
    return 0


def _sweep_paths(args):
    """Resolve (cache, manifest path) from --cache-dir/$REPRO_SWEEP_CACHE."""
    from pathlib import Path

    from repro.runner import ResultCache, default_cache_dir

    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    return ResultCache(root), root / "manifest.json"


def _drive_cells(args, cells, cache, manifest) -> tuple[int, object]:
    """Shared sweep/scenario drive loop: run, print, export.

    Returns ``(exit_code, SweepReport)``; the exit code covers cache
    and outcome health, callers may tighten it further (scenario
    assertions).
    """
    from repro import runner
    from repro.metrics.export import cells_to_csv, cells_to_jsonl
    from repro.runner import run_sweep

    def progress(outcome):
        line = f"  [{outcome.status:>7s}] {outcome.cell.cell_id}"
        if outcome.status != "cached":
            line += f"  ({outcome.wall_s:.1f}s, attempt {outcome.attempts})"
        print(line, file=sys.stderr)

    report = run_sweep(
        cells,
        jobs=args.jobs,
        timeout_s=args.timeout if args.timeout is not None
        else runner.DEFAULT_TIMEOUT_S,
        retries=args.retries if args.retries is not None
        else runner.DEFAULT_RETRIES,
        cache=cache,
        manifest=manifest,
        force=args.force,
        progress=progress,
    )

    records = [o.as_record() for o in report.outcomes]
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(cells_to_csv(records))
        print(f"per-cell CSV written to {args.csv}", file=sys.stderr)
    if args.json:
        print(cells_to_jsonl(records), end="")
    else:
        rows = [
            [o.cell.cell_id, o.status, o.attempts, round(o.wall_s, 2),
             (o.error or "").splitlines()[-1][:48] if o.error else ""]
            for o in report.outcomes
        ]
        print(format_table(
            ["cell", "status", "attempts", "wall s", "error"], rows,
            title=f"sweep: {len(cells)} cells, jobs={args.jobs}",
        ))
    counts = report.counts()
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    print(f"{summary}; executed {report.executed}, "
          f"{report.wall_s:.1f}s wall; cache {cache.root}", file=sys.stderr)
    if args.require_cached and report.executed:
        print(f"--require-cached: {report.executed} cells executed "
              f"(expected 100% cache hits)", file=sys.stderr)
        return 1, report
    return (0 if report.ok else 1), report


def _register_scenario_files(paths) -> list[str]:
    """Register scenario files; returns their experiment names.

    Raises :class:`repro.scenario.ScenarioError` on an invalid file.
    """
    from repro.scenario import register_scenario_file

    return [register_scenario_file(path).name for path in paths]


def _cmd_sweep_run(args) -> int:
    """`repro sweep run`: drive selected cells through the cached runner."""
    from repro import runner
    from repro.runner import Manifest, UnknownCellError
    from repro.scenario import ScenarioError

    cache, manifest_path = _sweep_paths(args)
    scenario_experiments: list[str] = []
    if getattr(args, "scenario", None):
        try:
            scenario_experiments = _register_scenario_files(args.scenario)
        except ScenarioError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.resume:
        manifest = Manifest.load(manifest_path)
        if manifest is None:
            print(f"nothing to resume: no manifest at {manifest_path}",
                  file=sys.stderr)
            return 2
        cells = manifest.cells()
        print(f"resuming {len(cells)} cells from {manifest_path} "
              f"({len(manifest.pending_cells())} incomplete)",
              file=sys.stderr)
    else:
        selectors = args.selectors
        if scenario_experiments and selectors == ["all"]:
            # `--scenario FILE` with no explicit selectors runs exactly
            # the scenario cells, not every registered experiment.
            selectors = scenario_experiments
        try:
            cells = runner.parse_selectors(selectors, args.scale)
        except UnknownCellError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        manifest = Manifest(manifest_path)
    if not cells:
        print("no cells selected", file=sys.stderr)
        return 2
    rc, _ = _drive_cells(args, cells, cache, manifest)
    return rc


def _print_failed_assertions(report) -> int:
    """Scenario assertion failures to stderr; returns how many failed.

    Each line names the measured value and the threshold it broke
    (see :func:`repro.scenario.executor.format_assertion_failure`).
    """
    from repro.scenario.executor import format_assertion_failure

    failed = 0
    for outcome in report.outcomes:
        result = outcome.result if outcome.good else None
        if not result:
            continue
        for record in result.get("assertions", ()):
            if not record.get("passed"):
                failed += 1
                print(f"  assertion failed [{outcome.cell.cell_id}] "
                      f"{format_assertion_failure(record)}", file=sys.stderr)
    return failed


def _cmd_scenario_run(args) -> int:
    """`repro scenario run`: execute scenario files as sweep cells."""
    from repro.runner import Manifest, cells_for
    from repro.scenario import ScenarioError

    cache, manifest_path = _sweep_paths(args)
    try:
        experiments = _register_scenario_files(args.files)
    except ScenarioError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    cells = [cell for name in experiments
             for cell in cells_for(name, args.scale)]
    rc, report = _drive_cells(args, cells, cache, Manifest(manifest_path))
    failed = _print_failed_assertions(report)
    if failed:
        print(f"{failed} scenario assertion(s) failed", file=sys.stderr)
        return 1
    return rc


def _cmd_scenario_validate(args) -> int:
    """`repro scenario validate`: schema-check files, precise errors."""
    from repro.scenario import ScenarioError, load_scenario

    bad = 0
    for path in args.files:
        try:
            scenario = load_scenario(path)
        except ScenarioError as exc:
            print(f"{path}: INVALID\n  {exc}")
            bad += 1
            continue
        print(f"{path}: ok — scenario {scenario.name!r}, "
              f"{len(scenario.cases)} case(s) x "
              f"{len(scenario.policies)} policies, "
              f"{len(scenario.phases)} phases, "
              f"{len(scenario.assertions)} assertions")
    return 1 if bad else 0


def _cmd_scenario_list(args) -> int:
    """`repro scenario list`: table of the scenarios in a directory."""
    from repro.scenario import ScenarioError, discover_scenarios, load_scenario

    try:
        paths = discover_scenarios(args.dir)
    except ScenarioError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    rows = []
    for path in paths:
        try:
            s = load_scenario(path)
            rows.append([path.name, s.name,
                         "x".join([str(len(s.cases)),
                                   str(len(s.policies))]),
                         len(s.phases), s.title[:40]])
        except ScenarioError as exc:
            rows.append([path.name, "-", "-", "-", f"INVALID: {exc}"[:60]])
    print(format_table(
        ["file", "scenario", "cells", "phases", "title"], rows,
        title=f"scenarios in {args.dir}",
    ))
    return 0


def cmd_scenario(args) -> int:
    """`repro scenario`: dispatch to the run/validate/list sub-commands."""
    if args.scenario_command == "run":
        return _cmd_scenario_run(args)
    if args.scenario_command == "validate":
        return _cmd_scenario_validate(args)
    return _cmd_scenario_list(args)


def _cmd_sweep_status(args) -> int:
    """`repro sweep status`: summarise the manifest and cache contents."""
    from repro.runner import Manifest

    cache, manifest_path = _sweep_paths(args)
    manifest = Manifest.load(manifest_path)
    if manifest is None:
        print(f"no sweep manifest at {manifest_path}")
    else:
        entries = manifest.data["cells"]
        rows = [
            [cell_id, e.get("status", "pending"), e.get("attempts", 0),
             e.get("wall_s", 0.0)]
            for cell_id, e in sorted(entries.items())
        ]
        print(format_table(
            ["cell", "status", "attempts", "wall s"], rows,
            title=f"manifest {manifest_path}",
        ))
        summary = ", ".join(
            f"{v} {k}" for k, v in sorted(manifest.summary().items()))
        print(summary)
    print(f"{len(cache)} cached results in {cache.results_dir}")
    return 0


def _cmd_sweep_clean(args) -> int:
    """`repro sweep clean`: drop cached results and the manifest."""
    cache, manifest_path = _sweep_paths(args)
    removed = cache.clear()
    had_manifest = manifest_path.exists()
    if had_manifest:
        manifest_path.unlink()
    print(f"removed {removed} cached results"
          + (" and the manifest" if had_manifest else "")
          + f" from {cache.root}")
    return 0


def cmd_sweep(args) -> int:
    """`repro sweep`: dispatch to the run/status/clean sub-commands."""
    if args.sweep_command == "run":
        return _cmd_sweep_run(args)
    if args.sweep_command == "status":
        return _cmd_sweep_status(args)
    return _cmd_sweep_clean(args)


def _cmd_report_html(args) -> int:
    """`repro report html`: write the self-contained dashboard."""
    from repro.report import render_report

    cache, _ = _sweep_paths(args)
    html = render_report(cache, title=args.title)
    with open(args.out, "w") as fh:
        fh.write(html)
    print(f"report written to {args.out} "
          f"({len(html) // 1024} KiB, no external assets)")
    return 0


def _cmd_report_regress(args) -> int:
    """`repro report regress`: gate the cache against a baseline."""
    from repro.report import bless, compare, load_baseline
    from repro.report.regress import (
        DEFAULT_FAIL,
        DEFAULT_WARN,
        BaselineError,
        format_report,
        save_baseline,
    )

    cache, _ = _sweep_paths(args)
    if args.bless:
        try:
            doc = bless(cache,
                        warn=args.warn if args.warn is not None else DEFAULT_WARN,
                        fail=args.fail if args.fail is not None else DEFAULT_FAIL,
                        note=args.note)
        except BaselineError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        path = save_baseline(doc, args.baseline)
        print(f"blessed {len(doc['cells'])} cells into {path}")
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except BaselineError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = compare(baseline, cache, warn=args.warn, fail=args.fail)
    print(format_report(report, verbose=args.verbose))
    return 0 if report.ok else 1


def cmd_report(args) -> int:
    """`repro report`: dispatch to the html/regress sub-commands."""
    if args.report_command == "html":
        return _cmd_report_html(args)
    return _cmd_report_regress(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "compare":
        return cmd_compare(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "numa":
        return cmd_numa(args)
    if args.command == "top":
        return cmd_top(args)
    if args.command == "fleet":
        return cmd_fleet(args)
    if args.command == "pagemap":
        return cmd_pagemap(args)
    if args.command == "why":
        return cmd_why(args)
    if args.command == "audit":
        return cmd_audit(args)
    if args.command == "heat":
        return cmd_heat(args)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "scenario":
        return cmd_scenario(args)
    if args.command == "report":
        return cmd_report(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
