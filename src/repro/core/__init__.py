"""HawkEye: the paper's contribution.

Four cooperating mechanisms (paper §3):

* :mod:`repro.core.prezero` — asynchronous rate-limited page pre-zeroing
  with non-temporal stores (§3.1);
* :mod:`repro.core.bloat` — watermark-triggered recovery of zero-filled
  bloat inside huge pages (§3.2);
* :mod:`repro.core.access_map` — fine-grained access-coverage tracking in
  a per-process bucket array (§3.3);
* :mod:`repro.core.promotion` — cross-process promotion ordering, by
  estimated (HawkEye-G) or measured (HawkEye-PMU) MMU overhead (§3.4).

:class:`repro.core.hawkeye.HawkEyePolicy` packages them behind the
standard policy interface.
"""

from repro.core.access_map import AccessMap, bucket_of
from repro.core.bloat import BloatRecovery
from repro.core.hawkeye import HawkEyeConfig, HawkEyePolicy
from repro.core.prezero import PreZeroThread
from repro.core.promotion import PromotionEngine

__all__ = [
    "AccessMap",
    "BloatRecovery",
    "HawkEyeConfig",
    "HawkEyePolicy",
    "PreZeroThread",
    "PromotionEngine",
    "bucket_of",
]
