"""HawkEye's per-process ``access_map`` (paper §3.3, Figure 4).

The access_map is an array of buckets over access-coverage: regions whose
EMA coverage is 0–49 base pages sit in bucket 0, 50–99 in bucket 1, …,
450+ in bucket 9.  It encodes *frequency* (the bucket index — how many
TLB entries the region's accesses demand) and *recency* (position within
a bucket: a region moving **up** is inserted at the head, a region moving
**down** at the tail, and promotion consumes buckets from high index to
low, head to tail).  Cold regions therefore drift to low buckets and
bucket tails, deferring their promotion automatically.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.units import PAGES_PER_HUGE

#: bucket width in access-coverage units (paper: 10 buckets over 0..512).
BUCKET_WIDTH = 50
NUM_BUCKETS = 10


def bucket_of(coverage: float) -> int:
    """Bucket index for an access-coverage value (0..512)."""
    if coverage < 0:
        raise ValueError(f"coverage must be non-negative, got {coverage}")
    return min(NUM_BUCKETS - 1, int(coverage) // BUCKET_WIDTH)


class AccessMap:
    """Bucketed ordering of one process's promotion candidates."""

    def __init__(self) -> None:
        #: each bucket is an ordered set: iteration order = head to tail.
        self.buckets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(NUM_BUCKETS)
        ]
        self._bucket_of: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._bucket_of)

    def __contains__(self, hvpn: int) -> bool:
        return hvpn in self._bucket_of

    def update(self, hvpn: int, coverage: float) -> None:
        """Place/move a region according to its new EMA coverage.

        Moving up inserts at the bucket head (recently hot), moving down
        appends at the tail; unchanged buckets keep their position.
        """
        new = bucket_of(min(coverage, PAGES_PER_HUGE))
        old = self._bucket_of.get(hvpn)
        if old == new:
            return
        if old is not None:
            del self.buckets[old][hvpn]
        moved_up = old is None or new > old
        bucket = self.buckets[new]
        if moved_up:
            bucket[hvpn] = None
            bucket.move_to_end(hvpn, last=False)  # head
        else:
            bucket[hvpn] = None  # tail
        self._bucket_of[hvpn] = new

    def remove(self, hvpn: int) -> None:
        """Drop a region from the map (promoted, freed, or exited)."""
        old = self._bucket_of.pop(hvpn, None)
        if old is not None:
            del self.buckets[old][hvpn]

    def update_many(self, hvpns: np.ndarray, coverages: np.ndarray) -> None:
        """Bulk :meth:`update`: one vectorized bucket computation.

        Equivalent to calling ``update(hvpn, coverage)`` pairwise in array
        order — ``min``/truncate/divide happen as array ops, and the
        remaining OrderedDict fixups only run for regions whose bucket
        actually changed (the common case after an EMA refresh is *no*
        move, which this detects without touching Python floats).
        """
        if coverages.size and bool((coverages < 0).any()):
            bad = float(coverages[coverages < 0][0])
            raise ValueError(f"coverage must be non-negative, got {bad}")
        clipped = np.minimum(coverages, PAGES_PER_HUGE)
        news = np.minimum(
            clipped.astype(np.int64) // BUCKET_WIDTH, NUM_BUCKETS - 1)
        bucket_of_ = self._bucket_of
        buckets = self.buckets
        for hvpn, new in zip(hvpns.tolist(), news.tolist()):
            old = bucket_of_.get(hvpn)
            if old == new:
                continue
            if old is not None:
                del buckets[old][hvpn]
            bucket = buckets[new]
            if old is None or new > old:
                bucket[hvpn] = None
                bucket.move_to_end(hvpn, last=False)  # head
            else:
                bucket[hvpn] = None  # tail
            bucket_of_[hvpn] = new

    def remove_many(self, hvpns: np.ndarray) -> None:
        """Bulk :meth:`remove` in array order."""
        for hvpn in hvpns.tolist():
            self.remove(hvpn)

    def highest_nonempty(self) -> int | None:
        """Index of the hottest non-empty bucket, or None when empty."""
        for idx in range(NUM_BUCKETS - 1, -1, -1):
            if self.buckets[idx]:
                return idx
        return None

    def head(self, idx: int) -> int | None:
        """First (most recently hot) region of bucket ``idx``."""
        bucket = self.buckets[idx]
        return next(iter(bucket)) if bucket else None

    def pop_next(self) -> int | None:
        """Remove and return the next region in promotion order."""
        idx = self.highest_nonempty()
        if idx is None:
            return None
        hvpn = next(iter(self.buckets[idx]))
        self.remove(hvpn)
        return hvpn

    def iter_promotion_order(self):
        """All regions, hottest bucket first, head to tail within buckets."""
        for idx in range(NUM_BUCKETS - 1, -1, -1):
            yield from self.buckets[idx]

    def pressure_estimate(self) -> float:
        """Crude TLB-entry demand of the unpromoted candidates.

        Used by HawkEye-G as its stand-in for measured MMU overhead: the
        sum of bucket mid-point coverages approximates how many base-page
        TLB entries the candidates would occupy."""
        total = 0.0
        for idx, bucket in enumerate(self.buckets):
            total += len(bucket) * (idx + 0.5) * BUCKET_WIDTH
        return total
