"""Memory-bloat recovery (paper §3.2).

HawkEye promotes huge pages aggressively at fault time, accepting that a
sparsely-used huge page wastes its untouched (still zero-filled) base
pages.  Under memory pressure this thread recovers the waste:

* It activates when allocated memory exceeds the **high** watermark
  (85 %) and runs, rate-limited, until allocation falls below the **low**
  watermark (70 %).
* Applications are scanned in order of *lowest* estimated MMU overhead —
  the process that least needs huge pages loses them first, consistent
  with the allocation policy in §3.4.
* For each huge page it counts zero-filled base pages by scanning until
  the first non-zero byte of each page (≈10 bytes on average for in-use
  pages, Figure 3), so scan cost is proportional to the number of bloat
  pages, not to total memory.
* Huge pages whose zero-filled fraction reaches the threshold are
  demoted, and the zero pages are remapped copy-on-write onto the
  canonical zero frame, returning their frames to the allocator.

``emergency`` is the same scan without rate limiting, invoked from the
kernel's allocation-failure path — this is why HawkEye's Figure 1 Redis
run survives where Linux and Ingens hit OOM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro import audit, trace
from repro.kernel.kthread import RateLimiter
from repro.mem.watermarks import Watermarks
from repro.units import PAGES_PER_HUGE
from repro.vm.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class BloatRecovery:
    """Watermark-gated, rate-limited zero-page recovery thread."""

    def __init__(
        self,
        kernel: "Kernel",
        overhead_of: Callable[[Process], float],
        watermarks: Watermarks | None = None,
        scan_pages_per_sec: float = 100_000.0,
        zero_threshold: float = 0.5,
    ):
        self.kernel = kernel
        #: the policy's per-process MMU-overhead belief (estimated or
        #: measured); victims are scanned lowest-overhead first.
        self.overhead_of = overhead_of
        self.watermarks = watermarks or Watermarks()
        self.zero_threshold = zero_threshold
        self._limiter = RateLimiter(scan_pages_per_sec, kernel.config.epoch_us)
        self.regions_demoted = 0
        #: scan position, so rate-limited epochs make progress through
        #: the candidate list instead of rescanning its head.
        self._cursor = 0

    @property
    def active(self) -> bool:
        return self.watermarks.active

    def run_epoch(self) -> int:
        """One rate-limited recovery step; returns pages recovered."""
        kernel = self.kernel
        self._limiter.refill()
        if not self.watermarks.update(kernel.allocated_fraction()):
            return 0
        candidates = list(self._scan_order())
        if not candidates:
            return 0
        if self._cursor >= len(candidates):
            self._cursor = 0
        recovered = 0
        while self._cursor < len(candidates):
            if not self._limiter.take(PAGES_PER_HUGE):
                proc, hvpn = candidates[self._cursor]
                self._decide(proc, hvpn, "reject", "budget_exhausted",
                             stage=2,
                             inputs={"budget_left": self._limiter.available,
                                     "need": PAGES_PER_HUGE})
                break
            proc, hvpn = candidates[self._cursor]
            self._cursor += 1
            recovered += self._consider(proc, hvpn)
            if not self.watermarks.update(kernel.allocated_fraction()):
                break
        return recovered

    def emergency(self, pages_needed: int) -> int:
        """Unbounded recovery on the allocation-failure path."""
        recovered = 0
        for proc, hvpn in self._scan_order():
            recovered += self._consider(proc, hvpn)
            if recovered >= pages_needed:
                break
        return recovered

    def _scan_order(self):
        """(process, huge region) pairs, least-overhead process first."""
        procs = sorted(self.kernel.processes, key=self.overhead_of)
        for proc in procs:
            for region in list(proc.regions.values()):
                if region.is_huge:
                    yield proc, region.hvpn

    def _decide(self, proc: Process, hvpn: int, outcome: str, reason: str,
                stage: int, inputs: dict | None = None) -> None:
        """Record one bloat-victim-selection decision when audited."""
        if audit.enabled and (al := self.kernel.audit) is not None \
                and al.enabled:
            al.decide("bloat", proc.name, proc.pid, hvpn, outcome, reason,
                      stage=stage, inputs=inputs)

    def _consider(self, proc: Process, hvpn: int) -> int:
        """Scan one huge page; demote and dedup if it is mostly bloat."""
        kernel = self.kernel
        region = proc.regions.get(hvpn)
        if region is None or not region.is_huge:
            self._decide(proc, hvpn, "reject", "region_gone", stage=1)
            return 0
        zeros, scanned = kernel.count_zero_pages(proc, hvpn)
        kernel.stats.bloat_cpu_us += kernel.costs.scan_page_us(scanned)
        if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.BLOAT_SCAN, proc.name,
                    kernel.costs.scan_page_us(scanned), hvpn,
                    f"zeros={zeros}")
        if zeros < self.zero_threshold * PAGES_PER_HUGE:
            self._decide(
                proc, hvpn, "reject", "below_threshold", stage=3,
                inputs={"zeros": zeros,
                        "threshold_pages":
                            self.zero_threshold * PAGES_PER_HUGE,
                        "overhead": self.overhead_of(proc)})
            return 0
        kernel.demote_region(proc, hvpn)
        recovered, dedup_scanned = kernel.dedup_zero_pages(proc, hvpn)
        kernel.stats.bloat_cpu_us += kernel.costs.scan_page_us(dedup_scanned)
        region.bloat_demoted = True
        self.regions_demoted += 1
        self._decide(proc, hvpn, "accept", "demoted", stage=4,
                     inputs={"zeros": zeros, "recovered": recovered,
                             "overhead": self.overhead_of(proc)})
        if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.BLOAT_RECOVER, proc.name,
                    kernel.costs.scan_page_us(dedup_scanned), hvpn,
                    f"recovered={recovered}")
        return recovered
