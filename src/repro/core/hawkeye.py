"""The HawkEye policy: §3's four mechanisms behind the policy interface.

Fault path: like Linux THP, HawkEye maps a huge page at the *first* fault
in a region when contiguity allows — but because of async pre-zeroing the
fault does not pay the 452 µs synchronous clearing in the common case
(``trusts_zero_lists``).  Everything else is background work:

* the pre-zero thread refills the buddy allocator's zero lists;
* the access-bit sampler (kernel, every 30 s) feeds each process's
  access_map;
* the promotion engine consumes access_maps, ordered across processes by
  estimated (``variant='g'``) or measured (``variant='pmu'``) MMU
  overhead;
* bloat recovery runs between the memory watermarks, and also serves the
  kernel's allocation-failure path (``on_memory_pressure``).

``HawkEyeConfig`` collects every knob with the paper's defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import audit
from repro.core.access_map import AccessMap
from repro.core.bloat import BloatRecovery
from repro.core.limits import HugePageLimits
from repro.core.prezero import PreZeroThread
from repro.core.promotion import PromotionEngine
from repro.mem.watermarks import Watermarks
from repro.policies.base import HugePagePolicy
from repro.vm.process import Process
from repro.vm.vma import VMA

#: smoothing for the per-epoch PMU overhead samples.
PMU_EMA_ALPHA = 0.5


@dataclass
class HawkEyeConfig:
    """Tunables, defaulting to the paper's prototype values."""

    variant: str = "g"                      # 'g' or 'pmu'
    promote_per_sec: float = 10.0           # huge-page promotions per second
    prezero_pages_per_sec: float = 100_000.0
    non_temporal: bool = True
    prezero_enabled: bool = True
    watermark_high: float = 0.85            # §3.2 bloat-recovery trigger
    watermark_low: float = 0.70
    bloat_scan_pages_per_sec: float = 100_000.0
    bloat_zero_threshold: float = 0.5       # zero fraction to demote
    pmu_stop_threshold: float = 0.02        # PMU variant stops below 2 %
    #: map huge at first fault (the paper's behaviour).  False gives the
    #: "HawkEye-4KB" configuration of Tables 1 and 8 (pre-zeroing only).
    huge_faults: bool = True
    #: §3.5 extension — per-process huge-page caps (name or "prefix*" ->
    #: max huge pages); None disables limiting.
    huge_page_limits: dict | None = None
    #: §3.5 extension — cgroup-like group caps ("prefix*" -> max huge
    #: pages summed across every live matching process).
    huge_page_group_limits: dict | None = None
    #: §3.5 extension — adapt the bloat-recovery watermarks to allocation
    #: volatility instead of using the static 85/70 thresholds.
    dynamic_watermarks: bool = False


class HawkEyePolicy(HugePagePolicy):
    """HawkEye-G / HawkEye-PMU."""

    trusts_zero_lists = True

    def __init__(self, kernel, config: HawkEyeConfig | None = None, **overrides):
        super().__init__(kernel)
        if config is None:
            config = HawkEyeConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config
        self.name = f"hawkeye-{config.variant}"
        self.access_maps: dict[int, AccessMap] = {}
        #: smoothed per-process measured MMU overhead (PMU variant).
        self.measured: dict[int, float] = {}
        self.prezero = PreZeroThread(
            kernel,
            pages_per_sec=config.prezero_pages_per_sec,
            non_temporal=config.non_temporal,
        )
        if config.dynamic_watermarks:
            from repro.mem.watermarks import DynamicWatermarks

            watermarks = DynamicWatermarks(config.watermark_high, config.watermark_low)
        else:
            watermarks = Watermarks(config.watermark_high, config.watermark_low)
        self.bloat = BloatRecovery(
            kernel,
            overhead_of=self.estimated_overhead,
            watermarks=watermarks,
            scan_pages_per_sec=config.bloat_scan_pages_per_sec,
            zero_threshold=config.bloat_zero_threshold,
        )
        self.limits = None
        if (config.huge_page_limits is not None
                or config.huge_page_group_limits is not None):
            self.limits = HugePageLimits(config.huge_page_limits,
                                         config.huge_page_group_limits)
            self.limits.bind(kernel)
        self.engine = PromotionEngine(
            kernel,
            self.access_maps,
            promote_per_sec=config.promote_per_sec,
            variant=config.variant,
            measured_overhead=self.measured_overhead,
            pmu_stop_threshold=config.pmu_stop_threshold,
            skip_bloat_demoted=lambda: self.bloat.active,
            limits=self.limits,
        )

    # ------------------------------------------------------------------ #
    # fault path                                                          #
    # ------------------------------------------------------------------ #

    def fault_size(self, proc: Process, vma: VMA, vpn: int) -> str:
        """Huge at first fault, unless disabled, hinted off, or over a cap."""
        if not self.config.huge_faults:
            return "base"
        if self.limits is not None and not self.limits.may_promote(proc):
            # Rare path: only processes with a §3.5 cap ever land here, so
            # the per-fault audit test stays off the common huge path.
            if audit.enabled and (al := self.kernel.audit) is not None \
                    and al.enabled:
                al.decide("fault_size", proc.name, proc.pid, vpn >> 9,
                          "reject", "limit_cap", stage=1,
                          inputs={"limit": self.limits.limit_for(proc),
                                  "held": self.limits.held(proc)})
            return "base"
        return "huge"

    # ------------------------------------------------------------------ #
    # background work                                                     #
    # ------------------------------------------------------------------ #

    def on_epoch(self) -> None:
        """Run one epoch of pre-zeroing, promotion and bloat recovery."""
        for proc in self.kernel.processes:
            sample = self.kernel.pmu[proc.pid].sample()
            old = self.measured.get(proc.pid, 0.0)
            self.measured[proc.pid] = PMU_EMA_ALPHA * sample + (1 - PMU_EMA_ALPHA) * old
        if self.config.prezero_enabled:
            self.prezero.run_epoch()
        self.engine.run_epoch()
        self.bloat.run_epoch()

    #: access-coverage discount for regions resident off the owner's home
    #: node: a remote promotion saves less than a local one (the walk it
    #: eliminates was cheap relative to the remote accesses that remain),
    #: and knumad may be about to move — and demote — the region anyway.
    NUMA_REMOTE_COVERAGE_PENALTY = 0.5

    def on_sample(self, proc: Process) -> None:
        """Fresh access-bit sample: rebuild the process's access_map entries.

        The vectorized path computes the drop/keep partition, the
        bloat-demoted clear and the NUMA coverage discount as array masks
        over the region table, then applies them through the access_map's
        bulk entry points.  Removals and updates touch *distinct* keys, so
        splitting the scalar loop's interleaved remove/update sequence
        into all-removals-then-all-updates (each in region order) leaves
        every bucket's contents and internal order identical.
        """
        if not self.kernel.vectorized:
            self._on_sample_scalar(proc)
            return
        amap = self.access_maps.setdefault(proc.pid, AccessMap())
        table = proc.regions
        if not len(table):
            return
        numa = self.kernel.numa
        cross_node = numa is not None and not numa.replicated_pt
        hvpns = table.hvpn_arr()
        drop = table.is_huge_arr() | (table.resident_arr() == 0)
        keep = ~drop
        # Regions in use again may be re-promoted once pressure subsides.
        bloat_demoted = table.bloat_demoted_arr()
        bloat_demoted[keep & bloat_demoted
                      & (table.last_coverage_arr() > 0)] = False
        keep_hvpns = hvpns[keep]
        coverage = table.coverage_ema_arr()[keep].copy()
        if cross_node:
            nodes = numa.region_nodes_arr(proc, keep_hvpns)
            remote = (nodes >= 0) & (nodes != proc.home_node)
            coverage[remote] *= self.NUMA_REMOTE_COVERAGE_PENALTY
        amap.remove_many(hvpns[drop])
        amap.update_many(keep_hvpns, coverage)

    def _on_sample_scalar(self, proc: Process) -> None:
        """Reference sample pass: per-region dict work, one update each."""
        amap = self.access_maps.setdefault(proc.pid, AccessMap())
        numa = self.kernel.numa
        cross_node = numa is not None and not numa.replicated_pt
        for hvpn, region in proc.regions.items():
            if region.is_huge or region.resident == 0:
                amap.remove(hvpn)
                continue
            if region.bloat_demoted and region.last_coverage > 0:
                # The region is in use again: it may be re-promoted once
                # memory pressure subsides.
                region.bloat_demoted = False
            coverage = region.coverage_ema
            if cross_node and numa.region_node(proc, hvpn) not in (
                    None, proc.home_node):
                coverage *= self.NUMA_REMOTE_COVERAGE_PENALTY
            amap.update(hvpn, coverage)

    # ------------------------------------------------------------------ #
    # memory pressure                                                     #
    # ------------------------------------------------------------------ #

    def on_memory_pressure(self, pages_needed: int) -> int:
        """Allocation-failure hook: run emergency bloat recovery (par. 3.2)."""
        return self.bloat.emergency(pages_needed)

    def on_madvise_free(self, proc: Process, vpn: int, npages: int) -> None:
        """Drop freed regions from the access_map."""
        amap = self.access_maps.get(proc.pid)
        if amap is None:
            return
        for hvpn in range(vpn >> 9, (vpn + npages - 1 >> 9) + 1):
            region = proc.regions.get(hvpn)
            if region is None or region.resident <= 0:
                amap.remove(hvpn)

    def on_process_exit(self, proc: Process) -> None:
        """Forget the exiting process's access_map and PMU samples."""
        self.access_maps.pop(proc.pid, None)
        self.measured.pop(proc.pid, None)

    # ------------------------------------------------------------------ #
    # overhead beliefs                                                    #
    # ------------------------------------------------------------------ #

    def measured_overhead(self, proc: Process) -> float:
        """Smoothed Table 4 counter reading (HawkEye-PMU's signal)."""
        return self.measured.get(proc.pid, 0.0)

    def estimated_overhead(self, proc: Process) -> float:
        """The variant's belief about a process's MMU overhead.

        HawkEye-G converts the access_map's TLB-entry demand into a
        saturating pressure score; HawkEye-PMU reads the emulated
        counters.  Used for promotion ordering (PMU), and by bloat
        recovery to pick the least-afflicted victim first (both)."""
        if self.config.variant == "pmu":
            return self.measured_overhead(proc)
        amap = self.access_maps.get(proc.pid)
        if amap is None:
            return 0.0
        demand = amap.pressure_estimate()
        capacity = self.kernel.mmu.tlb.l1_base + self.kernel.mmu.tlb.l2_shared
        return demand / (demand + capacity)
