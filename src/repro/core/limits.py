"""Huge-page allocation limits (paper §3.5, "huge page starvation").

The paper notes that allocating huge pages purely by MMU overhead lets an
adversarial process monopolise contiguity, and suggests integrating with
resource-limiting tools like cgroups.  This module implements that
extension: a :class:`HugePageLimits` registry caps the number of huge
pages a process (or cgroup of processes) may hold; the promotion engine
skips processes at their cap, and the fault path falls back to base pages
for them.

Limits are expressed in huge pages and may be attached to a process name
(exact match) or a name prefix (``prefix*`` — a crude cgroup).
"""

from __future__ import annotations

from repro.vm.process import Process


class HugePageLimits:
    """Per-process / per-group caps on held huge pages."""

    def __init__(self, limits: dict[str, int] | None = None):
        self._exact: dict[str, int] = {}
        self._prefix: list[tuple[str, int]] = []
        for pattern, cap in (limits or {}).items():
            self.set_limit(pattern, cap)
        #: promotion attempts refused because a cap was reached.
        self.refusals = 0

    def set_limit(self, pattern: str, cap: int) -> None:
        """Cap ``pattern`` (exact name, or ``prefix*``) at ``cap`` huge pages."""
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        if pattern.endswith("*"):
            self._prefix.append((pattern[:-1], cap))
        else:
            self._exact[pattern] = cap

    def limit_for(self, proc: Process) -> int | None:
        """Effective cap for ``proc``, or None when unlimited."""
        if proc.name in self._exact:
            return self._exact[proc.name]
        matches = [cap for prefix, cap in self._prefix if proc.name.startswith(prefix)]
        return min(matches) if matches else None

    def held(self, proc: Process) -> int:
        """Huge pages the process currently maps."""
        return len(proc.page_table.huge)

    def may_promote(self, proc: Process) -> bool:
        """True when ``proc`` may receive one more huge page."""
        cap = self.limit_for(proc)
        if cap is None or self.held(proc) < cap:
            return True
        self.refusals += 1
        return False
