"""Huge-page allocation limits (paper §3.5, "huge page starvation").

The paper notes that allocating huge pages purely by MMU overhead lets an
adversarial process monopolise contiguity, and suggests integrating with
resource-limiting tools like cgroups.  This module implements that
extension: a :class:`HugePageLimits` registry caps the number of huge
pages a process (or cgroup of processes) may hold; the promotion engine
skips processes at their cap, and the fault path falls back to base pages
for them.

Limits come in two flavours:

* **per-process caps** — attached to a process name (exact match) or a
  name prefix (``prefix*``); each matching process is individually
  capped.
* **group caps** — attached to a name prefix (``prefix*``), bounding the
  *sum* of huge pages held across every live matching process, the way a
  cgroup's ``hugetlb`` controller bounds a subtree.  Group occupancy is
  computed live from the kernel's process list (when :meth:`bind` has
  been called) or from the registered member set, so a killed-and-
  restarted tenant can never leak its old holdings into the group's
  budget — teardown clears the page table and drops the process from
  the live list, and exited members are pruned before every sum.
"""

from __future__ import annotations

from repro.vm.process import Process


class HugePageLimits:
    """Per-process / per-group caps on held huge pages."""

    def __init__(self, limits: dict[str, int] | None = None,
                 group_limits: dict[str, int] | None = None):
        self._exact: dict[str, int] = {}
        self._prefix: list[tuple[str, int]] = []
        for pattern, cap in (limits or {}).items():
            self.set_limit(pattern, cap)
        #: prefix -> cap on the SUM of huge pages held by live members.
        self._group_caps: dict[str, int] = {}
        for pattern, cap in (group_limits or {}).items():
            self.set_group_limit(pattern, cap)
        #: kernel whose live process list defines group membership (set
        #: by :meth:`bind`); without it, membership is tracked explicitly.
        self._kernel = None
        self._members: dict[str, list[Process]] = {}
        #: promotion attempts refused because a cap was reached.
        self.refusals = 0
        #: the subset of refusals caused by a *group* cap.
        self.group_refusals = 0

    def set_limit(self, pattern: str, cap: int) -> None:
        """Cap ``pattern`` (exact name, or ``prefix*``) at ``cap`` huge pages."""
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        if pattern.endswith("*"):
            self._prefix.append((pattern[:-1], cap))
        else:
            self._exact[pattern] = cap

    def set_group_limit(self, pattern: str, cap: int) -> None:
        """Cap the summed holdings of every ``pattern`` process at ``cap``."""
        if cap < 0:
            raise ValueError(f"cap must be non-negative, got {cap}")
        self._group_caps[pattern[:-1] if pattern.endswith("*") else pattern] = cap

    def bind(self, kernel) -> None:
        """Use ``kernel.processes`` as the group-membership source of truth."""
        self._kernel = kernel

    def limit_for(self, proc: Process) -> int | None:
        """Effective per-process cap for ``proc``, or None when unlimited."""
        if proc.name in self._exact:
            return self._exact[proc.name]
        matches = [cap for prefix, cap in self._prefix if proc.name.startswith(prefix)]
        return min(matches) if matches else None

    def held(self, proc: Process) -> int:
        """Huge pages the process currently maps."""
        return len(proc.page_table.huge)

    # ------------------------------------------------------------------ #
    # group accounting                                                    #
    # ------------------------------------------------------------------ #

    def _group_members(self, prefix: str) -> list[Process]:
        if self._kernel is not None:
            return [p for p in self._kernel.processes
                    if p.name.startswith(prefix)]
        members = self._members.get(prefix, [])
        # Restart churn: an exited process keeps its (cleared) page table
        # but must not linger in the member list forever.
        members[:] = [p for p in members if not p.finished]
        return members

    def _track(self, proc: Process) -> None:
        """Register ``proc`` as a member of every group it matches."""
        if self._kernel is not None:
            return
        for prefix in self._group_caps:
            if proc.name.startswith(prefix):
                members = self._members.setdefault(prefix, [])
                if proc not in members:
                    members.append(proc)

    def group_held(self, prefix: str) -> int:
        """Huge pages currently held across a group's live members."""
        return sum(len(p.page_table.huge) for p in self._group_members(prefix))

    def group_stats(self) -> dict[str, tuple[int, int]]:
        """``prefix -> (held, cap)`` for every configured group."""
        return {prefix: (self.group_held(prefix), cap)
                for prefix, cap in sorted(self._group_caps.items())}

    def _group_blocks(self, proc: Process) -> bool:
        """True when a group cap forbids one more huge page for ``proc``."""
        for prefix, cap in self._group_caps.items():
            if proc.name.startswith(prefix):
                self._track(proc)
                if self.group_held(prefix) >= cap:
                    return True
        return False

    def may_promote(self, proc: Process) -> bool:
        """True when ``proc`` may receive one more huge page."""
        cap = self.limit_for(proc)
        if cap is not None and self.held(proc) >= cap:
            self.refusals += 1
            return False
        if self._group_caps and self._group_blocks(proc):
            self.refusals += 1
            self.group_refusals += 1
            return False
        return True
