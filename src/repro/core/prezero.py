"""Asynchronous page pre-zeroing (paper §3.1).

A rate-limited background thread drains the buddy allocator's non-zero
free lists, clears the frames with non-temporal stores, and moves the
blocks to the zero lists, so that anonymous faults — base or huge — can
map memory without synchronous clearing.  This removes 25 % of base-fault
latency and 97 % of huge-fault latency (Table 1) in the common case.

Cache interference (Figure 10): zeroing through the cache evicts the
co-running workloads' data.  The thread publishes an interference factor
proportional to its achieved zeroing bandwidth; with non-temporal hints
the factor drops to the residual memory-bandwidth cost.  Calibration
anchors to the paper's worst-case experiment — zeroing at 1 GB/s slows
omnetpp (cache sensitivity 1.0) by 27 % with caching stores and 6 % with
non-temporal stores.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import trace
from repro.kernel.kthread import RateLimiter
from repro.units import BASE_PAGE_SIZE, GB, SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

#: slowdown per GB/s of zeroing traffic for a cache-sensitivity-1.0
#: workload (Figure 10: omnetpp, 27 % cached vs 6 % non-temporal).
INTERFERENCE_PER_GBPS_CACHED = 0.27
INTERFERENCE_PER_GBPS_NT = 0.06


class PreZeroThread:
    """The rate-limited asynchronous pre-zeroing kthread."""

    def __init__(
        self,
        kernel: "Kernel",
        pages_per_sec: float = 100_000.0,
        non_temporal: bool = True,
    ):
        self.kernel = kernel
        self.non_temporal = non_temporal
        self._limiter = RateLimiter(pages_per_sec, kernel.config.epoch_us)

    def run_epoch(self) -> int:
        """Zero as many free dirty blocks as this epoch's budget allows."""
        kernel = self.kernel
        self._limiter.refill()
        cpu_before = kernel.stats.prezero_cpu_us
        zeroed = 0
        while True:
            block = kernel.buddy.pop_nonzero_block()
            if block is None:
                break
            start, order = block
            pages = 1 << order
            if order > 9 or (not self._affordable(pages) and order > 0):
                # Work at huge-page granularity: blocks above order 9 are
                # split (order-9 zero blocks serve every fault size), and
                # blocks the budget can never cover are split further.
                self._split(start, order)
                continue
            if not self._limiter.take(pages):
                kernel.buddy.reinsert_dirty(start, order)
                break
            kernel.buddy.reinsert_zeroed(start, order)
            zeroed += pages
            kernel.stats.pages_prezeroed += pages
            kernel.stats.prezero_cpu_us += kernel.costs.zero_block_us(order)
        self._publish_interference(zeroed)
        if zeroed and trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.PREZERO, "kzerod",
                    kernel.stats.prezero_cpu_us - cpu_before,
                    detail=f"pages={zeroed}")
        return zeroed

    def _affordable(self, pages: int) -> bool:
        """Can the limiter ever accumulate enough tokens for this block?"""
        return pages <= max(2.0 * self._limiter.per_epoch, 2.0)

    def _split(self, start: int, order: int) -> None:
        half = 1 << (order - 1)
        self.kernel.buddy.reinsert_dirty(start, order - 1)
        self.kernel.buddy.reinsert_dirty(start + half, order - 1)

    def _publish_interference(self, pages_zeroed: int) -> None:
        """Expose this epoch's cache-pollution factor to the executor."""
        epoch_sec = self.kernel.config.epoch_us / SEC
        gbps = pages_zeroed * BASE_PAGE_SIZE / GB / epoch_sec if epoch_sec > 0 else 0.0
        per_gbps = INTERFERENCE_PER_GBPS_NT if self.non_temporal else INTERFERENCE_PER_GBPS_CACHED
        self.kernel.prezero_interference = gbps * per_gbps
