"""Cross-process huge-page promotion (paper §3.4).

Both HawkEye variants promote, within a process, in the access_map's
order (hottest bucket first, head to tail).  They differ in how the next
*process* is chosen:

* **HawkEye-G** promotes from the globally highest non-empty
  access_map bucket, round-robin among the processes that have a region
  at that index — the paper's Figure 4 example order
  ``A1,B1,C1,C2,B2,C3,C4,B3,B4,A2,C5,A3``.
* **HawkEye-PMU** picks the process with the highest *measured* MMU
  overhead (emulated Table 4 counters), round-robin among processes with
  similar overheads, and stops promoting entirely when every process is
  below a 2 % threshold — the efficiency edge Figure 5 (right) reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro import audit, trace
from repro.core.access_map import AccessMap, bucket_of
from repro.kernel.kthread import RateLimiter
from repro.vm.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

#: processes whose measured overheads differ by less than this are
#: considered tied and served round-robin (HawkEye-PMU).
PMU_TIE_MARGIN = 0.005


class PromotionEngine:
    """Rate-limited promotion driven by access_maps."""

    def __init__(
        self,
        kernel: "Kernel",
        access_maps: dict[int, AccessMap],
        promote_per_sec: float = 10.0,
        variant: str = "g",
        measured_overhead: Callable[[Process], float] | None = None,
        pmu_stop_threshold: float = 0.02,
        skip_bloat_demoted: Callable[[], bool] = lambda: False,
        limits=None,
    ):
        if variant not in ("g", "pmu"):
            raise ValueError(f"variant must be 'g' or 'pmu', got {variant!r}")
        self.kernel = kernel
        self.access_maps = access_maps
        self.variant = variant
        self.measured_overhead = measured_overhead or (lambda proc: 0.0)
        self.pmu_stop_threshold = pmu_stop_threshold
        #: optional HugePageLimits (§3.5 starvation mitigation).
        self.limits = limits
        #: while true (memory pressure), regions demoted by bloat recovery
        #: are not re-promoted, preventing promote/demote thrash.
        self.skip_bloat_demoted = skip_bloat_demoted
        self._limiter = RateLimiter(promote_per_sec, kernel.config.epoch_us)
        #: pid served last; round-robin resumes after it.
        self._rr_last_pid: int | None = None
        #: hoisted once per run_epoch — the _decide call sites build their
        #: inputs dicts eagerly, so they must stay off the disabled path.
        self._audited = False

    def _round_robin(self, candidates: list[Process]) -> list[Process]:
        """Rotate candidates so the process after the last-served is first."""
        if self._rr_last_pid is not None:
            pids = [p.pid for p in candidates]
            if self._rr_last_pid in pids:
                idx = pids.index(self._rr_last_pid) + 1
                candidates = candidates[idx:] + candidates[:idx]
            else:
                # keep global order stable relative to the full process list
                later = [p for p in candidates if p.pid > self._rr_last_pid]
                earlier = [p for p in candidates if p.pid <= self._rr_last_pid]
                candidates = later + earlier
        return candidates

    def _decide(self, proc: Process | None, hvpn: int, outcome: str,
                reason: str, stage: int, inputs: dict | None = None) -> None:
        """Record one promotion-scoring decision when audited."""
        if (al := self.kernel.audit) is not None and al.enabled:
            name = "khugepaged" if proc is None else proc.name
            pid = -1 if proc is None else proc.pid
            al.decide("promote", name, pid, hvpn, outcome, reason,
                      stage=stage, inputs=inputs)

    def run_epoch(self) -> int:
        """Promote up to this epoch's budget; returns promotions done."""
        self._audited = (audit.enabled
                         and (al := self.kernel.audit) is not None
                         and al.enabled)
        audited = self._audited
        self._limiter.refill()
        done = 0
        while self._limiter.available >= 1.0:
            picked = self._pick()
            if picked is None:
                break
            proc, hvpn = picked
            amap = self.access_maps[proc.pid]
            region = proc.regions.get(hvpn)
            ema = 0.0 if region is None else region.coverage_ema
            if self.kernel.promote_region(proc, hvpn) is None:
                # Region unpromotable (gone, or no contiguity): drop it
                # from the candidate set and keep going.  No token is
                # charged — a stale access_map entry must not burn the
                # epoch's budget and starve real candidates.
                if audited:
                    self._decide(proc, hvpn, "reject", "promote_failed",
                                 stage=3,
                                 inputs={"coverage_ema": ema,
                                         "bucket": bucket_of(ema),
                                         "fmfi": self.kernel.fmfi()})
                amap.remove(hvpn)
                continue
            if audited:
                self._decide(proc, hvpn, "accept", "promoted", stage=4,
                             inputs={"coverage_ema": ema,
                                     "bucket": bucket_of(ema),
                                     "budget_left": self._limiter.available,
                                     "variant": self.variant})
            self._limiter.take()
            amap.remove(hvpn)
            done += 1
        if done and self._limiter.available < 1.0 and audited:
            # The epoch ended on budget, not on candidate exhaustion.
            self._decide(None, -1, "reject", "budget_exhausted", stage=2,
                         inputs={"budget_left": self._limiter.available,
                                 "promoted": done})
        if done and trace.enabled and (tp := self.kernel.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.KTHREAD_EPOCH, "khugepaged",
                    detail=f"promoted={done}")
        return done

    # ------------------------------------------------------------------ #
    # candidate selection                                                 #
    # ------------------------------------------------------------------ #

    def _pick(self) -> tuple[Process, int] | None:
        if self.variant == "pmu":
            return self._pick_pmu()
        return self._pick_g()

    def _head_for(self, proc: Process, idx: int | None = None) -> int | None:
        """Next eligible region of ``proc`` (from bucket ``idx`` or any)."""
        amap = self.access_maps.get(proc.pid)
        if amap is None:
            return None
        audited = self._audited
        if self.limits is not None and not self.limits.may_promote(proc):
            if audited:
                self._decide(proc, -1, "reject", "limit_cap", stage=1,
                             inputs={"limit": self.limits.limit_for(proc),
                                     "held": self.limits.held(proc)})
            return None
        skip_bloat = self.skip_bloat_demoted()
        order = (
            amap.buckets[idx] if idx is not None else amap.iter_promotion_order()
        )
        for hvpn in list(order):
            region = proc.regions.get(hvpn)
            if region is None or region.is_huge:
                if audited:
                    self._decide(proc, hvpn, "reject",
                                 "region_gone" if region is None
                                 else "already_huge", stage=1)
                amap.remove(hvpn)
                continue
            if skip_bloat and region.bloat_demoted:
                if audited:
                    self._decide(proc, hvpn, "reject", "bloat_demoted",
                                 stage=1,
                                 inputs={"coverage_ema": region.coverage_ema})
                continue
            if self.kernel.can_promote(proc, hvpn):
                return hvpn
            if audited:
                self._decide(proc, hvpn, "reject", "not_promotable", stage=1,
                             inputs={"coverage_ema": region.coverage_ema,
                                     "resident": region.resident})
            amap.remove(hvpn)
        return None

    def _pick_g(self) -> tuple[Process, int] | None:
        """Globally highest access-coverage bucket, round-robin on ties."""
        best_idx = None
        for proc in self.kernel.processes:
            amap = self.access_maps.get(proc.pid)
            if amap is None:
                continue
            idx = amap.highest_nonempty()
            if idx is not None and (best_idx is None or idx > best_idx):
                best_idx = idx
        if best_idx is None:
            return None
        # Round-robin among the processes populated at best_idx.  Buckets
        # may hold stale/huge entries, so fall back to scanning down.
        candidates = []
        for proc in self.kernel.processes:
            amap = self.access_maps.get(proc.pid)
            if amap is not None and amap.buckets[best_idx]:
                candidates.append(proc)
        for proc in self._round_robin(candidates):
            hvpn = self._head_for(proc, best_idx)
            if hvpn is not None:
                self._rr_last_pid = proc.pid
                return proc, hvpn
        # Stale bucket entries only: clean them up by trying any region.
        for proc in self.kernel.processes:
            hvpn = self._head_for(proc)
            if hvpn is not None:
                # Cleanup picks still serve a process: record it so the
                # next round-robin resumes after it instead of resetting
                # fairness to the head of the process list.
                self._rr_last_pid = proc.pid
                return proc, hvpn
        return None

    def _pick_pmu(self) -> tuple[Process, int] | None:
        """Highest measured MMU overhead above the stop threshold."""
        overheads = [
            (self.measured_overhead(proc), proc) for proc in self.kernel.processes
        ]
        overheads = [(o, p) for o, p in overheads if o >= self.pmu_stop_threshold]
        if not overheads:
            return None
        best = max(o for o, _ in overheads)
        tied = [p for o, p in overheads if best - o <= PMU_TIE_MARGIN]
        for proc in self._round_robin(tied):
            hvpn = self._head_for(proc)
            if hvpn is not None:
                self._rr_last_pid = proc.pid
                return proc, hvpn
        # The most-afflicted processes have nothing promotable; try others
        # in overhead order.
        for _, proc in sorted(overheads, key=lambda t: -t[0]):
            if proc in tied:
                continue
            hvpn = self._head_for(proc)
            if hvpn is not None:
                self._rr_last_pid = proc.pid
                return proc, hvpn
        return None
