"""Per-process region metadata on a numpy structure-of-arrays substrate.

Every huge-page policy keys off per-region metadata (residency,
huge-ness, EMA access coverage — see :class:`RegionInfo`); the epoch hot
paths — access-bit sampling, coverage-EMA updates, access_map ranking,
WSS estimation, knumad candidate harvest — read or write one field of
*every* region of a process, every sampling period.  Storing regions as
a dict of Python objects makes each of those passes a Python-level loop;
storing them as parallel numpy arrays makes them single vectorized
statements.

:class:`RegionTable` is that array store, wrapped in enough of the
``dict[int, RegionInfo]`` surface (``items``/``values``/``get``/``in``/
iteration in insertion order/``clear``) that scalar call sites keep
working unchanged.  :class:`RegionInfo` is now a *proxy*: a slot handle
whose attributes read and write the table's arrays directly, so scalar
and vectorized code always observe the same state — there is exactly one
copy of every field.

Slots are append-only: regions are only ever removed wholesale via
:meth:`RegionTable.clear` (process teardown), which keeps slot order ==
insertion order == dict-iteration order, the property the access_map's
recency semantics and the NUMA candidate harvest rely on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.units import PAGES_PER_HUGE

#: initial slot capacity of a table (grows by doubling).
_INITIAL_CAPACITY = 64


class RegionInfo:
    """Metadata for one huge-page-sized virtual region of a process.

    A lightweight proxy over one :class:`RegionTable` slot: every
    attribute access reads or writes the table's arrays, returning plain
    Python scalars (the table's dtypes never leak to callers — procfs
    serialises these values as JSON).
    """

    __slots__ = ("_table", "_slot")

    def __init__(self, table: "RegionTable", slot: int):
        self._table = table
        self._slot = slot

    @property
    def hvpn(self) -> int:
        return int(self._table._hvpn[self._slot])

    @property
    def resident(self) -> int:
        """Base pages faulted in (512 when huge-mapped)."""
        return int(self._table._resident[self._slot])

    @resident.setter
    def resident(self, value: int) -> None:
        self._table._resident[self._slot] = value

    @property
    def is_huge(self) -> bool:
        return bool(self._table._is_huge[self._slot])

    @is_huge.setter
    def is_huge(self, value: bool) -> None:
        self._table._is_huge[self._slot] = value

    @property
    def coverage_ema(self) -> float:
        """Exponential moving average of sampled access-coverage (0..512)."""
        return float(self._table._coverage_ema[self._slot])

    @coverage_ema.setter
    def coverage_ema(self, value: float) -> None:
        self._table._coverage_ema[self._slot] = value

    @property
    def last_coverage(self) -> int:
        """Raw coverage from the most recent access-bit sample."""
        return int(self._table._last_coverage[self._slot])

    @last_coverage.setter
    def last_coverage(self, value: int) -> None:
        self._table._last_coverage[self._slot] = value

    @property
    def idle(self) -> bool:
        """Ingens idleness flag: no access observed in the last sample."""
        return bool(self._table._idle[self._slot])

    @idle.setter
    def idle(self, value: bool) -> None:
        self._table._idle[self._slot] = value

    @property
    def promotions(self) -> int:
        """Number of promotions this region has received."""
        return int(self._table._promotions[self._slot])

    @promotions.setter
    def promotions(self, value: int) -> None:
        self._table._promotions[self._slot] = value

    @property
    def bloat_demoted(self) -> bool:
        """Set when bloat recovery demoted this region (promotion skip)."""
        return bool(self._table._bloat_demoted[self._slot])

    @bloat_demoted.setter
    def bloat_demoted(self, value: bool) -> None:
        self._table._bloat_demoted[self._slot] = value

    def utilization(self) -> float:
        """Fraction of the region's 512 base pages that are resident."""
        return self.resident / PAGES_PER_HUGE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RegionInfo(hvpn={self.hvpn}, resident={self.resident}, "
            f"is_huge={self.is_huge}, coverage_ema={self.coverage_ema}, "
            f"last_coverage={self.last_coverage}, idle={self.idle}, "
            f"promotions={self.promotions}, bloat_demoted={self.bloat_demoted})"
        )


class RegionTable:
    """Structure-of-arrays region store with a dict-compatible surface.

    Scalar call sites use it exactly like the ``dict[int, RegionInfo]``
    it replaces; vectorized passes read whole columns via the ``*_arr``
    accessors (views over the live prefix — valid until the next region
    is created, so take them fresh inside each pass).
    """

    __slots__ = (
        "_hvpn", "_resident", "_is_huge", "_coverage_ema", "_last_coverage",
        "_idle", "_promotions", "_bloat_demoted", "_slot_of", "_proxies", "n",
    )

    def __init__(self) -> None:
        cap = _INITIAL_CAPACITY
        self._hvpn = np.zeros(cap, dtype=np.int64)
        self._resident = np.zeros(cap, dtype=np.int64)
        self._is_huge = np.zeros(cap, dtype=bool)
        self._coverage_ema = np.zeros(cap, dtype=np.float64)
        self._last_coverage = np.zeros(cap, dtype=np.int64)
        self._idle = np.zeros(cap, dtype=bool)
        self._promotions = np.zeros(cap, dtype=np.int64)
        self._bloat_demoted = np.zeros(cap, dtype=bool)
        #: hvpn -> slot, in insertion order (the iteration order).
        self._slot_of: dict[int, int] = {}
        self._proxies: list[RegionInfo] = []
        self.n = 0

    # ------------------------------------------------------------------ #
    # creation / growth                                                  #
    # ------------------------------------------------------------------ #

    def _grow(self) -> None:
        cap = 2 * self._hvpn.shape[0]
        for name in ("_hvpn", "_resident", "_is_huge", "_coverage_ema",
                     "_last_coverage", "_idle", "_promotions", "_bloat_demoted"):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: self.n] = old[: self.n]
            setattr(self, name, new)

    def get_or_create(self, hvpn: int) -> RegionInfo:
        """The record for ``hvpn``, creating a zeroed slot if absent."""
        slot = self._slot_of.get(hvpn)
        if slot is not None:
            return self._proxies[slot]
        slot = self.n
        if slot == self._hvpn.shape[0]:
            self._grow()
        self._hvpn[slot] = hvpn
        self._resident[slot] = 0
        self._is_huge[slot] = False
        self._coverage_ema[slot] = 0.0
        self._last_coverage[slot] = 0
        self._idle[slot] = False
        self._promotions[slot] = 0
        self._bloat_demoted[slot] = False
        self._slot_of[hvpn] = slot
        proxy = RegionInfo(self, slot)
        self._proxies.append(proxy)
        self.n = slot + 1
        return proxy

    def clear(self) -> None:
        """Drop every region (process teardown)."""
        self._slot_of.clear()
        self._proxies.clear()
        self.n = 0

    # ------------------------------------------------------------------ #
    # dict-compatible surface                                            #
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self.n

    def __contains__(self, hvpn: int) -> bool:
        return hvpn in self._slot_of

    def __iter__(self) -> Iterator[int]:
        return iter(self._slot_of)

    def __getitem__(self, hvpn: int) -> RegionInfo:
        return self._proxies[self._slot_of[hvpn]]

    def get(self, hvpn: int, default=None):
        """The record for ``hvpn``, or ``default`` when absent."""
        slot = self._slot_of.get(hvpn)
        return self._proxies[slot] if slot is not None else default

    def keys(self):
        """Region hvpns in insertion order (a dict keys view)."""
        return self._slot_of.keys()

    def values(self) -> Iterator[RegionInfo]:
        """Region records in insertion order."""
        return iter(self._proxies)

    def items(self) -> Iterator[tuple[int, RegionInfo]]:
        """``(hvpn, record)`` pairs in insertion order."""
        return zip(self._slot_of.keys(), self._proxies)

    def slot_of(self, hvpn: int) -> int | None:
        """Slot index of ``hvpn`` (None when absent)."""
        return self._slot_of.get(hvpn)

    # ------------------------------------------------------------------ #
    # column views (live prefix; take fresh per pass)                    #
    # ------------------------------------------------------------------ #

    def hvpn_arr(self) -> np.ndarray:
        """Region hvpns, slot-ordered (== insertion order)."""
        return self._hvpn[: self.n]

    def resident_arr(self) -> np.ndarray:
        """Resident base-page counts, slot-ordered."""
        return self._resident[: self.n]

    def is_huge_arr(self) -> np.ndarray:
        """Huge-mapped flags, slot-ordered."""
        return self._is_huge[: self.n]

    def coverage_ema_arr(self) -> np.ndarray:
        """Coverage EMAs, slot-ordered (writable view)."""
        return self._coverage_ema[: self.n]

    def last_coverage_arr(self) -> np.ndarray:
        """Last raw coverage samples, slot-ordered (writable view)."""
        return self._last_coverage[: self.n]

    def idle_arr(self) -> np.ndarray:
        """Idleness flags, slot-ordered (writable view)."""
        return self._idle[: self.n]

    def bloat_demoted_arr(self) -> np.ndarray:
        """Bloat-demotion flags, slot-ordered (writable view)."""
        return self._bloat_demoted[: self.n]
