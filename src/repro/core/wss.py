"""Working-set-size estimation — the §2.4 strawman, made concrete.

The paper's §2.4 argues that the *common* way to rank processes for huge
pages — estimate working-set size from access-bit samples, assume bigger
WSS ⇒ bigger MMU overhead — is unreliable on modern hardware, because
access *pattern* dominates (mg.D: 24 GB WSS, 1 % overhead; cg.D: 7.5 GB
WSS, 39 %).

This module implements that estimator faithfully so the claim can be
tested rather than asserted: :class:`WSSEstimator` integrates the same
access-bit samples HawkEye's access_map uses into a per-process
working-set size, and :func:`wss_overhead_belief` converts it into the
naive "overhead ∝ WSS beyond TLB reach" belief.  The ablation benchmark
plugs it into the promotion engine in place of measured overheads and
shows it misordering exactly the workload pairs of Table 9.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.units import BASE_PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.vm.process import Process


class WSSEstimator:
    """Access-bit-sample-based working-set size, per process."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel

    def wss_pages(self, proc: "Process") -> float:
        """Estimated working set in base pages (EMA of sampled coverage).

        Exactly the information HawkEye-G has — the sum of per-region
        EMA coverage — read as a *size* instead of a TLB-entry demand.

        The vectorized path gathers the resident regions' EMAs straight
        off the region table's column arrays instead of materializing one
        proxy object per region; the final addition stays sequential in
        region order, so the float result is bit-identical to the scalar
        generator (``np.sum``'s pairwise reduction would not be).
        """
        table = proc.regions
        if self.kernel.vectorized and len(table):
            ema = table.coverage_ema_arr()
            return sum(ema[table.resident_arr() > 0].tolist())
        return sum(r.coverage_ema for r in table.values() if r.resident > 0)

    def wss_bytes(self, proc: "Process") -> float:
        """Estimated working set in bytes."""
        return self.wss_pages(proc) * BASE_PAGE_SIZE


def wss_overhead_belief(kernel: "Kernel", proc: "Process") -> float:
    """The naive belief §2.4 criticises: overhead grows with WSS beyond
    TLB reach, saturating like the real overhead does.

    Deliberately ignores access pattern and measured walk activity.
    """
    estimator = WSSEstimator(kernel)
    demand = estimator.wss_pages(proc)
    capacity = kernel.mmu.tlb.l1_base + kernel.mmu.tlb.l2_shared
    if demand <= capacity:
        return 0.0
    excess = demand - capacity
    return excess / (excess + capacity)
