"""Exception hierarchy for the simulator.

Every failure mode a caller can reasonably handle has its own exception
type; everything derives from :class:`ReproError` so library users can
catch the whole family with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class OutOfMemoryError(ReproError):
    """Physical memory (including swap, when configured) is exhausted.

    Mirrors the kernel OOM condition the paper's Figure 1 experiment runs
    Redis into under Linux and Ingens.
    """


class InvalidAddressError(ReproError):
    """A virtual address fell outside every VMA of the process."""


class AllocationError(ReproError):
    """The buddy allocator could not satisfy a request it was expected to."""


class ConfigError(ReproError):
    """An experiment or kernel configuration value is out of range."""
