"""Shared experiment infrastructure: scaling, policy registry, helpers.

The paper's testbed has 96 GB of RAM; simulating it page-by-page in
Python is feasible but slow, so experiments run at a configurable linear
**scale** (default 1/64: a "48 GB" machine becomes 768 MB).  Because all
policy thresholds are fractions (watermarks, utilisation thresholds,
FMFI) the policy *dynamics* are scale-invariant — provided background
rates scale too, which :class:`Scale` centralises:

* memory sizes multiply by ``factor`` (workloads do this themselves);
* page-per-second rates (khugepaged promotion, pre-zeroing, bloat scans,
  KSM, compaction) multiply by ``factor`` so "fraction of memory
  processed per second" is preserved.

``POLICIES`` is the registry of policy configurations used across the
benchmark suite — the paper's five columns plus the auxiliary variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.hawkeye import HawkEyeConfig, HawkEyePolicy
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.base import HugePagePolicy
from repro.policies.freebsd import FreeBSDPolicy
from repro.policies.ingens import IngensPolicy
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy
from repro.units import GB, SEC
from repro.workloads.compute import DEFAULT_SCALE

#: full-scale background rates (paper-calibrated).
PROMOTE_PER_SEC = 10.0
PREZERO_PAGES_PER_SEC = 100_000.0
BLOAT_SCAN_PAGES_PER_SEC = 100_000.0
KCOMPACTD_PAGES_PER_SEC = 20_000.0
KSM_PAGES_PER_SEC = 50_000.0
#: knumad cross-node migration budget (matches Linux's default NUMA
#: balancing scan rate of ~256 MB/s of address space considered).
KNUMAD_PAGES_PER_SEC = 50_000.0


@dataclass(frozen=True)
class Scale:
    """Linear memory scale for an experiment."""

    factor: float = DEFAULT_SCALE

    def bytes(self, full_bytes: float) -> int:
        """Scale a full-scale byte size down to simulated bytes."""
        return int(full_bytes * self.factor)

    def rate(self, full_per_sec: float) -> float:
        """Scale a full-scale pages/second rate down to match the memory."""
        return full_per_sec * self.factor

    @property
    def denominator(self) -> int:
        """The 1/N divisor this scale was built from (rounded)."""
        return max(1, round(1.0 / self.factor))

    @classmethod
    def from_denominator(cls, denominator: int) -> "Scale":
        """Build a scale from its 1/N divisor (the CLI/sweep spelling)."""
        return cls(1.0 / denominator)


DEFAULT = Scale()


def reset_sim_state() -> None:
    """Reset process-global simulator counters.

    The simulator is deterministic per kernel except for the global pid
    counter, which threads process creation order across kernels in the
    same interpreter.  Anything that needs run-to-run reproducible output
    regardless of what ran before it — the perf harness, sweep cells —
    calls this first, so the same experiment produces identical results
    in a fresh worker process and mid-way through a long pytest session.
    """
    from repro.vm.process import Process

    Process._next_pid = 1


def _hawkeye(variant: str, huge_faults: bool = True) -> Callable[[Scale], Callable]:
    def build(scale: Scale):
        def factory(kernel: Kernel) -> HugePagePolicy:
            return HawkEyePolicy(
                kernel,
                HawkEyeConfig(
                    variant=variant,
                    huge_faults=huge_faults,
                    promote_per_sec=scale.rate(PROMOTE_PER_SEC),
                    prezero_pages_per_sec=scale.rate(PREZERO_PAGES_PER_SEC),
                    bloat_scan_pages_per_sec=scale.rate(BLOAT_SCAN_PAGES_PER_SEC),
                ),
            )

        return factory

    return build


def _ingens(util: float, adaptive: bool = True) -> Callable[[Scale], Callable]:
    def build(scale: Scale):
        return lambda kernel: IngensPolicy(
            kernel,
            util_threshold=util,
            adaptive=adaptive,
            promote_per_sec=scale.rate(PROMOTE_PER_SEC),
        )

    return build


#: name -> (scale -> policy factory).  These names are used throughout
#: the benchmarks and map onto the paper's configuration columns.
POLICIES: dict[str, Callable[[Scale], Callable[[Kernel], HugePagePolicy]]] = {
    "linux-4kb": lambda scale: Linux4KPolicy,
    "linux-2mb": lambda scale: (
        lambda kernel: LinuxTHPPolicy(kernel, promote_per_sec=scale.rate(PROMOTE_PER_SEC))
    ),
    "freebsd": lambda scale: FreeBSDPolicy,
    "ingens-90": _ingens(0.9),
    "ingens-50": _ingens(0.5),
    # fixed-threshold Ingens configurations (adaptive FMFI switch off),
    # the way Table 7 pins the bloat-vs-performance knob.
    "ingens-90-fixed": _ingens(0.9, adaptive=False),
    "ingens-50-fixed": _ingens(0.5, adaptive=False),
    "hawkeye-g": _hawkeye("g"),
    "hawkeye-pmu": _hawkeye("pmu"),
    # HawkEye with huge faults disabled: pre-zeroing benefits only
    # (the "HawkEye-4KB" column of Tables 1 and 8).
    "hawkeye-4kb": _hawkeye("g", huge_faults=False),
}


def scaled_tlb(scale: Scale):
    """TLB entry counts scaled with memory (virtualised experiments).

    At 1/64 memory scale a full-size TLB covers every huge region of a
    scaled working set, hiding the host-side promotion dynamics the
    Figure 9 experiments measure.  Scaling the entry counts alongside
    memory restores the paper's capacity ratios.
    """
    from repro.tlb.tlb import TLBConfig

    return TLBConfig(
        l1_base=max(1, int(64 * scale.factor)),
        l1_huge=max(1, int(8 * scale.factor)),
        l2_shared=max(8, int(1024 * scale.factor)),
    )


def make_kernel(
    mem_bytes_full: float,
    policy: str,
    scale: Scale = DEFAULT,
    kcompactd: bool = True,
    boot_zeroed: bool = True,
    swap_bytes_full: float = 0,
    epoch_us: float = SEC,
    numa_nodes: int = 1,
    numa_balance: bool = False,
    replicated_pt: bool = False,
    tlb=None,
) -> Kernel:
    """Build a kernel for a full-scale memory size under ``policy``.

    ``epoch_us`` may be coarsened (e.g. 2 s) for long experiments; the
    access-bit sampling cadence stays at the paper's 30 simulated
    seconds regardless.  ``numa_nodes`` splits memory into equal NUMA
    zones; ``numa_balance`` turns on the knumad hint-fault balancer and
    ``replicated_pt`` the Mitosis-style per-node page-table replicas.
    """
    if policy not in POLICIES:
        raise KeyError(f"unknown policy {policy!r}; have {sorted(POLICIES)}")
    from repro.numa.topology import NumaTopology
    from repro.tlb.tlb import TLBConfig

    config = KernelConfig(
        mem_bytes=scale.bytes(mem_bytes_full),
        epoch_us=epoch_us,
        sample_period=max(1, round(30 * SEC / epoch_us)),
        kcompactd_pages_per_sec=scale.rate(KCOMPACTD_PAGES_PER_SEC) if kcompactd else 0.0,
        boot_zeroed=boot_zeroed,
        swap_bytes=scale.bytes(swap_bytes_full),
        topology=NumaTopology(nodes=numa_nodes),
        knumad_pages_per_sec=scale.rate(KNUMAD_PAGES_PER_SEC) if numa_balance else 0.0,
        replicated_page_tables=replicated_pt,
        tlb=tlb if tlb is not None else TLBConfig(),
    )
    return Kernel(config, POLICIES[policy](scale))


def make_hypervisor(
    host_mem_bytes_full: float,
    host_policy: str,
    scale: Scale = DEFAULT,
    swap_bytes_full: float = 0,
):
    """Build a hypervisor whose host runs ``host_policy`` (scaled TLB)."""
    from repro.virt.hypervisor import Hypervisor

    config = KernelConfig(
        mem_bytes=scale.bytes(host_mem_bytes_full),
        tlb=scaled_tlb(scale),
        kcompactd_pages_per_sec=scale.rate(KCOMPACTD_PAGES_PER_SEC),
        swap_bytes=scale.bytes(swap_bytes_full),
    )
    return Hypervisor(config, POLICIES[host_policy](scale))


def make_vm(hypervisor, name: str, ram_bytes_full: float, guest_policy: str,
            scale: Scale = DEFAULT):
    """Create a VM whose guest kernel runs ``guest_policy`` (scaled TLB)."""
    guest_config = KernelConfig(
        mem_bytes=scale.bytes(ram_bytes_full),
        epoch_us=hypervisor.host.config.epoch_us,
        tlb=scaled_tlb(scale),
        kcompactd_pages_per_sec=scale.rate(KCOMPACTD_PAGES_PER_SEC),
    )
    return hypervisor.create_vm(
        name, scale.bytes(ram_bytes_full), POLICIES[guest_policy](scale), guest_config
    )


def fragment(kernel: Kernel, keep_fraction: float = 0.05) -> float:
    """The paper's pre-experiment fragmentation step (file reads)."""
    return kernel.fragmenter.fragment(keep_fraction=keep_fraction)


# ---------------------------------------------------------------------- #
# measurement helpers                                                     #
# ---------------------------------------------------------------------- #


def rss_bytes(proc) -> int:
    """Resident set size of a process in bytes."""
    from repro.units import BASE_PAGE_SIZE

    return proc.rss_pages() * BASE_PAGE_SIZE


def useful_bytes(kernel: Kernel, proc) -> int:
    """Bytes of *non-zero* (actually used) data mapped by ``proc``.

    RSS minus this is memory bloat: mapped, zero-filled pages nobody
    wrote — what HawkEye's §3.2 recovery reclaims.
    """
    import numpy as np

    from repro.units import BASE_PAGE_SIZE

    frames = kernel.frames
    mask = (frames.owner == proc.pid) & frames.allocated & (frames.first_nonzero >= 0)
    return int(np.count_nonzero(mask)) * BASE_PAGE_SIZE


def speedup(baseline_us: float, measured_us: float) -> float:
    """Baseline time over measured time (>1 means faster)."""
    return baseline_us / measured_us if measured_us > 0 else float("inf")


def gb(nbytes: float) -> float:
    """Bytes rendered as (fractional) gigabytes."""
    return nbytes / GB
