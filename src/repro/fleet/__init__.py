"""Fleet-scale multi-tenant load generation (ROADMAP item 2).

The paper's fairness and tail-latency story (§4, Fig. 7/8) only becomes
interesting under sustained tenant churn: thousands of short- and
long-lived processes arriving, faulting in their footprints, competing
for contiguity and exiting — at 10–100x the process counts the table
experiments use.  This package is that load generator:

* :mod:`repro.fleet.arrivals` — open-loop arrival processes (Poisson
  and trace-driven);
* :mod:`repro.fleet.tenants` — tenant classes with configurable
  footprint/lifetime distributions and the workload they run;
* :mod:`repro.fleet.oom` — a badness-scored OOM killer layered on the
  :class:`~repro.mem.watermarks.Watermarks` pressure signal;
* :mod:`repro.fleet.qos` — per-tenant-class QoS accounting (p50/p99
  fault latency from the log2 histograms, promotion share, bloat and
  huge coverage);
* :mod:`repro.fleet.manager` — the :class:`FleetManager` driving
  spawns, reaps and kills through ``Kernel.spawn``/``exit_process``;
* :mod:`repro.fleet.experiment` — the ``fleet`` / ``fleet-smoke``
  registry experiments.

A kernel without a fleet pays nothing: the manager drives itself through
``kernel.epoch_hooks`` and the ``kernel.fleet`` slot stays None.
"""

from repro.fleet.arrivals import PoissonArrivals, TraceArrivals
from repro.fleet.manager import FleetManager, FleetSpec
from repro.fleet.oom import OOMKiller
from repro.fleet.qos import TenantQoS
from repro.fleet.tenants import DEFAULT_CLASSES, TenantClass, TenantWorkload

__all__ = [
    "DEFAULT_CLASSES",
    "FleetManager",
    "FleetSpec",
    "OOMKiller",
    "PoissonArrivals",
    "TenantClass",
    "TenantQoS",
    "TenantWorkload",
    "TraceArrivals",
]
