"""Open-loop tenant arrival processes.

Arrivals are *open-loop*: tenants arrive on their own schedule whether
or not the machine has room, the way a cluster scheduler keeps handing a
node work.  The manager may defer admission under pressure, but the
arrival clock never stops — deferral is measured, not hidden.

Both models speak one protocol: ``next_after(t_us)`` returns the first
arrival time strictly after scheduling from ``t_us`` (``inf`` when the
process is exhausted).  All randomness comes from a caller-provided
seeded ``random.Random`` so runs are deterministic.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.units import SEC


class PoissonArrivals:
    """Memoryless arrivals at ``rate_per_s`` (exponential inter-arrival)."""

    def __init__(self, rate_per_s: float, rng: random.Random):
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self._rng = rng

    def next_after(self, t_us: float) -> float:
        """The next arrival time after ``t_us`` (simulated µs)."""
        return t_us + self._rng.expovariate(self.rate_per_s) * SEC


class TraceArrivals:
    """Replay a fixed schedule of arrival times (simulated seconds).

    The schedule is consumed in order; times earlier than the query
    point still fire (they land immediately), so a burst recorded at
    t=10s arrives as a burst.
    """

    def __init__(self, times_s: Iterable[float]):
        self._times_us = sorted(float(t) * SEC for t in times_s)
        self._next = 0

    def next_after(self, t_us: float) -> float:
        """Pop the next scheduled arrival; ``inf`` once exhausted."""
        if self._next >= len(self._times_us):
            return float("inf")
        t = self._times_us[self._next]
        self._next += 1
        return t

    @property
    def remaining(self) -> int:
        """Scheduled arrivals not yet consumed."""
        return len(self._times_us) - self._next
