"""The ``fleet`` registry experiments (paper §4, Fig. 7/8 under churn).

``fleet`` sweeps arrival-rate scales across the paper's policy columns:
thousands of tenant lifetimes per cell, tens of concurrent processes, a
huge-page group cap on the sparse batch tier (HawkEye's §3.5 starvation
mitigation — silently unenforceable under Linux/Ingens, which is the
point), and the OOM killer shaving the peaks.  Each cell reports the
fairness spread and the p50/p99 of per-tenant fault latency — the
fairness/tail comparison of Fig. 7/8 restated for a churning fleet.

``fleet-smoke`` is the same body at CI size: one small arrival case,
two policies, ~100 lifetimes — enough to feed the regression gate and
the warm-cache rerun without stretching the smoke job.

Determinism: the only randomness is the manager's seeded RNG, keyed on
(case, policy) via crc32 so every cell is reproducible in any worker.
"""

from __future__ import annotations

import zlib

from repro.experiments import Scale, make_kernel
from repro.fleet.manager import FleetManager, FleetSpec
from repro.runner.registry import register
from repro.units import GB, SEC

FLEET_POLICIES = ("linux-4kb", "linux-2mb", "ingens-90", "hawkeye-g")
#: arrival-rate multipliers over the base rate: 1x is comfortable, 4x
#: oversubscribes the machine and keeps the OOM killer busy.
FLEET_CASES = ("arrival-1x", "arrival-2x", "arrival-4x")
FLEET_SMOKE_POLICIES = ("linux-2mb", "hawkeye-g")

#: tenants per simulated second at the 1x case.
BASE_RATE_PER_S = 2.0
#: simulated machine size (full scale; the sweep's Scale divides it).
FLEET_MEM_FULL = 64 * GB
#: huge pages (scaled) the sparse batch tier may hold in total.
BATCH_GROUP_CAP = 8

#: lifetimes each full-size cell must complete (acceptance floor 1000).
FLEET_LIFETIMES = 1000
SMOKE_LIFETIMES = 100


def _seed(case: str, policy: str) -> int:
    """Stable per-cell seed (hash() is salted per interpreter; crc32 isn't)."""
    return zlib.crc32(f"fleet/{case}/{policy}".encode())


def _rate_multiplier(case: str) -> float:
    name, _, mult = case.rpartition("-")
    if name != "arrival" or not mult.endswith("x"):
        raise ValueError(f"unknown fleet case {case!r}")
    return float(mult[:-1])


def drive_fleet(kernel, manager: FleetManager, target_lifetimes: int,
                max_epochs: int) -> int:
    """Run epochs until ``target_lifetimes`` tenants exited; returns epochs."""
    epochs = 0
    while manager.exited < target_lifetimes and epochs < max_epochs:
        kernel.run_epoch()
        epochs += 1
    return epochs


def fleet_result(kernel, manager: FleetManager, epochs: int) -> dict:
    """The JSON cell result: counters, fairness, per-class QoS."""
    overall = manager.qos.overall()
    limits = getattr(kernel.policy, "limits", None)
    snap = manager.snapshot()
    classes = {}
    for name, cls in snap["classes"].items():
        hist = cls["fault_us"]
        classes[name] = {
            "tenants": cls["tenants"],
            "oom_kills": cls["oom_kills"],
            "promotions": cls["promotions"],
            "mean_huge_coverage": cls["mean_huge_coverage"],
            "mean_bloat_mb": cls["mean_bloat_mb"],
            "fault_p50_us": hist.get("p50", 0.0),
            "fault_p99_us": hist.get("p99", 0.0),
        }
    return {
        "epochs": epochs,
        "t_end_s": kernel.now_us / SEC,
        "spawned": snap["spawned"],
        "exited": snap["exited"],
        "oom_kills": snap["oom_kills"],
        "protected_kills": snap["protected_kills"],
        "deferred": snap["deferred"],
        "peak_active": snap["peak_active"],
        "fairness_spread": snap["fairness_spread"],
        "fault_p50_us": overall.quantile(0.50),
        "fault_p99_us": overall.quantile(0.99),
        "mean_fault_us": overall.mean_us,
        "limit_refusals": int(limits.refusals) if limits is not None else 0,
        "classes": classes,
    }


def _run(case: str, policy: str, scale: Scale, rate_mult: float,
         target_lifetimes: int, max_epochs: int) -> dict:
    kernel = make_kernel(FLEET_MEM_FULL, policy, scale, boot_zeroed=True)
    spec = FleetSpec(
        rate_per_s=BASE_RATE_PER_S * rate_mult,
        seed=_seed(case, policy),
        group_limits={"batch-*": BATCH_GROUP_CAP},
    )
    manager = FleetManager(kernel, spec, scale_factor=scale.factor)
    epochs = drive_fleet(kernel, manager, target_lifetimes, max_epochs)
    return fleet_result(kernel, manager, epochs)


def run_fleet(case: str, policy: str, scale: Scale) -> dict:
    """Full fleet cell: >= 1000 tenant lifetimes at one arrival scale."""
    return _run(case, policy, scale, _rate_multiplier(case),
                FLEET_LIFETIMES, max_epochs=8000)


def run_fleet_smoke(case: str, policy: str, scale: Scale) -> dict:
    """CI-sized fleet cell: ~100 lifetimes at the 1x arrival rate."""
    return _run(case, policy, scale, 1.0, SMOKE_LIFETIMES, max_epochs=2000)


register(
    "fleet", "Fleet churn: multi-tenant fairness/tail QoS vs arrival rate",
    cases=FLEET_CASES, policies=FLEET_POLICIES, run=run_fleet,
)
register(
    "fleet-smoke", "Fleet churn smoke grid (CI: small arrival rate)",
    cases=("arrival-smoke",), policies=FLEET_SMOKE_POLICIES,
    run=run_fleet_smoke,
)
