"""The fleet manager: arrivals in, QoS out.

A :class:`FleetManager` attaches to a kernel (setting ``kernel.fleet``
and appending itself to ``kernel.epoch_hooks``) and, at every epoch
boundary:

1. **reaps** tenants whose workload finished, recording their QoS and
   tearing them down through ``Kernel.exit_process`` (runs do not exit
   themselves);
2. **admits** arrivals that have come due, spawning each as a fresh
   process through ``Kernel.spawn`` — deferring (never dropping) spawns
   while allocation sits above the admission threshold, so open-loop
   bursts cannot hard-OOM the machine mid-fault;
3. **applies pressure policy**: feeds the allocated fraction to the OOM
   killer's watermarks and kills the victims it picks, attributing those
   exits to OOM.

Everything is deterministic for a fixed seed: the only randomness is the
manager's own seeded ``random.Random``, and no wall-clock is read.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.fleet.arrivals import PoissonArrivals, TraceArrivals
from repro.fleet.oom import OOMKiller
from repro.fleet.qos import TenantQoS
from repro.fleet.tenants import (
    DEFAULT_CLASSES,
    TenantClass,
    TenantWorkload,
    pick_class,
)
from repro.mem.watermarks import Watermarks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.workloads.base import WorkloadRun


@dataclass
class FleetSpec:
    """Everything that shapes a fleet: arrivals, mix, admission, OOM."""

    #: Poisson arrival rate (tenants per simulated second).
    rate_per_s: float = 1.0
    seed: int = 0
    classes: tuple[TenantClass, ...] = DEFAULT_CLASSES
    #: fixed arrival schedule in simulated seconds; overrides the
    #: Poisson model when set (trace-driven mode).
    arrival_times_s: Optional[tuple[float, ...]] = None
    #: hard concurrency cap (0 = unbounded).
    max_tenants: int = 0
    #: defer admissions while allocated fraction exceeds this.
    admit_fraction: float = 0.92
    #: OOM-killer watermarks (hysteresis pair on allocated fraction).
    oom_high: float = 0.88
    oom_low: float = 0.80
    #: protected tenants survive this many consecutive pressure epochs.
    grace_epochs: int = 5
    oom_kills_per_epoch: int = 1
    #: huge-page group caps ("prefix*" -> summed cap) installed into the
    #: policy's §3.5 limits when it has them (HawkEye); ignored otherwise.
    group_limits: dict = field(default_factory=dict)


class FleetManager:
    """Drive tenant churn through one kernel's epoch loop."""

    def __init__(self, kernel: "Kernel", spec: FleetSpec | None = None,
                 scale_factor: float = 1.0):
        self.kernel = kernel
        self.spec = spec if spec is not None else FleetSpec()
        self.scale_factor = scale_factor
        self.rng = random.Random(self.spec.seed)
        if self.spec.arrival_times_s is not None:
            self.arrivals = TraceArrivals(self.spec.arrival_times_s)
        else:
            self.arrivals = PoissonArrivals(self.spec.rate_per_s, self.rng)
        protected = tuple(c.name for c in self.spec.classes if c.protected)
        self.oom = OOMKiller(
            Watermarks(self.spec.oom_high, self.spec.oom_low),
            protected_prefixes=protected,
            grace_epochs=self.spec.grace_epochs,
            kills_per_epoch=self.spec.oom_kills_per_epoch,
        )
        self.qos = TenantQoS()
        #: lifetime counters (cumulative; `repro top` derives rates).
        self.spawned = 0
        self.exited = 0
        self.oom_kills = 0
        #: tenant-epochs spent waiting for admission.
        self.deferred = 0
        self.peak_active = 0
        self._seq = 0
        self._next_arrival_us = self.arrivals.next_after(kernel.now_us)
        self._live: list["WorkloadRun"] = []
        self._class_of: dict[int, TenantClass] = {}
        #: arrivals sampled (class, footprint, lifetime) but not yet
        #: admitted — sampling happens at arrival time so the admission
        #: decision can never perturb the random sequence.
        self._queue: deque[tuple[TenantClass, int, float]] = deque()
        #: pages reserved for tenants spawned this epoch whose touch
        #: phase has not run yet (released at the next epoch boundary,
        #: once their allocation shows up in ``allocated_pages``).
        self._inflight_pages = 0
        if self.spec.group_limits:
            self._install_group_limits()
        kernel.fleet = self
        kernel.epoch_hooks.append(self.on_epoch)

    # ------------------------------------------------------------------ #
    # wiring                                                              #
    # ------------------------------------------------------------------ #

    def _install_group_limits(self) -> bool:
        """Install the spec's group caps into the policy's §3.5 limits.

        Policies without a limits slot (Linux, Ingens, FreeBSD) simply
        ignore the caps — the cross-policy comparison stays honest about
        which kernels can enforce them.
        """
        policy = self.kernel.policy
        if not hasattr(policy, "limits"):
            return False
        limits = policy.limits
        if limits is None:
            from repro.core.limits import HugePageLimits

            limits = HugePageLimits()
            limits.bind(self.kernel)
            policy.limits = limits
            engine = getattr(policy, "engine", None)
            if engine is not None:
                engine.limits = limits
        for pattern, cap in self.spec.group_limits.items():
            limits.set_group_limit(pattern, cap)
        return True

    def set_rate(self, rate_per_s: float) -> None:
        """Switch to a new Poisson arrival rate from now on."""
        self.arrivals = PoissonArrivals(rate_per_s, self.rng)
        self._next_arrival_us = self.arrivals.next_after(self.kernel.now_us)

    @property
    def active(self) -> int:
        """Tenants currently alive (spawned, not yet exited)."""
        return len(self._live)

    @property
    def pending(self) -> int:
        """Arrivals waiting for admission."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # epoch driver                                                        #
    # ------------------------------------------------------------------ #

    def on_epoch(self, kernel: "Kernel") -> None:
        """Epoch-boundary hook: reap, admit, then apply pressure policy."""
        # Tenants spawned at the previous boundary have run one full
        # step: their footprints now show in allocated_pages, so their
        # admission reservations are released.
        self._inflight_pages = 0
        self._reap(kernel)
        self._admit(kernel)
        self._pressure(kernel)

    def _reap(self, kernel: "Kernel") -> None:
        finished = [run for run in self._live if run.finished]
        if not finished:
            return
        self._live = [run for run in self._live if not run.finished]
        for run in finished:
            self._retire(kernel, run, "natural")

    def _sample_arrival(self) -> tuple[TenantClass, int, float]:
        cls = pick_class(self.spec.classes, self.rng)
        return cls, cls.sample_footprint(self.rng), cls.sample_lifetime_us(self.rng)

    def _reserve_pages(self, footprint_bytes_full: int) -> int:
        """Worst-case resident pages for one tenant (huge-rounded)."""
        from repro.units import BASE_PAGE_SIZE, PAGES_PER_HUGE

        npages = max(1, int(footprint_bytes_full * self.scale_factor)
                     // BASE_PAGE_SIZE + 1)
        return -(-npages // PAGES_PER_HUGE) * PAGES_PER_HUGE

    def _admit(self, kernel: "Kernel") -> None:
        now = kernel.now_us
        while self._next_arrival_us <= now:
            self._queue.append(self._sample_arrival())
            self._next_arrival_us = self.arrivals.next_after(self._next_arrival_us)
        # Admission budgets *committed* memory: current allocation plus
        # the reservations of tenants spawned since the last step, so an
        # open-loop burst can never fault past physical memory mid-epoch.
        budget = (self.spec.admit_fraction * kernel.buddy.total_pages
                  - kernel.buddy.allocated_pages - self._inflight_pages)
        while self._queue:
            if (self.spec.max_tenants
                    and len(self._live) >= self.spec.max_tenants):
                break
            cls, footprint, lifetime_us = self._queue[0]
            reserve = self._reserve_pages(footprint)
            if reserve > budget:
                break
            self._queue.popleft()
            self._spawn(kernel, cls, footprint, lifetime_us)
            self._inflight_pages += reserve
            budget -= reserve
        # open-loop honesty: queued arrivals are measured, not dropped.
        self.deferred += len(self._queue)

    def _spawn(self, kernel: "Kernel", cls: TenantClass,
               footprint: int, lifetime_us: float) -> None:
        self._seq += 1
        name = f"{cls.name}-{self._seq}"
        workload = TenantWorkload(name, footprint, lifetime_us,
                                  stride=cls.touch_stride,
                                  scale=self.scale_factor)
        run = kernel.spawn(workload, name=name)
        self._class_of[run.proc.pid] = cls
        self._live.append(run)
        self.spawned += 1
        if len(self._live) > self.peak_active:
            self.peak_active = len(self._live)

    def _pressure(self, kernel: "Kernel") -> None:
        procs = [run.proc for run in self._live]
        victims = self.oom.on_epoch(kernel.allocated_fraction(), procs)
        if not victims:
            return
        victim_pids = {proc.pid for proc in victims}
        killed = [run for run in self._live if run.proc.pid in victim_pids]
        self._live = [run for run in self._live if run.proc.pid not in victim_pids]
        for run in killed:
            self._retire(kernel, run, "oom")

    def _retire(self, kernel: "Kernel", run: "WorkloadRun", reason: str) -> None:
        """Record one tenant's QoS, then tear the process down."""
        proc = run.proc
        cls = self._class_of.pop(proc.pid, None)
        self.qos.record_exit(kernel, proc,
                             cls.name if cls is not None else proc.name, reason)
        if reason == "oom":
            self.oom_kills += 1
        kernel.exit_process(proc)
        self.exited += 1

    # ------------------------------------------------------------------ #
    # reporting                                                           #
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-able fleet state: counters, OOM accounting, per-class QoS."""
        return {
            "spawned": self.spawned,
            "exited": self.exited,
            "oom_kills": self.oom_kills,
            "protected_kills": self.oom.protected_kills,
            "active": len(self._live),
            "pending": len(self._queue),
            "deferred": self.deferred,
            "peak_active": self.peak_active,
            "fairness_spread": round(self.qos.fairness_spread(), 4),
            "classes": self.qos.snapshot(),
        }
