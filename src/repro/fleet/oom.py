"""Badness-scored OOM killing driven by watermark pressure.

Linux's OOM killer fires only when an allocation already failed; a fleet
node cannot afford that, so this killer is *proactive*: it feeds the
allocated fraction into a :class:`~repro.mem.watermarks.Watermarks`
hysteresis pair every epoch and, while pressure is active, sacrifices
the worst tenant per epoch.  Badness is resident size (the biggest win
per kill); protected tenants get grace — they are only eligible after
``grace_epochs`` consecutive pressure epochs with no unprotected victim
available.

Kill accounting is exact: every victim this policy returns is counted
here, and the manager attributes the matching tenant exit to ``"oom"``,
so ``kills == OOM-attributed exits`` is an invariant the tests check.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.mem.watermarks import Watermarks
from repro.vm.process import Process


class OOMKiller:
    """Pick tenants to kill while memory pressure is active."""

    def __init__(self, watermarks: Watermarks | None = None,
                 protected_prefixes: Iterable[str] = (),
                 grace_epochs: int = 5, kills_per_epoch: int = 1):
        self.watermarks = watermarks if watermarks is not None else Watermarks()
        self.protected = tuple(protected_prefixes)
        self.grace_epochs = max(0, grace_epochs)
        self.kills_per_epoch = max(1, kills_per_epoch)
        #: total victims selected (== the manager's OOM-attributed exits).
        self.kills = 0
        #: the subset of kills that hit a protected tenant (grace expired).
        self.protected_kills = 0
        #: consecutive epochs the pressure signal has been active.
        self.pressure_epochs = 0

    def is_protected(self, name: str) -> bool:
        """True when ``name`` belongs to a protected tenant class."""
        return any(name.startswith(prefix) for prefix in self.protected)

    def badness(self, proc: Process) -> int:
        """Kill score: resident pages (the memory a kill gives back)."""
        return proc.rss_pages()

    def select_victims(self, procs: Sequence[Process]) -> list[Process]:
        """The tenants to kill this pressure epoch, worst first.

        Ordering is deterministic: highest badness first, lowest pid on
        ties.  Protected tenants only become eligible once the grace
        window has elapsed *and* no unprotected candidate exists.
        """
        eligible = [p for p in procs if not self.is_protected(p.name)]
        if not eligible and self.pressure_epochs > self.grace_epochs:
            eligible = list(procs)
        eligible.sort(key=lambda p: (-self.badness(p), p.pid))
        return eligible[: self.kills_per_epoch]

    def on_epoch(self, allocated_fraction: float,
                 procs: Sequence[Process]) -> list[Process]:
        """Feed one pressure sample; returns this epoch's victims."""
        if not self.watermarks.update(allocated_fraction):
            self.pressure_epochs = 0
            return []
        self.pressure_epochs += 1
        victims = self.select_victims(procs)
        for victim in victims:
            self.kills += 1
            if self.is_protected(victim.name):
                self.protected_kills += 1
        return victims
