"""Per-tenant-class QoS accounting.

Each tenant contributes one sample per lifetime, recorded at exit while
its page table is still live: average fault latency (into the existing
log2 :class:`~repro.trace.LatencyHistogram`, so p50/p99 *across tenant
lifetimes* fall out of the standard quantile machinery), promotions,
huge coverage and bloat.  The per-class histograms are exactly the
fairness instrument the paper's Fig. 7/8 comparison needs: a policy
that serves every tenant alike has a tight histogram; one that starves
latecomers grows a tail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.trace import LatencyHistogram
from repro.units import BASE_PAGE_SIZE, MB, PAGES_PER_HUGE
from repro.vm.process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class ClassQoS:
    """Accumulated per-lifetime samples for one tenant class."""

    def __init__(self, name: str):
        self.name = name
        #: one sample per tenant lifetime: its average fault latency.
        self.fault_us = LatencyHistogram()
        self.tenants = 0
        self.oom_kills = 0
        self.faults = 0
        self.promotions = 0
        self.huge_cov_sum = 0.0
        self.bloat_mb_sum = 0.0

    def to_dict(self) -> dict:
        """JSON-able per-class summary (means are derived, not stored)."""
        n = max(self.tenants, 1)
        return {
            "tenants": self.tenants,
            "oom_kills": self.oom_kills,
            "faults": self.faults,
            "promotions": self.promotions,
            "mean_huge_coverage": round(self.huge_cov_sum / n, 4),
            "mean_bloat_mb": round(self.bloat_mb_sum / n, 4),
            "fault_us": self.fault_us.to_dict(),
        }


class TenantQoS:
    """Fleet-wide QoS ledger, one :class:`ClassQoS` per tenant class."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassQoS] = {}

    def record_exit(self, kernel: "Kernel", proc: Process,
                    class_name: str, reason: str) -> None:
        """Fold one finished tenant into its class (call *before* teardown)."""
        cq = self.classes.setdefault(class_name, ClassQoS(class_name))
        stats = proc.stats
        cq.tenants += 1
        cq.faults += int(stats.faults)
        cq.promotions += int(stats.promotions)
        cq.fault_us.add(stats.fault_time_us / max(stats.faults, 1))
        rss = proc.rss_pages()
        huge_pages = len(proc.page_table.huge) * PAGES_PER_HUGE
        cq.huge_cov_sum += huge_pages / max(rss, 1)
        from repro.experiments import useful_bytes

        bloat = rss * BASE_PAGE_SIZE - useful_bytes(kernel, proc)
        cq.bloat_mb_sum += max(bloat, 0) / MB
        if reason == "oom":
            cq.oom_kills += 1

    def overall(self) -> LatencyHistogram:
        """All classes' lifetime histograms merged bucket-wise."""
        merged = LatencyHistogram()
        for cq in self.classes.values():
            hist = cq.fault_us
            if not hist.count:
                continue
            merged.count += hist.count
            merged.total_us += hist.total_us
            merged.min_us = min(merged.min_us, hist.min_us)
            merged.max_us = max(merged.max_us, hist.max_us)
            for idx, count in hist.buckets.items():
                merged.buckets[idx] = merged.buckets.get(idx, 0) + count
        return merged

    def fairness_spread(self) -> float:
        """Relative spread of per-class mean fault latency (0 = perfectly fair).

        ``(max - min) / max`` over classes with at least one finished
        tenant — the scalar the fleet experiment compares across
        policies (paper Fig. 7/8's fairness axis).
        """
        means = [cq.fault_us.mean_us for cq in self.classes.values() if cq.tenants]
        if len(means) < 2 or max(means) <= 0:
            return 0.0
        return (max(means) - min(means)) / max(means)

    def snapshot(self) -> dict:
        """JSON-able per-class map, sorted for deterministic artifacts."""
        return {name: self.classes[name].to_dict()
                for name in sorted(self.classes)}
