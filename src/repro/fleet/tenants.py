"""Tenant classes: who arrives, how big, how long, how sparse.

A :class:`TenantClass` is a population template — footprint and lifetime
are sampled per arrival from log-uniform ranges (the heavy-tailed shape
of real serving fleets: many small short-lived tenants, a few large
long-lived ones).  ``touch_stride`` > 1 gives a class the sparse access
pattern that turns huge-at-fault allocation into per-tenant bloat;
``protected`` marks classes the OOM killer must grant grace.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.units import GB, MB, SEC
from repro.workloads.base import (
    ContentSpec,
    MmapOp,
    Phase,
    SleepOp,
    TouchOp,
    Workload,
)


@dataclass(frozen=True)
class TenantClass:
    """One population of tenants sharing a size/lifetime distribution."""

    name: str
    #: full-scale footprint range in bytes (log-uniform sample).
    footprint_bytes: tuple[float, float]
    #: simulated-lifetime range in seconds (log-uniform sample).
    lifetime_s: tuple[float, float]
    #: relative arrival share among the fleet's classes.
    weight: float = 1.0
    #: protected tenants get OOM grace (killed only after sustained
    #: pressure with no unprotected victim available).
    protected: bool = False
    #: touch every k-th base page (k > 1 = bloat-prone sparse tenant).
    touch_stride: int = 1

    def __post_init__(self) -> None:
        lo, hi = self.footprint_bytes
        if not 0 < lo <= hi:
            raise ValueError(f"footprint range must satisfy 0 < lo <= hi, got {lo}/{hi}")
        lo, hi = self.lifetime_s
        if not 0 < lo <= hi:
            raise ValueError(f"lifetime range must satisfy 0 < lo <= hi, got {lo}/{hi}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")

    @staticmethod
    def _log_uniform(rng: random.Random, lo: float, hi: float) -> float:
        if lo == hi:
            return lo
        return math.exp(rng.uniform(math.log(lo), math.log(hi)))

    def sample_footprint(self, rng: random.Random) -> int:
        """Draw one tenant's full-scale footprint in bytes."""
        return int(self._log_uniform(rng, *self.footprint_bytes))

    def sample_lifetime_us(self, rng: random.Random) -> float:
        """Draw one tenant's simulated lifetime in µs."""
        return self._log_uniform(rng, *self.lifetime_s) * SEC


#: the stock serving mix: many small short-lived frontends, a batch tier
#: that is sparse (bloat-prone) and group-cappable by name prefix, and a
#: small protected stateful tier.
DEFAULT_CLASSES: tuple[TenantClass, ...] = (
    TenantClass("web", (64 * MB, 512 * MB), (4.0, 30.0), weight=6.0),
    TenantClass("batch", (256 * MB, 2 * GB), (20.0, 120.0), weight=3.0,
                touch_stride=4),
    TenantClass("db", (512 * MB, 1 * GB), (120.0, 400.0), weight=1.0,
                protected=True),
)


def pick_class(classes: tuple[TenantClass, ...], rng: random.Random) -> TenantClass:
    """Weighted deterministic draw of the next arrival's class."""
    total = sum(c.weight for c in classes)
    roll = rng.random() * total
    acc = 0.0
    for cls in classes:
        acc += cls.weight
        if roll < acc:
            return cls
    return classes[-1]


class TenantWorkload(Workload):
    """One tenant's life: fault in the footprint, serve, exit.

    The same shape as :class:`~repro.workloads.hog.MemoryHog` but with a
    per-class touch stride, so sparse classes leave untouched tails in
    their huge regions (the bloat the per-tenant QoS accounting prices).
    """

    def __init__(self, name: str, footprint_bytes: float, lifetime_us: float,
                 stride: int = 1, scale: float = 1.0):
        self.name = name
        self.footprint_bytes = max(1, int(footprint_bytes * scale))
        #: lifetime is simulated time and deliberately unscaled.
        self.lifetime_us = lifetime_us
        self.stride = max(1, stride)

    def build_phases(self) -> list[Phase]:
        """mmap + (possibly strided) touch, then hold until the lifetime ends."""
        ops = [
            MmapOp("heap", self.footprint_bytes),
            TouchOp("heap", stride_pages=self.stride,
                    content=ContentSpec(first_nonzero=0)),
        ]
        if self.lifetime_us > 0:
            ops.append(SleepOp(self.lifetime_us))
        return [Phase("tenant", ops=ops)]
