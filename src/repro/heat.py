"""DAMON-style spatial access monitoring: adaptive regions and heatmaps.

The observability stack so far (trace, telemetry, audit) is entirely
*aggregate* — it can say how much time promotion cost or how many bloat
pages were recovered, but not **where** in an address space the hot
pages, huge mappings or bloat actually live over time.  This module
closes that gap the way Linux's DAMON does: a :class:`HeatMonitor`
piggybacks on the kernel's existing access-bit scan
(``Kernel._sample_access_bits`` writes ``last_coverage`` into the
:class:`~repro.core.region_table.RegionTable` SoA; this module only ever
*reads* those columns) and folds every sample into

1. **Adaptive monitoring regions** — per process, a set of contiguous
   ``[start_hvpn, end_hvpn)`` spans that exactly partition the process's
   VMA extents.  After each sample, adjacent regions inside one VMA whose
   access *densities* differ by at most :data:`MERGE_THRESHOLD` are
   merged, and (when under half the :data:`MAX_REGIONS` budget) every
   splittable region is split at its midpoint — DAMON's min/max-regions
   algorithm, made deterministic (midpoint instead of a random offset)
   so serial-vs-pooled sweep determinism is preserved.  Access counts are
   conserved exactly across split/merge: a region's ``sample`` is the sum
   of sampled coverage over its span, child sums are recomputed from the
   same prefix-sum array the parent used, and EMAs are partitioned
   proportionally / summed.

2. **Spatial × temporal matrices** — each process's address span is
   projected onto :data:`NBINS` fixed bins and a bounded ring of rows
   records, per sample: access heat (mean sampled pages per region),
   huge-page share, utilization (resident fraction), bloat (zero-filled
   base pages under huge mappings, read off the frame table), NUMA node
   placement (when multi-node) and mean allocation epoch (joining the
   frame ledger when ``repro.audit`` is attached).

3. **WSS percentile series** — per process, the monitoring-region WSS
   estimate (sum of region EMAs) feeds a
   :class:`~repro.trace.LatencyHistogram` for p50/p95/p99, alongside the
   exact :class:`~repro.core.wss.WSSEstimator` value as the ground-truth
   cross-check (the two integrate the same access-bit signal, so they
   track within a tested error bound on steady workloads).

Zero-cost-when-disabled contract (same as ``repro.trace`` /
``repro.audit``): the only per-epoch cost with no monitor attached is
one module-bool test in ``Kernel.run_epoch``, and ``repro bench touch``
/ ``repro bench epoch`` hold the attached-but-silent state under the
same <5 % ceiling.  The monitor is a pure observer: it never charges
simulated time or mutates kernel state, so attaching it cannot change
any result byte.

Usage::

    from repro import heat

    mon = heat.attach(kernel)
    ... run the workload ...
    snap = mon.snapshot()
    print(heat.format_heatmap(snap["processes"][0]))
    heat.detach(kernel)
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import trace
from repro.trace import LatencyHistogram
from repro.units import HUGE_PAGE_SIZE, PAGES_PER_HUGE, SEC, bytes_human

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.vm.process import Process

#: Global master switch, managed by :func:`attach` / :func:`detach`.
#: The epoch-loop hook tests this module attribute before anything else,
#: so a kernel with no monitor pays a single bool check per sample tick.
enabled: bool = False

#: Number of kernels with a heat monitor currently attached.
_attached: int = 0

#: Region-budget floor: splitting stops shrinking resolution below this.
MIN_REGIONS = 10

#: Region-budget ceiling per process (DAMON's ``max_nr_regions``).
MAX_REGIONS = 128

#: Merge two adjacent regions when their access densities (sampled pages
#: per huge-region slot, 0..512) differ by at most this many pages.
MERGE_THRESHOLD = PAGES_PER_HUGE // 16

#: Spatial bins per process for the heatmap matrices.
NBINS = 64

#: Matrix ring length: samples of history kept per process.
HISTORY = 48

#: Snapshots of exited processes kept by the monitor (oldest age out).
RETIRED_CAP = 16

#: A monitoring region is "hot" when its EMA density clears half a region.
HOT_DENSITY = PAGES_PER_HUGE // 2

#: Terminal heat ramp, cold to hot (9 levels, index 0 = exactly zero).
RAMP = " ▁▂▃▄▅▆▇█"


class Region:
    """One monitoring region: a ``[start, end)`` hvpn span inside a VMA.

    ``sample`` is the exact sum of last sampled coverage (resident
    regions only) over the span; ``ema`` integrates it with the kernel's
    ``ema_alpha``; ``age`` counts samples since the region last changed
    shape (DAMON's region age, used to judge stability).
    """

    __slots__ = ("start", "end", "span", "sample", "ema", "age")

    def __init__(self, start: int, end: int, span: int,
                 sample: int = 0, ema: float = 0.0, age: int = 0):
        self.start = start
        self.end = end
        self.span = span
        self.sample = sample
        self.ema = ema
        self.age = age

    @property
    def width(self) -> int:
        return self.end - self.start

    def density(self) -> float:
        """Sampled pages per huge-region slot (0..512)."""
        return self.sample / self.width if self.width else 0.0

    def to_dict(self) -> dict:
        """JSON-able form (EMA and density rounded for stable output)."""
        return {
            "start": self.start, "end": self.end,
            "sample": self.sample, "ema": round(self.ema, 3),
            "density": round(self.density(), 2), "age": self.age,
        }


class ProcessHeat:
    """Per-process monitoring state: regions, matrices, WSS series."""

    def __init__(self, proc: "Process", nbins: int, history: int,
                 min_regions: int, max_regions: int,
                 merge_threshold: float) -> None:
        self.pid = proc.pid
        self.name = proc.name
        self.nbins = nbins
        self.history = history
        self.min_regions = min_regions
        self.max_regions = max_regions
        self.merge_threshold = merge_threshold
        #: the VMA extents (hvpn spans) the regions currently partition.
        self.spans: tuple[tuple[int, int], ...] = ()
        self.regions: list[Region] = []
        #: (lo_hvpn, hi_hvpn, nbins) of the current spatial axis; a
        #: change (address-space growth) resets the matrix rings.
        self.bin_key: Optional[tuple[int, int, int]] = None
        self.t_s: deque = deque(maxlen=history)
        self.epoch: deque = deque(maxlen=history)
        self.heat_rows: deque = deque(maxlen=history)
        self.util_rows: deque = deque(maxlen=history)
        self.huge_rows: deque = deque(maxlen=history)
        self.bloat_rows: deque = deque(maxlen=history)
        self.node_rows: deque = deque(maxlen=history)
        self.age_rows: deque = deque(maxlen=history)
        self.wss_hist = LatencyHistogram()
        self.wss_t_s: deque = deque(maxlen=history)
        self.wss_estimate: deque = deque(maxlen=history)
        self.wss_exact: deque = deque(maxlen=history)
        self.last_estimate = 0.0
        self.samples = 0
        self.finished = False

    # -- region layout -------------------------------------------------- #

    def _sync_spans(self, spans: tuple[tuple[int, int], ...]) -> None:
        """Re-partition after a VMA-set change, keeping surviving state.

        Old regions are clipped into the new spans; any uncovered gap
        inside a span becomes a fresh zero-state region, so the invariant
        *regions exactly partition the spans* holds by construction.
        """
        old = self.regions
        self.spans = spans
        out: list[Region] = []
        for si, (lo, hi) in enumerate(spans):
            cursor = lo
            for r in old:
                s, e = max(r.start, cursor), min(r.end, hi)
                if s >= e:
                    continue
                if s > cursor:
                    out.append(Region(cursor, s, si))
                if (s, e) == (r.start, r.end):
                    r.span = si
                    out.append(r)
                else:
                    # clipped: scale the conserved quantities by overlap.
                    frac = (e - s) / r.width
                    out.append(Region(s, e, si, int(r.sample * frac),
                                      r.ema * frac, 0))
                cursor = e
            if cursor < hi:
                out.append(Region(cursor, hi, si))
        self.regions = out

    def _merge_similar(self) -> None:
        """Merge adjacent same-VMA regions with similar access density."""
        if len(self.regions) <= 1:
            return
        out = [self.regions[0]]
        for r in self.regions[1:]:
            last = out[-1]
            if (r.span == last.span
                    and abs(r.density() - last.density())
                    <= self.merge_threshold):
                last.end = r.end
                last.sample += r.sample
                last.ema += r.ema
                last.age = min(last.age, r.age)
            else:
                out.append(r)
        self.regions = out

    def _enforce_budget(self) -> None:
        """Hard cap: merge most-similar adjacent pairs until within budget.

        A VMA-layout change can transiently leave more regions than
        ``max_regions`` (every clipped survivor and every gap becomes
        its own region).  DAMON's answer is to merge aggressively until
        the budget holds again: similarity still picks the victims, but
        the merge threshold no longer gates.  Ties break toward the
        lowest address, keeping the pass deterministic.  The floor is
        one region per span, so a span count beyond the budget simply
        leaves one region each.
        """
        while len(self.regions) > self.max_regions:
            best: Optional[int] = None
            best_diff = 0.0
            for i in range(len(self.regions) - 1):
                a, b = self.regions[i], self.regions[i + 1]
                if a.span != b.span:
                    continue
                diff = abs(a.density() - b.density())
                if best is None or diff < best_diff:
                    best, best_diff = i, diff
            if best is None:
                return
            a, b = self.regions[best], self.regions[best + 1]
            a.end = b.end
            a.sample += b.sample
            a.ema += b.ema
            a.age = min(a.age, b.age)
            del self.regions[best + 1]

    def _split_for_budget(self, sh: np.ndarray, cum: np.ndarray) -> None:
        """Midpoint-split regions while under half the region budget.

        DAMON splits every region in two whenever the count drops under
        ``max_nr_regions / 2``; we do the same but at the deterministic
        midpoint, recomputing child sums from the sample's prefix-sum
        array so access counts are conserved exactly.
        """
        if len(self.regions) >= max(self.min_regions, self.max_regions // 2):
            return
        out: list[Region] = []
        room = self.max_regions - len(self.regions)
        for r in self.regions:
            if room <= 0 or r.width < 2:
                out.append(r)
                continue
            mid = r.start + r.width // 2
            left_sum = int(cum[np.searchsorted(sh, mid)]
                           - cum[np.searchsorted(sh, r.start)])
            right_sum = r.sample - left_sum
            if r.sample > 0:
                left_ema = r.ema * (left_sum / r.sample)
            else:
                left_ema = r.ema * ((mid - r.start) / r.width)
            out.append(Region(r.start, mid, r.span, left_sum, left_ema, r.age))
            out.append(Region(mid, r.end, r.span, right_sum,
                              r.ema - left_ema, r.age))
            room -= 1
        self.regions = out

    # -- sampling --------------------------------------------------------#

    def on_sample(self, kernel: "Kernel", proc: "Process",
                  alpha: float) -> None:
        """Fold one access-bit sample into regions, matrices and WSS."""
        spans = tuple(
            (v.start >> 9, (v.end + PAGES_PER_HUGE - 1) >> 9)
            for v in proc.vmas if v.npages > 0)
        if spans != self.spans:
            self._sync_spans(spans)
        if not self.regions:
            return
        table = proc.regions
        n = len(table)
        if n:
            h = table.hvpn_arr()
            w = np.where(table.resident_arr() > 0,
                         table.last_coverage_arr(), 0)
            order = np.argsort(h, kind="stable")
            sh = h[order]
            cum = np.concatenate(([0], np.cumsum(w[order])))
        else:
            h = sh = np.empty(0, dtype=np.int64)
            w = np.empty(0, dtype=np.int64)
            cum = np.zeros(1, dtype=np.int64)
        starts = np.fromiter((r.start for r in self.regions),
                             dtype=np.int64, count=len(self.regions))
        ends = np.fromiter((r.end for r in self.regions),
                           dtype=np.int64, count=len(self.regions))
        sums = cum[np.searchsorted(sh, ends)] - cum[np.searchsorted(sh, starts)]
        for r, s in zip(self.regions, sums.tolist()):
            r.sample = int(s)
            r.ema = alpha * s + (1.0 - alpha) * r.ema
            r.age += 1
        self._merge_similar()
        self._enforce_budget()
        self._split_for_budget(sh, cum)
        self._record_matrices(kernel, proc, h, w)
        est = sum(r.ema for r in self.regions)
        self.last_estimate = est
        self.wss_hist.add(est)
        from repro.core.wss import WSSEstimator
        exact = WSSEstimator(kernel).wss_pages(proc)
        t_s = kernel.now_us / SEC
        self.wss_t_s.append(round(t_s, 3))
        self.wss_estimate.append(round(est, 2))
        self.wss_exact.append(round(exact, 2))
        self.samples += 1

    def _record_matrices(self, kernel: "Kernel", proc: "Process",
                         h: np.ndarray, w: np.ndarray) -> None:
        lo = min(s for s, _ in self.spans)
        hi = max(e for _, e in self.spans)
        nb = max(1, min(self.nbins, hi - lo))
        key = (lo, hi, nb)
        if key != self.bin_key:
            # the spatial axis moved (VMA growth): old columns no longer
            # line up, so restart the rings on the new axis.
            self.bin_key = key
            for ring in (self.t_s, self.epoch, self.heat_rows,
                         self.util_rows, self.huge_rows, self.bloat_rows,
                         self.node_rows, self.age_rows):
                ring.clear()
        span = hi - lo
        if len(h):
            pos = np.clip((h - lo) * nb // span, 0, nb - 1)
            cnt = np.bincount(pos, minlength=nb)
            denom = np.maximum(cnt, 1)
            resident = proc.regions.resident_arr()
            heat = np.bincount(pos, weights=w, minlength=nb) / denom
            util = (np.bincount(pos, weights=resident, minlength=nb)
                    / (denom * PAGES_PER_HUGE))
            huge = (np.bincount(pos, weights=proc.regions.is_huge_arr(),
                                minlength=nb) / denom)
        else:
            heat = util = huge = np.zeros(nb)
        bloat = np.zeros(nb, dtype=np.int64)
        fnz = kernel.frames.first_nonzero
        for hv, pte in proc.page_table.huge.items():
            if lo <= hv < hi:
                b = min((hv - lo) * nb // span, nb - 1)
                bloat[b] += int(
                    (fnz[pte.frame:pte.frame + PAGES_PER_HUGE] < 0).sum())
        numa = kernel.numa
        node_row: Optional[list[int]] = None
        if numa is not None and len(h):
            node_count = np.zeros((nb, numa.nodes), dtype=np.int64)
            for hv in h.tolist():
                node = numa.region_node(proc, hv)
                if node is not None:
                    b = min((hv - lo) * nb // span, nb - 1)
                    node_count[b, node] += 1
            node_row = np.where(node_count.sum(axis=1) > 0,
                                node_count.argmax(axis=1), -1).tolist()
        age_row: Optional[list[float]] = None
        audit_log = kernel.audit
        if audit_log is not None and len(h):
            ledger = audit_log.ledger
            age_sum = np.zeros(nb)
            age_cnt = np.zeros(nb, dtype=np.int64)
            pt = proc.page_table
            for idx, hv in enumerate(h.tolist()):
                pte = pt.huge.get(hv)
                if pte is not None:
                    frame = pte.frame
                else:
                    mframes, _ = pt.region_mirror(hv)
                    mapped = mframes[mframes >= 0]
                    if not len(mapped):
                        continue
                    frame = int(mapped[0])
                epoch = int(ledger.alloc_epoch[frame])
                if epoch >= 0:
                    b = min((hv - lo) * nb // span, nb - 1)
                    age_sum[b] += epoch
                    age_cnt[b] += 1
            age_row = [round(s / c, 1) if c else -1.0
                       for s, c in zip(age_sum.tolist(), age_cnt.tolist())]
        self.t_s.append(round(kernel.now_us / SEC, 3))
        self.epoch.append(kernel.stats.epochs)
        self.heat_rows.append([round(v, 2) for v in heat.tolist()])
        self.util_rows.append([round(v, 3) for v in util.tolist()])
        self.huge_rows.append([round(v, 3) for v in huge.tolist()])
        self.bloat_rows.append(bloat.tolist())
        self.node_rows.append(node_row)
        self.age_rows.append(age_row)

    # -- queries ---------------------------------------------------------#

    def hot_regions(self) -> int:
        """Monitoring regions whose EMA density clears :data:`HOT_DENSITY`."""
        return sum(1 for r in self.regions
                   if r.width and r.ema / r.width >= HOT_DENSITY)

    def snapshot(self) -> dict:
        """JSON-able state: regions, matrices, WSS percentile series."""
        lo, hi, nb = self.bin_key if self.bin_key else (0, 0, 0)
        wss: dict = {
            "t_s": list(self.wss_t_s),
            "estimate": list(self.wss_estimate),
            "exact": list(self.wss_exact),
            "samples": self.wss_hist.count,
        }
        if self.wss_hist.count:
            wss.update({k: round(v, 2)
                        for k, v in self.wss_hist.percentiles().items()})
        return {
            "process": self.name,
            "pid": self.pid,
            "finished": self.finished,
            "samples": self.samples,
            "span": [lo, hi],
            "bins": nb,
            "t_s": list(self.t_s),
            "epoch": list(self.epoch),
            "heat": [list(r) for r in self.heat_rows],
            "util": [list(r) for r in self.util_rows],
            "huge": [list(r) for r in self.huge_rows],
            "bloat": [list(r) for r in self.bloat_rows],
            "node": [r if r is None else list(r) for r in self.node_rows],
            "alloc_age": [r if r is None else list(r)
                          for r in self.age_rows],
            "regions": [r.to_dict() for r in self.regions],
            "hot_regions": self.hot_regions(),
            "wss": wss,
        }


class HeatMonitor:
    """Per-kernel spatial monitor: one :class:`ProcessHeat` per process."""

    def __init__(self, kernel: "Kernel", nbins: int = NBINS,
                 history: int = HISTORY, min_regions: int = MIN_REGIONS,
                 max_regions: int = MAX_REGIONS,
                 merge_threshold: float = MERGE_THRESHOLD) -> None:
        self.kernel = kernel
        self.nbins = nbins
        self.history = history
        self.min_regions = min_regions
        self.max_regions = max_regions
        self.merge_threshold = merge_threshold
        #: per-monitor gate: False pauses sampling while staying attached
        #: (the disabled-overhead benchmarks measure exactly this state).
        self.enabled = True
        self.procs: dict[int, ProcessHeat] = {}
        #: final snapshots of exited processes, oldest first.
        self.retired: list[dict] = []
        self.samples = 0

    def on_sample(self, kernel: "Kernel") -> None:
        """Fold the access-bit sample the kernel just took (epoch hook)."""
        alpha = kernel.config.ema_alpha
        live = {p.pid for p in kernel.processes}
        for pid in list(self.procs):
            if pid not in live:
                state = self.procs.pop(pid)
                state.finished = True
                self.retired.append(state.snapshot())
                del self.retired[:-RETIRED_CAP]
        for proc in kernel.processes:
            state = self.procs.get(proc.pid)
            if state is None:
                state = self.procs[proc.pid] = ProcessHeat(
                    proc, self.nbins, self.history, self.min_regions,
                    self.max_regions, self.merge_threshold)
            state.on_sample(kernel, proc, alpha)
        self.samples += 1
        # WSS doubles as a zero-span tracepoint per process: a counter
        # track in the Perfetto export, a `heat` row in attribution.
        if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            for state in self.procs.values():
                tp.emit(trace.TraceKind.HEAT_WSS, state.name, 0.0, None,
                        f"wss_pages={state.last_estimate:.1f};"
                        f"hot_regions={state.hot_regions()};"
                        f"regions={len(state.regions)}")

    def snapshot(self) -> dict:
        """JSON-able monitor state: live processes (by pid) then retired."""
        return {
            "samples": self.samples,
            "processes": [self.procs[pid].snapshot()
                          for pid in sorted(self.procs)] + list(self.retired),
        }


# ---------------------------------------------------------------------- #
# attachment (mirrors repro.trace / repro.audit)                           #
# ---------------------------------------------------------------------- #


def attach(kernel: "Kernel", **config) -> HeatMonitor:
    """Attach a :class:`HeatMonitor` to ``kernel``; arm the global flag.

    Idempotent: returns the existing monitor if one is attached.
    Keyword arguments forward to :class:`HeatMonitor` (``nbins``,
    ``history``, ``min_regions``, ``max_regions``, ``merge_threshold``).
    """
    global enabled, _attached
    if kernel.heat is not None:
        return kernel.heat
    monitor = HeatMonitor(kernel, **config)
    kernel.heat = monitor
    _attached += 1
    enabled = True
    return monitor


def detach(kernel: "Kernel") -> HeatMonitor | None:
    """Detach ``kernel``'s monitor; disarm the flag when none remain."""
    global enabled, _attached
    monitor = kernel.heat
    if monitor is None:
        return None
    kernel.heat = None
    _attached -= 1
    if _attached <= 0:
        _attached = 0
        enabled = False
    return monitor


def reset() -> None:
    """Force the module back to the no-monitor state (test isolation)."""
    global enabled, _attached
    enabled = False
    _attached = 0


# ---------------------------------------------------------------------- #
# rendering                                                               #
# ---------------------------------------------------------------------- #


def ramp_char(value: float, vmax: float) -> str:
    """Map a value onto the terminal heat ramp (index 0 = exactly zero)."""
    if value <= 0 or vmax <= 0:
        return RAMP[0]
    level = 1 + int((len(RAMP) - 2) * min(value, vmax) / vmax)
    return RAMP[min(level, len(RAMP) - 1)]


def format_heatmap(proc_snap: dict, epochs: int | None = None,
                   matrix: str = "heat") -> str:
    """Render one process's spatial×temporal matrix as a block heatmap.

    ``matrix`` selects which ring to draw (``heat``, ``util``, ``huge``,
    ``bloat``); ``epochs`` keeps only the last N sample rows.
    """
    rows = proc_snap.get(matrix) or []
    t_s = proc_snap.get("t_s") or []
    wss_series = (proc_snap.get("wss") or {}).get("estimate") or []
    if epochs is not None:
        rows, t_s = rows[-epochs:], t_s[-epochs:]
    lo, hi = proc_snap.get("span", (0, 0))
    nb = proc_snap.get("bins", 0) or 1
    vmax = {"heat": float(PAGES_PER_HUGE), "util": 1.0, "huge": 1.0}.get(
        matrix, max((max(r) for r in rows if r), default=1.0) or 1.0)
    bin_bytes = max(1, hi - lo) * HUGE_PAGE_SIZE / nb
    head = (f"{matrix} — {proc_snap.get('process')} pid={proc_snap.get('pid')}"
            f"  span hvpn [{lo},{hi})  {nb} bins × {len(rows)} samples"
            f"  (1 col ≈ {bytes_human(bin_bytes)})")
    lines = [head]
    # wss series aligns with the *tail* of the matrix rows (same ring).
    wss_tail = wss_series[-len(rows):] if rows else []
    for i, row in enumerate(rows):
        cells = "".join(ramp_char(v, vmax) for v in row)
        t = f"{t_s[i]:>8.1f}s" if i < len(t_s) else " " * 9
        wss = (f"  wss={wss_tail[i]:>10.0f}p"
               if matrix == "heat" and i < len(wss_tail) else "")
        lines.append(f"{t} │{cells}│{wss}")
    lines.append(f"  scale: '{RAMP[0]}'=0 … '{RAMP[-1]}'≥{vmax:g}"
                 + ("  (pages accessed / region)" if matrix == "heat" else ""))
    return "\n".join(lines)


def format_regions(proc_snap: dict) -> str:
    """Render one process's monitoring regions as an aligned table."""
    from repro.metrics.tables import format_table

    rows = [
        (f"[{r['start']},{r['end']})", r["end"] - r["start"], r["sample"],
         r["ema"], r["density"], r["age"],
         "hot" if r["ema"] / max(r["end"] - r["start"], 1) >= HOT_DENSITY
         else "")
        for r in proc_snap.get("regions") or []
    ]
    title = (f"monitoring regions — {proc_snap.get('process')} "
             f"pid={proc_snap.get('pid')} "
             f"({len(rows)} regions, {proc_snap.get('hot_regions', 0)} hot)")
    return format_table(
        ["span_hvpn", "width", "sample", "ema", "density", "age", ""],
        rows, title=title)


def format_wss(proc_snap: dict) -> str:
    """Render the WSS percentile summary + estimate-vs-exact series."""
    from repro.metrics.tables import format_table

    wss = proc_snap.get("wss") or {}
    rows = list(zip(wss.get("t_s") or [], wss.get("estimate") or [],
                    wss.get("exact") or []))
    pct = ", ".join(f"{k}={wss[k]:,.0f}p" for k in ("p50", "p95", "p99")
                    if k in wss)
    title = (f"wss — {proc_snap.get('process')} "
             f"({wss.get('samples', 0)} samples"
             + (f"; {pct}" if pct else "") + ")")
    return format_table(["t_s", "estimate_pages", "exact_pages"], rows,
                        title=title)
