"""OS kernel simulation: clock, costs, fault path, syscalls and the Kernel façade."""

from repro.kernel.costs import CostModel
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.kthread import RateLimiter
from repro.kernel.stats import KernelStats

__all__ = ["CostModel", "Kernel", "KernelConfig", "KernelStats", "RateLimiter"]
