"""Calibrated cost model for kernel operations.

All values are microseconds of CPU time on the paper's experimental
platform and are calibrated against Table 1, which decomposes page-fault
cost with and without synchronous zeroing:

* base-page fault: 3.5 µs total, of which 0.85 µs (~25 %) is zeroing —
  so 2.65 µs of fixed fault-path work plus 0.85 µs to clear 4 KiB.
* huge-page fault: 465 µs total, of which ~452 µs (97 %) is zeroing
  2 MiB — 13 µs of fixed work remains when the frame is pre-zeroed.

The remaining entries price the background machinery: promotion copies,
zero-scans (per byte, so HawkEye's §3.2 early-exit scan costs ~10 bytes
per in-use page), access-bit sampling, compaction migration and
same-page-merging comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import BASE_PAGE_SIZE, PAGES_PER_HUGE


@dataclass(frozen=True)
class CostModel:
    """Microsecond costs of kernel operations (see module docstring)."""

    base_fault_us: float = 2.65
    zero_base_us: float = 0.85
    huge_fault_us: float = 13.0
    zero_huge_us: float = 452.0
    #: copy-on-write break: fault path plus a 4 KiB copy.
    cow_fault_us: float = 3.6
    #: copying one base page during promotion collapse or compaction.
    copy_base_us: float = 0.9
    #: remap-only promotion/demotion (page-table surgery + TLB shootdown).
    remap_us: float = 25.0
    #: process-visible stall per promotion (mmap_sem, TLB flush).
    promotion_stall_us: float = 25.0
    #: scanning one byte during a zero-page scan (~10 GB/s memory scan).
    scan_byte_us: float = 1e-4
    #: sampling the access bits of one huge region (clear + test).
    sample_region_us: float = 0.2
    #: same-page-merging candidate comparison, per page.
    ksm_compare_us: float = 1.0
    #: 4 KiB transfer to/from the SSD-backed swap partition.
    swap_page_us: float = 100.0
    #: taking one NUMA hint fault (minor fault, no allocation): the
    #: fault-path fixed cost without any zeroing.
    numa_hint_fault_us: float = 2.65
    #: migrating one base page across nodes: copy plus the remote-write
    #: half of the transfer (~2x a local copy, matching move_pages()
    #: microbenchmarks relative to a local memcpy).
    numa_migrate_page_us: float = 1.8

    def base_fault(self, needs_zeroing: bool) -> float:
        """Latency of one 4 KiB anonymous fault."""
        return self.base_fault_us + (self.zero_base_us if needs_zeroing else 0.0)

    def huge_fault(self, needs_zeroing: bool) -> float:
        """Latency of one 2 MiB anonymous fault."""
        return self.huge_fault_us + (self.zero_huge_us if needs_zeroing else 0.0)

    def zero_block_us(self, order: int) -> float:
        """CPU time to zero-fill a ``2**order``-page block (pre-zero thread)."""
        return self.zero_base_us * (1 << order)

    def promotion_collapse_us(self, resident_pages: int) -> float:
        """Promote by copying ``resident_pages`` into a fresh huge frame.

        The non-resident remainder of the huge page must be cleared.
        """
        copy = self.copy_base_us * resident_pages
        clear = self.zero_base_us * (PAGES_PER_HUGE - resident_pages)
        return self.remap_us + copy + clear

    def scan_page_us(self, bytes_scanned: int) -> float:
        """Cost of a zero-scan that read ``bytes_scanned`` bytes."""
        return self.scan_byte_us * bytes_scanned

    def scan_full_page_us(self) -> float:
        """Cost of scanning an entire 4 KiB page (a genuine zero page)."""
        return self.scan_byte_us * BASE_PAGE_SIZE
