"""The page-fault path.

``handle_fault`` implements the fault handler all policies share, with
policy hooks at the decision points (mapping granularity, reserved
frames).  It returns the fault's latency in microseconds — the quantity
Table 1 of the paper decomposes — and charges it to the process's
per-epoch fault-time account.

Zeroing semantics follow the paper exactly: anonymous pages must be
zeroed before mapping; baselines zero synchronously in the fault path
(they do not track frame content), while a policy with
``trusts_zero_lists`` set skips the clearing when the buddy allocator
handed out a pre-zeroed frame (HawkEye §3.1).  Writes to shared-zero
mappings (created by bloat recovery, §3.2) take a copy-on-write fault.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.units import PAGES_PER_HUGE
from repro.vm.process import Process
from repro.vm.vma import VMA, HugePageHint, VMAKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def handle_fault(kernel: "Kernel", proc: Process, vpn: int, vma: VMA | None = None) -> float:
    """Fault on ``vpn``; returns the fault latency in µs (0 if already mapped)."""
    pt = proc.page_table
    pte = pt.base.get(vpn)
    if pte is not None:
        if pte.shared_zero:
            return _cow_break(kernel, proc, vpn)
        if pte.shared_cow:
            return _cow_break_shared(kernel, proc, vpn)
        pte.accessed = True
        return 0.0
    huge_pte = pt.huge.get(vpn >> 9)
    if huge_pte is not None:
        huge_pte.accessed = True
        return 0.0

    if vma is None:
        vma = proc.vmas.find(vpn)
    hvpn = vpn >> 9
    region = proc.region(hvpn)
    policy = kernel.policy
    anon = vma.kind is VMAKind.ANON

    # madvise hints trump the policy: NOHUGEPAGE forces base pages,
    # HUGEPAGE requests a huge mapping even from reluctant policies.
    if vma.hint is HugePageHint.NEVER:
        want_huge = False
    elif vma.hint is HugePageHint.ALWAYS:
        want_huge = True
    else:
        want_huge = policy.fault_size(proc, vma, vpn) == "huge"

    if (
        want_huge
        and region.resident == 0
        and vma.covers(hvpn << 9, PAGES_PER_HUGE)
    ):
        latency = _try_huge_fault(kernel, proc, vma, hvpn, anon)
        if latency is not None:
            return latency

    return _base_fault(kernel, proc, vma, vpn, region, anon)


def _try_huge_fault(kernel: "Kernel", proc: Process, vma: VMA, hvpn: int, anon: bool) -> float | None:
    """Map a whole huge page at fault time; None when no block is available."""
    got = kernel.buddy.try_alloc(order=9, prefer_zero=anon, owner=proc.pid)
    if got is None:
        return None
    frame, zeroed = got
    backing_us = kernel.notify_alloc(frame, PAGES_PER_HUGE)
    needs_zero = anon and (not zeroed or not kernel.policy.trusts_zero_lists)
    if needs_zero:
        kernel.frames.zero_fill(frame, PAGES_PER_HUGE)
    pt_entry = proc.page_table.map_huge(hvpn, frame)
    pt_entry.accessed = True
    kernel.rmap_add_huge(frame, proc, hvpn)
    region = proc.region(hvpn)
    region.is_huge = True
    region.resident = PAGES_PER_HUGE
    latency = kernel.costs.huge_fault(needs_zero) + backing_us
    proc.stats.faults += 1
    proc.stats.huge_faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    kernel.stats.huge_faults += 1
    kernel.policy.post_fault(proc, vma, hvpn << 9, huge=True)
    return latency


def _base_fault(
    kernel: "Kernel", proc: Process, vma: VMA, vpn: int, region, anon: bool
) -> float:
    """Map a single base page, from a reservation or the buddy allocator."""
    policy = kernel.policy
    frame = policy.reserved_frame(proc, vma, vpn)
    backing_us = 0.0
    if frame is not None:
        zeroed = kernel.frames.is_zero(frame)
    else:
        frame, zeroed = kernel.alloc_base_frame(prefer_zero=anon, owner=proc.pid)
        backing_us = kernel.notify_alloc(frame, 1)
    swapped_in = kernel.swap is not None and kernel.swap.is_swapped(proc.pid, vpn)
    if swapped_in:
        backing_us += kernel.swap.swap_in(proc.pid, vpn)
        # The page's old (non-zero) content comes back from swap.
        kernel.frames.write(frame, first_nonzero=9)
    needs_zero = not swapped_in and anon and (not zeroed or not policy.trusts_zero_lists)
    if needs_zero:
        kernel.frames.zero_fill(frame, 1)
    pte = proc.page_table.map_base(vpn, frame)
    pte.accessed = True
    kernel.rmap_add(frame, proc, vpn)
    region.resident += 1
    latency = kernel.costs.base_fault(needs_zero) + backing_us
    proc.stats.faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    policy.post_fault(proc, vma, vpn, huge=False)
    return latency


def _cow_break_shared(kernel: "Kernel", proc: Process, vpn: int) -> float:
    """Write to a ksm-merged mapping: copy the content back out."""
    pte = proc.page_table.base[vpn]
    canonical = pte.frame
    frame, _ = kernel.alloc_base_frame(prefer_zero=False, owner=proc.pid)
    kernel.frames.first_nonzero[frame] = kernel.frames.first_nonzero[canonical]
    kernel.frames.content_tag[frame] = kernel.frames.content_tag[canonical]
    kernel.cow_registry.unshare(canonical)
    kernel.cow_registry.cow_breaks += 1
    pte.frame = frame
    pte.shared_cow = False
    pte.dirty = True
    kernel.rmap_add(frame, proc, vpn)
    latency = kernel.costs.cow_fault_us
    proc.stats.faults += 1
    proc.stats.cow_faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    kernel.stats.cow_faults += 1
    return latency


def _cow_break(kernel: "Kernel", proc: Process, vpn: int) -> float:
    """Write to a shared-zero mapping: allocate a private copy."""
    pte = proc.page_table.base[vpn]
    frame, zeroed = kernel.alloc_base_frame(prefer_zero=True, owner=proc.pid)
    if not zeroed:
        kernel.frames.zero_fill(frame, 1)
    pte.frame = frame
    pte.shared_zero = False
    pte.dirty = True
    proc.page_table.shared_zero_count -= 1
    kernel.rmap_add(frame, proc, vpn)
    kernel.zero_registry.cow_break()
    latency = kernel.costs.cow_fault_us
    proc.stats.faults += 1
    proc.stats.cow_faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    kernel.stats.cow_faults += 1
    return latency
