"""The page-fault path.

``handle_fault`` implements the fault handler all policies share, with
policy hooks at the decision points (mapping granularity, reserved
frames).  It returns the fault's latency in microseconds — the quantity
Table 1 of the paper decomposes — and charges it to the process's
per-epoch fault-time account.

Zeroing semantics follow the paper exactly: anonymous pages must be
zeroed before mapping; baselines zero synchronously in the fault path
(they do not track frame content), while a policy with
``trusts_zero_lists`` set skips the clearing when the buddy allocator
handed out a pre-zeroed frame (HawkEye §3.1).  Writes to shared-zero
mappings (created by bloat recovery, §3.2) take a copy-on-write fault.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro import audit, trace
from repro.policies.base import HugePagePolicy
from repro.units import PAGES_PER_HUGE
from repro.vm.process import Process
from repro.vm.vma import VMA, HugePageHint, VMAKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


def handle_fault(kernel: "Kernel", proc: Process, vpn: int, vma: VMA | None = None) -> float:
    """Fault on ``vpn``; returns the fault latency in µs (0 if already mapped)."""
    pt = proc.page_table
    pte = pt.base.get(vpn)
    if pte is not None:
        if pte.shared_zero:
            return _cow_break(kernel, proc, vpn)
        if pte.shared_cow:
            return _cow_break_shared(kernel, proc, vpn)
        pte.accessed = True
        return 0.0
    huge_pte = pt.huge.get(vpn >> 9)
    if huge_pte is not None:
        huge_pte.accessed = True
        return 0.0

    if vma is None:
        vma = proc.vmas.find(vpn)
    hvpn = vpn >> 9
    region = proc.region(hvpn)
    policy = kernel.policy
    anon = vma.kind is VMAKind.ANON

    # madvise hints trump the policy: NOHUGEPAGE forces base pages,
    # HUGEPAGE requests a huge mapping even from reluctant policies.
    if vma.hint is HugePageHint.NEVER:
        want_huge = False
    elif vma.hint is HugePageHint.ALWAYS:
        want_huge = True
    else:
        want_huge = policy.fault_size(proc, vma, vpn) == "huge"

    if (
        want_huge
        and region.resident == 0
        and vma.covers(hvpn << 9, PAGES_PER_HUGE)
    ):
        latency = _try_huge_fault(kernel, proc, vma, hvpn, anon)
        if latency is not None:
            return latency

    return _base_fault(kernel, proc, vma, vpn, region, anon)


def _numa_target(kernel: "Kernel", proc: Process, vma: VMA | None,
                 hvpn: int) -> tuple[int | None, bool]:
    """``(node, strict)`` for a fault, or ``(None, False)`` on single node."""
    if kernel.numa is None:
        return None, False
    return kernel.numa.fault_node(proc, vma, hvpn)


def _try_huge_fault(kernel: "Kernel", proc: Process, vma: VMA, hvpn: int, anon: bool) -> float | None:
    """Map a whole huge page at fault time; None when no block is available."""
    node, strict = _numa_target(kernel, proc, vma, hvpn)
    if node is None:
        got = kernel.buddy.try_alloc(order=9, prefer_zero=anon, owner=proc.pid)
    else:
        got = kernel.buddy.try_alloc(order=9, prefer_zero=anon, owner=proc.pid,
                                     node=node, strict=strict)
    if got is None:
        return None
    frame, zeroed = got
    backing_us = kernel.notify_alloc(frame, PAGES_PER_HUGE)
    needs_zero = anon and (not zeroed or not kernel.policy.trusts_zero_lists)
    if needs_zero:
        kernel.frames.zero_fill(frame, PAGES_PER_HUGE)
    pt_entry = proc.page_table.map_huge(hvpn, frame)
    pt_entry.accessed = True
    kernel.rmap_add_huge(frame, proc, hvpn)
    region = proc.region(hvpn)
    region.is_huge = True
    region.resident = PAGES_PER_HUGE
    latency = kernel.costs.huge_fault(needs_zero) + backing_us
    proc.stats.faults += 1
    proc.stats.huge_faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    kernel.stats.huge_faults += 1
    kernel.policy.post_fault(proc, vma, hvpn << 9, huge=True)
    if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
        tp.emit(trace.TraceKind.FAULT_HUGE, proc.name, latency, hvpn)
    return latency


def _base_fault(
    kernel: "Kernel", proc: Process, vma: VMA, vpn: int, region, anon: bool
) -> float:
    """Map a single base page, from a reservation or the buddy allocator."""
    policy = kernel.policy
    frame = policy.reserved_frame(proc, vma, vpn)
    backing_us = 0.0
    if frame is not None:
        zeroed = kernel.frames.is_zero(frame)
    else:
        node, strict = _numa_target(kernel, proc, vma, vpn >> 9)
        frame, zeroed = kernel.alloc_base_frame(prefer_zero=anon, owner=proc.pid,
                                                node=node, strict=strict)
        backing_us = kernel.notify_alloc(frame, 1)
    swapped_in = kernel.swap is not None and kernel.swap.is_swapped(proc.pid, vpn)
    if swapped_in:
        swap_us = kernel.swap.swap_in(proc.pid, vpn)
        backing_us += swap_us
        # The page's old (non-zero) content comes back from swap.
        kernel.frames.write(frame, first_nonzero=9)
        if audit.enabled and (al := kernel.audit) is not None and al.enabled:
            al.ledger.record(frame, 1, audit.EV_SWAPPED_IN)
        if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.SWAP_IN, proc.name, swap_us, vpn)
    needs_zero = not swapped_in and anon and (not zeroed or not policy.trusts_zero_lists)
    if needs_zero:
        kernel.frames.zero_fill(frame, 1)
    pte = proc.page_table.map_base(vpn, frame)
    pte.accessed = True
    kernel.rmap_add(frame, proc, vpn)
    region.resident += 1
    latency = kernel.costs.base_fault(needs_zero) + backing_us
    proc.stats.faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    policy.post_fault(proc, vma, vpn, huge=False)
    if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
        tp.emit(trace.TraceKind.FAULT_BASE, proc.name, latency, vpn)
    return latency


def handle_fault_range(
    kernel: "Kernel",
    proc: Process,
    vpn0: int,
    npages: int,
    budget_us: float = math.inf,
    content=None,
    vma: VMA | None = None,
    work_us: float = 0.0,
    pace_us: float = 0.0,
) -> tuple[float, int]:
    """Batched equivalent of per-page ``handle_fault`` plus content writes.

    Touches ``[vpn0, vpn0 + npages)`` in ascending order and stops — like
    the scalar touch loop — once the consumed time reaches ``budget_us``
    (checked before each page, so the same one-page overshoot is
    possible).  Each page consumes ``max(fault_cost + work_us, pace_us)``
    of budget, mirroring the touch loop's per-page work and client pacing;
    only the raw fault cost is charged to fault-time statistics.  Returns
    ``(consumed_us, pages_processed)``.

    The contract is *exact equivalence*: page tables, rmap, buddy
    free-list contents (including dict order, which drives future
    allocations), frame content descriptors and all counters end up
    identical to running ``handle_fault`` — and, when ``content`` is
    given, a per-page :meth:`FrameTable.write` — page by page.  The only
    tolerated difference is float rounding in latency totals, which are
    charged as ``count × per-fault-cost`` per uniform run.

    Pages that cannot take the bulk path fall back to scalar
    ``handle_fault``: shared-zero / shared-COW mappings (write breaks),
    swapped-out pages, and the first page of a region eligible for a huge
    fault.  Policies with reservation or post-fault hooks (FreeBSD) and
    kernels with a ``frame_alloc_hook`` (virtualised setups) take the
    scalar path for the entire range.  ``content`` duck-types
    :class:`repro.workloads.base.ContentSpec`.

    Bulk runs require ``policy.fault_size`` to be stable across a huge
    region for a fixed state (it is consulted once per run, not per
    page); every in-tree policy satisfies this.
    """
    pt = proc.page_table
    policy = kernel.policy
    scalar_only = (
        type(policy).reserved_frame is not HugePagePolicy.reserved_frame
        or type(policy).post_fault is not HugePagePolicy.post_fault
        or kernel.frame_alloc_hook is not None
    )
    base = pt.base
    huge = pt.huge
    swapped = kernel.swap.swapped if kernel.swap is not None else None
    pid = proc.pid
    # Budget increment for a page whose fault cost is zero (already mapped).
    flat_inc = work_us if work_us > pace_us else pace_us
    consumed = 0.0
    pos = 0
    while pos < npages and consumed < budget_us:
        vpn = vpn0 + pos
        if vma is None or not vma.contains(vpn):
            vma = proc.vmas.find(vpn)
        if scalar_only:
            cost = handle_fault(kernel, proc, vpn, vma)
            if content is not None:
                _write_content_page(kernel, proc, vpn, content)
            consumed += max(cost + work_us, pace_us)
            pos += 1
            continue
        hvpn = vpn >> 9
        seg_end = min((hvpn + 1) << 9, vma.end, vpn0 + npages)
        huge_pte = huge.get(hvpn)
        if huge_pte is not None:
            # Whole tail of the region is huge-mapped: touch + write only.
            n = seg_end - vpn
            if flat_inc > 0.0 and not math.isinf(budget_us):
                n = min(n, int(math.ceil((budget_us - consumed) / flat_inc)))
            huge_pte.accessed = True
            if content is not None:
                frame0 = huge_pte.frame + (vpn & (PAGES_PER_HUGE - 1))
                _write_content_run(kernel, frame0, n, content)
            consumed += n * flat_inc
            pos += n
            continue
        pte = base.get(vpn)
        if pte is not None:
            if pte.shared_zero or pte.shared_cow:
                cost = handle_fault(kernel, proc, vpn, vma)
                if content is not None:
                    _write_content_page(kernel, proc, vpn, content)
                consumed += max(cost + work_us, pace_us)
                pos += 1
                continue
            # Run of private already-mapped base pages: touch + write only.
            limit = seg_end
            if flat_inc > 0.0 and not math.isinf(budget_us):
                limit = min(limit, vpn + int(math.ceil((budget_us - consumed) / flat_inc)))
            run_frames = []
            v = vpn
            while v < limit:
                p = base.get(v)
                if p is None or p.shared_zero or p.shared_cow:
                    break
                p.accessed = True
                run_frames.append(p.frame)
                v += 1
            if content is not None:
                _write_content_frames(kernel, run_frames, content)
            consumed += (v - vpn) * flat_inc
            pos += v - vpn
            continue
        if swapped and (pid, vpn) in swapped:
            cost = handle_fault(kernel, proc, vpn, vma)
            if content is not None:
                _write_content_page(kernel, proc, vpn, content)
            consumed += max(cost + work_us, pace_us)
            pos += 1
            continue
        region = proc.region(hvpn)
        if vma.hint is HugePageHint.NEVER:
            want_huge = False
        elif vma.hint is HugePageHint.ALWAYS:
            want_huge = True
        else:
            want_huge = policy.fault_size(proc, vma, vpn) == "huge"
        if want_huge and region.resident == 0 and vma.covers(hvpn << 9, PAGES_PER_HUGE):
            # Huge-fault-eligible: scalar for this page; on success the
            # rest of the region takes the huge-mapped run above, on
            # fallback it becomes resident>0 and bulk base faults apply.
            cost = handle_fault(kernel, proc, vpn, vma)
            if content is not None:
                _write_content_page(kernel, proc, vpn, content)
            consumed += max(cost + work_us, pace_us)
            pos += 1
            continue
        # Contiguous unmapped, unswapped run: the bulk base-fault path.
        v = vpn + 1
        while v < seg_end and v not in base and not (swapped and (pid, v) in swapped):
            v += 1
        run_us, run_pages = _bulk_base_fault(
            kernel, proc, vma, region, vpn, v - vpn, budget_us - consumed, content,
            work_us, pace_us,
        )
        consumed += run_us
        pos += run_pages
        if run_pages < v - vpn:
            break  # latency budget exhausted mid-run
    return consumed, pos


def _bulk_base_fault(
    kernel: "Kernel", proc: Process, vma: VMA, region, vpn0: int, npages: int,
    budget_us: float, content, work_us: float = 0.0, pace_us: float = 0.0,
) -> tuple[float, int]:
    """Allocate, map, account and write a run of base faults in bulk.

    One buddy extent at a time (so a mid-run budget stop leaves the free
    lists exactly as the scalar loop would); per-extent fault latency is
    ``count × costs.base_fault(needs_zero)``, while the budget drains by
    ``count × max(cost + work_us, pace_us)``.  Returns ``(µs, pages)``
    where the µs are the budget consumption.
    """
    anon = vma.kind is VMAKind.ANON
    trusts = kernel.policy.trusts_zero_lists
    costs = kernel.costs
    pt = proc.page_table
    pstats = proc.stats
    kstats = kernel.stats
    total = 0.0
    done = 0
    # Bulk runs never cross a huge-region boundary, so one placement
    # decision covers the whole run (interleave keys on the region).
    node, strict = _numa_target(kernel, proc, vma, vpn0 >> 9)
    while done < npages and total < budget_us:
        start, count, zeroed = kernel.alloc_base_run_extent(
            npages - done, prefer_zero=anon, owner=proc.pid,
            node=node, strict=strict,
        )
        needs_zero = anon and (not zeroed or not trusts)
        per_page = costs.base_fault(needs_zero)
        inc = max(per_page + work_us, pace_us)
        left = budget_us - total
        # The scalar loop faults another page whenever the time consumed
        # so far is below budget, so this extent contributes exactly
        # ceil(left / inc) pages before the stop (capped by its size).
        take = count if math.isinf(left) else min(count, int(math.ceil(left / inc)))
        if take < count:
            # Return the surplus: scalar would never have allocated it.
            # free_range reinserts the identical maximal decomposition
            # (no buddy of a surplus piece can be free: the drained prefix
            # is allocated and the block's outer buddies were not free).
            kernel.buddy.free_range(start + take, count - take)
        if needs_zero:
            kernel.frames.zero_fill(start, take)
        ext = [(start, take, zeroed)]
        pt.map_base_range(vpn0 + done, ext, accessed=True)
        kernel.rmap_add_range(proc, vpn0 + done, ext)
        if content is not None:
            _write_content_run(kernel, start, take, content)
        if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            # Per-page events, identical to the scalar loop's stream: same
            # kind, process, vpn order and span (per_page is exactly the
            # scalar latency — the bulk path has no backing hook or swap).
            for i in range(take):
                tp.emit(trace.TraceKind.FAULT_BASE, proc.name, per_page,
                        vpn0 + done + i)
        run_us = take * per_page
        total += take * inc
        done += take
        region.resident += take
        pstats.faults += take
        pstats.fault_time_us += run_us
        proc.fault_time_epoch_us += run_us
        kstats.faults += take
        if take < count:
            break
    return total, done


def _write_content_run(kernel: "Kernel", frame0: int, count: int, content) -> None:
    """Apply a ContentSpec to ``count`` consecutive frames."""
    if content.zero:
        kernel.frames.zero_fill(frame0, count)
    else:
        kernel.frames.write_range(frame0, count, content.first_nonzero, content.shared_tag)


def _write_content_frames(kernel: "Kernel", frames: list[int], content) -> None:
    """Apply a ContentSpec to an arbitrary frame list (in list order)."""
    if not frames:
        return
    if content.zero:
        for frame in frames:
            kernel.frames.write_zero(frame)
    else:
        kernel.frames.write_frames(frames, content.first_nonzero, content.shared_tag)


def _write_content_page(kernel: "Kernel", proc: Process, vpn: int, content) -> None:
    """Post-fault content write for one page (the scalar touch semantics)."""
    translated = proc.page_table.translate(vpn)
    if translated is None:
        return
    frame, _ = translated
    if content.zero:
        kernel.frames.write_zero(frame)
    else:
        kernel.frames.write(frame, content.first_nonzero, content.shared_tag)


def _cow_break_shared(kernel: "Kernel", proc: Process, vpn: int) -> float:
    """Write to a ksm-merged mapping: copy the content back out."""
    pte = proc.page_table.base[vpn]
    canonical = pte.frame
    node, strict = _numa_target(kernel, proc, proc.vmas.try_find(vpn), vpn >> 9)
    frame, _ = kernel.alloc_base_frame(prefer_zero=False, owner=proc.pid,
                                       node=node, strict=strict)
    kernel.frames.first_nonzero[frame] = kernel.frames.first_nonzero[canonical]
    kernel.frames.content_tag[frame] = kernel.frames.content_tag[canonical]
    kernel.cow_registry.unshare(canonical)
    kernel.cow_registry.cow_breaks += 1
    pte.frame = frame
    pte.shared_cow = False
    pte.dirty = True
    proc.page_table.sync_pte(vpn, pte)
    kernel.rmap_add(frame, proc, vpn)
    latency = kernel.costs.cow_fault_us
    proc.stats.faults += 1
    proc.stats.cow_faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    kernel.stats.cow_faults += 1
    if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
        tp.emit(trace.TraceKind.FAULT_COW, proc.name, latency, vpn, "ksm")
    return latency


def _cow_break(kernel: "Kernel", proc: Process, vpn: int) -> float:
    """Write to a shared-zero mapping: allocate a private copy."""
    pte = proc.page_table.base[vpn]
    node, strict = _numa_target(kernel, proc, proc.vmas.try_find(vpn), vpn >> 9)
    frame, zeroed = kernel.alloc_base_frame(prefer_zero=True, owner=proc.pid,
                                            node=node, strict=strict)
    if not zeroed:
        kernel.frames.zero_fill(frame, 1)
    pte.frame = frame
    pte.shared_zero = False
    pte.dirty = True
    proc.page_table.shared_zero_count -= 1
    proc.page_table.sync_pte(vpn, pte)
    kernel.rmap_add(frame, proc, vpn)
    kernel.zero_registry.cow_break()
    latency = kernel.costs.cow_fault_us
    proc.stats.faults += 1
    proc.stats.cow_faults += 1
    proc.stats.fault_time_us += latency
    proc.fault_time_epoch_us += latency
    kernel.stats.faults += 1
    kernel.stats.cow_faults += 1
    if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
        tp.emit(trace.TraceKind.FAULT_COW, proc.name, latency, vpn, "zero")
    return latency
