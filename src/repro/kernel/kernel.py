"""The Kernel façade: physical memory, processes, policy and the epoch loop.

A :class:`Kernel` binds together the substrates (buddy allocator, frame
table, compaction, fragmenter), the analytic MMU model, one huge-page
policy and the set of running workloads.  Time advances in epochs (one
simulated second by default); each epoch every runnable workload steps,
then the policy performs its rate-limited background work, then access
bits are sampled on the paper's schedule (every 30 s).

The kernel also owns the mechanisms every policy shares:

* ``promote_region`` — in-place remap when the region's frames are
  already a contiguous aligned block (huge-at-fault then demoted, or a
  fully-populated FreeBSD reservation), otherwise a khugepaged-style
  *collapse*: allocate an order-9 block (compacting if needed), copy
  resident pages, zero the rest;
* ``demote_region`` / ``dedup_zero_pages`` — the §3.2 bloat-recovery
  mechanics: break a huge mapping and remap its zero-filled base pages
  copy-on-write onto the canonical zero frame;
* ``madvise_free`` — the release path Redis uses in Figure 1, which
  breaks huge mappings and returns (dirty) frames to the buddy
  allocator's non-zero lists;
* the OOM path: on allocation failure the kernel reclaims file cache,
  then gives the policy one chance to free memory
  (:meth:`repro.policies.base.HugePagePolicy.on_memory_pressure`), and
  only then raises :class:`~repro.errors.OutOfMemoryError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro import audit as audit_mod
from repro import heat as heat_mod
from repro import trace
from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.metrics import telemetry as telemetry_mod
from repro.kernel.costs import CostModel
from repro.kernel.fault import handle_fault, handle_fault_range
from repro.kernel.stats import KernelStats
from repro.kernel.swap import SwapDevice
from repro.mem.buddy import BuddyAllocator
from repro.mem.compaction import Compactor
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.frames import FrameTable
from repro.mem.zeropage import ZeroPageRegistry
from repro.numa.topology import NumaTopology
from repro.tlb.mmu_model import MMUModel
from repro.tlb.perf import PMUCounters
from repro.tlb.tlb import TLBConfig
from repro.units import BASE_PAGE_SIZE, PAGES_PER_HUGE, SEC, pages_of
from repro.vm.process import Process
from repro.vm.vma import VMA, VMAKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.policies.base import HugePagePolicy
    from repro.workloads.base import Workload, WorkloadRun

#: Owner id of kernel-reserved frames (e.g. the canonical zero page).
KERNEL_OWNER = -3


@dataclass
class KernelConfig:
    """Machine and kernel-loop parameters."""

    mem_bytes: int
    epoch_us: float = SEC
    #: epochs between access-bit samples (paper §3.3: every 30 seconds).
    sample_period: int = 30
    #: EMA smoothing for access-coverage samples.
    ema_alpha: float = 0.3
    costs: CostModel = field(default_factory=CostModel)
    tlb: TLBConfig = field(default_factory=TLBConfig)
    #: page-migration budget for one compaction attempt.
    compact_budget_pages: int = 4096
    #: background compaction daemon (kcompactd) rate; 0 disables it.
    #: When enabled it rebuilds order-9 blocks whenever FMFI is high,
    #: which is what lets Ingens re-enter its aggressive phase after
    #: memory churn.
    kcompactd_pages_per_sec: float = 0.0
    #: frame content starts zeroed (fresh boot) or dirty (long-running).
    boot_zeroed: bool = True
    #: SSD-backed swap partition size; 0 = no swap (OOM on exhaustion).
    swap_bytes: int = 0
    #: NUMA topology; the default single node keeps every fast path and
    #: produces bit-identical results to a build without the subsystem.
    topology: NumaTopology = field(default_factory=NumaTopology)
    #: knumad balancing-kthread migration rate; 0 disables balancing
    #: (hint faults and migrations) even on multi-node topologies.
    knumad_pages_per_sec: float = 0.0
    #: Mitosis-style per-node page-table replicas: page walks always hit
    #: local memory, at a per-node memory cost reported in numastat.
    replicated_page_tables: bool = False

    def __post_init__(self) -> None:
        from repro.errors import ConfigError
        from repro.units import HUGE_PAGE_SIZE

        if self.mem_bytes < 2 * HUGE_PAGE_SIZE:
            raise ConfigError(
                f"mem_bytes={self.mem_bytes} too small: need at least two "
                f"huge pages ({2 * HUGE_PAGE_SIZE} bytes) of simulated memory"
            )
        if self.epoch_us <= 0:
            raise ConfigError(f"epoch_us must be positive, got {self.epoch_us}")
        if self.sample_period < 1:
            raise ConfigError(f"sample_period must be >= 1, got {self.sample_period}")
        if not 0.0 < self.ema_alpha <= 1.0:
            raise ConfigError(f"ema_alpha must be in (0, 1], got {self.ema_alpha}")
        if self.swap_bytes < 0:
            raise ConfigError(f"swap_bytes must be non-negative, got {self.swap_bytes}")
        self.topology.validate(pages_of(self.mem_bytes))
        if self.knumad_pages_per_sec < 0:
            raise ConfigError(
                f"knumad_pages_per_sec must be non-negative, got {self.knumad_pages_per_sec}"
            )


class Kernel:
    """One simulated machine running one policy."""

    def __init__(self, config: KernelConfig, policy_factory: Callable[["Kernel"], "HugePagePolicy"]):
        self.config = config
        self.costs = config.costs
        self.frames = FrameTable(pages_of(config.mem_bytes))
        if not config.boot_zeroed:
            self.frames.first_nonzero[:] = 0
        #: NUMA state; stays None on single-node topologies so every
        #: fault/walk-path guard short-circuits and results stay
        #: bit-identical to a kernel without the subsystem.
        self.numa = None
        if config.topology.nodes > 1:
            from repro.numa.allocator import NodeAllocator, NodeCompactor
            from repro.numa.balance import NumaState

            self.buddy = NodeAllocator(self.frames, config.topology)
            self.compactor = NodeCompactor(self.buddy, self._migrate_frame)
            self.numa = NumaState(self)
        else:
            self.buddy = BuddyAllocator(self.frames)
            self.compactor = Compactor(self.buddy, self._migrate_frame)
        self.fragmenter = Fragmenter(self.buddy)
        self.mmu = MMUModel(config.tlb)
        self.stats = KernelStats()
        #: tracepoint sink; attach with :func:`repro.trace.attach`.  Every
        #: emission site first tests the module-level ``trace.enabled``
        #: flag, so this slot costs nothing while it stays None.
        self.trace: Optional[trace.Tracer] = None
        #: epoch telemetry sampler; attach with
        #: :func:`repro.metrics.telemetry.attach` (same contract: the
        #: epoch loop tests the module-level flag first, so an empty
        #: slot is one attribute load away from free).
        self.telemetry: Optional["telemetry_mod.TelemetrySampler"] = None
        #: decision/provenance audit log; attach with
        #: :func:`repro.audit.attach` (same contract: recording sites
        #: test the module-level ``audit.enabled`` flag first).
        self.audit: Optional["audit_mod.AuditLog"] = None
        #: DAMON-style spatial heat monitor; attach with
        #: :func:`repro.heat.attach` (same contract: the epoch loop
        #: tests the module-level ``heat.enabled`` flag first).
        self.heat: Optional["heat_mod.HeatMonitor"] = None
        #: fleet load generator (multi-tenant churn); attached by
        #: :class:`repro.fleet.manager.FleetManager`.  The manager drives
        #: itself through ``epoch_hooks``, so this slot is pure metadata —
        #: a kernel without a fleet pays nothing for it.
        self.fleet = None
        self.now_us = 0.0
        self.processes: list[Process] = []
        self.runs: list["WorkloadRun"] = []
        self.pmu: dict[int, PMUCounters] = {}
        #: frame -> (process, vpn) for base mappings; huge heads separate.
        self._rmap: dict[int, tuple[Process, int]] = {}
        self._rmap_huge: dict[int, tuple[Process, int]] = {}
        #: slowdown factor the pre-zeroing thread imposes this epoch,
        #: scaled by each workload's cache sensitivity (Figure 10 model).
        self.prezero_interference = 0.0
        #: environment-imposed slowdown (e.g. host swap thrash for a VM).
        self.external_slowdown = 0.0
        #: called with (start_frame, count) whenever frames are allocated;
        #: returns extra latency (the virt layer backs guest frames with
        #: host faults here).  None outside virtualised setups.
        self.frame_alloc_hook: Optional[Callable[[int, int], float]] = None
        self.swap = (
            SwapDevice(self, pages_of(config.swap_bytes)) if config.swap_bytes else None
        )
        #: host backing for nested walks; the virt layer overrides this.
        self.host_huge_fraction: Callable[[Process], Optional[float]] = lambda proc: None
        self.epoch_hooks: list[Callable[["Kernel"], None]] = []
        #: bulk fault fast path toggle (scalar-equivalent; off = per-page
        #: faults everywhere, used by the equivalence tests and perf A/B).
        self.batched_faults = True
        #: vectorized epoch hot paths toggle (scalar-equivalent; off =
        #: per-region Python loops for access sampling, access_map
        #: ranking, WSS and NUMA candidate work — the equivalence tests
        #: and the epoch bench A/B both flip this).
        self.vectorized = True
        self._va_cursor: dict[int, int] = {}
        self._run_by_pid: dict[int, "WorkloadRun"] = {}
        zero_frame, _ = self.buddy.alloc(order=0, owner=KERNEL_OWNER)
        self.frames.zero_fill(zero_frame)
        self.frames.pinned[zero_frame] = True
        self.zero_registry = ZeroPageRegistry(zero_frame)
        from repro.mem.samepage import CowShareRegistry

        #: canonical frames for ksm-merged (content-identical) pages.
        self.cow_registry = CowShareRegistry(self)
        self.policy: "HugePagePolicy" = policy_factory(self)
        if telemetry_mod.capturing:
            telemetry_mod.autoattach(self)

    # ------------------------------------------------------------------ #
    # process / workload management                                       #
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        workload: "Workload",
        name: str | None = None,
        node: int | None = None,
        mempolicy=None,
    ) -> "WorkloadRun":
        """Create a process running ``workload``; returns its run handle.

        ``node`` pins the process's home node (where its threads run and
        first-touch allocations land); the default round-robins launches
        across nodes like a gang scheduler.  ``mempolicy`` installs a
        process-wide :class:`repro.numa.mempolicy.MemPolicy`.
        """
        from repro.workloads.base import WorkloadRun

        proc = Process(name or workload.name)
        proc.launch_index = len(self.processes)
        if node is not None:
            proc.home_node = node
        elif self.numa is not None:
            proc.home_node = proc.launch_index % self.numa.nodes
        proc.mempolicy = mempolicy
        self.processes.append(proc)
        self.pmu[proc.pid] = PMUCounters()
        run = WorkloadRun(self, proc, workload)
        self.runs.append(run)
        self._run_by_pid[proc.pid] = run
        return run

    def exit_process(self, proc: Process) -> int:
        """Tear a process down: unmap everything, free its frames.

        Returns the number of physical pages released.  The policy's
        per-process bookkeeping is dropped via ``on_process_exit`` and
        the workload run (if any) is marked finished.
        """
        pt = proc.page_table
        freed = 0
        for huge_pte in list(pt.huge.values()):
            self._rmap_huge.pop(huge_pte.frame, None)
            self.buddy.free(huge_pte.frame, 9)
            freed += PAGES_PER_HUGE
        # Base teardown, batched: frames still return to the buddy
        # allocator in PTE-dict iteration order, with maximal runs of
        # consecutive frames released via ``free_range`` (scalar-
        # equivalent, see ``_unmap_base_batched``).  Shared pages flush
        # the pending run first because ``cow_registry.unshare`` can free
        # the canonical frame, which must keep its place in the sequence.
        run_start = 0
        run_len = 0
        rmap = self._rmap
        for pte in pt.base.values():
            if pte.shared_zero:
                if run_len:
                    self.buddy.free_range(run_start, run_len)
                    freed += run_len
                    run_len = 0
                self.zero_registry.unshare()
            elif pte.shared_cow:
                if run_len:
                    self.buddy.free_range(run_start, run_len)
                    freed += run_len
                    run_len = 0
                self.cow_registry.unshare(pte.frame)
            else:
                rmap.pop(pte.frame, None)
                if run_len and pte.frame == run_start + run_len:
                    run_len += 1
                else:
                    if run_len:
                        self.buddy.free_range(run_start, run_len)
                        freed += run_len
                    run_start = pte.frame
                    run_len = 1
        if run_len:
            self.buddy.free_range(run_start, run_len)
            freed += run_len
        pt.clear()
        if self.swap is not None:
            self.swap.swapped = {
                (pid, vpn) for pid, vpn in self.swap.swapped if pid != proc.pid
            }
        proc.regions.clear()
        for vma in list(proc.vmas):
            proc.vmas.remove(vma)
        self.policy.on_process_exit(proc)
        if proc in self.processes:
            self.processes.remove(proc)
        self.pmu.pop(proc.pid, None)
        run = self._run_by_pid.pop(proc.pid, None)
        if run is not None and not run.finished:
            run.finished = True
            run.finish_time_us = self.now_us
            proc.finished = True
        proc.access_profile = None
        return freed

    def mmap(self, proc: Process, nbytes: int, name: str, kind: VMAKind = VMAKind.ANON) -> VMA:
        """Create an anonymous/file VMA at the next huge-aligned address."""
        npages = pages_of(nbytes)
        cursor = self._va_cursor.get(proc.pid, PAGES_PER_HUGE)
        vma = proc.vmas.add(VMA(cursor, npages, name, kind))
        # Leave a guard region so separate VMAs never share a huge region.
        end = cursor + npages
        self._va_cursor[proc.pid] = end + PAGES_PER_HUGE - (end % PAGES_PER_HUGE or PAGES_PER_HUGE) + PAGES_PER_HUGE
        return vma

    def find_vma(self, proc: Process, name: str) -> VMA:
        """Look up a process's VMA by name; raises InvalidAddressError."""
        for vma in proc.vmas:
            if vma.name == name:
                return vma
        raise InvalidAddressError(f"process {proc.name} has no VMA named {name!r}")

    def set_mempolicy(self, proc: Process, policy) -> None:
        """set_mempolicy(2): install a process-wide NUMA placement policy."""
        proc.mempolicy = policy

    def mbind(self, proc: Process, name: str, policy) -> None:
        """mbind(2): install a NUMA placement policy on one named VMA."""
        self.find_vma(proc, name).mempolicy = policy

    # ------------------------------------------------------------------ #
    # faulting and unmapping                                              #
    # ------------------------------------------------------------------ #

    def fault(self, proc: Process, vpn: int) -> float:
        """Touch one virtual page; returns fault latency in µs."""
        return handle_fault(self, proc, vpn)

    def fault_range(
        self,
        proc: Process,
        vpn0: int,
        npages: int,
        budget_us: float = float("inf"),
        content=None,
        vma=None,
        work_us: float = 0.0,
        pace_us: float = 0.0,
    ) -> tuple[float, int]:
        """Touch ``npages`` consecutive virtual pages through the bulk path.

        Scalar-equivalent batched faulting (see
        :func:`repro.kernel.fault.handle_fault_range`): identical
        policy-visible state and statistics to per-page :meth:`fault`
        calls, stopping once the consumed time reaches ``budget_us``.
        Each page drains ``max(fault_cost + work_us, pace_us)`` of budget
        (per-page application work and client pacing, as the touch loop
        charges them); only the fault cost lands in fault-time statistics.
        ``content`` optionally applies a
        :class:`~repro.workloads.base.ContentSpec` write to every touched
        page, as the touch loop would.  Returns ``(consumed_us, pages)``.
        """
        return handle_fault_range(
            self, proc, vpn0, npages, budget_us, content, vma, work_us, pace_us
        )

    def madvise_free(self, proc: Process, vpn: int, npages: int) -> float:
        """MADV_DONTNEED/MADV_FREE: release a range back to the kernel.

        Huge mappings overlapping the range are demoted first (the kernel
        "breaks" them, paper §2.1), then pages unmap and frames return to
        the buddy allocator's non-zero free lists.
        """
        pt = proc.page_table
        cost = 0.0
        for hvpn in range(vpn >> 9, (vpn + npages - 1 >> 9) + 1):
            if hvpn in pt.huge and self._range_overlaps_region(vpn, npages, hvpn):
                cost += self.demote_region(proc, hvpn)
        if self.batched_faults:
            cost += self._unmap_base_batched(proc, vpn, npages)
        else:
            for page in range(vpn, vpn + npages):
                pte = pt.base.get(page)
                if pte is None:
                    continue
                self._unmap_base_page(proc, page)
                region = proc.region(page >> 9)
                region.resident -= 1
                cost += 0.2
        self.policy.on_madvise_free(proc, vpn, npages)
        proc.fault_time_epoch_us += cost
        if trace.enabled and (tp := self.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.MADVISE_FREE, proc.name, cost,
                    vpn >> 9, f"pages={npages}")
        return cost

    @staticmethod
    def _range_overlaps_region(vpn: int, npages: int, hvpn: int) -> bool:
        lo, hi = hvpn << 9, (hvpn + 1) << 9
        return vpn < hi and vpn + npages > lo

    def _unmap_base_batched(self, proc: Process, vpn: int, npages: int) -> float:
        """Unmap a base-page range, freeing consecutive-frame runs in bulk.

        Scalar-equivalent: frames still return to the buddy allocator in
        ascending-vpn order, and ``free_range`` on an ascending run of
        consecutive frames leaves the free lists (contents *and* dict
        order) exactly as per-frame ``free`` calls would — intermediate
        sub-blocks a scalar sequence inserts are removed again by
        coalescing before anything else touches the lists, and the final
        maximal blocks are appended at the same points.  Shared-zero /
        shared-COW mappings and non-consecutive frames fall back to the
        per-page path.
        """
        pt = proc.page_table
        base = pt.base
        rmap = self._rmap
        cost = 0.0
        page = vpn
        end = vpn + npages
        while page < end:
            pte = base.get(page)
            if pte is None:
                page += 1
                continue
            if pte.shared_zero or pte.shared_cow:
                self._unmap_base_page(proc, page)
                proc.region(page >> 9).resident -= 1
                cost += 0.2
                page += 1
                continue
            # Maximal run of private PTEs onto ascending consecutive
            # frames, within one huge region (one resident account).
            frame0 = pte.frame
            region_end = min(end, ((page >> 9) + 1) << 9)
            n = 1
            while page + n < region_end:
                nxt = base.get(page + n)
                if nxt is None or nxt.frame != frame0 + n or not nxt.private:
                    break
                n += 1
            pt.unmap_base_run_private(page, n)
            for i in range(n):
                rmap.pop(frame0 + i, None)
            self.buddy.free_range(frame0, n)
            proc.region(page >> 9).resident -= n
            cost += 0.2 * n
            page += n
        return cost

    def _unmap_base_page(self, proc: Process, vpn: int) -> None:
        pte = proc.page_table.unmap_base(vpn)
        if pte.shared_zero:
            self.zero_registry.unshare()
        elif pte.shared_cow:
            self.cow_registry.unshare(pte.frame)
        else:
            self._rmap.pop(pte.frame, None)
            self.buddy.free(pte.frame, 0)

    # ------------------------------------------------------------------ #
    # allocation with memory-pressure fallback                            #
    # ------------------------------------------------------------------ #

    def notify_alloc(self, start: int, count: int) -> float:
        """Run the frame-allocation hook; returns extra backing latency."""
        if self.frame_alloc_hook is None:
            return 0.0
        return self.frame_alloc_hook(start, count)

    def alloc_base_frame(
        self, prefer_zero: bool, owner: int,
        node: int | None = None, strict: bool = False,
    ) -> tuple[int, bool]:
        """Allocate one frame; reclaims, swaps and asks the policy under pressure.

        ``node`` requests placement (with distance-ordered fallback unless
        ``strict``); None keeps the single-allocator call shape untouched.
        """
        while True:
            if node is None:
                got = self.buddy.try_alloc(0, prefer_zero, owner)
            else:
                got = self.buddy.try_alloc(0, prefer_zero, owner,
                                           node=node, strict=strict)
            if got is not None:
                return got
            self._relieve_pressure_or_oom()

    def alloc_base_run_extent(
        self, max_pages: int, prefer_zero: bool, owner: int,
        node: int | None = None, strict: bool = False,
    ) -> tuple[int, int, bool]:
        """Bulk-allocate one ``(start, count, zeroed)`` extent of base frames.

        Same pressure fallback as :meth:`alloc_base_frame` — the scalar
        path relieves pressure exactly when a single ``try_alloc(0)``
        fails, and the bulk extent allocator fails at the same boundary
        (every free list empty).
        """
        while True:
            if node is None:
                got = self.buddy.try_alloc_run_extent(max_pages, prefer_zero, owner)
            else:
                got = self.buddy.try_alloc_run_extent(
                    max_pages, prefer_zero, owner, node=node, strict=strict)
            if got is not None:
                return got
            self._relieve_pressure_or_oom()

    def _relieve_pressure_or_oom(self) -> None:
        """Reclaim file cache, ask the policy, then swap; raise OOM if all fail."""
        freed = self.fragmenter.reclaim(PAGES_PER_HUGE)
        self.stats.reclaimed_file_pages += freed
        if freed == 0:
            freed = self.policy.on_memory_pressure(PAGES_PER_HUGE)
        if freed == 0 and self.swap is not None:
            freed = self.swap.swap_out(PAGES_PER_HUGE)
        if freed == 0:
            self.stats.oom_kills += 1
            if trace.enabled and (tp := self.trace) is not None and tp.enabled:
                tp.emit(
                    trace.TraceKind.OOM, "kernel",
                    detail=f"allocated={self.buddy.allocated_pages}/{self.buddy.total_pages}",
                )
            raise OutOfMemoryError(
                f"out of memory at t={self.now_us / SEC:.0f}s "
                f"({self.buddy.allocated_pages}/{self.buddy.total_pages} pages allocated)"
            )

    def alloc_huge_block(
        self, prefer_zero: bool, owner: int, compact: bool = True,
        node: int | None = None, strict: bool = False,
    ) -> tuple[int, bool] | None:
        """Allocate an order-9 block, compacting once if necessary."""
        if node is None:
            got = self.buddy.try_alloc(9, prefer_zero, owner)
        else:
            got = self.buddy.try_alloc(9, prefer_zero, owner,
                                       node=node, strict=strict)
        if got is None and compact:
            run = self.compactor.run(self.config.compact_budget_pages)
            self.stats.compaction_pages_moved += run.pages_moved
            if trace.enabled and (tp := self.trace) is not None and tp.enabled:
                # Compaction charges no simulated clock; the span is the
                # modelled copy cost of the pages it migrated.
                tp.emit(trace.TraceKind.COMPACT, "direct",
                        run.pages_moved * self.costs.copy_base_us,
                        detail=f"pages_moved={run.pages_moved}")
            if node is None:
                got = self.buddy.try_alloc(9, prefer_zero, owner)
            else:
                got = self.buddy.try_alloc(9, prefer_zero, owner,
                                           node=node, strict=strict)
        if got is not None:
            self.stats.khugepaged_cpu_us += self.notify_alloc(got[0], PAGES_PER_HUGE)
        return got

    # ------------------------------------------------------------------ #
    # reverse mapping and migration                                       #
    # ------------------------------------------------------------------ #

    def rmap_add(self, frame: int, proc: Process, vpn: int) -> None:
        """Record the reverse mapping of a base frame to (process, vpn)."""
        self._rmap[frame] = (proc, vpn)

    def rmap_add_huge(self, frame: int, proc: Process, hvpn: int) -> None:
        """Record the reverse mapping of a huge block's head frame."""
        self._rmap_huge[frame] = (proc, hvpn)

    def rmap_add_range(self, proc: Process, vpn0: int, extents: list[tuple[int, int, bool]]) -> None:
        """Batched :meth:`rmap_add`: consecutive vpns over physical extents."""
        rmap = self._rmap
        vpn = vpn0
        for start, count, _ in extents:
            for i in range(count):
                rmap[start + i] = (proc, vpn + i)
            vpn += count

    def _migrate_frame(self, old: int, new: int) -> bool:
        """Compaction callback: rebind one base mapping old -> new."""
        entry = self._rmap.pop(old, None)
        if entry is None:
            # Not process-mapped: clean page-cache pages are movable too.
            return self.fragmenter.migrate_page(old, new)
        proc, vpn = entry
        pte = proc.page_table.base.get(vpn)
        if pte is None or pte.frame != old:
            return False
        pte.frame = new
        proc.page_table.sync_pte(vpn, pte)
        self._rmap[new] = (proc, vpn)
        return True

    # ------------------------------------------------------------------ #
    # promotion / demotion / deduplication                                #
    # ------------------------------------------------------------------ #

    def madvise_hugepage(self, proc: Process, name: str, hint) -> None:
        """madvise(MADV_HUGEPAGE / MADV_NOHUGEPAGE) on a named VMA."""
        self.find_vma(proc, name).hint = hint

    def can_promote(self, proc: Process, hvpn: int) -> bool:
        """Whether a region is currently eligible for huge promotion."""
        from repro.vm.vma import HugePageHint

        region = proc.regions.get(hvpn)
        if region is None or region.is_huge or region.resident == 0:
            return False
        vma = proc.vmas.try_find(hvpn << 9)
        if vma is None or vma.hint is HugePageHint.NEVER:
            return False
        return vma.covers(hvpn << 9, PAGES_PER_HUGE)

    def promote_region(self, proc: Process, hvpn: int) -> float | None:
        """Promote one region to a huge mapping.

        Returns the kernel CPU time spent, or None when promotion was not
        possible (no contiguity even after compaction, or not promotable).
        A small stall is charged to the process (TLB shootdown, mmap_sem).
        """
        if not self.can_promote(proc, hvpn):
            return None
        pt = proc.page_table
        vpn0 = hvpn << 9
        region = proc.region(hvpn)
        base_vpns = pt.region_base_vpns(hvpn)
        in_place = pt.contiguous_private_block(vpn0)

        if in_place is not None:
            for vpn in base_vpns:
                pte = pt.unmap_base(vpn)
                self._rmap.pop(pte.frame, None)
            block = in_place
            cost = self.costs.remap_us
            collapsed = False
        else:
            # NUMA-aware collapse: allocate the destination block on the
            # node already holding most of the region's pages, so a
            # promotion never turns local accesses into remote ones.
            target = (self.numa.majority_node(proc, hvpn)
                      if self.numa is not None else None)
            got = self.alloc_huge_block(prefer_zero=False, owner=proc.pid,
                                        node=target)
            if got is None:
                if audit_mod.enabled and (al := self.audit) is not None \
                        and al.enabled:
                    al.decide(
                        "collapse_node", proc.name, proc.pid, hvpn,
                        "reject", "alloc_failed", stage=3,
                        inputs={"target_node": -1 if target is None else target,
                                "fmfi": self.fmfi()})
                return None
            block = got[0]
            self.frames.zero_fill(block, PAGES_PER_HUGE)
            for vpn in base_vpns:
                pte = pt.unmap_base(vpn)
                offset = vpn - vpn0
                if pte.shared_zero:
                    self.zero_registry.unshare()
                    continue  # destination already zero
                self.frames.first_nonzero[block + offset] = self.frames.first_nonzero[pte.frame]
                self.frames.content_tag[block + offset] = self.frames.content_tag[pte.frame]
                if pte.shared_cow:
                    # copy out of the ksm-shared canonical frame
                    self.cow_registry.unshare(pte.frame)
                    continue
                self._rmap.pop(pte.frame, None)
                self.buddy.free(pte.frame, 0)
            cost = self.costs.promotion_collapse_us(len(base_vpns))
            collapsed = True

        huge_pte = pt.map_huge(hvpn, block)
        huge_pte.accessed = True
        self.rmap_add_huge(block, proc, hvpn)
        region.is_huge = True
        region.resident = PAGES_PER_HUGE
        region.promotions += 1
        proc.stats.promotions += 1
        proc.fault_time_epoch_us += self.costs.promotion_stall_us
        self.stats.count_promotion(proc.name, collapsed)
        self.stats.khugepaged_cpu_us += cost
        if audit_mod.enabled and (al := self.audit) is not None and al.enabled:
            led = al.ledger
            if collapsed:
                led.set_site(block, PAGES_PER_HUGE, audit_mod.SITE_PROMOTE)
                al.decide(
                    "collapse_node", proc.name, proc.pid, hvpn,
                    "accept", "collapsed", stage=4,
                    inputs={"target_node": (-1 if self.numa is None
                                            else self.numa.node_of(block)),
                            "resident": len(base_vpns)})
            led.record(block, PAGES_PER_HUGE, audit_mod.EV_PROMOTED)
        if trace.enabled and (tp := self.trace) is not None and tp.enabled:
            kind = (trace.TraceKind.PROMOTE_COLLAPSE if collapsed
                    else trace.TraceKind.PROMOTE_INPLACE)
            tp.emit(kind, proc.name, cost, hvpn)
        return cost

    def demote_region(self, proc: Process, hvpn: int) -> float:
        """Break a huge mapping into base mappings over the same frames."""
        pt = proc.page_table
        huge_pte = pt.huge[hvpn]
        self._rmap_huge.pop(huge_pte.frame, None)
        for vpn, pte in pt.demote_huge(hvpn):
            self._rmap[pte.frame] = (proc, vpn)
        region = proc.region(hvpn)
        region.is_huge = False
        region.resident = PAGES_PER_HUGE
        proc.stats.demotions += 1
        self.stats.demotions += 1
        if audit_mod.enabled and (al := self.audit) is not None and al.enabled:
            al.ledger.record(huge_pte.frame, PAGES_PER_HUGE,
                             audit_mod.EV_DEMOTED)
        if trace.enabled and (tp := self.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.DEMOTE, proc.name, self.costs.remap_us, hvpn)
        return self.costs.remap_us

    def dedup_zero_pages(self, proc: Process, hvpn: int) -> tuple[int, int]:
        """De-duplicate zero-filled base pages of a (demoted) region.

        Returns ``(pages_recovered, bytes_scanned)``.  The scan stops at
        the first non-zero byte of each in-use page (§3.2), so its cost is
        proportional to the number of *bloat* pages, not to the region
        size.
        """
        pt = proc.page_table
        recovered = 0
        vpn0 = hvpn << 9
        mframes, mpriv = pt.region_mirror(hvpn)
        priv_off = np.nonzero(mpriv)[0]
        pframes = mframes[priv_off]
        fnz = self.frames.first_nonzero[pframes]
        # Scan cost per private page: first_nonzero + 1 bytes, or the
        # full page when it is genuinely zero (same ints as the scalar
        # per-page ``scan_cost_bytes`` sum).
        scanned = int(np.where(fnz < 0, BASE_PAGE_SIZE, fnz + 1).sum())
        zero_frame = self.zero_registry.zero_frame
        base = pt.base
        is_zero = fnz < 0
        led = None
        if audit_mod.enabled and (al := self.audit) is not None and al.enabled:
            led = al.ledger
        for off, frame in zip(priv_off[is_zero].tolist(), pframes[is_zero].tolist()):
            vpn = vpn0 + off
            pte = base[vpn]
            if led is not None:
                led.record(frame, 1, audit_mod.EV_KSM_MERGED, zero_frame)
            self._rmap.pop(frame, None)
            self.buddy.free(frame, 0)
            pte.frame = zero_frame
            pte.shared_zero = True
            pt.shared_zero_count += 1
            pt.sync_pte(vpn, pte)
            self.zero_registry.share()
            recovered += 1
        self.stats.bloat_pages_recovered += recovered
        self.stats.bloat_scan_bytes += scanned
        return recovered, scanned

    def count_zero_pages(self, proc: Process, hvpn: int) -> tuple[int, int]:
        """Count zero-filled base pages under a *huge* mapping (with scan cost)."""
        huge_pte = proc.page_table.huge[hvpn]
        mask = self.frames.zero_mask(huge_pte.frame, PAGES_PER_HUGE)
        zeros = int(mask.sum())
        fnz = self.frames.first_nonzero[huge_pte.frame:huge_pte.frame + PAGES_PER_HUGE]
        from repro.units import BASE_PAGE_SIZE

        scanned = int((fnz[fnz >= 0] + 1).sum()) + zeros * BASE_PAGE_SIZE
        return zeros, scanned

    # ------------------------------------------------------------------ #
    # epoch loop                                                          #
    # ------------------------------------------------------------------ #

    def allocated_fraction(self) -> float:
        """Fraction of physical memory currently allocated (0..1)."""
        return self.buddy.allocated_pages / self.buddy.total_pages

    def fmfi(self, order: int = 9) -> float:
        """Free Memory Fragmentation Index for the given order (default 9)."""
        return fmfi(self.buddy, order)

    def active_runs(self) -> list["WorkloadRun"]:
        """Workload runs that have not finished yet."""
        return [run for run in self.runs if not run.finished]

    def run_epoch(self) -> None:
        """Advance the machine by one epoch."""
        for run in self.active_runs():
            run.step(self.config.epoch_us)
        self.policy.on_epoch()
        self._run_kcompactd()
        if self.numa is not None:
            self.numa.on_epoch()
        self.stats.epochs += 1
        self.now_us += self.config.epoch_us
        if self.stats.epochs % self.config.sample_period == 0:
            self._sample_access_bits()
            if heat_mod.enabled and (hm := self.heat) is not None \
                    and hm.enabled:
                hm.on_sample(self)
        if telemetry_mod.enabled and (ts := self.telemetry) is not None and ts.enabled:
            ts.on_epoch(self)
        for hook in self.epoch_hooks:
            hook(self)

    def run(self, max_epochs: int = 100_000) -> int:
        """Run until every workload finishes; returns epochs executed."""
        start = self.stats.epochs
        while self.active_runs() and self.stats.epochs - start < max_epochs:
            self.run_epoch()
        return self.stats.epochs - start

    def run_epochs(self, count: int) -> None:
        """Run exactly ``count`` epochs regardless of workload state."""
        for _ in range(count):
            self.run_epoch()

    #: proactive-compaction target: kcompactd works, rate-limited, until
    #: this fraction of free memory sits in huge-allocatable blocks again
    #: (models Linux's compaction_proactiveness).  Ingens's adaptive
    #: threshold re-enters its aggressive phase once FMFI drops below 0.5,
    #: so the target must sit below that.
    KCOMPACTD_TARGET_FMFI = 0.4

    def _run_kcompactd(self) -> None:
        """Proactive background compaction while fragmentation is high."""
        rate = self.config.kcompactd_pages_per_sec
        if rate <= 0 or self.fmfi() <= self.KCOMPACTD_TARGET_FMFI:
            return
        budget = int(rate * self.config.epoch_us / SEC)
        if budget > 0:
            run = self.compactor.run(budget)
            self.stats.compaction_pages_moved += run.pages_moved
            if trace.enabled and (tp := self.trace) is not None and tp.enabled:
                tp.emit(trace.TraceKind.COMPACT, "kcompactd",
                        run.pages_moved * self.costs.copy_base_us,
                        detail=f"pages_moved={run.pages_moved}")

    def _sample_access_bits(self) -> None:
        """Paper §3.3: clear access bits, wait one second, read them back.

        Ground-truth coverage comes from the workload's access profile —
        the simulator's stand-in for reading hardware-set PTE bits — but
        the scan *cost* is still charged per region.  The default path is
        one vectorized pass over each process's region table
        (bit-identical to the scalar reference, which ``vectorized =
        False`` restores)."""
        if not self.vectorized:
            self._sample_access_bits_scalar()
            return
        alpha = self.config.ema_alpha
        for proc in self.processes:
            table = proc.regions
            n = len(table)
            scanned = 0
            if n:
                active = table.resident_arr() > 0
                scanned = int(active.sum())
            if scanned:
                profile = proc.access_profile
                hvpns = table.hvpn_arr()
                if profile is None:
                    samples = np.zeros(n, dtype=np.int64)
                else:
                    cov_arr = getattr(profile, "coverage_array", None)
                    if cov_arr is not None:
                        samples = cov_arr(self, proc, hvpns)
                    else:
                        # Duck-typed profiles (virt host mirrors) only
                        # provide the dict form.
                        coverage = profile.region_coverage(self, proc)
                        samples = np.fromiter(
                            (coverage.get(int(h), 0) for h in hvpns),
                            dtype=np.int64, count=n,
                        )
                np.minimum(samples, PAGES_PER_HUGE, out=samples)
                # Same float expression as the scalar loop, elementwise in
                # float64: alpha * sample + (1 - alpha) * ema.
                ema = table.coverage_ema_arr()
                table.last_coverage_arr()[active] = samples[active]
                table.idle_arr()[active] = samples[active] == 0
                ema[active] = alpha * samples[active] + (1.0 - alpha) * ema[active]
            self.stats.sampler_cpu_us += scanned * self.costs.sample_region_us
            if trace.enabled and (tp := self.trace) is not None and tp.enabled:
                tp.emit(trace.TraceKind.KTHREAD_EPOCH, "ksampled",
                        scanned * self.costs.sample_region_us,
                        detail=f"proc={proc.name} regions={scanned}")
            self.policy.on_sample(proc)
            if self.numa is not None:
                self.numa.on_sample(proc)

    def _sample_access_bits_scalar(self) -> None:
        """Scalar reference for :meth:`_sample_access_bits` (per-region loop)."""
        alpha = self.config.ema_alpha
        for proc in self.processes:
            profile = proc.access_profile
            coverage = profile.region_coverage(self, proc) if profile is not None else {}
            scanned = 0
            for hvpn, region in proc.regions.items():
                if region.resident == 0:
                    continue
                sample = min(coverage.get(hvpn, 0), PAGES_PER_HUGE)
                region.last_coverage = sample
                region.idle = sample == 0
                region.coverage_ema = alpha * sample + (1.0 - alpha) * region.coverage_ema
                scanned += 1
            self.stats.sampler_cpu_us += scanned * self.costs.sample_region_us
            if trace.enabled and (tp := self.trace) is not None and tp.enabled:
                tp.emit(trace.TraceKind.KTHREAD_EPOCH, "ksampled",
                        scanned * self.costs.sample_region_us,
                        detail=f"proc={proc.name} regions={scanned}")
            self.policy.on_sample(proc)
            if self.numa is not None:
                self.numa.on_sample(proc)
