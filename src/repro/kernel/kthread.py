"""Rate limiting for background kernel threads.

Every background mechanism in the paper is rate-limited: khugepaged's
promotion scan, HawkEye's pre-zeroing thread ("e.g., at most 10k pages
per second", §4) and the bloat-recovery thread.  ``RateLimiter`` converts
a per-second rate into a per-epoch work budget, carrying over unused
budget up to one epoch's worth so bursty consumers see the configured
average rate.
"""

from __future__ import annotations

from repro.units import SEC


class RateLimiter:
    """Token bucket refilled once per epoch."""

    def __init__(self, per_second: float, epoch_us: float = SEC):
        self.per_second = per_second
        self.epoch_us = epoch_us
        self._tokens = 0.0

    @property
    def per_epoch(self) -> float:
        return self.per_second * (self.epoch_us / SEC)

    def refill(self) -> float:
        """Start an epoch: add this epoch's tokens.

        The bucket caps at two epochs' worth, but never below 2 tokens so
        sub-1/epoch rates (heavily scaled-down experiments) still
        accumulate enough to fire."""
        cap = max(2.0 * self.per_epoch, 2.0)
        self._tokens = min(self._tokens + self.per_epoch, cap)
        return self._tokens

    def take(self, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available."""
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    @property
    def available(self) -> float:
        return self._tokens
