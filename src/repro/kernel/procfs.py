"""/proc-style snapshots of simulator state.

``meminfo`` / ``vmstat`` / ``smaps`` analogues: human-readable, stable
key sets, built only from public kernel state.  Examples and the CLI use
these to show what the machine looks like mid-experiment, the way an
operator would inspect a real system while reproducing the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.units import BASE_PAGE_SIZE, KB, PAGES_PER_HUGE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.vm.process import Process


def meminfo(kernel: "Kernel") -> dict[str, int]:
    """A /proc/meminfo-like snapshot, values in KiB."""
    pk = BASE_PAGE_SIZE // KB
    total = kernel.buddy.total_pages
    free = kernel.buddy.free_pages
    huge_mapped = sum(p.page_table.huge_mapped_pages() for p in kernel.processes)
    return {
        "MemTotal": total * pk,
        "MemFree": free * pk,
        "MemAllocated": (total - free) * pk,
        "FileCache": kernel.fragmenter.cache_pages * pk,
        "AnonHugePages": huge_mapped * pk,
        "ZeroedFree": kernel.buddy.free_zeroed_pages() * pk,
        "ZeroPageShared": kernel.zero_registry.mappings * pk,
        "SwapUsed": (len(kernel.swap.swapped) * pk) if kernel.swap else 0,
    }


def vmstat(kernel: "Kernel") -> dict[str, float]:
    """Counter snapshot in the spirit of /proc/vmstat.

    The three ``trace_*`` keys expose the tracer's health: whether one
    is attached, how many events it has counted, and how many the ring
    buffer dropped — so ``repro top`` (and any scraper) can tell when a
    recorded trace is lossy.  All are 0 with no tracer attached;
    ``trace_attached`` is point-in-time state, the other two are
    cumulative like every other key.  The ``audit_*`` keys do the same
    for the decision audit: ``audit_decisions`` counts every decision
    ever recorded, ``audit_dropped`` the ones that aged out of the
    replay ring (the funnel stays exact regardless).
    """
    s = kernel.stats
    tracer = kernel.trace
    audit_log = kernel.audit
    return {
        "pgfault": s.faults,
        "pgfault_huge": s.huge_faults,
        "pgfault_cow": s.cow_faults,
        "thp_collapse_alloc": s.collapse_promotions,
        "thp_promote_inplace": s.inplace_promotions,
        "thp_split": s.demotions,
        "pages_prezeroed": s.pages_prezeroed,
        "bloat_pages_recovered": s.bloat_pages_recovered,
        "compact_pages_moved": s.compaction_pages_moved,
        "ksm_pages_merged": s.ksm_merged_pages,
        "pgreclaim_file": s.reclaimed_file_pages,
        "oom_kill": s.oom_kills,
        "pswpout": kernel.swap.swap_outs if kernel.swap else 0,
        "pswpin": kernel.swap.swap_ins if kernel.swap else 0,
        "trace_attached": 1 if tracer is not None else 0,
        "trace_events": sum(tracer.counts.values()) if tracer is not None else 0,
        "trace_dropped": tracer.dropped if tracer is not None else 0,
        "audit_attached": 1 if audit_log is not None else 0,
        "audit_decisions": audit_log.recorded if audit_log is not None else 0,
        "audit_dropped": audit_log.dropped if audit_log is not None else 0,
    }


def numastat(kernel: "Kernel") -> dict[str, int]:
    """A /sys/devices/system/node + /proc/vmstat NUMA counter snapshot.

    Meaningful (non-trivial) on multi-node kernels but defined for every
    kernel, so callers need no topology check: a single-node machine
    reports one node holding everything with zero cross-node traffic.
    It is a *separate* view — the frozen ``vmstat`` key set is untouched.
    """
    s = kernel.stats
    out: dict[str, int] = {"numa_nodes": kernel.config.topology.nodes}
    numa = kernel.numa
    if numa is None:
        # One zone holding everything; allocation-placement counters are
        # only tracked by the multi-node allocator, so they read 0.
        buddy = kernel.buddy
        zones = [(0, buddy.total_pages)]
        per_zone = [buddy]
        hit = miss = foreign = [0]
    else:
        zones = numa.allocator.node_map.ranges
        per_zone = numa.allocator.zones
        hit = numa.allocator.numa_hit
        miss = numa.allocator.numa_miss
        foreign = numa.allocator.numa_foreign
    for node, ((start, end), zone) in enumerate(zip(zones, per_zone)):
        out[f"node{node}_total_pages"] = end - start
        out[f"node{node}_free_pages"] = zone.free_pages
        out[f"node{node}_allocated_pages"] = zone.allocated_pages
        out[f"node{node}_numa_hit"] = hit[node]
        out[f"node{node}_numa_miss"] = miss[node]
        out[f"node{node}_numa_foreign"] = foreign[node]
    out["numa_hint_faults"] = s.numa_hint_faults
    out["numa_pages_migrated"] = s.numa_pages_migrated
    out["numa_huge_migrated"] = s.numa_huge_migrated
    out["numa_split_migrations"] = s.numa_split_migrations
    out["numa_pt_replica_pages"] = (
        numa.replica_overhead_pages() if numa is not None else 0
    )
    return out


def numa_maps(kernel: "Kernel", proc: "Process") -> list[dict[str, object]]:
    """Per-VMA NUMA placement, one row per mapping (/proc/pid/numa_maps)."""
    numa = kernel.numa
    nodes = numa.nodes if numa is not None else 1
    rows = []
    for vma in proc.vmas:
        counts = [0] * nodes
        for hvpn in range(vma.start >> 9, ((vma.end - 1) >> 9) + 1):
            if numa is not None:
                region = numa.region_node_counts(proc, hvpn)
                for node in range(nodes):
                    counts[node] += region[node]
            else:
                region = proc.regions.get(hvpn)
                if region is not None:
                    counts[0] += region.resident
        policy = vma.mempolicy if vma.mempolicy is not None else proc.mempolicy
        row: dict[str, object] = {
            "name": vma.name,
            "start_page": vma.start,
            "policy": policy.kind.value if policy is not None else "default",
        }
        for node in range(nodes):
            row[f"node{node}_pages"] = counts[node]
        rows.append(row)
    return rows


def smaps(kernel: "Kernel", proc: "Process") -> list[dict[str, object]]:
    """Per-VMA summary, one row per mapping (a compact /proc/pid/smaps)."""
    rows = []
    for vma in proc.vmas:
        huge_regions = sum(
            1
            for hvpn in range(vma.start >> 9, ((vma.end - 1) >> 9) + 1)
            if hvpn in proc.page_table.huge
        )
        resident = sum(
            r.resident
            for r in proc.regions.values()
            if vma.start <= (r.hvpn << 9) < vma.end
        )
        rows.append({
            "name": vma.name,
            "start_page": vma.start,
            "size_kb": vma.npages * (BASE_PAGE_SIZE // KB),
            "rss_kb": resident * (BASE_PAGE_SIZE // KB),
            "anon_huge_kb": huge_regions * PAGES_PER_HUGE * (BASE_PAGE_SIZE // KB),
            "kind": vma.kind.value,
            "hint": vma.hint.value,
        })
    return rows


def format_meminfo(kernel: "Kernel") -> str:
    """Render :func:`meminfo` in the classic aligned-kB layout."""
    info = meminfo(kernel)
    width = max(len(k) for k in info)
    return "\n".join(f"{k + ':':<{width + 1}} {v:>12} kB" for k, v in info.items())
