"""Kernel-wide counters.

These aggregate across processes and background threads; per-process
counters live on :class:`repro.vm.process.ProcessStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class KernelStats:
    """Counters the whole kernel accumulates over a run."""

    epochs: int = 0
    faults: int = 0
    huge_faults: int = 0
    cow_faults: int = 0
    promotions: int = 0
    collapse_promotions: int = 0     # promotions that required a copy
    inplace_promotions: int = 0      # remap-only promotions
    demotions: int = 0
    pages_prezeroed: int = 0
    prezero_cpu_us: float = 0.0
    bloat_pages_recovered: int = 0
    bloat_scan_bytes: int = 0
    bloat_cpu_us: float = 0.0
    compaction_pages_moved: int = 0
    reclaimed_file_pages: int = 0
    khugepaged_cpu_us: float = 0.0
    sampler_cpu_us: float = 0.0
    ksm_merged_pages: int = 0
    oom_kills: int = 0
    #: NUMA balancing: hint faults installed/taken by knumad's scanner.
    numa_hint_faults: int = 0
    #: base pages migrated across nodes by knumad (huge = 512 pages).
    numa_pages_migrated: int = 0
    #: whole huge regions migrated without splitting.
    numa_huge_migrated: int = 0
    #: huge regions split (demoted) because the target node had no
    #: contiguous order-9 block free (demote-on-split-migration).
    numa_split_migrations: int = 0
    knumad_cpu_us: float = 0.0
    #: promotions per process name, for fairness analysis.
    promotions_by_process: dict[str, int] = field(default_factory=dict)

    def count_promotion(self, process_name: str, collapsed: bool) -> None:
        """Record one promotion, split by collapse vs in-place remap."""
        self.promotions += 1
        if collapsed:
            self.collapse_promotions += 1
        else:
            self.inplace_promotions += 1
        self.promotions_by_process[process_name] = (
            self.promotions_by_process.get(process_name, 0) + 1
        )
