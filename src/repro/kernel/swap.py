"""SSD-backed swap device.

The paper's overcommit experiments (§4, Figure 11) run on a 96 GB
SSD-backed swap partition.  The model keeps a set of swapped-out
``(pid, vpn)`` mappings: swapping out unmaps a victim base page and frees
its frame; faulting a swapped page costs a swap-in transfer on top of the
normal fault path.  When only huge mappings remain, a victim huge page is
demoted first — exactly what the kernel must do, and one reason
overcommitted systems lose their huge pages.

Victim selection is FIFO over mapped base frames (approximating the
kernel's inactive-list reclaim).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import audit, trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class SwapDevice:
    """Swap space with per-page transfer costs."""

    def __init__(self, kernel: "Kernel", capacity_pages: int):
        self.kernel = kernel
        self.capacity_pages = capacity_pages
        self.swapped: set[tuple[int, int]] = set()
        self.swap_outs = 0
        self.swap_ins = 0
        self.io_time_us = 0.0

    @property
    def free_slots(self) -> int:
        return self.capacity_pages - len(self.swapped)

    def is_swapped(self, pid: int, vpn: int) -> bool:
        """Whether (pid, vpn) is currently held in swap."""
        return (pid, vpn) in self.swapped

    def swap_in(self, pid: int, vpn: int) -> float:
        """Account a swap-in; returns the added fault latency."""
        self.swapped.discard((pid, vpn))
        self.swap_ins += 1
        cost = self.kernel.costs.swap_page_us
        self.io_time_us += cost
        return cost

    def swap_out(self, npages: int) -> int:
        """Evict up to ``npages`` mapped base pages; returns frames freed."""
        kernel = self.kernel
        freed = 0
        while freed < npages and self.free_slots > 0:
            victim = self._pick_victim()
            if victim is None:
                break
            proc, vpn = victim
            pte = proc.page_table.unmap_base(vpn)
            kernel._rmap.pop(pte.frame, None)
            if audit.enabled and (al := kernel.audit) is not None and al.enabled:
                al.ledger.record(pte.frame, 1, audit.EV_SWAPPED_OUT)
            kernel.buddy.free(pte.frame, 0)
            proc.region(vpn >> 9).resident -= 1
            self.swapped.add((proc.pid, vpn))
            self.swap_outs += 1
            self.io_time_us += kernel.costs.swap_page_us
            if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
                tp.emit(trace.TraceKind.SWAP_OUT, proc.name,
                        kernel.costs.swap_page_us, vpn)
            freed += 1
        return freed

    def _pick_victim(self):
        """FIFO over mapped base frames; demote a huge mapping if needed."""
        kernel = self.kernel
        for frame, (proc, vpn) in kernel._rmap.items():
            pte = proc.page_table.base.get(vpn)
            if pte is not None and not pte.shared_zero and pte.frame == frame:
                return proc, vpn
        if kernel._rmap_huge:
            frame = next(iter(kernel._rmap_huge))
            proc, hvpn = kernel._rmap_huge[frame]
            kernel.demote_region(proc, hvpn)
            return self._pick_victim()
        return None
