"""Physical-memory substrate: frame table, buddy allocator, fragmentation,
compaction, watermarks, and the canonical zero page.
"""

from repro.mem.buddy import BuddyAllocator
from repro.mem.compaction import Compactor
from repro.mem.fragmentation import Fragmenter, fmfi
from repro.mem.frames import FrameTable, ZERO_TAG
from repro.mem.samepage import CowShareRegistry, SamePageMerger
from repro.mem.watermarks import Watermarks
from repro.mem.zeropage import ZeroPageRegistry

__all__ = [
    "BuddyAllocator",
    "Compactor",
    "FrameTable",
    "CowShareRegistry",
    "Fragmenter",
    "SamePageMerger",
    "Watermarks",
    "ZeroPageRegistry",
    "ZERO_TAG",
    "fmfi",
]
