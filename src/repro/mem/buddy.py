"""Binary buddy allocator with dual zero / non-zero free lists.

This mirrors Linux's physical page allocator at the granularity the paper
cares about (orders 0..``MAX_ORDER``, huge pages at order 9) and adds the
one structural change HawkEye §3.1 makes: every free list is split in two,

* a **zero list** of blocks whose every base frame holds all-zero content
  (pre-zeroed and ready to map without synchronous clearing), and
* a **non-zero list** of blocks with stale content.

Anonymous faults prefer the zero list; copy-on-write and file-backed
allocations prefer the non-zero list so pre-zeroed frames are not wasted
on pages that will be overwritten immediately.  The asynchronous
pre-zeroing thread (``repro.core.prezero``) drains the non-zero lists,
zero-fills blocks and moves them across.

A block's zero-ness is derived from the frame table's content descriptors,
so splitting and coalescing keep the two lists exactly consistent with
page content — merging a zero half with a dirty half yields a non-zero
block, exactly as real memory would behave.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import AllocationError
from repro.mem.frames import NO_OWNER, FrameTable
from repro.units import MAX_ORDER


class BuddyAllocator:
    """Buddy allocator over the frames of a :class:`FrameTable`.

    By default the allocator manages the whole frame table; a NUMA zone
    passes an explicit ``[start, end)`` sub-range so several allocators
    can share one table without overlapping.  Coalescing is naturally
    confined to the zone: a buddy outside ``[start, end)`` is never in
    this allocator's ``_block_order``, so merges cannot cross zones.
    """

    def __init__(
        self,
        frames: FrameTable,
        max_order: int = MAX_ORDER,
        start: int = 0,
        end: int | None = None,
    ):
        self.frames = frames
        self.max_order = max_order
        self.start = start
        self.end = frames.num_frames if end is None else end
        # Free lists are dicts used as ordered sets: O(1) membership,
        # O(1) removal by key, and O(1) amortised pop via popitem()
        # (plain sets degrade to O(n) scans under churn).
        self._zero: list[dict[int, None]] = [{} for _ in range(max_order + 1)]
        self._nonzero: list[dict[int, None]] = [{} for _ in range(max_order + 1)]
        #: order of every free block, keyed by its start frame.
        self._block_order: dict[int, int] = {}
        self.free_pages = 0
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        """Carve the managed frame range into maximal aligned free blocks.

        One prefix-sum over the range classifies every seeded block's
        zero-ness in O(1) instead of one ``zero_mask().all()`` scan per
        block.
        """
        start, end = self.start, self.end
        if start >= end:
            return
        base = start
        nonzero = self.frames.first_nonzero[start:end] >= 0
        csum = np.zeros(end - start + 1, dtype=np.int64)
        np.cumsum(nonzero, out=csum[1:])
        while start < end:
            order = self.max_order
            while order > 0 and (start % (1 << order) != 0 or start + (1 << order) > end):
                order -= 1
            lo = start - base
            self._insert(start, order,
                         zeroed=bool(csum[lo + (1 << order)] == csum[lo]))
            start += 1 << order

    # ------------------------------------------------------------------ #
    # free-list plumbing                                                 #
    # ------------------------------------------------------------------ #

    def _block_is_zero(self, start: int, order: int) -> bool:
        if order == 0:  # scalar fast path: splits/frees hit this constantly
            return self.frames.first_nonzero[start] < 0
        return bool(self.frames.zero_mask(start, 1 << order).all())

    def _insert(self, start: int, order: int, zeroed: bool | None = None) -> None:
        # Callers that already know the block's zero-ness (zero-list
        # invariant, prefix sums, coalescing) pass it to skip the scan.
        if zeroed is None:
            zeroed = self._block_is_zero(start, order)
        lists = self._zero if zeroed else self._nonzero
        lists[order][start] = None
        self._block_order[start] = order
        self.free_pages += 1 << order

    def _remove(self, start: int, order: int) -> None:
        self._zero[order].pop(start, None)
        self._nonzero[order].pop(start, None)
        del self._block_order[start]
        self.free_pages -= 1 << order

    def _pop_block(self, order: int, zeroed: bool) -> tuple[int, bool] | None:
        """Pop one free block of exactly ``order`` from the given list."""
        lists = self._zero if zeroed else self._nonzero
        if lists[order]:
            start, _ = lists[order].popitem()
            del self._block_order[start]
            self.free_pages -= 1 << order
            return start, zeroed
        return None

    # ------------------------------------------------------------------ #
    # allocation                                                         #
    # ------------------------------------------------------------------ #

    def try_alloc(
        self, order: int = 0, prefer_zero: bool = True, owner: int = NO_OWNER
    ) -> tuple[int, bool] | None:
        """Allocate a ``2**order``-page block, or None when none exists.

        Returns ``(start_frame, zeroed)`` where ``zeroed`` says whether the
        block came off a zero list (no synchronous clearing needed).
        """
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} outside [0, {self.max_order}]")
        # Two passes: honour the zero-ness preference across *all* orders
        # first (an anonymous fault would rather split a large pre-zeroed
        # block than take a small dirty one, and vice versa for COW), then
        # fall back to the other lists.
        for want_zeroed in (prefer_zero, not prefer_zero):
            for have in range(order, self.max_order + 1):
                popped = self._pop_block(have, want_zeroed)
                if popped is None:
                    continue
                start, _ = popped
                # Split excess halves back onto the free lists.  A block
                # off a zero list is all-zero, so every half is too; a
                # dirty block's halves are classified off one scan of its
                # nonzero positions instead of one scan per level.
                if want_zeroed:
                    while have > order:
                        have -= 1
                        self._insert(start + (1 << have), have, zeroed=True)
                    zeroed = True
                elif have > order:
                    nz = np.nonzero(
                        self.frames.first_nonzero[start:start + (1 << have)]
                        >= 0)[0]
                    while have > order:
                        have -= 1
                        half = 1 << have
                        lo = np.searchsorted(nz, half)
                        hi = np.searchsorted(nz, 2 * half)
                        self._insert(start + half, have, zeroed=bool(lo == hi))
                    zeroed = bool(nz.size == 0 or nz[0] >= (1 << order))
                else:
                    zeroed = self._block_is_zero(start, order)
                self.frames.mark_allocated(start, 1 << order, owner)
                return start, zeroed
        return None

    def alloc(self, order: int = 0, prefer_zero: bool = True, owner: int = NO_OWNER) -> tuple[int, bool]:
        """Like :meth:`try_alloc` but raises :class:`AllocationError` on failure."""
        got = self.try_alloc(order, prefer_zero, owner)
        if got is None:
            raise AllocationError(f"no free block of order {order}")
        return got

    # ------------------------------------------------------------------ #
    # bulk allocation (the batched fault fast path)                      #
    # ------------------------------------------------------------------ #

    def try_alloc_run_extent(
        self, max_pages: int, prefer_zero: bool = True, owner: int = NO_OWNER
    ) -> tuple[int, int, bool] | None:
        """Allocate one contiguous extent of up to ``max_pages`` order-0 frames.

        Returns ``(start, count, zeroed)`` or None when nothing is free.
        The free-list state and the frame sequence are *identical* to what
        ``count`` scalar ``try_alloc(0, prefer_zero, owner)`` calls would
        leave: scalar allocation drains a popped block's frames in
        ascending order before touching any other block (splits keep the
        low half and dict pops are LIFO), so a content-uniform block can
        be consumed wholesale in O(1) pops instead of O(pages).  Blocks of
        mixed content (where scalar draining would interleave the zero
        and non-zero sub-pieces) fall back to one scalar allocation.
        """
        if max_pages <= 0:
            return None
        first_nonzero = self.frames.first_nonzero
        for want_zeroed in (prefer_zero, not prefer_zero):
            lists = self._zero if want_zeroed else self._nonzero
            for order in range(self.max_order + 1):
                bucket = lists[order]
                if not bucket:
                    continue
                start = next(reversed(bucket))  # the block popitem() would take
                count = 1 << order
                uniform = (
                    want_zeroed  # zero-list blocks are all-zero by invariant
                    or order == 0
                    or bool((first_nonzero[start:start + count] >= 0).all())
                )
                if not uniform:
                    # Mixed block: scalar draining would jump between the
                    # zero and non-zero halves, so take exactly one page
                    # through the scalar path.
                    got = self.try_alloc(0, prefer_zero, owner)
                    assert got is not None
                    return got[0], 1, got[1]
                del bucket[start]
                del self._block_order[start]
                self.free_pages -= count
                take = min(count, max_pages)
                self.frames.mark_allocated(start, take, owner)
                if take < count:
                    # Reinsert the un-drained tail exactly as the scalar
                    # split cascade would have left it: the maximal buddy
                    # decomposition of [start+take, start+count), at most
                    # one piece per order.
                    s, end = start + take, start + count
                    while s < end:
                        o = 0
                        while s % (1 << (o + 1)) == 0 and s + (1 << (o + 1)) <= end:
                            o += 1
                        # content-uniform block: the tail keeps the
                        # popped list's zero-ness
                        self._insert(s, o, zeroed=want_zeroed)
                        s += 1 << o
                return start, take, want_zeroed
        return None

    def try_alloc_run(
        self, npages: int, prefer_zero: bool = True, owner: int = NO_OWNER
    ) -> list[tuple[int, int, bool]]:
        """Allocate up to ``npages`` order-0 frames as a list of extents.

        Returns ``(start, count, zeroed)`` extents totalling ``npages``
        pages, or fewer only when the allocator runs dry (the same
        boundary at which scalar ``try_alloc(0)`` would return None).
        Scalar-equivalent: see :meth:`try_alloc_run_extent`.
        """
        extents: list[tuple[int, int, bool]] = []
        remaining = npages
        while remaining > 0:
            ext = self.try_alloc_run_extent(remaining, prefer_zero, owner)
            if ext is None:
                break
            extents.append(ext)
            remaining -= ext[1]
        return extents

    # ------------------------------------------------------------------ #
    # freeing                                                            #
    # ------------------------------------------------------------------ #

    def free(self, start: int, order: int = 0) -> int:
        """Return an allocated block and coalesce with free buddies.

        Returns the order of the free block the pages ended up in after
        coalescing (callers tracking high-order availability — e.g. the
        fragmenter's FMFI bookkeeping — react only when this crosses the
        huge-page order).
        """
        count = 1 << order
        if not self.frames.allocated[start:start + count].all():
            raise AllocationError(f"double free of block {start} order {order}")
        self.frames.mark_free(start, count)
        return self.insert_free_block(start, order)

    def insert_free_block(self, start: int, order: int) -> int:
        """Insert an (already frame-table-free) block, coalescing buddies.

        Returns the final coalesced order."""
        return self._coalesce_insert(
            start, order, self._block_is_zero(start, order))

    def _coalesce_insert(self, start: int, order: int, zeroed: bool) -> int:
        # A merged block is zero iff both halves are, and a free buddy's
        # zero-ness is encoded by which list it sits on — so coalescing
        # never re-scans frame content.
        while order < self.max_order:
            buddy = start ^ (1 << order)
            if self._block_order.get(buddy) != order:
                break
            zeroed = zeroed and buddy in self._zero[order]
            self._remove(buddy, order)
            start = min(start, buddy)
            order += 1
        self._insert(start, order, zeroed=zeroed)
        return order

    def carve_range(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Temporarily remove every free block lying fully inside [lo, hi).

        Used by compaction to keep destination allocations out of the
        chunk being emptied.  Blocks are power-of-two aligned, so any
        free block overlapping a *partially allocated* chunk lies fully
        inside it.  Hand the blocks back with :meth:`insert_free_block`.
        """
        carved: list[tuple[int, int]] = []
        s = lo
        while s < hi:
            order = self._block_order.get(s)
            if order is not None and s + (1 << order) <= hi:
                self._remove(s, order)
                carved.append((s, order))
                s += 1 << order
            else:
                s += 1
        return carved

    def free_range(self, start: int, count: int) -> None:
        """Free an arbitrary page range, decomposed into maximal buddy blocks.

        Batched bookkeeping: one double-free validation, one
        ``mark_free`` and one zero-ness prefix-sum cover the whole range,
        then each maximal block goes straight into the coalescing insert.
        Free-list contents and dict order end up identical to per-block
        :meth:`free` calls.
        """
        if count <= 0:
            return
        end = start + count
        if not bool(self.frames.allocated[start:end].all()):
            # Replay the scalar path so a double free raises on exactly
            # the same block, with earlier blocks already freed.
            while start < end:
                order = 0
                while (
                    order < self.max_order
                    and start % (1 << (order + 1)) == 0
                    and start + (1 << (order + 1)) <= end
                ):
                    order += 1
                self.free(start, order)
                start += 1 << order
            return
        base = start
        self.frames.mark_free(start, count)
        nonzero = self.frames.first_nonzero[start:end] >= 0
        csum = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(nonzero, out=csum[1:])
        while start < end:
            order = 0
            while (
                order < self.max_order
                and start % (1 << (order + 1)) == 0
                and start + (1 << (order + 1)) <= end
            ):
                order += 1
            lo = start - base
            self._coalesce_insert(
                start, order, bool(csum[lo + (1 << order)] == csum[lo]))
            start += 1 << order

    # ------------------------------------------------------------------ #
    # pre-zeroing support                                                #
    # ------------------------------------------------------------------ #

    def pop_nonzero_block(self, max_order: int | None = None) -> tuple[int, int] | None:
        """Remove the largest dirty free block (for the pre-zero thread).

        Returns ``(start, order)``; the caller zero-fills the frames and
        hands the block back via :meth:`reinsert_zeroed`.
        """
        top = self.max_order if max_order is None else max_order
        for order in range(top, -1, -1):
            if self._nonzero[order]:
                start, _ = self._nonzero[order].popitem()
                del self._block_order[start]
                self.free_pages -= 1 << order
                return start, order
        return None

    def reinsert_zeroed(self, start: int, order: int) -> None:
        """Put back a block whose frames were just zero-filled."""
        self.frames.zero_fill(start, 1 << order)
        self._insert(start, order, zeroed=True)

    def reinsert_dirty(self, start: int, order: int) -> None:
        """Put back a popped block untouched (pre-zero budget ran out)."""
        self._insert(start, order)

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def total_pages(self) -> int:
        return self.end - self.start

    @property
    def allocated_pages(self) -> int:
        return self.total_pages - self.free_pages

    def free_zeroed_pages(self) -> int:
        """Pages sitting on zero lists, mappable without synchronous clearing."""
        return sum(len(blocks) << order for order, blocks in enumerate(self._zero))

    def free_block_counts(self) -> list[int]:
        """Number of free blocks per order (zero + non-zero lists)."""
        return [
            len(self._zero[order]) + len(self._nonzero[order])
            for order in range(self.max_order + 1)
        ]

    def free_blocks_at_least(self, order: int) -> int:
        """Free blocks that can satisfy an order-``order`` allocation."""
        counts = self.free_block_counts()
        return sum(counts[order:])

    def iter_free_blocks(self) -> Iterator[tuple[int, int, bool]]:
        """Yield ``(start, order, zeroed)`` for every free block."""
        for order in range(self.max_order + 1):
            for start in self._zero[order]:
                yield start, order, True
            for start in self._nonzero[order]:
                yield start, order, False
