"""Memory compaction: migrate movable pages to rebuild huge-page blocks.

Models Linux's compaction pass (Corbet, "Memory compaction") at the level
the paper depends on: sparse huge-page-sized chunks are emptied by
migrating their movable frames into already-fragmented space, and the
buddy allocator's coalescing turns the vacated chunks into order-9 blocks
that huge-page promotion can then use.  Each migrated page costs a copy,
which the caller charges to the simulated clock; compaction runs are
budgeted so background promotion stays rate-limited like ``khugepaged``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import audit
from repro.mem.buddy import BuddyAllocator
from repro.units import HUGE_PAGE_ORDER, PAGES_PER_HUGE

#: Kernel-side callback that rebinds every reference to ``old`` frame onto
#: ``new`` (page tables, rmap, file cache).  Returns False when the frame
#: cannot be migrated, in which case compaction gives the chunk up.
MigrateFn = Callable[[int, int], bool]


@dataclass
class CompactionStats:
    pages_moved: int = 0
    blocks_created: int = 0
    chunks_abandoned: int = 0
    runs: int = 0

    def merge(self, other: "CompactionStats") -> None:
        """Accumulate another run's counters into this one."""
        self.pages_moved += other.pages_moved
        self.blocks_created += other.blocks_created
        self.chunks_abandoned += other.chunks_abandoned
        self.runs += other.runs


@dataclass
class Compactor:
    """Budgeted compaction over a buddy allocator.

    ``lo``/``hi`` bound the frame range scanned for candidate chunks; a
    NUMA zone passes its own range so compaction never migrates pages
    across a node boundary.  The defaults cover the whole frame table.
    """

    buddy: BuddyAllocator
    migrate: MigrateFn
    stats: CompactionStats = field(default_factory=CompactionStats)
    lo: int = 0
    hi: int | None = None

    def _candidate_chunks(self) -> list[tuple[int, int]]:
        """Huge-aligned chunks sorted by occupancy (emptiest first).

        A chunk qualifies when it is partially allocated, contains no
        pinned frame, and is cheaper to empty than to leave (occupancy
        under half the chunk).
        """
        frames = self.buddy.frames
        hi = frames.num_frames if self.hi is None else self.hi
        first = -(-self.lo // PAGES_PER_HUGE)       # first whole chunk
        last = hi // PAGES_PER_HUGE                  # one past the last
        nchunks = last - first
        if nchunks <= 0:
            return []
        window = slice(first * PAGES_PER_HUGE, last * PAGES_PER_HUGE)
        alloc = frames.allocated[window].reshape(nchunks, PAGES_PER_HUGE)
        pinned = frames.pinned[window].reshape(nchunks, PAGES_PER_HUGE)
        occupancy = alloc.sum(axis=1)
        ok = (occupancy > 0) & (occupancy <= PAGES_PER_HUGE // 2) & ~pinned.any(axis=1)
        order = np.argsort(occupancy, kind="stable")
        return [((first + int(c)) * PAGES_PER_HUGE, int(occupancy[c]))
                for c in order if ok[c]]

    def run(self, budget_pages: int) -> CompactionStats:
        """Migrate up to ``budget_pages`` frames; returns stats for this run."""
        run_stats = CompactionStats(runs=1)
        frames = self.buddy.frames
        for chunk_start, _ in self._candidate_chunks():
            # Recompute occupancy: destination pages from earlier chunks
            # may have landed here since the candidate list was built.
            occupancy = int(
                frames.allocated[chunk_start:chunk_start + PAGES_PER_HUGE].sum()
            )
            if run_stats.pages_moved + occupancy > budget_pages:
                break
            if not self._empty_chunk(chunk_start, run_stats):
                run_stats.chunks_abandoned += 1
                continue
            # Freeing the migrated frames coalesced the chunk if nothing
            # else inside it was allocated.
            if not frames.allocated[chunk_start:chunk_start + PAGES_PER_HUGE].any():
                run_stats.blocks_created += 1
        self.stats.merge(run_stats)
        return run_stats

    def _empty_chunk(self, chunk_start: int, run_stats: CompactionStats) -> bool:
        """Migrate every allocated frame out of one huge-aligned chunk.

        The chunk's own free blocks are carved off the free lists first
        so destination allocations always land outside; migrated frames
        are freed into the carved-out "hole" afterwards, letting buddy
        coalescing rebuild the full order-9 block.
        """
        frames = self.buddy.frames
        chunk_end = chunk_start + PAGES_PER_HUGE
        occupied = np.flatnonzero(frames.allocated[chunk_start:chunk_end]) + chunk_start
        carved = self.buddy.carve_range(chunk_start, chunk_end)
        ok = True
        emptied: list[int] = []
        for old in occupied:
            new = self._alloc_outside(chunk_start, chunk_end)
            if new is None:
                ok = False
                break
            old = int(old)
            if not self.migrate(old, new):
                self.buddy.free(new, 0)
                ok = False
                break
            # Content moves with the page.
            frames.first_nonzero[new] = frames.first_nonzero[old]
            frames.content_tag[new] = frames.content_tag[old]
            frames.owner[new] = frames.owner[old]
            # ... and so does its provenance (page_owner's
            # __folio_copy_owner); the migration itself is an event on
            # the destination frame, attributed to compaction.
            if audit.enabled and (led := frames.ledger) is not None \
                    and led.enabled:
                led.copy_provenance(old, new)
                led.record(new, 1, audit.EV_COMPACTED, old)
                led.set_site(new, 1, audit.SITE_COMPACT)
            emptied.append(old)
        # Reassemble the hole only after all destinations are allocated,
        # so in-chunk frames never re-enter the free lists mid-migration.
        for start, order in carved:
            self.buddy.insert_free_block(start, order)
        for old in emptied:
            self.buddy.free(old, 0)
        run_stats.pages_moved += len(emptied)
        return ok

    def _alloc_outside(self, lo: int, hi: int) -> int | None:
        """Allocate a destination frame outside ``[lo, hi)``.

        The caller carved the chunk's free blocks off the free lists, so
        a fresh allocation cannot land inside; the guard below is a
        safety net only.
        """
        got = self.buddy.try_alloc(order=0, prefer_zero=False)
        if got is None:
            return None
        frame = got[0]
        if lo <= frame < hi:  # pragma: no cover - carved chunks prevent this
            self.buddy.free(frame, 0)
            return None
        return frame
