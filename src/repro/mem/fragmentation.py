"""Fragmentation metrics and a controlled memory fragmenter.

``fmfi`` is the Free Memory Fragmentation Index Ingens consults (after
Gorman & Whitcroft's *unusable free space index*): the fraction of free
memory that cannot be used to satisfy an allocation of the given order.
0.0 means every free page sits in a sufficiently large block; 1.0 means
no block of the requested order exists.  Ingens switches from aggressive
to conservative huge-page promotion when FMFI crosses 0.5 (paper §2.1).

``Fragmenter`` reproduces the paper's experimental setup of fragmenting
memory "by reading several files in memory" before launching workloads
(§4, Figure 5 setup): it fills free memory with single-frame file-cache
pages and releases a random subset, leaving the free space shattered into
low-order blocks.  The retained pages behave like page cache: they are
*reclaimable* one page at a time when the kernel runs out of memory, but
they keep physical contiguity broken until compaction migrates around
them.
"""

from __future__ import annotations

import random

from repro.mem.buddy import BuddyAllocator
from repro.units import HUGE_PAGE_ORDER

#: Owner id used for fragmenter (file-cache) frames.
FILE_CACHE_OWNER = -2


def fmfi(buddy: BuddyAllocator, order: int = 9) -> float:
    """Fraction of free memory unusable for an order-``order`` allocation."""
    free = buddy.free_pages
    if free == 0:
        return 1.0
    counts = buddy.free_block_counts()
    usable = sum((1 << o) * n for o, n in enumerate(counts) if o >= order)
    return (free - usable) / free


class Fragmenter:
    """Deliberately fragments physical memory with reclaimable file pages."""

    def __init__(self, buddy: BuddyAllocator, seed: int = 7):
        self.buddy = buddy
        self._rng = random.Random(seed)
        self._cache_pages: set[int] = set()

    @property
    def cache_pages(self) -> int:
        """File-cache frames currently held (reclaimable)."""
        return len(self._cache_pages)

    def migrate_page(self, old: int, new: int) -> bool:
        """Compaction support: clean page-cache pages are movable."""
        if old not in self._cache_pages:
            return False
        self._cache_pages.discard(old)
        self._cache_pages.add(new)
        return True

    def fragment(self, keep_fraction: float = 0.1, target_fmfi: float | None = None) -> float:
        """Fill free memory with file pages, then evict all but ``keep_fraction``.

        Returns the resulting order-9 FMFI.  ``target_fmfi`` stops early
        once the index is reached (useful for partially fragmented setups).
        """
        taken: list[int] = []
        while True:
            got = self.buddy.try_alloc(order=0, prefer_zero=False, owner=FILE_CACHE_OWNER)
            if got is None:
                break
            taken.append(got[0])
        self._rng.shuffle(taken)
        keep = int(len(taken) * keep_fraction)
        kept, to_free = taken[:keep], taken[keep:]
        self._cache_pages.update(kept)
        # The early-stop check used to recompute the index after every
        # freed frame.  Between frees that do not coalesce up to the huge
        # order, `usable` is constant while `free` grows, so the index is
        # non-decreasing — it can only drop below the target at a free
        # whose block reaches order >= HUGE_PAGE_ORDER.  Checking only at
        # those events (plus the first free, for degenerate targets that
        # are already met) stops at exactly the same frame as the
        # every-free scan.
        for i, frame in enumerate(to_free):
            end_order = self.buddy.free(frame, 0)
            if (
                target_fmfi is not None
                and (i == 0 or end_order >= HUGE_PAGE_ORDER)
                and fmfi(self.buddy) <= target_fmfi
            ):
                self._cache_pages.update(to_free[i + 1:])
                return fmfi(self.buddy)
        return fmfi(self.buddy)

    def reclaim(self, npages: int) -> int:
        """Evict up to ``npages`` file-cache pages (memory-pressure path).

        Clean page-cache pages are the kernel's cheapest reclaim target;
        the simulator evicts them before declaring out-of-memory.
        """
        evicted = 0
        while self._cache_pages and evicted < npages:
            self.buddy.free(self._cache_pages.pop(), 0)
            evicted += 1
        return evicted

    def release_all(self) -> int:
        """Drop the entire simulated file cache."""
        return self.reclaim(len(self._cache_pages))
