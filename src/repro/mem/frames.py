"""Frame table: per-frame allocation state and page-*content* descriptors.

The simulator never stores real page bytes.  Instead each base frame
carries a compact content descriptor:

* ``first_nonzero`` — byte offset of the first non-zero byte in the 4 KiB
  page, or ``-1`` when the page is entirely zero.  This single field drives
  HawkEye's bloat-recovery cost model (§3.2 of the paper): verifying that a
  page is *not* zero costs ``first_nonzero + 1`` byte reads (measured at
  9.11 bytes on average across 56 workloads, paper Figure 3), while
  verifying a zero page costs the full 4096 bytes.
* ``content_tag`` — an opaque integer naming the page's logical content.
  Two frames with equal tags hold identical bytes; tag ``0`` is the
  all-zero page.  KSM-style same-page merging (``repro.virt.ksm``) and the
  zero-page deduplication of §3.2 operate on tags.

State is held in numpy arrays so bulk operations (zeroing a freed huge
page, scanning an allocation range) stay cheap even for multi-GB simulated
memories.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AllocationError
from repro.units import BASE_PAGE_SIZE

#: Content tag of the all-zero page.
ZERO_TAG = 0

#: ``owner`` value of a frame not attached to any process.
NO_OWNER = -1


class FrameTable:
    """Physical frame metadata for a machine with ``num_frames`` base frames."""

    def __init__(self, num_frames: int):
        if num_frames <= 0:
            raise AllocationError(f"need at least one frame, got {num_frames}")
        self.num_frames = num_frames
        self.allocated = np.zeros(num_frames, dtype=bool)
        #: -1 => page content is all zeros.
        self.first_nonzero = np.full(num_frames, -1, dtype=np.int32)
        self.content_tag = np.zeros(num_frames, dtype=np.int64)
        self.owner = np.full(num_frames, NO_OWNER, dtype=np.int32)
        #: pinned frames cannot be migrated by compaction (file cache etc.).
        self.pinned = np.zeros(num_frames, dtype=bool)
        #: provenance ledger (repro.audit.FrameLedger) or None; set by
        #: audit.attach.  The mutation seams below feed it when enabled.
        self.ledger = None
        self._next_tag = 1

    # ------------------------------------------------------------------ #
    # content                                                            #
    # ------------------------------------------------------------------ #

    def fresh_tag(self) -> int:
        """Mint a content tag no other page has ever held."""
        tag = self._next_tag
        self._next_tag += 1
        return tag

    def write(self, frame: int, first_nonzero: int = 0, tag: int | None = None) -> None:
        """Record that the owner wrote non-zero data into ``frame``.

        ``first_nonzero`` is where the page's first non-zero byte now sits;
        ``tag`` names the new content (a fresh unique tag by default).
        """
        if not 0 <= first_nonzero < BASE_PAGE_SIZE:
            raise ValueError(f"first_nonzero {first_nonzero} outside page")
        self.first_nonzero[frame] = first_nonzero
        self.content_tag[frame] = self.fresh_tag() if tag is None else tag

    def write_zero(self, frame: int) -> None:
        """Record that the owner wrote zeroes over the whole of ``frame``."""
        self.first_nonzero[frame] = -1
        self.content_tag[frame] = ZERO_TAG

    def write_range(self, start: int, count: int, first_nonzero: int = 0, tag: int | None = None) -> None:
        """Bulk :meth:`write` over ``count`` consecutive frames.

        With ``tag=None``, fresh tags are minted in ascending frame order —
        the exact tag sequence ``count`` scalar writes would produce.
        """
        if not 0 <= first_nonzero < BASE_PAGE_SIZE:
            raise ValueError(f"first_nonzero {first_nonzero} outside page")
        self.first_nonzero[start:start + count] = first_nonzero
        if tag is None:
            self.content_tag[start:start + count] = np.arange(
                self._next_tag, self._next_tag + count, dtype=np.int64
            )
            self._next_tag += count
        else:
            self.content_tag[start:start + count] = tag

    def write_frames(self, frames: list[int], first_nonzero: int = 0, tag: int | None = None) -> None:
        """Bulk :meth:`write` over an arbitrary frame list (tags in list order)."""
        if not frames:
            return
        if not 0 <= first_nonzero < BASE_PAGE_SIZE:
            raise ValueError(f"first_nonzero {first_nonzero} outside page")
        idx = np.asarray(frames, dtype=np.int64)
        self.first_nonzero[idx] = first_nonzero
        if tag is None:
            self.content_tag[idx] = np.arange(
                self._next_tag, self._next_tag + len(frames), dtype=np.int64
            )
            self._next_tag += len(frames)
        else:
            self.content_tag[idx] = tag

    def zero_fill(self, start: int, count: int = 1) -> None:
        """Zero the content of ``count`` frames starting at ``start``."""
        self.first_nonzero[start:start + count] = -1
        self.content_tag[start:start + count] = ZERO_TAG
        if (led := self.ledger) is not None and led.enabled:
            led.on_zero(start, count)

    def is_zero(self, frame: int) -> bool:
        """True when the frame's content is entirely zero bytes."""
        return bool(self.first_nonzero[frame] < 0)

    def zero_mask(self, start: int, count: int) -> np.ndarray:
        """Boolean mask of all-zero frames in ``[start, start+count)``."""
        return self.first_nonzero[start:start + count] < 0

    def scan_cost_bytes(self, frame: int) -> int:
        """Bytes a zero-scan must read before classifying this frame.

        A scan stops at the first non-zero byte; a genuinely zero page
        forces a read of all 4096 bytes (paper §3.2).
        """
        fnz = int(self.first_nonzero[frame])
        return BASE_PAGE_SIZE if fnz < 0 else fnz + 1

    # ------------------------------------------------------------------ #
    # allocation bookkeeping (driven by the buddy allocator)             #
    # ------------------------------------------------------------------ #

    def mark_allocated(self, start: int, count: int, owner: int = NO_OWNER) -> None:
        """Buddy bookkeeping: mark a frame range allocated to an owner."""
        self.allocated[start:start + count] = True
        self.owner[start:start + count] = owner
        if (led := self.ledger) is not None and led.enabled:
            led.on_alloc(start, count, owner)

    def mark_free(self, start: int, count: int) -> None:
        """Buddy bookkeeping: mark a frame range free and unpinned."""
        self.allocated[start:start + count] = False
        self.owner[start:start + count] = NO_OWNER
        self.pinned[start:start + count] = False
        if (led := self.ledger) is not None and led.enabled:
            led.on_free(start, count)

    def allocated_count(self) -> int:
        """Number of currently allocated frames."""
        return int(self.allocated.sum())
