"""Kernel same-page merging (native ksm) for content-identical pages.

§3.2 of the paper positions HawkEye's bloat recovery *relative to* the
standard same-page-merging machinery (Linux's ``ksm``, Ingens's and
SmartMD's coordinated variants): merging handles in-use duplicate pages
but must read whole pages to prove equality, while bloat recovery targets
never-written pages and bails out of in-use pages after ~10 bytes.  This
module implements the merging side so that comparison can be measured
(see the ablation bench), and so workloads with genuinely duplicated
content can be deduplicated like a real kernel would.

Mechanism:

* a :class:`CowShareRegistry` maps a content tag to its canonical frame
  and reference-counts sharers; canonical frames are pinned (compaction
  skips them) and leave the reverse map (they no longer belong to one
  mapping);
* :class:`SamePageMerger` scans processes' private base mappings with a
  per-epoch page budget.  Zero pages are deduplicated onto the canonical
  zero frame (the same operation bloat recovery performs); other pages
  merge with a previously-registered page of equal content;
* writes to merged pages take a COW fault that copies the content back
  out (handled in the fault path), decrementing the share count; the
  canonical frame is freed when its last sharer leaves.

Scan cost is charged per *byte compared* — full pages for candidates —
which is exactly the asymmetry the paper's §3.2 claim rests on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import audit, trace
from repro.kernel.kthread import RateLimiter
from repro.mem.frames import ZERO_TAG
from repro.units import BASE_PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.vm.page_table import BasePTE


class CowShareRegistry:
    """Canonical frames for merged content, with reference counts."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._by_tag: dict[int, int] = {}
        self.refcount: dict[int, int] = {}
        #: lifetime counters
        self.merges = 0
        self.cow_breaks = 0

    def canonical_for(self, tag: int) -> int | None:
        """Shared canonical frame for ``tag``, dropping stale entries."""
        frame = self._by_tag.get(tag)
        if frame is None:
            return None
        frames = self.kernel.frames
        if not frames.allocated[frame] or frames.content_tag[frame] != tag:
            # content changed or frame freed since registration: stale.
            # (refcount 0 is fine — it is an exclusive candidate awaiting
            # its first merge partner.)
            self._by_tag.pop(tag, None)
            return None
        return frame

    def make_canonical(self, frame: int, tag: int) -> None:
        """Turn an exclusively-mapped frame into a pinned shared canonical."""
        self._by_tag[tag] = frame
        self.refcount[frame] = 1
        self.kernel.frames.pinned[frame] = True
        self.kernel._rmap.pop(frame, None)

    def share(self, frame: int) -> None:
        """Add one sharer to a canonical frame."""
        self.refcount[frame] += 1

    def unshare(self, frame: int) -> None:
        """Drop one sharer; free the canonical when the last one leaves."""
        count = self.refcount.get(frame)
        if count is None:
            raise ValueError(f"frame {frame} is not a shared canonical")
        if count > 1:
            self.refcount[frame] = count - 1
            return
        del self.refcount[frame]
        frames = self.kernel.frames
        frames.pinned[frame] = False
        tag = int(frames.content_tag[frame])
        if self._by_tag.get(tag) == frame:
            del self._by_tag[tag]
        self.kernel.buddy.free(frame, 0)

    def pages_saved(self) -> int:
        """Physical frames currently saved by sharing (sharers - frames)."""
        return sum(count - 1 for count in self.refcount.values())


class SamePageMerger:
    """The ksm daemon: rate-limited scanning and merging."""

    def __init__(self, kernel: "Kernel", pages_per_sec: float = 20_000.0):
        self.kernel = kernel
        self.registry = kernel.cow_registry
        self._limiter = RateLimiter(pages_per_sec, kernel.config.epoch_us)
        self._cursor: dict[int, int] = {}  # pid -> last scanned vpn
        #: pages merged over the merger's lifetime (zero + content).
        self.merged_pages = 0
        self.bytes_compared = 0

    def run_epoch(self) -> int:
        """Scan up to this epoch's budget of pages; returns pages merged."""
        self._limiter.refill()
        compared_before = self.bytes_compared
        merged = 0
        for proc in list(self.kernel.processes):
            merged += self._scan_process(proc)
        self.merged_pages += merged
        if merged and trace.enabled and (tp := self.kernel.trace) is not None and tp.enabled:
            compares = (self.bytes_compared - compared_before) // BASE_PAGE_SIZE
            tp.emit(trace.TraceKind.KSM_MERGE, "ksmd",
                    compares * self.kernel.costs.ksm_compare_us,
                    detail=f"merged={merged} compared={compares}")
        return merged

    def _scan_process(self, proc) -> int:
        pt = proc.page_table
        vpns = sorted(pt.base)
        if not vpns:
            return 0
        start_after = self._cursor.get(proc.pid, -1)
        ordered = [v for v in vpns if v > start_after] + [v for v in vpns if v <= start_after]
        merged = 0
        for vpn in ordered:
            if not self._limiter.take():
                return merged
            self._cursor[proc.pid] = vpn
            pte = pt.base.get(vpn)
            if pte is None or not pte.private:
                continue
            merged += self._consider(proc, vpn, pte)
        return merged

    def _consider(self, proc, vpn: int, pte: "BasePTE") -> int:
        kernel = self.kernel
        frames = kernel.frames
        frame = pte.frame
        # a comparison reads the page (hash/compare): full-page cost
        self.bytes_compared += BASE_PAGE_SIZE
        kernel.stats.khugepaged_cpu_us += kernel.costs.ksm_compare_us

        if frames.is_zero(frame):
            # zero pages dedup onto the canonical zero frame
            kernel._rmap.pop(frame, None)
            if audit.enabled and (al := kernel.audit) is not None \
                    and al.enabled:
                al.ledger.record(frame, 1, audit.EV_KSM_MERGED,
                                 kernel.zero_registry.zero_frame)
            kernel.buddy.free(frame, 0)
            pte.frame = kernel.zero_registry.zero_frame
            pte.shared_zero = True
            proc.page_table.shared_zero_count += 1
            proc.page_table.sync_pte(vpn, pte)
            kernel.zero_registry.share()
            return 1

        tag = int(frames.content_tag[frame])
        if tag == ZERO_TAG:
            return 0
        canonical = self.registry.canonical_for(tag)
        if canonical is None:
            # first sighting: remember it; if another page with this tag
            # appears while the content is unchanged, they will merge
            self.registry._by_tag[tag] = frame
            return 0
        if canonical == frame:
            return 0
        if self.registry.refcount.get(canonical, 0) == 0:
            # registered but still exclusive: promote it to canonical now
            owner = kernel._rmap.get(canonical)
            if owner is None:
                self.registry._by_tag.pop(tag, None)
                return 0
            owner_proc, owner_vpn = owner
            owner_pte = owner_proc.page_table.base.get(owner_vpn)
            if owner_pte is None or owner_pte.frame != canonical or not owner_pte.private:
                self.registry._by_tag.pop(tag, None)
                return 0
            self.registry.make_canonical(canonical, tag)
            owner_pte.shared_cow = True
            owner_proc.page_table.sync_pte(owner_vpn, owner_pte)
        # merge this page into the canonical
        kernel._rmap.pop(frame, None)
        if audit.enabled and (al := kernel.audit) is not None and al.enabled:
            al.ledger.record(frame, 1, audit.EV_KSM_MERGED, canonical)
        kernel.buddy.free(frame, 0)
        pte.frame = canonical
        pte.shared_cow = True
        proc.page_table.sync_pte(vpn, pte)
        self.registry.share(canonical)
        self.registry.merges += 1
        return 1
