"""Memory-pressure watermarks.

HawkEye's bloat-recovery thread (§3.2) is gated by two watermarks on the
amount of allocated memory: it activates when allocation exceeds the
*high* watermark (85 % in the paper's prototype) and keeps running until
allocation falls below the *low* watermark (70 %).  The hysteresis avoids
flapping when utilisation hovers around a single threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class Watermarks:
    """High/low allocated-fraction watermarks with hysteresis."""

    high: float = 0.85
    low: float = 0.70

    def __post_init__(self) -> None:
        if not 0.0 < self.low < self.high <= 1.0:
            raise ConfigError(f"watermarks need 0 < low < high <= 1, got {self.low}/{self.high}")
        self._active = False

    def update(self, allocated_fraction: float) -> bool:
        """Feed the current allocated fraction; returns whether recovery runs."""
        if allocated_fraction >= self.high:
            self._active = True
        elif allocated_fraction < self.low:
            self._active = False
        return self._active

    @property
    def active(self) -> bool:
        """True while the system is between watermarks on the way down."""
        return self._active


class DynamicWatermarks(Watermarks):
    """Volatility-adaptive watermarks (paper §3.5, after Guo et al.).

    Static thresholds risk thrash when memory pressure fluctuates around
    them.  This variant tracks recent allocated-fraction samples and
    widens the high/low gap in proportion to their volatility, so bursty
    systems start recovery earlier and keep recovering longer, while
    steady systems converge to the static 85/70 behaviour.
    """

    WINDOW = 32
    #: how many standard deviations of headroom to add below `high`.
    SENSITIVITY = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        self._base_high = self.high
        self._base_low = self.low
        self._history: list[float] = []

    def update(self, allocated_fraction: float) -> bool:
        """Feed a sample; adapt thresholds to volatility, then gate as usual."""
        self._history.append(allocated_fraction)
        if len(self._history) > self.WINDOW:
            del self._history[0]
        if len(self._history) >= 4:
            mean = sum(self._history) / len(self._history)
            var = sum((x - mean) ** 2 for x in self._history) / len(self._history)
            margin = min(0.10, self.SENSITIVITY * var ** 0.5)
            if margin < 1e-9:
                # float noise from a near-constant window; a sub-nano
                # margin is volatility zero, and the thresholds must
                # return *exactly* to the static pair.
                margin = 0.0
            self.high = max(self._base_low + 0.02, self._base_high - margin)
            self.low = max(0.01, self._base_low - margin)
        return super().update(allocated_fraction)
