"""Canonical zero page and copy-on-write sharing bookkeeping.

HawkEye's bloat recovery (§3.2) de-duplicates zero-filled base pages
inside under-utilised huge pages by remapping them, copy-on-write, to a
single canonical zero frame — the same mechanism Linux uses for the
read-only zero page.  This registry tracks how many virtual mappings
currently share the canonical frame and counts the extra COW faults the
paper notes can occur when an application's *in-use* zero page was
deduplicated and is later written.
"""

from __future__ import annotations


class ZeroPageRegistry:
    """Reference accounting for the canonical zero frame."""

    def __init__(self, zero_frame: int):
        self.zero_frame = zero_frame
        self.mappings = 0
        #: total de-duplications performed (frames reclaimed).
        self.dedups = 0
        #: COW faults taken on the zero page (writes after dedup).
        self.cow_faults = 0

    def share(self, count: int = 1) -> None:
        """Record ``count`` new virtual mappings of the canonical frame."""
        self.mappings += count
        self.dedups += count

    def unshare(self, count: int = 1) -> None:
        """Record ``count`` mappings leaving the canonical frame."""
        if count > self.mappings:
            raise ValueError(f"unshare({count}) with only {self.mappings} mappings")
        self.mappings -= count

    def cow_break(self) -> None:
        """A write hit a shared zero mapping: one COW fault, one copy."""
        self.unshare()
        self.cow_faults += 1

    def pages_saved(self) -> int:
        """Physical frames currently saved by zero-page sharing."""
        return self.mappings
