"""Reporting helpers: time series, text tables, experiment runners."""

from repro.metrics.series import SeriesRecorder, TimeSeries
from repro.metrics.tables import format_table

__all__ = ["SeriesRecorder", "TimeSeries", "format_table"]
