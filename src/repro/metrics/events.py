"""Structured kernel event tracing.

An :class:`EventLog` captures discrete policy decisions — promotions,
demotions, bloat-recovery demotions, OOM kills, compaction runs — with
timestamps, so experiments can reconstruct *why* a run behaved as it did
(the per-process promotion timelines of Figures 6 and 7 are queries over
this log).

The log hooks the kernel non-invasively by wrapping the relevant methods;
attach with :meth:`EventLog.attach`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class EventKind(enum.Enum):
    """Kinds of traced kernel events."""
    PROMOTION = "promotion"
    DEMOTION = "demotion"
    FAULT_HUGE = "fault_huge"
    MADVISE_FREE = "madvise_free"
    OOM = "oom"


@dataclass(frozen=True)
class Event:
    """One traced kernel event."""

    t_seconds: float
    kind: EventKind
    process: str
    hvpn: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        where = f" region={self.hvpn}" if self.hvpn is not None else ""
        return f"[{self.t_seconds:9.1f}s] {self.kind.value:<12} {self.process}{where} {self.detail}"


@dataclass
class EventLog:
    """Chronological record of kernel policy decisions."""

    events: list[Event] = field(default_factory=list)
    capacity: int = 100_000

    def record(self, kernel: "Kernel", kind: EventKind, process: str,
               hvpn: int | None = None, detail: str = "") -> None:
        """Append one event (no-op once the capacity bound is reached)."""
        if len(self.events) >= self.capacity:
            return  # bounded: tracing must never OOM the tracer
        self.events.append(
            Event(kernel.now_us / SEC, kind, process, hvpn, detail)
        )

    # ------------------------------------------------------------------ #
    # attachment                                                          #
    # ------------------------------------------------------------------ #

    def attach(self, kernel: "Kernel") -> "EventLog":
        """Wrap the kernel's decision points to feed this log."""
        log = self

        original_promote = kernel.promote_region

        def promote(proc, hvpn):
            result = original_promote(proc, hvpn)
            if result is not None:
                log.record(kernel, EventKind.PROMOTION, proc.name, hvpn,
                           f"cost={result:.0f}us")
            return result

        original_demote = kernel.demote_region

        def demote(proc, hvpn):
            result = original_demote(proc, hvpn)
            log.record(kernel, EventKind.DEMOTION, proc.name, hvpn)
            return result

        original_madvise = kernel.madvise_free

        def madvise(proc, vpn, npages):
            log.record(kernel, EventKind.MADVISE_FREE, proc.name, vpn >> 9,
                       f"pages={npages}")
            return original_madvise(proc, vpn, npages)

        kernel.promote_region = promote
        kernel.demote_region = demote
        kernel.madvise_free = madvise
        return self

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def for_process(self, process: str) -> list[Event]:
        """All events attributed to one process name."""
        return [e for e in self.events if e.process == process]

    def promotions_by_process(self) -> dict[str, int]:
        """Promotion counts keyed by process name (Figure 7's fairness view)."""
        counts: dict[str, int] = {}
        for e in self.of_kind(EventKind.PROMOTION):
            counts[e.process] = counts.get(e.process, 0) + 1
        return counts

    def between(self, t0: float, t1: float) -> list[Event]:
        """Events with ``t0 <= t_seconds < t1``."""
        return [e for e in self.events if t0 <= e.t_seconds < t1]

    def timeline(self, kind: EventKind, bucket_seconds: float = 30.0) -> dict[float, int]:
        """Histogram of events per time bucket (for figure-style series)."""
        out: dict[float, int] = {}
        for e in self.of_kind(kind):
            bucket = (e.t_seconds // bucket_seconds) * bucket_seconds
            out[bucket] = out.get(bucket, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[Event]:
        return iter(self.events)
