"""Structured kernel event tracing.

An :class:`EventLog` captures discrete policy decisions — promotions,
demotions, huge faults, madvise releases, OOM kills — with timestamps, so
experiments can reconstruct *why* a run behaved as it did (the
per-process promotion timelines of Figures 6 and 7 are queries over this
log).

The log is a thin compatibility consumer of the first-class tracepoint
stream (:mod:`repro.trace`): :meth:`EventLog.attach` attaches a tracer to
the kernel and subscribes, translating the tracepoints it understands
into the stable :class:`Event` records the figure queries use.  Unlike
the pre-tracepoint wrapper approach this sees *every* path — including
the batched ``fault_range`` fast path, which method wrapping silently
bypassed.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro import trace
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class EventKind(enum.Enum):
    """Kinds of traced kernel events."""
    PROMOTION = "promotion"
    DEMOTION = "demotion"
    FAULT_HUGE = "fault_huge"
    MADVISE_FREE = "madvise_free"
    OOM = "oom"


#: tracepoints the compatibility log translates into :class:`Event`s.
_KIND_MAP: dict[trace.TraceKind, EventKind] = {
    trace.TraceKind.PROMOTE_COLLAPSE: EventKind.PROMOTION,
    trace.TraceKind.PROMOTE_INPLACE: EventKind.PROMOTION,
    trace.TraceKind.DEMOTE: EventKind.DEMOTION,
    trace.TraceKind.FAULT_HUGE: EventKind.FAULT_HUGE,
    trace.TraceKind.MADVISE_FREE: EventKind.MADVISE_FREE,
    trace.TraceKind.OOM: EventKind.OOM,
}


@dataclass(frozen=True)
class Event:
    """One traced kernel event."""

    t_seconds: float
    kind: EventKind
    process: str
    hvpn: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        where = f" region={self.hvpn}" if self.hvpn is not None else ""
        return f"[{self.t_seconds:9.1f}s] {self.kind.value:<12} {self.process}{where} {self.detail}"


@dataclass
class EventLog:
    """Chronological record of kernel policy decisions."""

    events: list[Event] = field(default_factory=list)
    capacity: int = 100_000
    #: events discarded because the log was full (tracing must never OOM
    #: the tracer, but dropping silently hides truncated histories).
    dropped: int = 0
    _warned_drop: bool = field(default=False, repr=False)

    def record(self, kernel: "Kernel", kind: EventKind, process: str,
               hvpn: int | None = None, detail: str = "") -> None:
        """Append one event; at capacity it is counted as dropped instead."""
        if len(self.events) >= self.capacity:
            self.dropped += 1
            if not self._warned_drop:
                self._warned_drop = True
                warnings.warn(
                    f"EventLog full ({self.capacity} events): dropping new "
                    "events (see EventLog.dropped)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        self.events.append(
            Event(kernel.now_us / SEC, kind, process, hvpn, detail)
        )

    # ------------------------------------------------------------------ #
    # attachment                                                          #
    # ------------------------------------------------------------------ #

    def attach(self, kernel: "Kernel") -> "EventLog":
        """Subscribe this log to the kernel's tracepoint stream.

        Attaches a :class:`repro.trace.Tracer` to the kernel (reusing an
        existing one) and translates the policy-decision tracepoints into
        :class:`Event` records.
        """
        self._kernel = kernel
        trace.attach(kernel).subscribe(self._on_trace)
        return self

    def _on_trace(self, event: trace.TraceEvent) -> None:
        """Tracepoint consumer: translate and record known kinds."""
        kind = _KIND_MAP.get(event.kind)
        if kind is None:
            return
        detail = event.detail
        if kind is EventKind.PROMOTION:
            detail = f"cost={event.span_us:.0f}us"
        self.record(self._kernel, kind, event.process, event.page, detail)

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def for_process(self, process: str) -> list[Event]:
        """All events attributed to one process name."""
        return [e for e in self.events if e.process == process]

    def promotions_by_process(self) -> dict[str, int]:
        """Promotion counts keyed by process name (Figure 7's fairness view)."""
        counts: dict[str, int] = {}
        for e in self.of_kind(EventKind.PROMOTION):
            counts[e.process] = counts.get(e.process, 0) + 1
        return counts

    def between(self, t0: float, t1: float) -> list[Event]:
        """Events with ``t0 <= t_seconds < t1``."""
        return [e for e in self.events if t0 <= e.t_seconds < t1]

    def timeline(self, kind: EventKind, bucket_seconds: float = 30.0) -> dict[float, int]:
        """Histogram of events per time bucket (for figure-style series)."""
        out: dict[float, int] = {}
        for e in self.of_kind(kind):
            bucket = (e.t_seconds // bucket_seconds) * bucket_seconds
            out[bucket] = out.get(bucket, 0) + 1
        return out

    def summary(self) -> dict[str, int]:
        """Per-kind event counts plus the ``dropped`` total."""
        out = {kind.value: 0 for kind in EventKind}
        for e in self.events:
            out[e.kind.value] += 1
        out["dropped"] = self.dropped
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[Event]:
        return iter(self.events)
