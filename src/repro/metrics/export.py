"""Export recorded metrics for external analysis.

Time series, event logs and /proc snapshots serialise to CSV and JSON so
figures can be plotted outside the simulator (the environment here ships
no plotting stack).  The formats are deliberately boring: CSV with a
header row; JSON as plain dict/list structures.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Iterable

from repro.trace import TraceEvent, TraceKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.events import EventLog
    from repro.metrics.series import SeriesRecorder, TimeSeries


def series_to_csv(recorder: "SeriesRecorder") -> str:
    """All of a recorder's series as one CSV (time + one column each).

    Rows are aligned by *timestamp* (the union of every series' time
    axis, ascending), so ragged series — probes added mid-run, or series
    sampled on different schedules — keep their values on the correct
    rows, with blanks where a series has no sample at that time.
    """
    names = list(recorder.series)
    if not names:
        return "t_seconds\n"
    times = sorted({t for series in recorder.series.values() for t in series.times})
    by_time = {
        name: dict(zip(series.times, series.values))
        for name, series in recorder.series.items()
    }
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["t_seconds"] + names)
    for t in times:
        writer.writerow([t] + [by_time[name].get(t, "") for name in names])
    return out.getvalue()


def series_to_dict(series: "TimeSeries") -> dict:
    """One series as a plain JSON-able dict."""
    return {"name": series.name, "times": list(series.times),
            "values": list(series.values)}


def events_to_json(log: "EventLog") -> str:
    """Event log as a JSON array of records."""
    return json.dumps([
        {
            "t_seconds": e.t_seconds,
            "kind": e.kind.value,
            "process": e.process,
            "hvpn": e.hvpn,
            "detail": e.detail,
        }
        for e in log
    ], indent=2)


def events_to_csv(log: "EventLog") -> str:
    """Event log as CSV with a header row."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["t_seconds", "kind", "process", "hvpn", "detail"])
    for e in log:
        writer.writerow([e.t_seconds, e.kind.value, e.process,
                         "" if e.hvpn is None else e.hvpn, e.detail])
    return out.getvalue()


def trace_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """Tracepoint stream as JSON Lines (one record per line).

    The inverse of :func:`trace_from_jsonl`; ``repro trace run`` writes
    this format and ``repro trace view`` replays it.
    """
    lines = []
    for e in events:
        record = {"t_us": e.t_us, "kind": e.kind.value, "process": e.process,
                  "span_us": e.span_us}
        if e.page is not None:
            record["page"] = e.page
        if e.detail:
            record["detail"] = e.detail
        lines.append(json.dumps(record))
    return "\n".join(lines) + ("\n" if lines else "")


def trace_to_chrome(events: Iterable[TraceEvent]) -> str:
    """Tracepoint stream as Chrome trace-event JSON (Perfetto-loadable).

    Open the output at ``chrome://tracing`` or https://ui.perfetto.dev.
    Layout: one *process track* per simulated process (pid assigned in
    sorted name order) and one *thread* per kernel subsystem within it,
    so promotions, faults and compaction stack as separate swimlanes.
    Events with a simulated span become complete (``ph: "X"``) slices —
    ``ts`` is the emission timestamp (simulated time does not advance
    within an epoch's fault burst, so that is the span's start) and
    ``dur`` the charged span, so slices nest when their time ranges
    do — and zero-span decision events become thread-scoped instants
    (``ph: "i"``).  ``heat.*`` events are different: their detail is a
    ``key=value;…`` sample, emitted per process by the spatial monitor,
    and each becomes a counter record (``ph: "C"``) so Perfetto draws
    WSS/hot-region time series as per-process counter tracks.
    Timestamps are simulated microseconds, which is exactly the unit
    the format wants.
    """
    events = list(events)
    pids = {name: i + 1 for i, name in
            enumerate(sorted({e.process for e in events}))}
    tids = {sub: i + 1 for i, sub in
            enumerate(sorted({e.kind.subsystem for e in events}))}
    records: list[dict] = []
    for name, pid in pids.items():
        records.append({"ph": "M", "name": "process_name", "pid": pid,
                        "tid": 0, "args": {"name": name}})
        for sub, tid in tids.items():
            records.append({"ph": "M", "name": "thread_name", "pid": pid,
                            "tid": tid, "args": {"name": sub}})
    for e in events:
        if e.kind.subsystem == "heat":
            counters: dict[str, float] = {}
            for pair in e.detail.split(";"):
                key, _, value = pair.partition("=")
                if key and value:
                    try:
                        counters[key] = float(value)
                    except ValueError:
                        pass
            records.append({"ph": "C", "name": e.kind.value,
                            "cat": "heat", "pid": pids[e.process],
                            "ts": round(e.t_us, 3), "args": counters})
            continue
        record = {
            "name": e.kind.value,
            "cat": e.kind.subsystem,
            "pid": pids[e.process],
            "tid": tids[e.kind.subsystem],
        }
        args = {}
        if e.page is not None:
            args["page"] = e.page
        if e.detail:
            args["detail"] = e.detail
        if args:
            record["args"] = args
        if e.span_us > 0.0:
            record.update(ph="X", ts=round(e.t_us, 3),
                          dur=round(e.span_us, 3))
        else:
            record.update(ph="i", ts=round(e.t_us, 3), s="t")
        records.append(record)
    return json.dumps({"traceEvents": records, "displayTimeUnit": "ms"},
                      indent=None, separators=(",", ":"))


def trace_from_jsonl(text: str) -> list[TraceEvent]:
    """Parse a JSONL trace back into :class:`repro.trace.TraceEvent`s."""
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append(TraceEvent(
            t_us=record["t_us"],
            kind=TraceKind(record["kind"]),
            process=record["process"],
            span_us=record.get("span_us", 0.0),
            page=record.get("page"),
            detail=record.get("detail", ""),
        ))
    return events


#: fixed identity/status columns of a sweep-cell CSV row, in print
#: order; the per-result metric columns follow, sorted by name.
SWEEP_CSV_COLUMNS = [
    "cell_id", "experiment", "case", "policy", "scale_denominator",
    "status", "attempts", "wall_s", "key", "error",
]


def cells_to_jsonl(records: Iterable[dict]) -> str:
    """Sweep cell records (``CellOutcome.as_record()``) as JSON Lines."""
    lines = [json.dumps(record, sort_keys=True) for record in records]
    return "\n".join(lines) + ("\n" if lines else "")


def cells_to_csv(records: Iterable[dict]) -> str:
    """Sweep cell records as CSV with a stable, labeled column order.

    Columns: ``cell_id`` first, then the fixed identity/status columns
    (:data:`SWEEP_CSV_COLUMNS`), then one labeled ``result.<metric>``
    column per flattened scalar metric, sorted by name — the union
    across all records, so every row has every column and two runs over
    the same grid produce byte-identical headers (baseline diffs stay
    deterministic).  Non-scalar result leaves (time series lists)
    appear as ``.len`` counts, matching the regression gate's view.
    """
    from repro.report.data import flatten_scalars

    records = list(records)
    flat = [flatten_scalars(record.get("result") or {}) for record in records]
    metric_columns = sorted({name for scalars in flat for name in scalars})
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(SWEEP_CSV_COLUMNS
                    + [f"result.{name}" for name in metric_columns])
    for record, scalars in zip(records, flat):
        row = []
        for column in SWEEP_CSV_COLUMNS:
            value = record.get(column)
            row.append("" if value is None else value)
        for name in metric_columns:
            value = scalars.get(name)
            row.append("" if value is None else value)
        writer.writerow(row)
    return out.getvalue()


def snapshot_to_json(kernel) -> str:
    """meminfo + vmstat as one JSON document."""
    from repro.kernel import procfs

    return json.dumps({
        "t_seconds": kernel.now_us / 1e6,
        "meminfo_kb": procfs.meminfo(kernel),
        "vmstat": procfs.vmstat(kernel),
    }, indent=2)
