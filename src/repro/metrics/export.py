"""Export recorded metrics for external analysis.

Time series, event logs and /proc snapshots serialise to CSV and JSON so
figures can be plotted outside the simulator (the environment here ships
no plotting stack).  The formats are deliberately boring: CSV with a
header row; JSON as plain dict/list structures.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metrics.events import EventLog
    from repro.metrics.series import SeriesRecorder, TimeSeries


def series_to_csv(recorder: "SeriesRecorder") -> str:
    """All of a recorder's series as one CSV (time + one column each).

    Series are sampled on the same epochs, so their time axes align;
    ragged series (probes added mid-run) are padded with blanks.
    """
    names = list(recorder.series)
    if not names:
        return "t_seconds\n"
    longest = max(recorder.series.values(), key=len)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["t_seconds"] + names)
    for i, t in enumerate(longest.times):
        row = [t]
        for name in names:
            series = recorder.series[name]
            row.append(series.values[i] if i < len(series) else "")
        writer.writerow(row)
    return out.getvalue()


def series_to_dict(series: "TimeSeries") -> dict:
    """One series as a plain JSON-able dict."""
    return {"name": series.name, "times": list(series.times),
            "values": list(series.values)}


def events_to_json(log: "EventLog") -> str:
    """Event log as a JSON array of records."""
    return json.dumps([
        {
            "t_seconds": e.t_seconds,
            "kind": e.kind.value,
            "process": e.process,
            "hvpn": e.hvpn,
            "detail": e.detail,
        }
        for e in log
    ], indent=2)


def events_to_csv(log: "EventLog") -> str:
    """Event log as CSV with a header row."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["t_seconds", "kind", "process", "hvpn", "detail"])
    for e in log:
        writer.writerow([e.t_seconds, e.kind.value, e.process,
                         "" if e.hvpn is None else e.hvpn, e.detail])
    return out.getvalue()


def snapshot_to_json(kernel) -> str:
    """meminfo + vmstat as one JSON document."""
    from repro.kernel import procfs

    return json.dumps({
        "t_seconds": kernel.now_us / 1e6,
        "meminfo_kb": procfs.meminfo(kernel),
        "vmstat": procfs.vmstat(kernel),
    }, indent=2)
