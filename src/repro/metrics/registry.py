"""Prometheus-style metrics registry: labeled counters, gauges, histograms.

The telemetry layer (:mod:`repro.metrics.telemetry`) needs a stable,
programmable surface between "the simulator has numbers" and "a run
artifact holds them" — the role the kernel's tracepoint + eBPF map stack
plays for userspace telemetry agents.  This module is that surface:

* a :class:`MetricsRegistry` holds named metric *families*;
* each family carries a fixed ``labelnames`` tuple and spawns one child
  per label-value combination (``family.labels(policy="hawkeye-g")``);
* children are :class:`Counter` (monotonic non-decreasing),
  :class:`Gauge` (set to anything) or :class:`Histogram` (log2 buckets,
  reusing :class:`repro.trace.LatencyHistogram`);
* :meth:`MetricsRegistry.scrape` snapshots every child into one plain
  JSON-able dict, deterministically ordered, that round-trips through
  ``json.dumps``/``json.loads`` losslessly.

Counters enforce the Prometheus contract — they only move up.  Sources
that are themselves cumulative (``kernel.stats``, vmstat) feed them
through :meth:`Counter.sync`, which raises if asked to go backwards, so
a scrape sequence is monotonic by construction (property-tested in
``tests/test_registry.py``).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ReproError
from repro.trace import LatencyHistogram


class MetricError(ReproError):
    """A metric was declared or used inconsistently."""


def label_key(labels: Mapping[str, str]) -> str:
    """Canonical string form of a label set (sorted ``k=v`` pairs).

    The empty label set maps to ``""``; keys and values must not contain
    the separator characters (``=``/``,``) so the form stays invertible.
    """
    for k, v in labels.items():
        if "=" in f"{k}{v}" or "," in f"{k}{v}":
            raise MetricError(f"label {k}={v!r} contains a reserved character")
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class Counter:
    """A monotonically non-decreasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise MetricError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def sync(self, total: float) -> None:
        """Set from a cumulative external source; must not move down."""
        if total < self.value:
            raise MetricError(
                f"counter sync would move down ({self.value} -> {total})")
        self.value = total


class Gauge:
    """A value that can move freely in both directions."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount


class Histogram:
    """Log2-bucketed sample distribution (thin wrapper over the trace one)."""

    __slots__ = ("hist",)

    def __init__(self) -> None:
        self.hist = LatencyHistogram()

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.hist.add(value)

    @property
    def count(self) -> int:
        return self.hist.count


#: child class per family kind.
_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and one child per labelset."""

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: tuple[str, ...] = ()):
        if kind not in _KINDS:
            raise MetricError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.children: dict[str, Counter | Gauge | Histogram] = {}

    def labels(self, **labels: str) -> Counter | Gauge | Histogram:
        """The child for one label-value combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: labels {sorted(labels)} != declared "
                f"{sorted(self.labelnames)}")
        key = label_key({k: str(v) for k, v in labels.items()})
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = _KINDS[self.kind]()
        return child

    def child(self) -> Counter | Gauge | Histogram:
        """The unlabeled child (families declared with no labelnames)."""
        return self.labels()


class MetricsRegistry:
    """A namespace of metric families with a deterministic scrape."""

    def __init__(self) -> None:
        self.families: dict[str, MetricFamily] = {}

    def _declare(self, name: str, kind: str, help: str,
                 labelnames: Iterable[str]) -> MetricFamily:
        labelnames = tuple(labelnames)
        family = self.families.get(name)
        if family is not None:
            if family.kind != kind or family.labelnames != labelnames:
                raise MetricError(
                    f"metric {name!r} re-declared as {kind}{labelnames} "
                    f"(was {family.kind}{family.labelnames})")
            return family
        family = MetricFamily(name, kind, help, labelnames)
        self.families[name] = family
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._declare(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._declare(name, "gauge", help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Iterable[str] = ()) -> MetricFamily:
        """Declare (or fetch) a histogram family."""
        return self._declare(name, "histogram", help, labelnames)

    def scrape(self, t_seconds: float) -> dict:
        """Snapshot every child into one JSON-able dict.

        Shape::

            {"t_s": 12.0,
             "counters":   {name: {labelkey: value}},
             "gauges":     {name: {labelkey: value}},
             "histograms": {name: {labelkey: <LatencyHistogram.to_dict()>}}}

        Family and label keys are emitted sorted, and every leaf is a
        plain float/int/dict, so ``json.loads(json.dumps(s)) == s`` —
        the lossless-round-trip property the telemetry artifact (and its
        hypothesis test) relies on.
        """
        out: dict = {"t_s": float(t_seconds), "counters": {},
                     "gauges": {}, "histograms": {}}
        for name in sorted(self.families):
            family = self.families[name]
            section = out[family.kind + "s"]
            children: dict = {}
            for key in sorted(family.children):
                child = family.children[key]
                if family.kind == "histogram":
                    children[key] = child.hist.to_dict()
                else:
                    children[key] = child.value
            section[name] = children
        return out
