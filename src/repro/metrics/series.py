"""Per-epoch time-series recording.

Experiments attach a :class:`SeriesRecorder` to a kernel; it samples a
set of named probes at the end of every epoch, producing the time series
behind the paper's figures (RSS over time for Figure 1, MMU overhead and
promotions over time for Figures 6 and 7, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


@dataclass
class TimeSeries:
    """One named series of (time_seconds, value) points."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, t_seconds: float, value: float) -> None:
        """Record one (time, value) sample."""
        self.times.append(t_seconds)
        self.values.append(value)

    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        return self.values[-1] if self.values else 0.0

    def max(self) -> float:
        """Largest recorded value (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        """Smallest recorded value (0.0 when empty)."""
        return min(self.values) if self.values else 0.0

    def at(self, t_seconds: float) -> float:
        """Value at the latest sample not after ``t_seconds``."""
        best = 0.0
        for t, v in zip(self.times, self.values):
            if t > t_seconds:
                break
            best = v
        return best

    def __len__(self) -> int:
        return len(self.values)


class SeriesRecorder:
    """Samples named probes on a kernel once per epoch."""

    def __init__(self, kernel: "Kernel", every_epochs: int = 1):
        self.kernel = kernel
        self.every_epochs = every_epochs
        self.series: dict[str, TimeSeries] = {}
        self._probes: dict[str, Callable[["Kernel"], float]] = {}
        kernel.epoch_hooks.append(self._on_epoch)

    def probe(self, name: str, fn: Callable[["Kernel"], float]) -> "SeriesRecorder":
        """Register a probe; chainable."""
        self._probes[name] = fn
        self.series[name] = TimeSeries(name)
        return self

    def _on_epoch(self, kernel: "Kernel") -> None:
        if kernel.stats.epochs % self.every_epochs:
            return
        t = kernel.now_us / SEC
        for name, fn in self._probes.items():
            self.series[name].append(t, float(fn(kernel)))

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]
