"""Plain-text table formatting for benchmark output.

The benchmark harness prints every reproduced table and figure as an
aligned text table so its rows can be compared side by side with the
paper's.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
