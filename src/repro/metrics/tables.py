"""Plain-text table and live-terminal rendering shared across the CLI.

:func:`format_table` renders every reproduced paper table/figure as an
aligned monospace block (left-aligned, like the paper's).  The streaming
helpers back the live CLI views — ``repro top``, ``repro heat --watch``,
the trace summaries — which previously each hand-rolled their own
width/align/repaint code:

* :class:`ColumnStream` — fixed-width right-aligned columns printed one
  row at a time (headers first, rows as they arrive).
* :func:`physical_lines` — terminal rows a logical line occupies once
  wrapped (an in-place repaint must rewind every wrapped row).
* :class:`InPlacePainter` — repaint a block of lines in place with ANSI
  cursor-up, Ctrl-C safe (``finish`` hands the terminal back on a fresh
  line if interrupted mid-repaint).
"""

from __future__ import annotations

import sys
from typing import Iterable, Sequence


def _render_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


class ColumnStream:
    """Fixed-width right-aligned columns for streaming row output.

    Unlike :func:`format_table`, widths are fixed up front (from the
    header names and ``min_width``), so rows can be printed as they are
    produced — the shape ``repro top`` and ``repro heat --watch`` need.
    """

    def __init__(self, columns: Sequence[str], min_width: int = 8) -> None:
        self.columns = list(columns)
        self.widths = [max(min_width, len(c)) for c in self.columns]

    def header(self) -> str:
        """The aligned header row."""
        return "  ".join(
            c.rjust(w) for c, w in zip(self.columns, self.widths))

    def row(self, cells: Sequence[object]) -> str:
        """One aligned data row (cells are rendered with ``str``)."""
        return "  ".join(
            str(c).rjust(w) for c, w in zip(cells, self.widths))


def physical_lines(text: str, width: int | None = None) -> int:
    """Terminal rows one logical line occupies (wide lines wrap)."""
    if width is None:
        import shutil

        width = shutil.get_terminal_size().columns or 80
    return max(1, -(-len(text) // width))


class InPlacePainter:
    """Repaint a block of terminal lines in place (ANSI cursor-up).

    Tracks how many *physical* rows the previous paint occupied so the
    next one rewinds exactly that far; Ctrl-C can land between the clear
    sequence and the rewrite, so callers should invoke :meth:`finish`
    in a ``finally`` to hand the terminal back on a fresh line.
    """

    def __init__(self, out=None) -> None:
        self.out = out if out is not None else sys.stdout
        self.painted = 0
        self.mid_repaint = False

    @property
    def drawn(self) -> bool:
        """Whether anything has been painted yet."""
        return self.painted > 0

    def paint(self, block: str) -> None:
        """Replace the previous block with ``block`` (any line count)."""
        self.mid_repaint = True
        if self.painted:
            self.out.write("\x1b[1A\r\x1b[2K" * self.painted)
        print(block, file=self.out)
        self.out.flush()
        self.painted = sum(
            physical_lines(line) for line in (block.split("\n") or [""]))
        self.mid_repaint = False

    def finish(self) -> None:
        """Restore the cursor to a fresh line after a mid-repaint abort."""
        if self.mid_repaint:
            self.out.write("\n")
            self.out.flush()
