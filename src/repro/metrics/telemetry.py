"""Run telemetry: scrape the kernel into one versioned JSON artifact.

A :class:`TelemetrySampler` attaches to a kernel the way a tracer does
(:func:`attach` / :func:`detach`, zero-cost-when-disabled: the epoch
loop tests the module-level :data:`enabled` flag before anything else,
and ``repro bench touch`` gates the armed-but-silent state under the
same <5 % ceiling as tracing).  At every epoch boundary (subsampled by
``every_epochs``) it refreshes a :class:`~repro.metrics.registry.MetricsRegistry`
from four sources —

* **kernel counters** (``procfs.vmstat``: faults, promotions, swap, …),
* **procfs gauges** (``procfs.meminfo``, allocated fraction),
* **tracer attribution** (per-subsystem event/span totals, when a
  tracer is attached),
* **the buddy/fragmentation layer** (FMFI, free blocks per order),

— and appends one scrape to its time series.  :meth:`TelemetrySampler.telemetry`
folds the scrapes, the tracer's exact attribution table, its log2
latency histograms (with interpolated p50/p95/p99) and a wall-clock
self-profile of the simulator into a :class:`RunTelemetry`, the single
versioned artifact ``repro report`` consumes and the sweep cache
persists beside every cell result.

The sweep runner captures telemetry without the adapters knowing:
:func:`start_capture` arms a module flag, ``Kernel.__init__`` calls
:func:`autoattach` while it is armed (attaching a small, warn-free
tracer plus a sampler to every kernel the cell builds), and
:func:`end_capture` turns the samplers into artifacts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro import audit, heat, trace
from repro.metrics.registry import MetricsRegistry
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

#: artifact schema version; bump when the RunTelemetry shape changes.
TELEMETRY_VERSION = 1

#: Global master switch, managed by :func:`attach` / :func:`detach`
#: (mirrors ``repro.trace.enabled``: the epoch loop tests this module
#: attribute first, so a kernel with no sampler pays one bool check).
enabled: bool = False

#: Number of kernels with a sampler currently attached.
_attached: int = 0

#: vmstat keys that are point-in-time state, not cumulative counters.
VMSTAT_GAUGES = frozenset({"trace_attached", "audit_attached"})

#: scrape subsampling during sweep capture (every N epochs).
CAPTURE_EVERY_EPOCHS = 10
#: ring-buffer size for capture tracers: small — capture needs the exact
#: counters/histograms, not the event list, and drops are free there.
CAPTURE_TRACE_CAPACITY = 20_000


@dataclass
class RunTelemetry:
    """One run's telemetry: metadata, time series, attribution, profile.

    ``scrapes`` is the registry time series (one
    :meth:`~repro.metrics.registry.MetricsRegistry.scrape` dict per
    sample); ``attribution`` is the tracer's exact per-subsystem table;
    ``histograms`` maps tracepoint names to serialized log2 latency
    histograms (with p50/p95/p99); ``self_profile`` is wall-clock — the
    one deliberately non-deterministic section, excluded from
    :meth:`scalar_metrics` so regression baselines stay machine-neutral.
    """

    version: int = TELEMETRY_VERSION
    meta: dict = field(default_factory=dict)
    scrapes: list[dict] = field(default_factory=list)
    attribution: dict[str, dict] = field(default_factory=dict)
    histograms: dict[str, dict] = field(default_factory=dict)
    #: decision-audit summary ({"funnel": .., "rejections": .., counts})
    #: when an audit log was attached; empty — and omitted from the
    #: artifact — otherwise, so audit-free artifacts keep their bytes.
    decisions: dict = field(default_factory=dict)
    #: spatial heat-monitor snapshot (regions, matrices, WSS percentile
    #: series) when a heat monitor was attached; empty — and omitted
    #: from the artifact — otherwise, so heat-free artifacts keep their
    #: exact bytes (same rule as ``decisions``).
    heat: dict = field(default_factory=dict)
    #: fleet-manager snapshot (tenant churn counters, OOM accounting,
    #: per-class QoS) when a fleet was attached; empty — and omitted —
    #: otherwise (same rule as ``decisions``/``heat``).
    fleet: dict = field(default_factory=dict)
    self_profile: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain JSON-able form (the artifact written beside cache entries)."""
        out = {
            "version": self.version,
            "meta": self.meta,
            "scrapes": self.scrapes,
            "attribution": self.attribution,
            "histograms": self.histograms,
            "self_profile": self.self_profile,
        }
        if self.decisions:
            out["decisions"] = self.decisions
        if self.heat:
            out["heat"] = self.heat
        if self.fleet:
            out["fleet"] = self.fleet
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunTelemetry":
        """Rebuild an artifact parsed from JSON."""
        return cls(
            version=data.get("version", 0),
            meta=data.get("meta", {}),
            scrapes=data.get("scrapes", []),
            attribution=data.get("attribution", {}),
            histograms=data.get("histograms", {}),
            decisions=data.get("decisions", {}),
            heat=data.get("heat", {}),
            fleet=data.get("fleet", {}),
            self_profile=data.get("self_profile", {}),
        )

    def scalar_metrics(self) -> dict[str, float]:
        """Deterministic scalars for baseline comparison.

        Per-subsystem event counts and span totals, plus the latency
        percentiles of every histogram — everything simulated-time, no
        wall-clock, so values are identical across machines for a fixed
        source tree.
        """
        out: dict[str, float] = {}
        for subsystem, entry in self.attribution.items():
            out[f"attribution.{subsystem}.events"] = entry["events"]
            out[f"attribution.{subsystem}.span_us"] = entry["span_us"]
        for kind, hist in self.histograms.items():
            for p in ("p50", "p95", "p99"):
                if p in hist:
                    out[f"hist.{kind}.{p}"] = hist[p]
        for point, stages in (self.decisions.get("funnel") or {}).items():
            for stage, count in stages.items():
                out[f"decision.{point}.{stage}"] = count
        for point, reasons in (self.decisions.get("rejections") or {}).items():
            for reason, count in reasons.items():
                out[f"decision.{point}.reject.{reason}"] = count
        for proc in self.heat.get("processes") or ():
            name = proc.get("process")
            out[f"heat.{name}.regions"] = len(proc.get("regions") or ())
            out[f"heat.{name}.hot_regions"] = proc.get("hot_regions", 0)
            wss = proc.get("wss") or {}
            for p in ("p50", "p95", "p99"):
                if p in wss:
                    out[f"heat.{name}.wss_{p}"] = wss[p]
        if self.fleet:
            for key in ("spawned", "exited", "oom_kills", "protected_kills",
                        "deferred", "peak_active", "fairness_spread"):
                if key in self.fleet:
                    out[f"fleet.{key}"] = self.fleet[key]
            for name, cls in (self.fleet.get("classes") or {}).items():
                out[f"fleet.{name}.tenants"] = cls.get("tenants", 0)
                out[f"fleet.{name}.oom_kills"] = cls.get("oom_kills", 0)
                out[f"fleet.{name}.promotions"] = cls.get("promotions", 0)
                hist = cls.get("fault_us") or {}
                for p in ("p50", "p99"):
                    if p in hist:
                        out[f"fleet.{name}.fault_{p}_us"] = hist[p]
        return out


class TelemetrySampler:
    """Per-kernel epoch-boundary scraper feeding a metrics registry."""

    def __init__(self, kernel: "Kernel", every_epochs: int = 1,
                 registry: MetricsRegistry | None = None):
        self.kernel = kernel
        self.every_epochs = max(1, every_epochs)
        #: per-sampler gate: False pauses sampling while staying attached
        #: (the disabled-overhead benchmark measures exactly this state).
        self.enabled = True
        self.registry = registry if registry is not None else MetricsRegistry()
        self.scrapes: list[dict] = []
        r = self.registry
        self._vm_counters = r.counter(
            "vmstat", "cumulative kernel counters (/proc/vmstat analogue)",
            labelnames=("name",))
        self._vm_gauges = r.gauge(
            "vmstat_state", "point-in-time vmstat keys (e.g. trace_attached)",
            labelnames=("name",))
        self._meminfo = r.gauge(
            "meminfo_kb", "memory gauges in KiB (/proc/meminfo analogue)",
            labelnames=("field",))
        self._fmfi = r.gauge(
            "fmfi", "free memory fragmentation index at order 9")
        self._alloc_frac = r.gauge(
            "allocated_fraction", "fraction of physical memory allocated")
        self._free_blocks = r.gauge(
            "buddy_free_blocks", "free blocks per buddy order",
            labelnames=("order",))
        self._proc_rss = r.gauge(
            "process_rss_pages", "resident pages per process",
            labelnames=("process",))
        self._proc_mmu = r.gauge(
            "process_mmu_overhead", "lifetime MMU overhead per process",
            labelnames=("process",))
        self._trace_events = r.counter(
            "trace_events_total", "tracepoint emissions per subsystem",
            labelnames=("subsystem",))
        self._trace_span = r.counter(
            "trace_span_us_total", "traced simulated-time span per subsystem",
            labelnames=("subsystem",))
        # NUMA families exist only on multi-node kernels: a declared-but
        # -childless family still scrapes as an empty dict, which would
        # change single-node scrape bytes against the committed baseline.
        self._numa_gauges = self._numa_counters = self._numa_remote = None
        if kernel.numa is not None:
            self._numa_gauges = r.gauge(
                "numastat_pages", "per-node page gauges (numastat analogue)",
                labelnames=("name",))
            self._numa_counters = r.counter(
                "numastat", "cumulative NUMA placement/migration counters",
                labelnames=("name",))
            self._numa_remote = r.gauge(
                "numa_remote_walk_share",
                "share of all page-walk cycles hitting remote-node memory")
        # Decision-audit families follow the same rule as NUMA: declared
        # only when an audit log is attached at sampler construction, so
        # audit-free scrapes keep their exact byte shape.
        self._decision_funnel = self._decision_reject = None
        if kernel.audit is not None:
            self._decision_funnel = r.counter(
                "decision_funnel_total",
                "policy decisions reaching each funnel stage",
                labelnames=("point", "stage"))
            self._decision_reject = r.counter(
                "decision_rejections_total",
                "policy rejections per decision point and reason",
                labelnames=("point", "reason"))
        # Heat-monitor families: declared only when a monitor is attached
        # at sampler construction, so heat-free scrapes keep their bytes.
        self._heat_regions = self._heat_wss = self._heat_hot = None
        if kernel.heat is not None:
            self._heat_regions = r.gauge(
                "heat_monitoring_regions",
                "adaptive monitoring regions per process",
                labelnames=("process",))
            self._heat_hot = r.gauge(
                "heat_hot_regions",
                "monitoring regions above the hot-density threshold",
                labelnames=("process",))
            self._heat_wss = r.gauge(
                "heat_wss_pages",
                "monitoring-region working-set estimate in base pages",
                labelnames=("process",))
        # Fleet and huge-page-limit families are declared *lazily* in
        # ``_collect`` (unlike NUMA/audit/heat): a FleetManager attaches
        # after kernel construction — past this constructor — and a
        # fleet may install group limits into the policy at that point
        # too.  Scrape bytes for fleet-free kernels stay identical, the
        # same guarantee the construction-time families give.
        self._fleet_counters = self._fleet_gauges = None
        self._limit_refusals = None
        self._limit_group_held = self._limit_group_cap = None
        # wall-clock self-profile state
        self._wall_origin = time.perf_counter()
        self._last_wall = self._wall_origin
        self._run_wall_s = 0.0
        self._scrape_wall_s = 0.0
        self._epochs_seen = 0

    # ------------------------------------------------------------------ #
    # sampling                                                            #
    # ------------------------------------------------------------------ #

    def on_epoch(self, kernel: "Kernel") -> None:
        """Epoch-boundary hook (called from ``Kernel.run_epoch`` when armed)."""
        now = time.perf_counter()
        self._run_wall_s += now - self._last_wall
        self._last_wall = now
        self._epochs_seen += 1
        if kernel.stats.epochs % self.every_epochs:
            return
        self._collect(kernel)
        self.scrapes.append(self.registry.scrape(kernel.now_us / SEC))
        after = time.perf_counter()
        self._scrape_wall_s += after - self._last_wall
        self._last_wall = after

    def _collect(self, kernel: "Kernel") -> None:
        """Refresh every registry family from the kernel's current state."""
        from repro.kernel import procfs

        for name, value in procfs.vmstat(kernel).items():
            if name in VMSTAT_GAUGES:
                self._vm_gauges.labels(name=name).set(value)
            else:
                self._vm_counters.labels(name=name).sync(value)
        for fieldname, value in procfs.meminfo(kernel).items():
            self._meminfo.labels(field=fieldname).set(value)
        self._fmfi.child().set(kernel.fmfi())
        self._alloc_frac.child().set(kernel.allocated_fraction())
        for order, count in enumerate(kernel.buddy.free_block_counts()):
            self._free_blocks.labels(order=str(order)).set(count)
        for proc in kernel.processes:
            self._proc_rss.labels(process=proc.name).set(proc.rss_pages())
            pmu = kernel.pmu.get(proc.pid)
            if pmu is not None:
                self._proc_mmu.labels(process=proc.name).set(pmu.read_overhead())
        if self._numa_gauges is not None:
            for name, value in procfs.numastat(kernel).items():
                if name.endswith("_pages") or name == "numa_nodes":
                    self._numa_gauges.labels(name=name).set(value)
                else:
                    self._numa_counters.labels(name=name).sync(value)
            self._numa_remote.child().set(kernel.numa.remote_walk_share())
        tracer = kernel.trace
        if tracer is not None:
            for subsystem, (events, span_us) in tracer.attribution().items():
                self._trace_events.labels(subsystem=subsystem).sync(events)
                self._trace_span.labels(subsystem=subsystem).sync(span_us)
        monitor = kernel.heat
        if self._heat_regions is not None and monitor is not None:
            for state in monitor.procs.values():
                self._heat_regions.labels(process=state.name).set(
                    len(state.regions))
                self._heat_hot.labels(process=state.name).set(
                    state.hot_regions())
                self._heat_wss.labels(process=state.name).set(
                    round(state.last_estimate, 2))
        audit_log = kernel.audit
        if self._decision_funnel is not None and audit_log is not None:
            for point, counts in audit_log.funnel.items():
                for stage, count in zip(audit.FUNNEL_STAGES, counts):
                    self._decision_funnel.labels(
                        point=point, stage=stage).sync(count)
            for point, reasons in audit_log.rejections.items():
                for reason, count in reasons.items():
                    self._decision_reject.labels(
                        point=point, reason=reason).sync(count)
        fleet = kernel.fleet
        if fleet is not None:
            if self._fleet_counters is None:
                r = self.registry
                self._fleet_counters = r.counter(
                    "fleet_tenants_total",
                    "cumulative fleet tenant lifecycle events",
                    labelnames=("event",))
                self._fleet_gauges = r.gauge(
                    "fleet_tenants", "current fleet tenant population",
                    labelnames=("state",))
            for event, value in (("spawned", fleet.spawned),
                                 ("exited", fleet.exited),
                                 ("oom_killed", fleet.oom_kills),
                                 ("deferred", fleet.deferred)):
                self._fleet_counters.labels(event=event).sync(value)
            self._fleet_gauges.labels(state="active").set(fleet.active)
            self._fleet_gauges.labels(state="pending").set(fleet.pending)
        limits = getattr(kernel.policy, "limits", None)
        if limits is not None:
            if self._limit_refusals is None:
                r = self.registry
                self._limit_refusals = r.counter(
                    "limit_refusals_total",
                    "huge-page promotions refused by §3.5 caps",
                    labelnames=("kind",))
                self._limit_group_held = r.gauge(
                    "limit_group_held",
                    "huge pages currently held by a limit group",
                    labelnames=("group",))
                self._limit_group_cap = r.gauge(
                    "limit_group_cap", "huge-page cap of a limit group",
                    labelnames=("group",))
            self._limit_refusals.labels(kind="total").sync(limits.refusals)
            self._limit_refusals.labels(kind="group").sync(
                limits.group_refusals)
            for group, (held, cap) in limits.group_stats().items():
                self._limit_group_held.labels(group=group).set(held)
                self._limit_group_cap.labels(group=group).set(cap)

    # ------------------------------------------------------------------ #
    # artifact                                                            #
    # ------------------------------------------------------------------ #

    def self_profile(self) -> dict:
        """Wall-clock profile of the simulator run this sampler watched."""
        run_s = self._run_wall_s
        return {
            "wall_s": round(time.perf_counter() - self._wall_origin, 4),
            "run_s": round(run_s, 4),
            "scrape_s": round(self._scrape_wall_s, 4),
            "epochs": self._epochs_seen,
            "scrapes": len(self.scrapes),
            "epochs_per_wall_s": round(self._epochs_seen / run_s, 1) if run_s > 0 else 0.0,
        }

    def telemetry(self, meta: dict | None = None) -> RunTelemetry:
        """Fold everything sampled so far into one :class:`RunTelemetry`.

        Always ends the series with a scrape of the kernel's final state
        (runs shorter than ``every_epochs`` would otherwise produce an
        empty time series).
        """
        kernel = self.kernel
        end_s = kernel.now_us / SEC
        if not self.scrapes or self.scrapes[-1]["t_s"] != end_s:
            self._collect(kernel)
            self.scrapes.append(self.registry.scrape(end_s))
        full_meta = {
            "policy": type(kernel.policy).__name__,
            "mem_bytes": kernel.config.mem_bytes,
            "epochs": kernel.stats.epochs,
            "t_end_s": kernel.now_us / SEC,
            "processes": sorted(
                {p.name for p in kernel.processes}
                | {run.proc.name for run in kernel.runs}),
        }
        if meta:
            full_meta.update(meta)
        tracer = kernel.trace
        attribution: dict[str, dict] = {}
        histograms: dict[str, dict] = {}
        if tracer is not None:
            attribution = {
                subsystem: {"events": events, "span_us": span_us}
                for subsystem, (events, span_us) in sorted(tracer.attribution().items())
            }
            histograms = {
                kind.value: hist.to_dict()
                for kind, hist in sorted(tracer.histograms.items(),
                                         key=lambda item: item[0].value)
            }
        audit_log = kernel.audit
        decisions: dict = {}
        if audit_log is not None:
            decisions = {
                "funnel": audit_log.funnel_summary(),
                "rejections": audit_log.rejection_summary(),
                "recorded": audit_log.recorded,
                "dropped": audit_log.dropped,
            }
        monitor = kernel.heat
        heat_snap: dict = {}
        if monitor is not None:
            snap = monitor.snapshot()
            if snap["samples"] or snap["processes"]:
                heat_snap = snap
        fleet_snap: dict = {}
        if kernel.fleet is not None:
            fleet_snap = kernel.fleet.snapshot()
        return RunTelemetry(
            version=TELEMETRY_VERSION,
            meta=full_meta,
            scrapes=list(self.scrapes),
            attribution=attribution,
            histograms=histograms,
            decisions=decisions,
            heat=heat_snap,
            fleet=fleet_snap,
            self_profile=self.self_profile(),
        )


# ---------------------------------------------------------------------- #
# attachment (mirrors repro.trace)                                        #
# ---------------------------------------------------------------------- #


def attach(kernel: "Kernel", every_epochs: int = 1,
           registry: MetricsRegistry | None = None) -> TelemetrySampler:
    """Attach a :class:`TelemetrySampler` to ``kernel``; arm the flag.

    Idempotent: returns the existing sampler if one is attached.
    """
    global enabled, _attached
    if kernel.telemetry is not None:
        return kernel.telemetry
    sampler = TelemetrySampler(kernel, every_epochs, registry)
    kernel.telemetry = sampler
    _attached += 1
    enabled = True
    return sampler


def detach(kernel: "Kernel") -> TelemetrySampler | None:
    """Detach ``kernel``'s sampler; disarm the flag when none remain."""
    global enabled, _attached
    sampler = kernel.telemetry
    if sampler is None:
        return None
    kernel.telemetry = None
    _attached -= 1
    if _attached <= 0:
        _attached = 0
        enabled = False
    return sampler


def reset() -> None:
    """Force the module back to the no-sampler state (test isolation)."""
    global enabled, _attached, _capture_samplers, capturing
    enabled = False
    _attached = 0
    _capture_samplers = None
    capturing = False


# ---------------------------------------------------------------------- #
# sweep capture: telemetry without the adapters knowing                   #
# ---------------------------------------------------------------------- #

#: samplers auto-attached since :func:`start_capture` (None = not capturing).
_capture_samplers: Optional[list[TelemetrySampler]] = None

#: armed by :func:`start_capture`; ``Kernel.__init__`` checks this flag
#: (one module-attribute test per kernel construction — negligible).
capturing: bool = False


def start_capture(every_epochs: int = CAPTURE_EVERY_EPOCHS) -> None:
    """Arm auto-attachment for every kernel built until :func:`end_capture`."""
    global _capture_samplers, capturing, _capture_every
    _capture_samplers = []
    _capture_every = every_epochs
    capturing = True


_capture_every: int = CAPTURE_EVERY_EPOCHS


def autoattach(kernel: "Kernel") -> None:
    """Called by ``Kernel.__init__`` while a capture is armed.

    Attaches the tracer, the decision audit and the heat monitor
    *before* the sampler so the sampler sees them all and declares
    their metric families.
    """
    if _capture_samplers is None:
        return
    trace.attach(kernel, CAPTURE_TRACE_CAPACITY, warn_on_drop=False)
    audit.attach(kernel)
    heat.attach(kernel)
    _capture_samplers.append(attach(kernel, every_epochs=_capture_every))


def end_capture(meta: dict | None = None) -> list[RunTelemetry]:
    """Disarm capture; detach and convert every sampler to an artifact."""
    global _capture_samplers, capturing
    samplers, _capture_samplers = _capture_samplers, None
    capturing = False
    artifacts: list[RunTelemetry] = []
    for sampler in samplers or ():
        artifacts.append(sampler.telemetry(meta))
        trace.detach(sampler.kernel)
        audit.detach(sampler.kernel)
        heat.detach(sampler.kernel)
        detach(sampler.kernel)
    return artifacts
