"""Multi-node NUMA layer: topology, per-node zones, mempolicies, balancing.

The paper's evaluation platform is a two-socket Haswell-EP, but the
simulator historically modelled a single flat memory node.  This package
adds the missing axis — *where* a page lands relative to *who* accesses
it:

* :class:`~repro.numa.topology.NumaTopology` — node count, per-node
  frame ranges and a node-distance matrix (Linux convention: local 10,
  one hop 20);
* :class:`~repro.numa.allocator.NodeAllocator` — per-node
  :class:`~repro.mem.buddy.BuddyAllocator` zones behind the exact buddy
  surface the kernel already consumes, with distance-ordered fallback;
* :class:`~repro.numa.mempolicy.MemPolicy` — first-touch/local,
  interleave, preferred and bind placement policies, selectable
  per-process and per-VMA;
* :class:`~repro.numa.balance.NumaState` — the ``knumad`` balancing
  kthread (hint faults from sampled access bits, budgeted hot-page and
  huge-region migration with demote-on-split), remote walk accounting
  and Mitosis-style replicated page tables.

Single-node kernels never construct any of this: ``kernel.numa`` stays
``None`` and every fast path is byte-identical to the pre-NUMA code.
"""

from repro.numa.allocator import NodeAllocator
from repro.numa.balance import NumaState
from repro.numa.mempolicy import MemPolicy, MemPolicyKind
from repro.numa.topology import NumaTopology

__all__ = [
    "MemPolicy",
    "MemPolicyKind",
    "NodeAllocator",
    "NumaState",
    "NumaTopology",
]
