"""Per-node buddy zones behind the single-allocator surface.

:class:`NodeAllocator` carves the shared :class:`FrameTable` into one
:class:`BuddyAllocator` zone per node and re-exposes the *exact* method
surface the kernel already consumes, so every existing caller (fault
path, fragmenter, pre-zero thread, compaction, procfs) works unchanged.
Buddy coalescing cannot cross zones by construction: a zone only merges
with buddies present in its own block index.

Allocation takes an optional ``node`` preference.  Misses spill to the
remaining nodes in distance order (nearest first, ties by node id —
Linux's zonelist fallback), unless the caller's mempolicy is a strict
bind.  Linux-style ``numa_hit`` / ``numa_miss`` / ``numa_foreign``
counters record where allocations landed relative to where they were
asked to land.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import AllocationError
from repro.mem.buddy import BuddyAllocator
from repro.mem.compaction import CompactionStats, Compactor, MigrateFn
from repro.mem.frames import NO_OWNER, FrameTable
from repro.numa.topology import NodeMap, NumaTopology
from repro.units import MAX_ORDER


class NodeAllocator:
    """Facade over per-node buddy zones sharing one frame table."""

    def __init__(self, frames: FrameTable, topology: NumaTopology,
                 max_order: int = MAX_ORDER):
        self.frames = frames
        self.max_order = max_order
        self.topology = topology
        self.node_map = NodeMap(topology, frames.num_frames)
        self.zones = [
            BuddyAllocator(frames, max_order, start=start, end=end)
            for start, end in self.node_map.ranges
        ]
        self.nodes = len(self.zones)
        distance = topology.distance_matrix()
        #: per-source-node zone probe order: self first, then by distance.
        self._fallback = [
            sorted(range(self.nodes), key=lambda n: (distance[src][n], n))
            for src in range(self.nodes)
        ]
        # Linux numastat counters: hit = landed on the requested node,
        # miss = landed here though another node was requested,
        # foreign = was requested here but landed elsewhere.
        self.numa_hit = [0] * self.nodes
        self.numa_miss = [0] * self.nodes
        self.numa_foreign = [0] * self.nodes

    # ------------------------------------------------------------------ #
    # node helpers                                                       #
    # ------------------------------------------------------------------ #

    def node_of(self, frame: int) -> int:
        """The node whose zone owns ``frame``."""
        return self.node_map.node_of(frame)

    def node_of_arr(self, frames):
        """Vectorized :meth:`node_of` over an array of frame numbers."""
        return self.node_map.node_of_arr(frames)

    def zone(self, node: int) -> BuddyAllocator:
        """The buddy zone of one node."""
        return self.zones[node]

    def _probe_order(self, node: int | None, strict: bool) -> list[int]:
        if node is None:
            return self._fallback[0]
        if strict:
            return [node]
        return self._fallback[node]

    def _count(self, wanted: int | None, landed: int, pages: int) -> None:
        if wanted is None or wanted == landed:
            self.numa_hit[landed] += pages
        else:
            self.numa_miss[landed] += pages
            self.numa_foreign[wanted] += pages

    # ------------------------------------------------------------------ #
    # allocation                                                         #
    # ------------------------------------------------------------------ #

    def try_alloc(
        self, order: int = 0, prefer_zero: bool = True, owner: int = NO_OWNER,
        node: int | None = None, strict: bool = False,
    ) -> tuple[int, bool] | None:
        """Allocate from the preferred node, spilling by distance."""
        if not 0 <= order <= self.max_order:
            raise AllocationError(f"order {order} outside [0, {self.max_order}]")
        for candidate in self._probe_order(node, strict):
            got = self.zones[candidate].try_alloc(order, prefer_zero, owner)
            if got is not None:
                self._count(node, candidate, 1 << order)
                return got
        return None

    def alloc(
        self, order: int = 0, prefer_zero: bool = True, owner: int = NO_OWNER,
        node: int | None = None, strict: bool = False,
    ) -> tuple[int, bool]:
        """Like :meth:`try_alloc` but raises on failure."""
        got = self.try_alloc(order, prefer_zero, owner, node=node, strict=strict)
        if got is None:
            raise AllocationError(f"no free block of order {order}")
        return got

    def try_alloc_run_extent(
        self, max_pages: int, prefer_zero: bool = True, owner: int = NO_OWNER,
        node: int | None = None, strict: bool = False,
    ) -> tuple[int, int, bool] | None:
        """One contiguous extent from the nearest zone with free memory."""
        for candidate in self._probe_order(node, strict):
            ext = self.zones[candidate].try_alloc_run_extent(
                max_pages, prefer_zero, owner)
            if ext is not None:
                self._count(node, candidate, ext[1])
                return ext
        return None

    def try_alloc_run(
        self, npages: int, prefer_zero: bool = True, owner: int = NO_OWNER,
        node: int | None = None, strict: bool = False,
    ) -> list[tuple[int, int, bool]]:
        """Up to ``npages`` order-0 frames as a list of extents."""
        extents: list[tuple[int, int, bool]] = []
        remaining = npages
        while remaining > 0:
            ext = self.try_alloc_run_extent(
                remaining, prefer_zero, owner, node=node, strict=strict)
            if ext is None:
                break
            extents.append(ext)
            remaining -= ext[1]
        return extents

    # ------------------------------------------------------------------ #
    # freeing (routed to the owning zone; ranges split at zone bounds)   #
    # ------------------------------------------------------------------ #

    def free(self, start: int, order: int = 0) -> int:
        """Free a block back into its zone; returns the coalesced order."""
        return self.zones[self.node_of(start)].free(start, order)

    def insert_free_block(self, start: int, order: int) -> int:
        """Re-insert an already-table-free block into its zone."""
        return self.zones[self.node_of(start)].insert_free_block(start, order)

    def free_range(self, start: int, count: int) -> None:
        """Free an arbitrary range, split at zone boundaries.

        Adjacent extents from different zones can form one consecutive
        frame run (e.g. batched ``madvise`` unmap), so a range may
        legitimately straddle a boundary even though no single
        allocation ever does.
        """
        end = start + count
        while start < end:
            zone = self.zones[self.node_of(start)]
            stop = min(end, zone.end)
            zone.free_range(start, stop - start)
            start = stop

    def carve_range(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Carve free blocks out of [lo, hi), split at zone boundaries."""
        carved: list[tuple[int, int]] = []
        while lo < hi:
            zone = self.zones[self.node_of(lo)]
            stop = min(hi, zone.end)
            carved.extend(zone.carve_range(lo, stop))
            lo = stop
        return carved

    # ------------------------------------------------------------------ #
    # pre-zeroing support                                                #
    # ------------------------------------------------------------------ #

    def pop_nonzero_block(self, max_order: int | None = None) -> tuple[int, int] | None:
        """The largest dirty free block across all zones (ties: lowest node)."""
        top = self.max_order if max_order is None else max_order
        for order in range(top, -1, -1):
            for zone in self.zones:
                popped = zone.pop_nonzero_block(max_order=order)
                if popped is not None and popped[1] == order:
                    return popped
                if popped is not None:  # pragma: no cover - smaller than asked
                    zone.reinsert_dirty(*popped)
        return None

    def reinsert_zeroed(self, start: int, order: int) -> None:
        """Hand a freshly zero-filled block back to its zone."""
        self.zones[self.node_of(start)].reinsert_zeroed(start, order)

    def reinsert_dirty(self, start: int, order: int) -> None:
        """Hand back an untouched popped block (budget ran out)."""
        self.zones[self.node_of(start)].reinsert_dirty(start, order)

    # ------------------------------------------------------------------ #
    # introspection                                                      #
    # ------------------------------------------------------------------ #

    @property
    def free_pages(self) -> int:
        return sum(zone.free_pages for zone in self.zones)

    @property
    def total_pages(self) -> int:
        return sum(zone.total_pages for zone in self.zones)

    @property
    def allocated_pages(self) -> int:
        return self.total_pages - self.free_pages

    def free_zeroed_pages(self) -> int:
        """Pages on zero lists across all zones."""
        return sum(zone.free_zeroed_pages() for zone in self.zones)

    def free_block_counts(self) -> list[int]:
        """Free blocks per order, summed over zones."""
        counts = [0] * (self.max_order + 1)
        for zone in self.zones:
            for order, n in enumerate(zone.free_block_counts()):
                counts[order] += n
        return counts

    def free_blocks_at_least(self, order: int) -> int:
        """Free blocks usable for an order-``order`` allocation."""
        counts = self.free_block_counts()
        return sum(counts[order:])

    def iter_free_blocks(self) -> Iterator[tuple[int, int, bool]]:
        """Yield ``(start, order, zeroed)`` over every zone."""
        for zone in self.zones:
            yield from zone.iter_free_blocks()


class NodeCompactor:
    """Per-zone compactors behind the single-compactor surface.

    Each node compacts within its own zone (Linux compaction is per-zone
    too), so defragmentation never migrates pages across the socket
    boundary behind the balancer's back.  The budget is spent on zones
    in node order; aggregate stats merge into ``self.stats`` exactly as
    the flat :class:`Compactor` does.
    """

    def __init__(self, allocator: NodeAllocator, migrate: MigrateFn):
        self.stats = CompactionStats()
        self.compactors = [
            Compactor(zone, migrate, lo=zone.start, hi=zone.end)
            for zone in allocator.zones
        ]

    def run(self, budget_pages: int) -> CompactionStats:
        """Compact every zone within one shared page budget."""
        run_stats = CompactionStats()
        for compactor in self.compactors:
            remaining = budget_pages - run_stats.pages_moved
            if remaining <= 0:
                break
            run_stats.merge(compactor.run(remaining))
        run_stats.runs = 1
        self.stats.merge(run_stats)
        return run_stats
