"""NUMA runtime state: hint faults, knumad balancing, replicated PTs.

:class:`NumaState` is attached to a kernel as ``kernel.numa`` when the
topology has more than one node; single-node kernels keep the slot
``None`` and never execute any of this.  It owns three mechanisms:

**Hint faults** — AutoNUMA's signal.  The access-bit sampler already
tells us which regions a process touched in the last period; when
balancing is on, every *remote* sampled region charges the process one
minor fault per covered page (the cost of Linux unmapping and re-faulting
pages to learn their accessing node) and becomes a migration candidate.

**knumad** — the balancing kthread.  Each epoch it migrates the hottest
misplaced regions toward the owner's home node under a page-rate budget,
reusing the kernel's ``_migrate_frame`` rebinding path.  Whole huge
regions move via a single order-9 allocation on the target node; when the
target has no contiguous block free, the region is *demoted and migrated
page-wise* (split migration), trading the huge mapping for locality —
the promotion engine can rebuild it locally later.  Candidate order is
(hotness desc, pid, hvpn): fully deterministic, no rng.

**Replicated page tables** — Mitosis mode.  Every node keeps a full
replica of each process's page table, so page walks always hit local
memory: the remote-walk multiplier disappears from the MMU model, paid
for with ``(nodes - 1) x pt_pages`` of extra kernel memory, which is
reported (``numastat``, the ``numa`` experiment) rather than carved out
of the zones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro import audit, trace
from repro.kernel.kthread import RateLimiter
from repro.numa.allocator import NodeAllocator
from repro.units import CYCLES_PER_USEC, PAGES_PER_HUGE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
    from repro.vm.process import Process
    from repro.vm.vma import VMA


class NumaState:
    """Per-kernel NUMA machinery (only built for multi-node topologies)."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.topology = kernel.config.topology
        allocator = kernel.buddy
        assert isinstance(allocator, NodeAllocator)
        self.allocator: NodeAllocator = allocator
        self.nodes = allocator.nodes
        self.replicated_pt = kernel.config.replicated_page_tables
        rate = kernel.config.knumad_pages_per_sec
        self.balancing = rate > 0
        self.knumad = RateLimiter(rate, kernel.config.epoch_us)
        #: migration candidates keyed (pid, hvpn) -> coverage EMA at the
        #: last sample; rebuilt per process on every sample pass.
        self._candidates: dict[tuple[int, int], float] = {}
        #: remote page-walk cycles charged this epoch / since boot.
        self.remote_walk_cycles_epoch = 0.0
        self.remote_walk_cycles_total = 0.0
        #: cached remote-penalty rows (same values topology.remote_penalty
        #: recomputes from the SLIT matrix on every call).
        matrix = self.topology.distance_matrix()
        self._penalty = [
            [matrix[src][dst] / matrix[src][src] for dst in range(self.nodes)]
            for src in range(self.nodes)
        ]

    # ------------------------------------------------------------------ #
    # placement                                                          #
    # ------------------------------------------------------------------ #

    def node_of(self, frame: int) -> int:
        """The node owning a physical frame."""
        return self.allocator.node_of(frame)

    def resolve_policy(self, proc: "Process", vma: Optional["VMA"]):
        """The effective mempolicy: VMA override, else process, else None."""
        if vma is not None and vma.mempolicy is not None:
            return vma.mempolicy
        return proc.mempolicy

    def fault_node(self, proc: "Process", vma: Optional["VMA"],
                   hvpn: int) -> tuple[int, bool]:
        """``(node, strict)`` placement for a fault in huge region ``hvpn``."""
        policy = self.resolve_policy(proc, vma)
        if policy is None:
            return proc.home_node, False
        return policy.target_node(proc.home_node, hvpn, self.nodes), policy.strict

    def region_node(self, proc: "Process", hvpn: int) -> int | None:
        """The node backing a region (first mapped page's node).

        Regions are populated by node-uniform extents and migrated
        wholesale, so the first mapped page is representative; exact
        per-node counts are available via :meth:`region_node_counts`.
        """
        pt = proc.page_table
        huge_pte = pt.huge.get(hvpn)
        if huge_pte is not None:
            return self.node_of(huge_pte.frame)
        mframes, mpriv = pt.region_mirror(hvpn)
        priv = np.nonzero(mpriv)[0]
        if priv.size == 0:
            return None
        return self.node_of(int(mframes[priv[0]]))

    def region_nodes_arr(self, proc: "Process", hvpns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`region_node`: backing node per hvpn (-1 = none).

        Huge regions resolve through the hvpn->frame mirror in one gather;
        base regions take a fast path through column 0 (the region's first
        page, private in the common dense layout) and fall back to a
        per-region first-private scan only where that page is shared or
        unmapped.
        """
        pt = proc.page_table
        n = hvpns.shape[0]
        out = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return out
        mhuge = pt._mhuge
        hcap = mhuge.shape[0]
        in_cap = hvpns < hcap
        hframes = np.where(in_cap, mhuge[np.minimum(hvpns, hcap - 1)], -1)
        is_huge = hframes >= 0
        if is_huge.any():
            out[is_huge] = self.allocator.node_of_arr(hframes[is_huge])
        rest = np.nonzero(~is_huge)[0]
        if rest.size == 0:
            return out
        vpn0s = hvpns[rest] << 9
        mframe, mpriv = pt._mframe, pt._mpriv
        bcap = mframe.shape[0]
        ok = vpn0s < bcap
        safe = np.minimum(vpn0s, bcap - 1)
        frame0 = np.where(ok, mframe[safe], -1)
        priv0 = np.where(ok, mpriv[safe], False)
        easy = rest[priv0]
        if easy.size:
            out[easy] = self.allocator.node_of_arr(frame0[priv0])
        for i in rest[~priv0].tolist():
            mframes, mp = pt.region_mirror(int(hvpns[i]))
            priv = np.nonzero(mp)[0]
            if priv.size:
                out[i] = self.node_of(int(mframes[priv[0]]))
        return out

    def region_node_counts(self, proc: "Process", hvpn: int) -> list[int]:
        """Resident pages of a region per node (exact, one bincount)."""
        counts = [0] * self.nodes
        pt = proc.page_table
        huge_pte = pt.huge.get(hvpn)
        if huge_pte is not None:
            counts[self.node_of(huge_pte.frame)] = PAGES_PER_HUGE
            return counts
        mframes, mpriv = pt.region_mirror(hvpn)
        frames = mframes[mpriv]
        if frames.size == 0:
            return counts
        nodes = self.allocator.node_of_arr(frames)
        return np.bincount(nodes, minlength=self.nodes).tolist()

    def majority_node(self, proc: "Process", hvpn: int) -> int:
        """The node holding most of a region's pages (promotion target)."""
        counts = self.region_node_counts(proc, hvpn)
        best = max(counts)
        return counts.index(best) if best > 0 else proc.home_node

    # ------------------------------------------------------------------ #
    # remote-walk accounting (fed by WorkloadRun cycle charging)         #
    # ------------------------------------------------------------------ #

    def charge_remote_walk(self, proc: "Process", cycles: float) -> None:
        """Record page-walk cycles that hit remote memory this epoch."""
        proc.stats.remote_walk_cycles += cycles
        self.remote_walk_cycles_epoch += cycles

    def remote_walk_share(self) -> float:
        """Remote fraction of all walk cycles charged since boot."""
        total = sum(run.proc.stats.walk_cycles for run in self.kernel.runs)
        pending = self.remote_walk_cycles_total + self.remote_walk_cycles_epoch
        return pending / total if total > 0 else 0.0

    def load_remoteness(self, proc: "Process", hvpns) -> tuple[float, float]:
        """``(remote_fraction, penalty)`` of an access-spec's hot regions.

        The fraction is the share of touched regions resident off the
        process's home node; the penalty is the mean SLIT distance ratio
        over those remote regions.  Replicated page tables zero the
        *walk* penalty (walks hit the local replica), which is what this
        feeds, so that mode reports (0, 1).
        """
        if self.replicated_pt:
            return 0.0, 1.0
        home = proc.home_node
        nodes = self.region_nodes_arr(
            proc, np.fromiter(hvpns, dtype=np.int64))
        mask = (nodes >= 0) & (nodes != home)
        remote = int(mask.sum())
        if remote == 0:
            return 0.0, 1.0
        # Sequential adds (not np.sum) keep the float result bit-identical
        # to the scalar accumulation for custom SLIT matrices.
        penalty = 0.0
        row = self._penalty[home]
        for node in nodes[mask].tolist():
            penalty += row[node]
        return remote / len(hvpns), penalty / remote

    # ------------------------------------------------------------------ #
    # replicated page tables (Mitosis mode)                              #
    # ------------------------------------------------------------------ #

    @staticmethod
    def pt_pages(proc: "Process") -> int:
        """4 KiB pages in one copy of the process's page table.

        x86-64 radix shape: one PTE page per huge region mapped at base
        granularity, one PMD page per GiB touched, one PUD page per
        512 GiB, one PGD.
        """
        pt = proc.page_table
        pte_tables = {vpn >> 9 for vpn in pt.base}
        pmd_tables = {h >> 9 for h in pte_tables} | {h >> 9 for h in pt.huge}
        pud_tables = {h >> 9 for h in pmd_tables}
        return len(pte_tables) + len(pmd_tables) + len(pud_tables) + 1

    def replica_pt_pages_per_node(self) -> int:
        """Page-table pages each node holds in replicated-PT mode."""
        if not self.replicated_pt:
            return 0
        return sum(self.pt_pages(proc) for proc in self.kernel.processes)

    def replica_overhead_pages(self) -> int:
        """Extra memory replication costs beyond a single page table."""
        return (self.nodes - 1) * self.replica_pt_pages_per_node()

    # ------------------------------------------------------------------ #
    # sampling: hint faults + candidate harvest                          #
    # ------------------------------------------------------------------ #

    def on_sample(self, proc: "Process") -> None:
        """Piggy-back on the access-bit sample: install NUMA hint faults.

        Runs right after the kernel refreshed ``last_coverage`` for every
        region.  Remote regions that were accessed charge hint faults and
        become migration candidates ranked by coverage EMA.
        """
        if not self.balancing:
            return
        kernel = self.kernel
        pid = proc.pid
        self._candidates = {
            key: ema for key, ema in self._candidates.items() if key[0] != pid
        }
        hints = 0
        if kernel.vectorized:
            hints = self._harvest_vectorized(proc)
        else:
            hints = self._harvest_scalar(proc)
        if hints:
            cost = hints * kernel.costs.numa_hint_fault_us
            kernel.stats.numa_hint_faults += hints
            proc.fault_time_epoch_us += cost
            if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
                tp.emit(trace.TraceKind.NUMA_HINT, proc.name, cost,
                        detail=f"faults={hints}")

    def _harvest_scalar(self, proc: "Process") -> int:
        """Reference candidate harvest: one region_node call per region."""
        pid = proc.pid
        hints = 0
        for hvpn in sorted(proc.regions):
            region = proc.regions[hvpn]
            if region.resident == 0 or region.last_coverage == 0:
                continue
            policy = self.resolve_policy(
                proc, proc.vmas.try_find(hvpn << 9))
            if policy is not None and policy.strict:
                continue  # bound memory must not be balanced away
            node = self.region_node(proc, hvpn)
            if node is None or node == proc.home_node:
                continue
            hints += region.last_coverage
            self._candidates[(pid, hvpn)] = region.coverage_ema
        return hints

    def _harvest_vectorized(self, proc: "Process") -> int:
        """Vectorized harvest: mask prefilter + bulk node gather.

        Equivalent to :meth:`_harvest_scalar` — the active/remote masks
        and the ascending-hvpn walk reproduce the same candidate set, the
        same EMA values, and the same hint count; only the strict-policy
        check (a VMA-tree probe) stays per-region, and only for regions
        that survived the masks.
        """
        pid = proc.pid
        table = proc.regions
        if not len(table):
            return 0
        hvpns = table.hvpn_arr()
        mask = (table.resident_arr() > 0) & (table.last_coverage_arr() > 0)
        if not mask.any():
            return 0
        sel = hvpns[mask]
        order = np.argsort(sel, kind="stable")
        sel = sel[order]
        emas = table.coverage_ema_arr()[mask][order]
        lasts = table.last_coverage_arr()[mask][order]
        nodes = self.region_nodes_arr(proc, sel)
        remote = (nodes >= 0) & (nodes != proc.home_node)
        hints = 0
        for hvpn, last, ema in zip(sel[remote].tolist(),
                                   lasts[remote].tolist(),
                                   emas[remote].tolist()):
            policy = self.resolve_policy(
                proc, proc.vmas.try_find(hvpn << 9))
            if policy is not None and policy.strict:
                continue  # bound memory must not be balanced away
            hints += last
            self._candidates[(pid, hvpn)] = ema
        return hints

    # ------------------------------------------------------------------ #
    # the epoch tick: remote-walk emission + knumad migration            #
    # ------------------------------------------------------------------ #

    def on_epoch(self) -> None:
        """Per-epoch NUMA work: account remote walks, run knumad."""
        kernel = self.kernel
        if self.remote_walk_cycles_epoch > 0.0:
            span_us = self.remote_walk_cycles_epoch / CYCLES_PER_USEC
            self.remote_walk_cycles_total += self.remote_walk_cycles_epoch
            self.remote_walk_cycles_epoch = 0.0
            if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
                tp.emit(trace.TraceKind.NUMA_REMOTE_WALK, "mmu", span_us)
        if self.balancing:
            self._run_knumad()

    def _run_knumad(self) -> None:
        """Migrate the hottest misplaced regions within the page budget."""
        self.knumad.refill()
        if not self._candidates:
            return
        kernel = self.kernel
        by_pid = {proc.pid: proc for proc in kernel.processes}
        moved_pages = 0
        moved_regions = 0
        cost = 0.0
        out_of_budget = False
        ordered = sorted(self._candidates.items(),
                         key=lambda item: (-item[1], item[0]))
        for (pid, hvpn), _ema in ordered:
            proc = by_pid.get(pid)
            if proc is None:
                self._candidates.pop((pid, hvpn), None)
                continue
            pages, region_cost, exhausted = self._migrate_region(proc, hvpn)
            moved_pages += pages
            cost += region_cost
            if pages or not exhausted:
                # fully handled (moved, or no longer misplaced)
                self._candidates.pop((pid, hvpn), None)
                if pages:
                    moved_regions += 1
            if exhausted:
                out_of_budget = True
                break
        if cost:
            kernel.stats.knumad_cpu_us += cost
        if moved_pages and trace.enabled and \
                (tp := kernel.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.KTHREAD_EPOCH, "knumad", cost,
                    detail=f"regions={moved_regions} pages={moved_pages}"
                           f"{' budget' if out_of_budget else ''}")

    def _decide(self, proc: "Process", hvpn: int, outcome: str, reason: str,
                stage: int, inputs: dict | None = None) -> None:
        """Record one knumad migration-candidacy decision when audited."""
        if audit.enabled and (al := self.kernel.audit) is not None \
                and al.enabled:
            al.decide("knumad", proc.name, proc.pid, hvpn, outcome, reason,
                      stage=stage, inputs=inputs)

    def _migrate_region(self, proc: "Process", hvpn: int) -> tuple[int, float, bool]:
        """Move one region toward the owner's home node.

        Returns ``(pages_moved, cpu_us, budget_exhausted)``.
        """
        kernel = self.kernel
        target = proc.home_node
        pt = proc.page_table
        region = proc.regions.get(hvpn)
        if region is None or region.resident == 0:
            self._decide(proc, hvpn, "reject", "region_gone", stage=1,
                         inputs={"target_node": target})
            return 0, 0.0, False
        cost = 0.0
        if hvpn in pt.huge:
            if self.node_of(pt.huge[hvpn].frame) == target:
                self._decide(proc, hvpn, "reject", "already_local", stage=1,
                             inputs={"target_node": target})
                return 0, 0.0, False
            if not self.knumad.take(PAGES_PER_HUGE):
                self._decide(proc, hvpn, "reject", "budget_exhausted",
                             stage=2,
                             inputs={"budget_left": self.knumad.available,
                                     "need": PAGES_PER_HUGE})
                return 0, cost, True
            moved, huge_cost = self._migrate_huge(proc, hvpn, target)
            if moved:
                return PAGES_PER_HUGE, huge_cost, False
            if self.allocator.zone(target).free_pages < PAGES_PER_HUGE:
                # The target node cannot host the region even page-wise;
                # splitting would sacrifice the huge mapping for nothing.
                self._decide(
                    proc, hvpn, "reject", "no_target_memory", stage=3,
                    inputs={"target_node": target,
                            "free_pages":
                                self.allocator.zone(target).free_pages})
                return 0, cost, False
            # No contiguous block on the target: split, then migrate
            # the base pages below (demote-on-split-migration).
            cost += kernel.demote_region(proc, hvpn)
            kernel.stats.numa_split_migrations += 1
        return self._migrate_base_pages(proc, hvpn, target, cost)

    def _migrate_huge(self, proc: "Process", hvpn: int,
                      target: int) -> tuple[bool, float]:
        """Whole-region migration via one order-9 allocation on ``target``."""
        kernel = self.kernel
        frames = kernel.frames
        pt = proc.page_table
        old = pt.huge[hvpn].frame
        got = self.allocator.try_alloc(
            9, prefer_zero=False, owner=proc.pid, node=target, strict=True)
        if got is None:
            return False, 0.0
        new = got[0]
        frames.first_nonzero[new:new + PAGES_PER_HUGE] = \
            frames.first_nonzero[old:old + PAGES_PER_HUGE]
        frames.content_tag[new:new + PAGES_PER_HUGE] = \
            frames.content_tag[old:old + PAGES_PER_HUGE]
        if audit.enabled and (al := kernel.audit) is not None and al.enabled:
            led = al.ledger
            led.copy_provenance(old, new, PAGES_PER_HUGE)
            led.record(new, PAGES_PER_HUGE, audit.EV_MIGRATED, target)
            led.set_site(new, PAGES_PER_HUGE, audit.SITE_NUMA)
        pt.huge[hvpn].frame = new
        pt.sync_huge(hvpn, pt.huge[hvpn])
        kernel._rmap_huge.pop(old, None)
        kernel.rmap_add_huge(new, proc, hvpn)
        kernel.buddy.free(old, 9)
        cost = (PAGES_PER_HUGE * kernel.costs.numa_migrate_page_us
                + kernel.costs.remap_us)
        kernel.stats.numa_pages_migrated += PAGES_PER_HUGE
        kernel.stats.numa_huge_migrated += 1
        self._emit_migrate(proc, hvpn, PAGES_PER_HUGE, target, cost, "huge")
        return True, cost

    def _migrate_base_pages(self, proc: "Process", hvpn: int, target: int,
                            cost: float) -> tuple[int, float, bool]:
        """Page-wise migration of a base-mapped region toward ``target``."""
        kernel = self.kernel
        frames = kernel.frames
        moved = 0
        # Bulk discovery off the mirror: only pages resident on the wrong
        # node enter the migration loop (migrating one page never changes
        # another page's frame or privacy, so the snapshot stays valid).
        mframes, mpriv = proc.page_table.region_mirror(hvpn)
        offs = np.nonzero(mpriv)[0]
        olds = mframes[offs]
        wrong = self.allocator.node_of_arr(olds) != target
        if not wrong.any():
            self._decide(proc, hvpn, "reject", "already_local", stage=1,
                         inputs={"target_node": target})
            return moved, cost, False
        for old in olds[wrong].tolist():
            if not self.knumad.take(1):
                self._decide(proc, hvpn, "reject", "budget_exhausted",
                             stage=2,
                             inputs={"budget_left": self.knumad.available,
                                     "moved": moved})
                return moved, cost, True
            got = self.allocator.try_alloc(
                0, prefer_zero=False, owner=proc.pid, node=target, strict=True)
            if got is None:
                # Target node is out of memory; leave the page remote.
                self._decide(proc, hvpn, "reject", "no_target_memory",
                             stage=3,
                             inputs={"target_node": target, "moved": moved})
                return moved, cost, False
            new = got[0]
            if not kernel._migrate_frame(old, new):  # pragma: no cover - stale rmap
                kernel.buddy.free(new, 0)
                continue
            frames.first_nonzero[new] = frames.first_nonzero[old]
            frames.content_tag[new] = frames.content_tag[old]
            if audit.enabled and (al := kernel.audit) is not None \
                    and al.enabled:
                led = al.ledger
                led.copy_provenance(old, new)
                led.record(new, 1, audit.EV_MIGRATED, target)
                led.set_site(new, 1, audit.SITE_NUMA)
            kernel.buddy.free(old, 0)
            moved += 1
        if moved:
            cost += moved * kernel.costs.numa_migrate_page_us
            kernel.stats.numa_pages_migrated += moved
            self._emit_migrate(proc, hvpn, moved, target, cost, "base")
        return moved, cost, False

    def _emit_migrate(self, proc: "Process", hvpn: int, pages: int,
                      target: int, cost: float, how: str) -> None:
        kernel = self.kernel
        self._decide(proc, hvpn, "accept", f"migrated_{how}", stage=4,
                     inputs={"target_node": target, "pages": pages})
        if trace.enabled and (tp := kernel.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.NUMA_MIGRATE, proc.name, cost, hvpn,
                    detail=f"{how} pages={pages} -> node{target}")
