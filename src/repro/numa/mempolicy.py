"""NUMA memory placement policies (``set_mempolicy``/``mbind`` analogue).

Four policies, matching Linux's:

* **local** (first-touch) — allocate on the faulting process's home
  node, falling back to the nearest node with free memory;
* **interleave** — stripe allocations across all nodes at huge-region
  (2 MiB) granularity, by virtual address, so huge-page promotion never
  has to gather frames from several nodes for one region;
* **preferred** — like local but with an explicit target node;
* **bind** — allocate *only* on the given node; when it runs dry the
  fault path goes through reclaim/OOM rather than spilling remotely.

Interleaving is address-based (``hvpn % nodes``) rather than counter
based: it needs no mutable state, so allocation order cannot perturb
placement and sweep runs stay bit-reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemPolicyKind(enum.Enum):
    """Placement policy kinds (Linux MPOL_* analogues)."""

    LOCAL = "local"
    INTERLEAVE = "interleave"
    PREFERRED = "preferred"
    BIND = "bind"


@dataclass(frozen=True)
class MemPolicy:
    """A placement policy, optionally pinned to one node.

    ``node`` is required for ``PREFERRED`` and ``BIND`` and ignored for
    the other kinds.
    """

    kind: MemPolicyKind = MemPolicyKind.LOCAL
    node: int | None = None

    def __post_init__(self) -> None:
        from repro.errors import ConfigError

        needs_node = self.kind in (MemPolicyKind.PREFERRED, MemPolicyKind.BIND)
        if needs_node and self.node is None:
            raise ConfigError(
                f"mempolicy {self.kind.value!r} needs an explicit node")

    def target_node(self, home_node: int, hvpn: int, nodes: int) -> int:
        """The node this policy places huge region ``hvpn`` on."""
        if self.kind is MemPolicyKind.INTERLEAVE:
            return hvpn % nodes
        if self.kind in (MemPolicyKind.PREFERRED, MemPolicyKind.BIND):
            assert self.node is not None
            return self.node
        return home_node

    @property
    def strict(self) -> bool:
        """Whether allocation may NOT spill to other nodes (bind only)."""
        return self.kind is MemPolicyKind.BIND
