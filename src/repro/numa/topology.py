"""NUMA topology: node count, per-node frame ranges, distance matrix.

Distances follow the Linux/ACPI SLIT convention: a node is 10 from
itself and 20 from a one-hop neighbour, so ``distance[a][b] /
distance[a][a]`` is the relative latency multiplier of a remote access.
The default matrix is fully symmetric (every remote node one hop away),
which matches the two- and four-socket glueless platforms the paper and
Mitosis evaluate on; an explicit matrix models anything else.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.units import MAX_ORDER

#: SLIT distance of a node to itself.
LOCAL_DISTANCE = 10
#: SLIT distance of a one-hop remote node.
REMOTE_DISTANCE = 20


@dataclass(frozen=True)
class NumaTopology:
    """Immutable description of the machine's memory nodes.

    ``ranges`` optionally pins each node's ``[start, end)`` frame range;
    when omitted, physical memory is split into ``nodes`` near-equal
    contiguous ranges aligned to the buddy allocator's largest block so
    zone seeding stays maximal.  ``distance`` optionally replaces the
    default all-ones-hop SLIT matrix.
    """

    nodes: int = 1
    ranges: tuple[tuple[int, int], ...] | None = None
    distance: tuple[tuple[int, ...], ...] | None = None

    def validate(self, num_frames: int) -> None:
        """Reject inconsistent topologies with actionable messages."""
        from repro.errors import ConfigError

        if self.nodes < 1:
            raise ConfigError(
                f"topology needs at least 1 node, got nodes={self.nodes}")
        if num_frames < self.nodes:
            raise ConfigError(
                f"{num_frames} frames cannot be split across "
                f"{self.nodes} nodes — shrink the node count or grow memory")
        if self.ranges is not None:
            if len(self.ranges) != self.nodes:
                raise ConfigError(
                    f"topology declares {self.nodes} nodes but "
                    f"{len(self.ranges)} frame ranges — one range per node")
            cursor = 0
            for node, (start, end) in enumerate(self.ranges):
                if start != cursor:
                    raise ConfigError(
                        f"node {node} frame range starts at {start}, expected "
                        f"{cursor} — ranges must partition [0, {num_frames}) "
                        "contiguously in node order")
                if end <= start:
                    raise ConfigError(
                        f"node {node} frame range [{start}, {end}) is empty "
                        "— every node needs at least one frame")
                cursor = end
            if cursor != num_frames:
                raise ConfigError(
                    f"node ranges cover [0, {cursor}) but memory has "
                    f"{num_frames} frames — ranges must partition all of it")
        if self.distance is not None:
            if len(self.distance) != self.nodes or any(
                    len(row) != self.nodes for row in self.distance):
                raise ConfigError(
                    f"distance matrix must be {self.nodes}x{self.nodes}, got "
                    f"{len(self.distance)} rows of lengths "
                    f"{[len(r) for r in self.distance]}")
            for a in range(self.nodes):
                for b in range(self.nodes):
                    if self.distance[a][b] != self.distance[b][a]:
                        raise ConfigError(
                            f"distance matrix is asymmetric: "
                            f"d[{a}][{b}]={self.distance[a][b]} but "
                            f"d[{b}][{a}]={self.distance[b][a]}")
                    if a == b and self.distance[a][b] <= 0:
                        raise ConfigError(
                            f"local distance d[{a}][{a}] must be positive, "
                            f"got {self.distance[a][b]}")
                    if a != b and self.distance[a][b] < self.distance[a][a]:
                        raise ConfigError(
                            f"remote distance d[{a}][{b}]="
                            f"{self.distance[a][b]} is below local distance "
                            f"d[{a}][{a}]={self.distance[a][a]}")

    def node_ranges(self, num_frames: int) -> list[tuple[int, int]]:
        """Each node's ``[start, end)`` frame range.

        The default split aligns interior boundaries down to the largest
        buddy block (``2**MAX_ORDER`` frames) so every zone seeds into
        maximal blocks; the last node absorbs the remainder.
        """
        if self.ranges is not None:
            return [tuple(r) for r in self.ranges]
        # Align to the largest buddy block that still fits in every
        # node's share, so tiny memories degrade to equal splits instead
        # of starving the first nodes.
        share = num_frames // self.nodes
        align = 1 << min(MAX_ORDER, max(0, share.bit_length() - 1))
        bounds = [0]
        for node in range(1, self.nodes):
            cut = (num_frames * node // self.nodes) // align * align
            bounds.append(max(cut, bounds[-1] + 1))
        bounds.append(num_frames)
        return [(bounds[i], bounds[i + 1]) for i in range(self.nodes)]

    def distance_matrix(self) -> list[list[int]]:
        """The SLIT matrix (default: local 10, every remote node 20)."""
        if self.distance is not None:
            return [list(row) for row in self.distance]
        return [
            [LOCAL_DISTANCE if a == b else REMOTE_DISTANCE
             for b in range(self.nodes)]
            for a in range(self.nodes)
        ]

    def remote_penalty(self, src: int, dst: int) -> float:
        """Latency multiplier of ``src`` accessing ``dst``'s memory."""
        matrix = self.distance_matrix()
        return matrix[src][dst] / matrix[src][src]


class NodeMap:
    """O(log n) frame → node lookup over a topology's frame ranges."""

    def __init__(self, topology: NumaTopology, num_frames: int):
        self.topology = topology
        self.ranges = topology.node_ranges(num_frames)
        self._starts = [start for start, _ in self.ranges]
        self._starts_arr = np.asarray(self._starts, dtype=np.int64)

    def node_of(self, frame: int) -> int:
        """The node whose frame range contains ``frame``."""
        return bisect.bisect_right(self._starts, frame) - 1

    def node_of_arr(self, frames: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_of` over an array of frame numbers."""
        return np.searchsorted(self._starts_arr, frames, side="right") - 1
