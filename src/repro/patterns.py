"""Memory access patterns.

The paper's central observation about measurement (§2.4) is that MMU
overhead depends on *how* memory is accessed, not just how much:
sequential patterns let the prefetcher hide TLB-miss latency and reuse
each translation many times, while random patterns thrash the TLB.  Every
workload region in this simulator declares one of these patterns and the
hardware model prices it accordingly.
"""

from __future__ import annotations

import enum


class Pattern(enum.Enum):
    """Qualitative access pattern of a memory region."""

    RANDOM = "random"
    STRIDED = "strided"
    SEQUENTIAL = "sequential"
