"""Performance harness for the simulator's hot paths.

Two entry points, both reachable through ``python -m repro bench``:

* :func:`touch_benchmark` — the touch-throughput microbenchmark: a dense
  fault-heavy workload (touch, sparse free, re-touch) run once through
  the batched fault fast path and once with ``kernel.batched_faults``
  forced off.  Reporting both gives a machine-independent speedup ratio
  (used by CI) next to the absolute pages/second (used for baselines).
* :func:`profile_target` — a cProfile report over a paper benchmark's
  experiment function, bypassing pytest-benchmark (whose timed block
  installs its own profiler hook and would hide everything).

The workload here is self-contained so the numbers do not move when the
paper benchmarks are retuned.
"""

from __future__ import annotations

import cProfile
import gc
import io
import pstats
import statistics
import time

from repro import audit, heat, trace
from repro.experiments import POLICIES, Scale, make_kernel, reset_sim_state
from repro.metrics import telemetry
from repro.units import GB, MB, PAGES_PER_HUGE, SEC
from repro.workloads.base import (
    AccessProfile,
    ContentSpec,
    FreeOp,
    Phase,
    RegionAccessSpec,
    TouchOp,
    Workload,
)

#: pages in the microbenchmark's touch region (256 MiB effective).
TOUCH_PAGES = 256 * MB // 4096


class _TouchBench(Workload):
    """Dense touch / free / re-touch — the fault-dominated shape.

    The free is dense (the whole region) so the re-touch allocates from
    large coalesced blocks; a sparse free shreds physical memory into
    ~3-page extents and measures the fragmented path for *both* modes
    instead of fault throughput.  Sparse frees are covered by the
    scalar-vs-batched equivalence tests.
    """

    name = "touch-bench"

    def __init__(self, npages: int):
        self.npages = npages

    def build_phases(self) -> list[Phase]:
        content = ContentSpec(first_nonzero=9)
        return [
            Phase("grow", ops=[TouchOp("heap", npages=self.npages, content=content)]),
            Phase("shrink", ops=[FreeOp("heap")]),
            Phase("regrow", ops=[TouchOp("heap", npages=self.npages, content=content)]),
        ]

    def mmap_bytes(self) -> int:
        return self.npages * 4096


def _run_once(policy: str, npages: int, batched: bool, trace_mode: str = "off") -> float:
    """One timed run; returns wall seconds.

    ``trace_mode`` selects the observability state under test: ``"off"``
    (no tracer, sampler, audit or heat monitor — the production default),
    ``"disabled"`` (tracer, telemetry sampler, decision audit *and*
    spatial heat monitor attached, module flags armed, but every
    instance gate off so each
    guard is evaluated and rejected — the state the <5 % overhead gate
    measures) or ``"on"`` (full emission, sampling and auditing).
    """
    reset_sim_state()
    # make_kernel takes the *full-scale* size; 2x headroom over the region
    # keeps the pressure paths (reclaim/swap) out of the measurement.
    scale = Scale(1 / 128)
    kernel = make_kernel(2 * npages * 4096 / scale.factor, policy, scale)
    kernel.batched_faults = batched
    if trace_mode != "off":
        tracer = trace.attach(kernel)
        tracer.enabled = trace_mode == "on"
        sampler = telemetry.attach(kernel)
        sampler.enabled = trace_mode == "on"
        log = audit.attach(kernel)
        log.enabled = trace_mode == "on"
        monitor = heat.attach(kernel)
        monitor.enabled = trace_mode == "on"
    bench = _TouchBench(npages)
    run = kernel.spawn(bench)
    kernel.mmap(run.proc, bench.mmap_bytes(), "heap")
    try:
        t0 = time.perf_counter()
        kernel.run(max_epochs=20000)
        elapsed = time.perf_counter() - t0
    finally:
        if trace_mode != "off":
            trace.detach(kernel)
            telemetry.detach(kernel)
            audit.detach(kernel)
            heat.detach(kernel)
    if not run.finished:
        raise RuntimeError("touch benchmark did not finish within the epoch cap")
    return elapsed


def touch_benchmark(
    policy: str = "hawkeye-g", npages: int = TOUCH_PAGES, repeats: int = 3
) -> dict:
    """Touch-throughput microbenchmark, batched vs forced-scalar.

    Returns a JSON-friendly dict with the best-of-``repeats`` wall time
    for each mode, the derived pages/second, and the batched/scalar
    speedup ratio.  A third timed configuration — a tracer *and* a
    telemetry sampler attached but with emission/sampling disabled
    (``trace_mode="disabled"``) — yields ``trace_overhead``, the
    fractional cost of the *armed-but-silent* observability guards
    relative to the bare run; the zero-cost-when-disabled contract
    gates this below 5 % for tracepoints and registry alike.
    """
    total_pages = 2 * npages  # grow + regrow both touch the full region
    scalar_s = min(_run_once(policy, npages, batched=False) for _ in range(repeats))
    # The no-tracer vs disabled-tracer comparison feeds a tight (<5 %)
    # ratio gate, so it needs a far lower-variance estimate than the
    # speedup ratio does.  Three defenses against timing noise:
    # * GC off during each timed pair (collections over the kernel's
    #   large object graph otherwise land in arbitrary runs);
    # * the ratio is computed *per adjacent pair*, so slow drift in
    #   machine state cancels within each sample;
    # * the order within a pair alternates — the first run after a
    #   gc.collect() is systematically slower (allocator/cache warm-up),
    #   and alternation makes that bias symmetric so the median of an
    #   even number of pairs cancels it.
    batched_times, disabled_times, overhead_ratios = [], [], []
    for i in range(2 * max(repeats, 5)):
        gc.collect()
        gc.disable()
        try:
            if i % 2 == 0:
                b = _run_once(policy, npages, batched=True)
                d = _run_once(policy, npages, batched=True, trace_mode="disabled")
            else:
                d = _run_once(policy, npages, batched=True, trace_mode="disabled")
                b = _run_once(policy, npages, batched=True)
        finally:
            gc.enable()
        batched_times.append(b)
        disabled_times.append(d)
        overhead_ratios.append(d / b - 1.0)
    batched_s = min(batched_times)
    disabled_s = min(disabled_times)
    return {
        "policy": policy,
        "pages": total_pages,
        "batched_s": round(batched_s, 4),
        "scalar_s": round(scalar_s, 4),
        "trace_disabled_s": round(disabled_s, 4),
        "batched_pages_per_s": round(total_pages / batched_s),
        "scalar_pages_per_s": round(total_pages / scalar_s),
        "speedup": round(scalar_s / batched_s, 2),
        "trace_overhead": round(statistics.median(overhead_ratios), 4),
    }


def format_touch_report(result: dict) -> str:
    """Human-readable rendering of a :func:`touch_benchmark` result."""
    return "\n".join([
        f"touch throughput ({result['policy']}, {result['pages']} pages touched)",
        f"  batched: {result['batched_s']:.3f}s"
        f"  ({result['batched_pages_per_s']:,} pages/s)",
        f"  scalar:  {result['scalar_s']:.3f}s"
        f"  ({result['scalar_pages_per_s']:,} pages/s)",
        f"  speedup: {result['speedup']:.2f}x",
        f"  tracing disabled-overhead: {result['trace_overhead']:+.1%}"
        f"  ({result['trace_disabled_s']:.3f}s with silent tracer)",
    ])


#: ceiling on the disabled-tracing overhead ratio (the tentpole's
#: zero-cost-when-disabled contract): an armed-but-silent tracer must
#: cost less than this fraction over the no-tracer run.
TRACE_OVERHEAD_CEILING = 0.05


def check_regression(result: dict, baseline: dict, tolerance: float = 0.25) -> list[str]:
    """Compare a fresh result against a checked-in baseline.

    Returns a list of failure messages (empty when within tolerance).
    The absolute-throughput check only fires on machines comparable to
    the baseline's; the batched/scalar *ratio* check is machine-neutral
    and is the one CI relies on.  The disabled-tracing overhead check is
    also machine-neutral (same-machine A/B within one result) and fails
    when the armed-but-silent tracepoint guards cost >= 5 %.
    """
    failures = []
    floor = baseline["speedup"] * (1 - tolerance)
    if result["speedup"] < floor:
        failures.append(
            f"batched/scalar speedup {result['speedup']:.2f}x fell below "
            f"{floor:.2f}x (baseline {baseline['speedup']:.2f}x - {tolerance:.0%})"
        )
    overhead = result.get("trace_overhead")
    if overhead is not None and overhead >= TRACE_OVERHEAD_CEILING:
        failures.append(
            f"disabled-tracing overhead {overhead:+.1%} reached the "
            f"{TRACE_OVERHEAD_CEILING:.0%} ceiling (tracepoints must be "
            "near-free when not emitting)"
        )
    return failures


# ---------------------------------------------------------------------- #
# epoch-engine throughput                                                 #
# ---------------------------------------------------------------------- #

#: huge regions the epoch microbenchmark keeps under sampling.
EPOCH_REGIONS = 2048
#: sampled epochs timed per measurement.
EPOCH_EPOCHS = 200
#: hard floor on the vectorized/scalar epoch speedup (machine-neutral).
EPOCH_SPEEDUP_FLOOR = 3.0


class _EpochBench(Workload):
    """Sparse grow + long serve — the sampler/ranker-dominated shape.

    ``stride_pages=512`` faults exactly one base page per huge region, so
    thousands of regions become access-bit-scan, EMA and access_map work
    without the fault cost of populating them densely.  The serve phase's
    profile keeps half the regions hot at high coverage and a quarter at
    low coverage, so every sample exercises EMA updates, idle marking and
    cross-bucket access_map churn.
    """

    name = "epoch-bench"

    def __init__(self, regions: int, serve_us: float):
        self.regions = regions
        self.serve_us = serve_us

    def build_phases(self) -> list[Phase]:
        """One sparse grow op, then a profiled serve phase."""
        profile = AccessProfile(specs=[
            RegionAccessSpec("heap", coverage=180, hot_start=0.0, hot_len=0.5),
            RegionAccessSpec("heap", coverage=40, hot_start=0.5, hot_len=0.25),
        ])
        return [
            Phase("grow", ops=[
                TouchOp("heap", npages=self.regions * PAGES_PER_HUGE,
                        stride_pages=PAGES_PER_HUGE),
            ]),
            Phase("serve", duration_us=self.serve_us, profile=profile),
        ]

    def mmap_bytes(self) -> int:
        """Virtual span: one huge region per sampled region."""
        return self.regions * PAGES_PER_HUGE * 4096


def _epoch_setup(policy: str, regions: int, serve_epochs: int,
                 vectorized: bool):
    """Build a kernel and drive the bench workload to its serve phase.

    ``epoch_us`` is set to the 30 s sampling interval so *every* epoch
    runs the access-bit sampler — the serve phase then measures the epoch
    engine, not idle wall-time bookkeeping.
    """
    reset_sim_state()
    scale = Scale(1 / 128)
    epoch_us = 30 * SEC
    kernel = make_kernel(
        2 * regions * PAGES_PER_HUGE * 4096 / scale.factor,
        policy, scale, epoch_us=epoch_us)
    kernel.vectorized = vectorized
    bench = _EpochBench(regions, (serve_epochs + 4) * epoch_us)
    run = kernel.spawn(bench)
    kernel.mmap(run.proc, bench.mmap_bytes(), "heap")
    guard = 0
    while not run.finished and run.phase_name() != "serve":
        kernel.run_epochs(1)
        guard += 1
        if guard > 10_000:
            raise RuntimeError("epoch benchmark never reached its serve phase")
    return kernel, run


def _run_epoch_once(policy: str, regions: int, epochs: int, vectorized: bool,
                    trace_mode: str = "off") -> float:
    """One timed serve-phase measurement; returns wall seconds.

    ``trace_mode`` mirrors :func:`_run_once`: ``"off"`` (bare),
    ``"disabled"`` (tracer, sampler, audit and heat monitor attached
    but gated off) or ``"on"``.
    """
    kernel, _run = _epoch_setup(policy, regions, epochs, vectorized)
    if trace_mode != "off":
        tracer = trace.attach(kernel)
        tracer.enabled = trace_mode == "on"
        sampler = telemetry.attach(kernel)
        sampler.enabled = trace_mode == "on"
        log = audit.attach(kernel)
        log.enabled = trace_mode == "on"
        monitor = heat.attach(kernel)
        monitor.enabled = trace_mode == "on"
    try:
        t0 = time.perf_counter()
        kernel.run_epochs(epochs)
        return time.perf_counter() - t0
    finally:
        if trace_mode != "off":
            trace.detach(kernel)
            telemetry.detach(kernel)
            audit.detach(kernel)
            heat.detach(kernel)


def _scan_speedup(policy: str, regions: int, iters: int = 30) -> float:
    """Scalar/vectorized ratio of the access-bit scan pass in isolation.

    Times repeated ``_sample_access_bits`` calls (which include the
    policy's on_sample ranking) on one prepared kernel, per mode, after a
    warm-up call each.
    """
    kernel, _run = _epoch_setup(policy, regions, serve_epochs=4,
                                vectorized=True)
    timings = {}
    for vectorized in (False, True):
        kernel.vectorized = vectorized
        kernel._sample_access_bits()  # warm caches / allocator state
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            for _ in range(iters):
                kernel._sample_access_bits()
            timings[vectorized] = time.perf_counter() - t0
        finally:
            gc.enable()
    return timings[False] / timings[True]


def epoch_benchmark(
    policy: str = "hawkeye-4kb", regions: int = EPOCH_REGIONS,
    epochs: int = EPOCH_EPOCHS, repeats: int = 3,
) -> dict:
    """Epoch-engine throughput, vectorized vs forced-scalar.

    The default policy is HawkEye with huge faults off, which keeps every
    region base-mapped: the sampler, EMA ranking and access_map churn
    stay maximal instead of collapsing once regions are promoted.
    Returns a JSON-friendly dict with best-of-``repeats`` wall times, the
    derived epochs/second, the vectorized/scalar speedup, the isolated
    access-scan speedup, and the disabled-tracing overhead measured with
    the same GC-paired A/B scheme as :func:`touch_benchmark`.
    """
    scalar_s = min(
        _run_epoch_once(policy, regions, epochs, vectorized=False)
        for _ in range(repeats))
    vector_times, overhead_ratios = [], []
    for i in range(2 * max(repeats, 4)):
        gc.collect()
        gc.disable()
        try:
            if i % 2 == 0:
                v = _run_epoch_once(policy, regions, epochs, vectorized=True)
                d = _run_epoch_once(policy, regions, epochs, vectorized=True,
                                    trace_mode="disabled")
            else:
                d = _run_epoch_once(policy, regions, epochs, vectorized=True,
                                    trace_mode="disabled")
                v = _run_epoch_once(policy, regions, epochs, vectorized=True)
        finally:
            gc.enable()
        vector_times.append(v)
        overhead_ratios.append(d / v - 1.0)
    vectorized_s = min(vector_times)
    return {
        "policy": policy,
        "regions": regions,
        "epochs": epochs,
        "vectorized_s": round(vectorized_s, 4),
        "scalar_s": round(scalar_s, 4),
        "vectorized_epochs_per_s": round(epochs / vectorized_s),
        "scalar_epochs_per_s": round(epochs / scalar_s),
        "speedup": round(scalar_s / vectorized_s, 2),
        "scan_speedup": round(_scan_speedup(policy, regions), 2),
        "trace_overhead": round(statistics.median(overhead_ratios), 4),
    }


def format_epoch_report(result: dict) -> str:
    """Human-readable rendering of an :func:`epoch_benchmark` result."""
    return "\n".join([
        f"epoch throughput ({result['policy']}, {result['regions']} regions"
        f" x {result['epochs']} sampled epochs)",
        f"  vectorized: {result['vectorized_s']:.3f}s"
        f"  ({result['vectorized_epochs_per_s']:,} epochs/s)",
        f"  scalar:     {result['scalar_s']:.3f}s"
        f"  ({result['scalar_epochs_per_s']:,} epochs/s)",
        f"  speedup: {result['speedup']:.2f}x"
        f"  (access-scan alone: {result['scan_speedup']:.2f}x)",
        f"  tracing disabled-overhead: {result['trace_overhead']:+.1%}",
    ])


def check_epoch_regression(result: dict, baseline: dict,
                           tolerance: float = 0.25) -> list[str]:
    """Gate an :func:`epoch_benchmark` result against its baseline.

    Machine-neutral: the vectorized/scalar speedup must clear both the
    hard :data:`EPOCH_SPEEDUP_FLOOR` and the baseline ratio minus
    ``tolerance``, and the disabled-tracing overhead must stay under the
    same <5 % ceiling the touch benchmark enforces.
    """
    failures = []
    floor = max(EPOCH_SPEEDUP_FLOOR, baseline["speedup"] * (1 - tolerance))
    if result["speedup"] < floor:
        failures.append(
            f"vectorized/scalar epoch speedup {result['speedup']:.2f}x fell "
            f"below {floor:.2f}x (baseline {baseline['speedup']:.2f}x - "
            f"{tolerance:.0%}, hard floor {EPOCH_SPEEDUP_FLOOR:.0f}x)"
        )
    scan_floor = baseline.get("scan_speedup", 0.0) * (1 - tolerance)
    if result.get("scan_speedup", 0.0) < scan_floor:
        failures.append(
            f"access-scan speedup {result.get('scan_speedup', 0.0):.2f}x "
            f"fell below {scan_floor:.2f}x "
            f"(baseline {baseline['scan_speedup']:.2f}x - {tolerance:.0%})"
        )
    overhead = result.get("trace_overhead")
    if overhead is not None and overhead >= TRACE_OVERHEAD_CEILING:
        failures.append(
            f"disabled-tracing overhead {overhead:+.1%} reached the "
            f"{TRACE_OVERHEAD_CEILING:.0%} ceiling on the vectorized "
            "epoch path"
        )
    return failures


def profile_epoch(policy: str = "hawkeye-4kb", regions: int = EPOCH_REGIONS,
                  epochs: int = EPOCH_EPOCHS, top: int = 25) -> str:
    """Profile one vectorized run of the epoch microbenchmark."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    return profile_target(
        lambda: _run_epoch_once(policy, regions, epochs, vectorized=True),
        f"epoch microbenchmark ({policy})",
        top,
    )


def profile_target(run, label: str, top: int = 25) -> str:
    """cProfile ``run()`` and return the cumulative-time hot-path report.

    ``run`` must be a plain callable: pytest-benchmark's timed loop
    cannot be profiled (it installs its own ``sys`` profiler hook), so
    callers pass the underlying experiment function instead.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    run()
    profiler.disable()
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative")
    out.write(f"hot paths: {label}\n")
    stats.print_stats(top)
    return out.getvalue()


def profile_touch(policy: str = "hawkeye-g", npages: int = TOUCH_PAGES, top: int = 25) -> str:
    """Profile one batched run of the touch microbenchmark."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    return profile_target(
        lambda: _run_once(policy, npages, batched=True),
        f"touch microbenchmark ({policy})",
        top,
    )
