"""Huge-page management policies: the paper's baselines and their interface.

HawkEye itself lives in :mod:`repro.core`; it implements the same
:class:`HugePagePolicy` interface so experiments swap policies freely.
"""

from repro.policies.base import HugePagePolicy
from repro.policies.freebsd import FreeBSDPolicy
from repro.policies.ingens import IngensPolicy
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy

__all__ = [
    "HugePagePolicy",
    "Linux4KPolicy",
    "LinuxTHPPolicy",
    "FreeBSDPolicy",
    "IngensPolicy",
]
