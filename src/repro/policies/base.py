"""The huge-page policy interface.

A policy plugs into the kernel at exactly the points the paper's systems
differ on:

* **fault time** — what granularity to map (Linux THP: huge when possible;
  FreeBSD/Ingens: base only) and whether a specific reserved frame must be
  used (FreeBSD reservations);
* **every epoch** — background work: khugepaged-style promotion scans,
  Ingens's adaptive promotion, HawkEye's pre-zeroing and bloat recovery;
* **access-bit samples** — bookkeeping updates (Ingens idleness, HawkEye's
  ``access_map``);
* **memory pressure** — a last chance to free memory before the kernel
  declares OOM (HawkEye's bloat recovery hooks in here; the baselines do
  nothing, which is why they OOM in the paper's Figure 1 experiment).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.vm.process import Process
from repro.vm.vma import VMA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


class HugePagePolicy(abc.ABC):
    """Base class for all huge-page management policies."""

    name = "abstract"

    #: When False the fault path zeroes anonymous pages synchronously even
    #: if the frame content is already zero — real Linux does not track
    #: frame zero-ness, so every baseline pays the full zeroing cost.
    #: HawkEye sets this True and skips zeroing for pre-zeroed frames.
    trusts_zero_lists = False

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel

    # ------------------------------------------------------------------ #
    # fault-time hooks                                                    #
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def fault_size(self, proc: Process, vma: VMA, vpn: int) -> str:
        """``'huge'`` or ``'base'``: preferred mapping granularity."""

    def reserved_frame(self, proc: Process, vma: VMA, vpn: int) -> int | None:
        """Specific frame to map (FreeBSD reservations); None = buddy alloc."""
        return None

    def post_fault(self, proc: Process, vma: VMA, vpn: int, huge: bool) -> None:
        """Bookkeeping after a successful fault."""

    # ------------------------------------------------------------------ #
    # periodic hooks                                                      #
    # ------------------------------------------------------------------ #

    def on_epoch(self) -> None:
        """Run one epoch of background work (promotion threads etc.)."""

    def on_sample(self, proc: Process) -> None:
        """Access bits for ``proc`` were just sampled; update bookkeeping."""

    # ------------------------------------------------------------------ #
    # memory management hooks                                             #
    # ------------------------------------------------------------------ #

    def on_memory_pressure(self, pages_needed: int) -> int:
        """Free memory under pressure; returns pages freed (default: none)."""
        return 0

    def on_madvise_free(self, proc: Process, vpn: int, npages: int) -> None:
        """The process released ``[vpn, vpn+npages)`` back to the kernel."""

    def on_process_exit(self, proc: Process) -> None:
        """Drop any per-process bookkeeping."""

    # ------------------------------------------------------------------ #
    # introspection                                                       #
    # ------------------------------------------------------------------ #

    def estimated_overhead(self, proc: Process) -> float:
        """The policy's belief about ``proc``'s MMU overhead (0..1)."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"
