"""FreeBSD-style reservation-based huge page management.

After Navarro et al. (superpages, OSDI'02), as characterised in the
paper's §1: on the first fault in a huge-page-sized region, *reserve* a
contiguous order-9 physical block but map only base pages from it;
promote (a cheap in-place remap, since the frames are contiguous) only
once **all 512** base pages have been touched.  Under memory pressure,
partially-used reservations are broken and their untouched frames
returned to the allocator.

This manages contiguity frugally and produces no bloat, at the cost of
more page faults and higher MMU overheads for sparsely-touched regions —
the conservative end of the trade-off spectrum the paper explores.
"""

from __future__ import annotations

from repro.policies.base import HugePagePolicy
from repro.units import PAGES_PER_HUGE
from repro.vm.process import Process
from repro.vm.vma import VMA


class FreeBSDPolicy(HugePagePolicy):
    """Reservation-based promotion (promote at full population)."""

    name = "freebsd"

    def __init__(self, kernel):
        super().__init__(kernel)
        #: (pid, hvpn) -> start frame of the reserved order-9 block.
        self.reservations: dict[tuple[int, int], int] = {}
        self.reservations_broken = 0

    def fault_size(self, proc: Process, vma: VMA, vpn: int) -> str:
        """Always base pages; contiguity comes from reservations instead."""
        return "base"

    def reserved_frame(self, proc: Process, vma: VMA, vpn: int) -> int | None:
        """Reserve an order-9 block on first fault; map faults within it."""
        hvpn = vpn >> 9
        key = (proc.pid, hvpn)
        block = self.reservations.get(key)
        if block is None:
            region = proc.region(hvpn)
            if region.resident == 0 and vma.covers(hvpn << 9, PAGES_PER_HUGE):
                got = self.kernel.buddy.try_alloc(9, prefer_zero=False, owner=proc.pid)
                if got is not None:
                    block = got[0]
                    self.reservations[key] = block
        if block is None:
            return None
        return block + (vpn & (PAGES_PER_HUGE - 1))

    def post_fault(self, proc: Process, vma: VMA, vpn: int, huge: bool) -> None:
        """Promote in place once a reservation is fully populated."""
        hvpn = vpn >> 9
        key = (proc.pid, hvpn)
        if key not in self.reservations:
            return
        region = proc.region(hvpn)
        if region.resident >= PAGES_PER_HUGE:
            # Fully populated: in-place promotion (the frames are ours
            # and contiguous, so this is a remap, not a copy).
            del self.reservations[key]
            self.kernel.promote_region(proc, hvpn)

    def _break_reservation(self, key: tuple[int, int]) -> int:
        """Drop one reservation, freeing the frames no PTE maps yet."""
        block = self.reservations.pop(key)
        freed = 0
        for frame in range(block, block + PAGES_PER_HUGE):
            if frame not in self.kernel._rmap and self.kernel.frames.allocated[frame]:
                self.kernel.buddy.free(frame, 0)
                freed += 1
        self.reservations_broken += 1
        return freed

    def on_memory_pressure(self, pages_needed: int) -> int:
        """Break reservations until enough unused frames are returned."""
        freed = 0
        for key in list(self.reservations):
            freed += self._break_reservation(key)
            if freed >= pages_needed:
                break
        return freed

    def on_madvise_free(self, proc: Process, vpn: int, npages: int) -> None:
        """Freed pages break the covering reservations (holes cannot fill)."""
        for hvpn in range(vpn >> 9, (vpn + npages - 1 >> 9) + 1):
            if (proc.pid, hvpn) in self.reservations:
                self._break_reservation((proc.pid, hvpn))

    def on_process_exit(self, proc: Process) -> None:
        """Break all of the exiting process's reservations."""
        for key in [k for k in self.reservations if k[0] == proc.pid]:
            self._break_reservation(key)
