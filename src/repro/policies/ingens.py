"""Ingens (Kwon et al., OSDI'16) as characterised by the HawkEye paper.

The three Ingens mechanisms the paper compares against (§1, §2):

1. **Adaptive promotion threshold.**  Ingens watches the Free Memory
   Fragmentation Index.  Below 0.5 (plenty of contiguity) it promotes
   aggressively — any region with a faulted page is a candidate, like
   Linux.  Above 0.5 it promotes conservatively — only regions whose
   utilisation reaches the configured threshold (90 % in the paper's
   "Ingens-90%" configuration).

2. **Async-only promotion.**  Faults always map base pages; a background
   thread does all promotion.  This fixes huge-fault latency but, as the
   paper's Table 1 shows, forfeits the fewer-page-faults benefit of huge
   pages for sequential allocators.

3. **Proportional fairness with an idleness penalty.**  Memory contiguity
   is treated as a resource: the process with the smallest share of huge
   pages relative to its RSS is served first, and *idle* huge pages
   (untouched in the last access-bit sample) count extra against a
   process's share.

Within a process, candidates are promoted in ascending virtual-address
order, the sequential scan the paper's §2.3 criticises.
"""

from __future__ import annotations

from repro import audit
from repro.kernel.kthread import RateLimiter
from repro.policies.base import HugePagePolicy
from repro.units import PAGES_PER_HUGE
from repro.vm.process import Process
from repro.vm.vma import VMA


class IngensPolicy(HugePagePolicy):
    """Adaptive utilisation-threshold promotion with proportional fairness."""

    name = "ingens"

    def __init__(
        self,
        kernel,
        util_threshold: float = 0.9,
        fmfi_threshold: float = 0.5,
        promote_per_sec: float = 10.0,
        idle_penalty: float = 1.0,
        adaptive: bool = True,
    ):
        super().__init__(kernel)
        self.util_threshold = util_threshold
        self.fmfi_threshold = fmfi_threshold
        self.idle_penalty = idle_penalty
        #: when False, always use the conservative threshold (the paper's
        #: "Ingens-90%" configuration); when True, relax under low
        #: fragmentation (aggressive phase).
        self.adaptive = adaptive
        self._limiter = RateLimiter(promote_per_sec, kernel.config.epoch_us)
        self.name = f"ingens-{int(util_threshold * 100)}"
        #: idle huge pages demoted for same-page merging under pressure.
        self.demotions_for_ksm = 0
        self._merger = None

    def fault_size(self, proc: Process, vma: VMA, vpn: int) -> str:
        """Always base pages; promotion is asynchronous in Ingens."""
        return "base"  # promotion is always asynchronous in Ingens

    # ------------------------------------------------------------------ #
    # promotion thread                                                    #
    # ------------------------------------------------------------------ #

    def current_threshold(self) -> float:
        """Residency fraction a region needs before it may be promoted."""
        if self.adaptive and self.kernel.fmfi() < self.fmfi_threshold:
            return 1.0 / PAGES_PER_HUGE  # aggressive: any faulted page
        return self.util_threshold

    def promotion_metric(self, proc: Process) -> float:
        """Proportional share of contiguity, penalised for idle huge pages.

        Smaller metric = less served = promoted first."""
        huge = 0
        idle_huge = 0
        for region in proc.regions.values():
            if region.is_huge:
                huge += 1
                if region.idle:
                    idle_huge += 1
        rss = max(proc.rss_pages(), 1)
        return (huge + self.idle_penalty * idle_huge) * PAGES_PER_HUGE / rss

    def _candidates(self, proc: Process, threshold: float) -> list[int]:
        # Regions demoted *for ksm* are excluded until they are accessed
        # again, so collapse does not fight the merger over them — the
        # counter-productive khugepaged/ksm interaction the paper cites
        # from [51].  Idle regions in general remain candidates: Figure 1
        # shows Ingens's aggressive phase does bloat around them.
        return sorted(
            r.hvpn
            for r in proc.regions.values()
            if not r.is_huge
            and not r.bloat_demoted
            and r.utilization() >= threshold
            and self.kernel.can_promote(proc, r.hvpn)
        )

    def on_epoch(self) -> None:
        """Promote up to budget, fairness-ordered, threshold per FMFI phase."""
        if self._merger is not None:
            self._merger.run_epoch()
        self._limiter.refill()
        threshold = self.current_threshold()
        per_proc = {p.pid: self._candidates(p, threshold) for p in self.kernel.processes}
        audited = (audit.enabled and (al := self.kernel.audit) is not None
                   and al.enabled)
        while self._limiter.available >= 1.0:
            eligible = [p for p in self.kernel.processes if per_proc[p.pid]]
            if not eligible:
                break
            proc = min(eligible, key=self.promotion_metric)
            hvpn = per_proc[proc.pid].pop(0)  # lowest VA first
            region = proc.regions.get(hvpn)
            util = 0.0 if region is None else region.utilization()
            if not self._limiter.take():
                if audited:
                    al.decide("promote", proc.name, proc.pid, hvpn,
                              "reject", "budget_exhausted", stage=2,
                              inputs={"budget_left": self._limiter.available,
                                      "threshold": threshold,
                                      "utilization": util})
                break
            if self.kernel.promote_region(proc, hvpn) is None:
                if audited:
                    al.decide("promote", proc.name, proc.pid, hvpn,
                              "reject", "promote_failed", stage=3,
                              inputs={"threshold": threshold,
                                      "utilization": util,
                                      "fmfi": self.kernel.fmfi()})
                break  # no contiguity even after compaction
            if audited:
                al.decide("promote", proc.name, proc.pid, hvpn,
                          "accept", "promoted", stage=4,
                          inputs={"threshold": threshold,
                                  "utilization": util,
                                  "fairness_metric":
                                      self.promotion_metric(proc)})

    def estimated_overhead(self, proc: Process) -> float:
        """Ingens has no overhead model; expose utilisation pressure."""
        candidates = [r for r in proc.regions.values() if not r.is_huge and r.resident > 0]
        return min(1.0, len(candidates) / 1024.0)

    # ------------------------------------------------------------------ #
    # ksm coordination (§3.2's characterisation of Ingens)                #
    # ------------------------------------------------------------------ #

    def enable_ksm(self, pages_per_sec: float) -> None:
        """Attach a background same-page merger (off by default).

        Merging proceeds at ksm speed; memory pressure only *exposes*
        idle huge pages to it by demoting them (below).  This is why the
        paper's Figure 1 Ingens still runs out of memory: the merger is
        far too slow to reclaim bloat at allocation speed, unlike
        HawkEye's targeted zero-scan.
        """
        from repro.mem.samepage import SamePageMerger

        self._merger = SamePageMerger(self.kernel, pages_per_sec=pages_per_sec)

    def on_memory_pressure(self, pages_needed: int) -> int:
        """Demote *idle* huge pages so same-page merging can reach them.

        The paper (§3.2) describes Ingens's coordinated mechanism: only
        infrequently-accessed huge pages are broken for ksm.  Demotion
        itself frees nothing — reclaim happens at the background merger's
        rate — so the immediate return is 0 and the kernel falls through
        to swap or OOM, matching the paper's Figure 1 outcome.
        """
        for proc in self.kernel.processes:
            for region in list(proc.regions.values()):
                if region.is_huge and region.idle:
                    self.kernel.demote_region(proc, region.hvpn)
                    region.bloat_demoted = True  # cooldown against re-collapse
                    self.demotions_for_ksm += 1
        return 0

    def on_sample(self, proc: Process) -> None:
        """Lift the ksm-demotion cooldown once a region is accessed again."""
        for region in proc.regions.values():
            if region.bloat_demoted and region.last_coverage > 0:
                region.bloat_demoted = False
