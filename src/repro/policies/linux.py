"""Linux huge-page policies: no-THP baseline and transparent huge pages.

``Linux4KPolicy`` maps everything with base pages (THP disabled — the
paper's "Linux-4KB" configuration).

``LinuxTHPPolicy`` models Linux's THP as the paper describes it (§1):

* at fault time, allocate a huge page synchronously when the VMA covers
  the region and a contiguous block is available — including the
  synchronous zeroing that makes huge faults 465 µs;
* otherwise fall back to base pages and let ``khugepaged`` promote in the
  background: processes are visited in first-come-first-served order, and
  within a process regions are promoted by a *sequential scan from lower
  to higher virtual addresses* — the behaviour that makes Linux unfair
  across processes (Figure 7) and slow to reach hot regions living in
  high VAs (Figure 6);
* khugepaged collapses regions with any resident page (Linux's default
  ``max_ptes_none`` allows collapse around mostly-empty regions), which
  is one of the paper's sources of memory bloat.
"""

from __future__ import annotations

from repro import audit
from repro.kernel.kthread import RateLimiter
from repro.policies.base import HugePagePolicy
from repro.vm.process import Process
from repro.vm.vma import VMA


class Linux4KPolicy(HugePagePolicy):
    """THP disabled: base pages only, no background promotion."""

    name = "linux-4kb"

    def fault_size(self, proc: Process, vma: VMA, vpn: int) -> str:
        """Base pages only (THP disabled)."""
        return "base"


class LinuxTHPPolicy(HugePagePolicy):
    """Linux transparent huge pages with khugepaged background promotion."""

    name = "linux-thp"

    def __init__(
        self,
        kernel,
        promote_per_sec: float = 10.0,
        khugepaged: bool = True,
        max_ptes_none: int = 511,
    ):
        super().__init__(kernel)
        self.khugepaged = khugepaged
        #: Linux's /sys/kernel/mm/transparent_hugepage/khugepaged/
        #: max_ptes_none: how many *empty* PTEs a region may contain and
        #: still be collapsed.  The default (511) lets khugepaged collapse
        #: around a single resident page — the paper's §2.1 bloat source.
        #: 0 makes collapse as conservative as FreeBSD's full-population
        #: promotion.
        self.max_ptes_none = max_ptes_none
        self._limiter = RateLimiter(promote_per_sec, kernel.config.epoch_us)
        #: per-process scan cursor: khugepaged resumes where it left off.
        self._cursor: dict[int, int] = {}

    def fault_size(self, proc: Process, vma: VMA, vpn: int) -> str:
        """Map a huge page at fault whenever the region allows it."""
        return "huge"

    def on_epoch(self) -> None:
        """khugepaged: FCFS across processes, ascending-VA within each."""
        if not self.khugepaged:
            return
        self._limiter.refill()
        audited = (audit.enabled and (al := self.kernel.audit) is not None
                   and al.enabled)
        # FCFS: finish one process's scan before starting the next.
        for proc in sorted(self.kernel.processes, key=lambda p: p.launch_index):
            while True:
                hvpn = self._next_candidate(proc)
                if hvpn is None:
                    break  # this process fully scanned; move to the next
                region = proc.regions.get(hvpn)
                resident = 0 if region is None else region.resident
                if not self._limiter.take():
                    if audited:
                        al.decide(
                            "promote", proc.name, proc.pid, hvpn,
                            "reject", "budget_exhausted", stage=2,
                            inputs={"budget_left": self._limiter.available,
                                    "resident": resident,
                                    "max_ptes_none": self.max_ptes_none})
                    return  # promotion budget exhausted for this epoch
                if self.kernel.promote_region(proc, hvpn) is None:
                    if audited:
                        al.decide(
                            "promote", proc.name, proc.pid, hvpn,
                            "reject", "promote_failed", stage=3,
                            inputs={"resident": resident,
                                    "max_ptes_none": self.max_ptes_none,
                                    "fmfi": self.kernel.fmfi()})
                    # No contiguity even after compaction: stop this epoch.
                    return
                if audited:
                    al.decide("promote", proc.name, proc.pid, hvpn,
                              "accept", "promoted", stage=4,
                              inputs={"resident": resident,
                                      "max_ptes_none": self.max_ptes_none})

    def _next_candidate(self, proc: Process) -> int | None:
        """Lowest promotable region at or above the scan cursor."""
        from repro.units import PAGES_PER_HUGE

        cursor = self._cursor.get(proc.pid, 0)
        candidates = sorted(
            r.hvpn
            for r in proc.regions.values()
            if not r.is_huge
            and r.resident > 0
            and PAGES_PER_HUGE - r.resident <= self.max_ptes_none
            and self.kernel.can_promote(proc, r.hvpn)
        )
        for hvpn in candidates:
            if hvpn >= cursor:
                self._cursor[proc.pid] = hvpn + 1
                return hvpn
        if candidates:
            # Wrap the scan around, like khugepaged's circular scan.
            self._cursor[proc.pid] = candidates[0] + 1
            return candidates[0]
        return None
