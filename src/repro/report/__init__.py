"""Run reports: HTML dashboards and baseline regression gates.

Both consumers read the same input — the sweep result cache
(:class:`repro.runner.cache.ResultCache` envelopes, each carrying a cell
result plus its captured telemetry) — and are reached through the CLI:
``repro report html`` renders a self-contained dashboard;
``repro report regress`` compares the cache against a checked-in
baseline with tolerance bands and exits non-zero on regression.
"""

from repro.report.data import latest_envelopes
from repro.report.regress import bless, compare, load_baseline
from repro.report.html import render_report

__all__ = [
    "latest_envelopes",
    "bless",
    "compare",
    "load_baseline",
    "render_report",
]
