"""Shared envelope wrangling for the report/regress consumers.

The sweep cache is content-addressed, so one *cell* (``fig1/redis-fig1:
linux-2mb@128``) can have several envelopes on disk — one per source
digest it was ever run under.  Reports want exactly one row per cell:
:func:`latest_envelopes` keeps the newest by completion time.

:func:`flatten_scalars` turns a nested cell result into dotted-key
scalars (``times_s.random-access`` …), the metric namespace both the
baseline file and the regression comparator speak.
"""

from __future__ import annotations

from typing import Iterable

from repro.runner.cache import ResultCache


def latest_envelopes(cache: ResultCache) -> dict[str, dict]:
    """cell_id -> newest envelope (by ``timing.finished_at``) in the cache."""
    latest: dict[str, dict] = {}
    for envelope in cache.entries():
        cell_id = envelope.get("cell_id")
        if not cell_id:
            continue
        finished = envelope.get("timing", {}).get("finished_at", 0.0)
        kept = latest.get(cell_id)
        if kept is None or finished >= kept.get("timing", {}).get("finished_at", 0.0):
            latest[cell_id] = envelope
    return latest


def flatten_scalars(value, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts into dotted-key numeric scalars.

    Bools and non-numeric leaves are skipped (a flipped ``finished``
    flag shows up as a *missing metric*, which the comparator reports);
    lists (time series) are summarised by their length so a truncated
    series still moves a metric.
    """
    out: dict[str, float] = {}
    if isinstance(value, dict):
        for key, sub in value.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_scalars(sub, name))
    elif isinstance(value, bool):
        pass
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, list):
        out[f"{prefix}.len"] = float(len(value))
    return out


def envelope_metrics(envelope: dict) -> dict[str, float]:
    """The deterministic metric set of one envelope.

    The cell result's scalars, plus each telemetry artifact's
    :meth:`~repro.metrics.telemetry.RunTelemetry.scalar_metrics`
    (attribution totals and latency percentiles) under a
    ``telemetry.<index>.`` prefix.  Wall-clock numbers never appear
    here, so the same cache always yields the same metrics.
    """
    from repro.metrics.telemetry import RunTelemetry

    metrics = flatten_scalars(envelope.get("result") or {})
    for i, artifact in enumerate(envelope.get("telemetry") or []):
        scalars = RunTelemetry.from_dict(artifact).scalar_metrics()
        metrics.update({f"telemetry.{i}.{k}": v for k, v in scalars.items()})
    return metrics


def metrics_by_cell(envelopes: Iterable[dict] | dict[str, dict]) -> dict[str, dict[str, float]]:
    """cell_id -> metric dict for a set of envelopes."""
    if isinstance(envelopes, dict):
        envelopes = envelopes.values()
    return {env["cell_id"]: envelope_metrics(env) for env in envelopes}
