"""Self-contained static HTML dashboard for a sweep cache.

``repro report html`` renders one file: inline CSS, inline SVG charts,
a few lines of inline JS for hover tooltips — no third-party assets, no
network requests, so the artifact opens anywhere (CI artifact viewers,
``file://``) exactly as generated.

Layout: one section per experiment found in the cache.  ``fig1`` gets
the paper's RSS-trajectory line chart (one series per policy) plus its
scalar table; every experiment gets a metrics table; telemetry-carrying
cells contribute a per-subsystem attribution table, latency-percentile
table, spatial heatmap panels (``repro.heat`` snapshots rendered as
inline SVG grids on a light+dark ramp) and simulator self-profile.

Chart styling follows the repo's data-viz conventions: categorical
series colors are assigned in fixed slot order (never cycled), declared
once as CSS custom properties with an explicit dark-mode block; every
multi-series chart carries a legend and a table fallback; marks are
thin (2 px lines) over hairline gridlines; numeric table columns use
tabular figures.
"""

from __future__ import annotations

import html as html_mod
import json
import math
from typing import Sequence

from repro.report.data import flatten_scalars, latest_envelopes
from repro.runner.cache import ResultCache

#: categorical palette, slots assigned in order (validated all-pairs
#: safe for the first three slots in both modes; fig1 uses exactly 3).
SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100", "#e87ba4",
                "#008300", "#4a3aa7", "#e34948")
SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500", "#d55181",
               "#008300", "#9085e9", "#e66767")

#: sequential heat ramp (9 levels; level 0 = exactly zero, matching the
#: terminal ramp in :mod:`repro.heat`).  The light ramp runs page-white
#: to deep red, the dark ramp charcoal to warm yellow so hot cells stay
#: the high-contrast end in both schemes.
HEAT_LIGHT = ("#f3f2ee", "#fdeccb", "#fdd9a0", "#fdbd6d", "#fb9a42",
              "#f26b26", "#d9431c", "#a81b0e", "#6e0503")
HEAT_DARK = ("#1f1f1e", "#392312", "#5c2e10", "#83400d", "#a85508",
             "#cc6e06", "#e98d1a", "#f8b13e", "#ffd86b")

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
__SERIES_LIGHT__
__HEAT_LIGHT__
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --border: rgba(255,255,255,0.10);
__SERIES_DARK__
__HEAT_DARK__
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 920px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
.subtitle { color: var(--text-secondary); margin: 0 0 16px; }
section.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0;
}
table { border-collapse: collapse; margin: 8px 0; width: 100%; }
th, td { padding: 4px 10px; text-align: left; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
thead th {
  color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--baseline);
}
tbody tr + tr td { border-top: 1px solid var(--gridline); }
.legend { display: flex; gap: 16px; flex-wrap: wrap; margin: 8px 0; }
.legend span { display: inline-flex; align-items: center; gap: 6px;
               color: var(--text-secondary); }
.legend i { width: 10px; height: 10px; border-radius: 2px; display: inline-block; }
svg text { fill: var(--text-muted); font: 11px system-ui, sans-serif; }
svg .axis-title { fill: var(--text-secondary); }
svg.heatmap { display: block; margin: 8px 0; }
svg.heatmap rect { shape-rendering: crispEdges; }
__HEAT_CELLS__
h3 { font-size: 13px; margin: 16px 0 2px; color: var(--text-secondary); }
.tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 10px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.15);
  font-variant-numeric: tabular-nums;
}
.meta { color: var(--text-muted); font-size: 12px; }
"""

_JS = """
(function () {
  var tip = document.createElement('div');
  tip.className = 'tooltip';
  document.body.appendChild(tip);
  document.querySelectorAll('svg[data-chart]').forEach(function (svg) {
    var data = JSON.parse(
      document.getElementById(svg.dataset.chart).textContent);
    var dot = svg.querySelector('.hover-dot');
    svg.addEventListener('mousemove', function (ev) {
      var pt = svg.createSVGPoint();
      pt.x = ev.clientX; pt.y = ev.clientY;
      var loc = pt.matrixTransform(svg.getScreenCTM().inverse());
      var best = null;
      data.series.forEach(function (s) {
        s.points.forEach(function (p) {
          var dx = p.px - loc.x, dy = p.py - loc.y;
          var d = dx * dx + dy * dy;
          if (!best || d < best.d) best = {d: d, p: p, s: s};
        });
      });
      if (!best || best.d > 40 * 40) { tip.style.display = 'none';
        dot.setAttribute('r', 0); return; }
      dot.setAttribute('cx', best.p.px); dot.setAttribute('cy', best.p.py);
      dot.setAttribute('r', 4); dot.setAttribute('fill', best.s.color);
      tip.innerHTML = '<b>' + best.s.label + '</b><br>' +
        data.xlabel + ': ' + best.p.x + '<br>' +
        data.ylabel + ': ' + best.p.y;
      tip.style.display = 'block';
      tip.style.left = (ev.clientX + 14) + 'px';
      tip.style.top = (ev.clientY + 14) + 'px';
    });
    svg.addEventListener('mouseleave', function () {
      tip.style.display = 'none'; dot.setAttribute('r', 0);
    });
  });
})();
"""


def _esc(text: object) -> str:
    """HTML-escape a value for element content or attributes."""
    return html_mod.escape(str(text), quote=True)


def _fmt(value: float) -> str:
    """Compact numeric rendering for table cells."""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}" if abs(value) >= 0.01 else f"{value:.3g}"
    return f"{int(value):,}"


def _nice_ticks(lo: float, hi: float, target: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi] (1/2/5 ladder)."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    raw = span / max(target, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        ticks.append(round(t, 10))
        t += step
    return ticks


def _tick_label(value: float) -> str:
    """Short tick formatting (no trailing .0)."""
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:g}"


class LineChart:
    """One inline-SVG line chart with hover metadata."""

    WIDTH, HEIGHT = 680, 320
    MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 64, 16, 12, 44

    def __init__(self, chart_id: str, xlabel: str, ylabel: str):
        self.chart_id = chart_id
        self.xlabel = xlabel
        self.ylabel = ylabel
        self.series: list[tuple[str, list[tuple[float, float]]]] = []

    def add_series(self, label: str, points: Sequence[tuple[float, float]]) -> None:
        """Append one series; colors are assigned by insertion order."""
        self.series.append((label, list(points)))

    # ------------------------------------------------------------------ #

    def _scales(self):
        xs = [x for _, pts in self.series for x, _ in pts]
        ys = [y for _, pts in self.series for _, y in pts]
        x_lo, x_hi = (min(xs), max(xs)) if xs else (0.0, 1.0)
        y_lo, y_hi = (min(ys + [0.0]), max(ys)) if ys else (0.0, 1.0)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        plot_w = self.WIDTH - self.MARGIN_L - self.MARGIN_R
        plot_h = self.HEIGHT - self.MARGIN_T - self.MARGIN_B

        def sx(x: float) -> float:
            return self.MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

        def sy(y: float) -> float:
            return self.MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

        return sx, sy, (x_lo, x_hi), (y_lo, y_hi)

    def render(self) -> str:
        """The legend + SVG + embedded hover-data block."""
        sx, sy, (x_lo, x_hi), (y_lo, y_hi) = self._scales()
        parts = [
            '<div class="legend">' + "".join(
                f'<span><i style="background: var(--series-{i + 1})"></i>'
                f'{_esc(label)}</span>'
                for i, (label, _) in enumerate(self.series)
            ) + "</div>",
            f'<svg viewBox="0 0 {self.WIDTH} {self.HEIGHT}" '
            f'data-chart="{_esc(self.chart_id)}-data" '
            f'role="img" aria-label="{_esc(self.ylabel)} vs {_esc(self.xlabel)}">',
        ]
        bottom = self.HEIGHT - self.MARGIN_B
        for t in _nice_ticks(y_lo, y_hi):
            y = sy(t)
            parts.append(
                f'<line x1="{self.MARGIN_L}" y1="{y:.1f}" '
                f'x2="{self.WIDTH - self.MARGIN_R}" y2="{y:.1f}" '
                'stroke="var(--gridline)" stroke-width="1"/>')
            parts.append(
                f'<text x="{self.MARGIN_L - 8}" y="{y + 4:.1f}" '
                f'text-anchor="end">{_tick_label(t)}</text>')
        for t in _nice_ticks(x_lo, x_hi):
            x = sx(t)
            parts.append(
                f'<text x="{x:.1f}" y="{bottom + 16}" '
                f'text-anchor="middle">{_tick_label(t)}</text>')
        parts.append(
            f'<line x1="{self.MARGIN_L}" y1="{bottom}" '
            f'x2="{self.WIDTH - self.MARGIN_R}" y2="{bottom}" '
            'stroke="var(--baseline)" stroke-width="1"/>')
        hover = {"xlabel": self.xlabel, "ylabel": self.ylabel, "series": []}
        for i, (label, pts) in enumerate(self.series):
            if not pts:
                continue
            path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
            parts.append(
                f'<polyline points="{path}" fill="none" '
                f'stroke="var(--series-{i + 1})" stroke-width="2" '
                'stroke-linejoin="round"/>')
            hover["series"].append({
                "label": label,
                "color": SERIES_LIGHT[i % len(SERIES_LIGHT)],
                "points": [
                    {"x": round(x, 3), "y": round(y, 2),
                     "px": round(sx(x), 1), "py": round(sy(y), 1)}
                    for x, y in pts
                ],
            })
        parts.append(
            f'<text class="axis-title" x="{(self.MARGIN_L + self.WIDTH - self.MARGIN_R) / 2}" '
            f'y="{self.HEIGHT - 6}" text-anchor="middle">{_esc(self.xlabel)}</text>')
        parts.append(
            f'<text class="axis-title" transform="rotate(-90)" '
            f'x="{-(self.MARGIN_T + bottom) / 2}" y="14" '
            f'text-anchor="middle">{_esc(self.ylabel)}</text>')
        parts.append('<circle class="hover-dot" r="0" stroke="var(--surface-1)" '
                     'stroke-width="2"/>')
        parts.append("</svg>")
        parts.append(
            f'<script type="application/json" id="{_esc(self.chart_id)}-data">'
            f"{json.dumps(hover)}</script>")
        return "\n".join(parts)


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]],
           numeric_from: int = 1) -> str:
    """An HTML table; columns >= ``numeric_from`` are right-aligned."""
    head = "".join(
        f'<th{" class=" + chr(34) + "num" + chr(34) if i >= numeric_from else ""}>'
        f"{_esc(h)}</th>"
        for i, h in enumerate(headers))
    body_rows = []
    for row in rows:
        cells = []
        for i, cell in enumerate(row):
            if i >= numeric_from and isinstance(cell, (int, float)) \
                    and not isinstance(cell, bool):
                cells.append(f'<td class="num">{_fmt(cell)}</td>')
            else:
                cells.append(f"<td>{_esc(cell)}</td>")
        body_rows.append("<tr>" + "".join(cells) + "</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body_rows)}</tbody></table>")


# ---------------------------------------------------------------------- #
# spatial heatmaps (repro.heat snapshots)                                  #
# ---------------------------------------------------------------------- #

#: per-matrix fixed color scales (data-max otherwise), mirroring the
#: terminal renderer so SVG and CLI agree on what "hot" looks like.
_MATRIX_VMAX = {"heat": 512.0, "util": 1.0, "huge": 1.0}

_HEAT_CELL_CSS = "\n".join(
    f".h{i} {{ fill: var(--heat-{i}); }}" for i in range(len(HEAT_LIGHT)))


def _heat_vars(colors: Sequence[str], indent: str = "  ") -> str:
    return "\n".join(f"{indent}--heat-{i}: {c};" for i, c in enumerate(colors))


def _heat_level(value: float, vmax: float) -> int:
    """Ramp level 0–8 for one cell — same mapping as ``repro.heat.ramp_char``."""
    if value <= 0 or vmax <= 0:
        return 0
    return min(1 + int(7 * min(value, vmax) / vmax), 8)


def _svg_style() -> str:
    """Embedded stylesheet for standalone ``.svg`` artifacts (light+dark)."""
    return (
        "svg {\n" + _heat_vars(HEAT_LIGHT)
        + "\n  --text-muted: #898781;\n  --text-secondary: #52514e;\n}\n"
        "@media (prefers-color-scheme: dark) {\n  svg {\n"
        + _heat_vars(HEAT_DARK, "    ")
        + "\n    --text-muted: #898781;\n    --text-secondary: #c3c2b7;\n"
        "  }\n}\n"
        "text { fill: var(--text-muted); font: 11px system-ui, sans-serif; }\n"
        ".axis-title { fill: var(--text-secondary); }\n"
        "rect { shape-rendering: crispEdges; }\n" + _HEAT_CELL_CSS)


def heatmap_svg(proc_snap: dict, matrix: str = "heat", cell: int = 10,
                max_rows: int | None = None, standalone: bool = False) -> str:
    """One process-heat snapshot as an SVG grid (rows = samples, cols = bins).

    Cells reference ``--heat-N`` custom properties so the inline form
    follows the report's light/dark scheme; ``standalone`` embeds its own
    ``<style>`` (with a ``prefers-color-scheme`` block) and XML namespace
    so the markup works as a free-standing ``.svg`` CI artifact.
    """
    rows = proc_snap.get(matrix) or []
    t_s = proc_snap.get("t_s") or []
    if max_rows is not None:
        rows, t_s = rows[-max_rows:], t_s[-max_rows:]
    nb = proc_snap.get("bins") or (len(rows[0]) if rows else 1)
    vmax = _MATRIX_VMAX.get(
        matrix, max((max(r) for r in rows if r), default=1.0) or 1.0)
    ml, mt, mb = 56, 4, 20
    width = ml + nb * cell + 4
    grid_h = max(len(rows), 1) * cell
    height = mt + grid_h + mb
    lo, hi = proc_snap.get("span", (0, 0))
    xmlns = ' xmlns="http://www.w3.org/2000/svg"' if standalone else ""
    parts = [
        f'<svg class="heatmap" viewBox="0 0 {width} {height}"{xmlns} '
        f'role="img" aria-label="{_esc(matrix)} heatmap for '
        f'{_esc(proc_snap.get("process"))}">']
    if standalone:
        parts.append(f"<style>{_svg_style()}</style>")
    parts.append(f'<rect class="h0" x="{ml}" y="{mt}" '
                 f'width="{nb * cell}" height="{grid_h}"/>')
    label_every = max(1, len(rows) // 6)
    for i, row in enumerate(rows):
        y = mt + i * cell
        if i % label_every == 0 and i < len(t_s):
            parts.append(f'<text x="{ml - 6}" y="{y + cell - 2}" '
                         f'text-anchor="end">{t_s[i]:g}s</text>')
        # runs of equal-level cells collapse into one rect (the level-0
        # background already covers cold cells, so those are skipped).
        j = 0
        while j < len(row):
            lvl = _heat_level(row[j], vmax)
            k = j + 1
            while k < len(row) and _heat_level(row[k], vmax) == lvl:
                k += 1
            if lvl:
                parts.append(
                    f'<rect class="h{lvl}" x="{ml + j * cell}" y="{y}" '
                    f'width="{(k - j) * cell}" height="{cell}"/>')
            j = k
    parts.append(
        f'<text class="axis-title" x="{ml + nb * cell / 2:g}" '
        f'y="{height - 6}" text-anchor="middle">'
        f'{_esc(matrix)} — span hvpn [{lo},{hi}), {nb} bins</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def write_heat_svgs(snapshot: dict, out_dir: str, label: str = "",
                    matrices: Sequence[str] = ("heat", "util")) -> list[str]:
    """Write one standalone SVG per process×matrix; returns written paths.

    ``snapshot`` is a :class:`repro.heat.HeatMonitor` snapshot (live or
    from a sweep-cache telemetry artifact); ``label`` (e.g. a cell id)
    prefixes the file names.
    """
    import os

    os.makedirs(out_dir, exist_ok=True)
    written = []
    for proc in snapshot.get("processes") or ():
        for matrix in matrices:
            if not proc.get(matrix):
                continue
            stem = "-".join(filter(None, [
                label, str(proc.get("process")),
                f"pid{proc.get('pid')}", matrix]))
            safe = "".join(c if c.isalnum() or c in "-_." else "_"
                           for c in stem)
            path = os.path.join(out_dir, f"{safe}.svg")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(heatmap_svg(proc, matrix=matrix, standalone=True))
            written.append(path)
    return written


#: inline panels are capped so a wide sweep doesn't balloon the report;
#: the full set is reachable via ``repro heat --cache-dir … --svg-dir``.
_MAX_HEAT_PANELS = 12


def _heat_rows(envelopes: dict[str, dict]):
    """Summary rows + (cell_id, proc-snapshot) panels from captured heat."""
    rows, panels = [], []
    for cell_id in sorted(envelopes):
        env = envelopes[cell_id]
        for artifact in env.get("telemetry") or []:
            snap = artifact.get("heat") or {}
            for proc in snap.get("processes") or ():
                wss = proc.get("wss") or {}
                rows.append([cell_id, proc.get("process"),
                             proc.get("samples", 0),
                             len(proc.get("regions") or ()),
                             proc.get("hot_regions", 0),
                             wss.get("p50", ""), wss.get("p95", ""),
                             wss.get("p99", "")])
                if proc.get("heat"):
                    panels.append((cell_id, proc))
    return rows, panels


def _group_by_experiment(envelopes: dict[str, dict]) -> dict[str, list[dict]]:
    groups: dict[str, list[dict]] = {}
    for cell_id in sorted(envelopes):
        env = envelopes[cell_id]
        groups.setdefault(env["cell"]["experiment"], []).append(env)
    return groups


def _fig1_section(envelopes: list[dict]) -> str:
    """Figure 1: RSS trajectory line chart + scalar table."""
    chart = LineChart("fig1", "simulated time (s)", "RSS (MB)")
    rows = []
    for env in envelopes:
        policy = env["cell"]["policy"]
        result = env["result"]
        series = result.get("rss_series", {})
        points = list(zip(series.get("times", []), series.get("values", [])))
        chart.add_series(policy, points)
        rows.append([policy, result.get("rss_mb", 0.0),
                     result.get("useful_mb", 0.0),
                     result.get("recovered_pages", 0)])
    table = _table(["policy", "final RSS (MB)", "useful (MB)",
                    "bloat pages recovered"], rows)
    return chart.render() + table


def _metrics_section(envelopes: list[dict]) -> str:
    """Generic per-experiment table: one row per cell, metrics sorted."""
    metric_names: list[str] = []
    per_cell: list[tuple[str, dict[str, float]]] = []
    for env in envelopes:
        scalars = flatten_scalars(env.get("result") or {})
        scalars.pop("rss_series.times.len", None)
        scalars.pop("rss_series.values.len", None)
        per_cell.append((env["cell_id"], scalars))
        for name in scalars:
            if name not in metric_names:
                metric_names.append(name)
    metric_names.sort()
    rows = [
        [cell_id] + [scalars.get(name, "") for name in metric_names]
        for cell_id, scalars in per_cell
    ]
    return _table(["cell"] + metric_names, rows)


def _attribution_rows(envelopes: dict[str, dict]):
    """(cell_id, subsystem, events, span) rows from captured telemetry."""
    rows = []
    hist_rows = []
    profiles = []
    for cell_id in sorted(envelopes):
        env = envelopes[cell_id]
        for artifact in env.get("telemetry") or []:
            total = sum(e["span_us"] for e in artifact["attribution"].values()) or 1.0
            for subsystem, entry in sorted(artifact["attribution"].items()):
                rows.append([cell_id, subsystem, entry["events"],
                             entry["span_us"],
                             f"{entry['span_us'] / total:.1%}"])
            for kind, hist in sorted(artifact["histograms"].items()):
                if "p50" in hist:
                    hist_rows.append([cell_id, kind, hist["count"],
                                      hist["p50"], hist["p95"], hist["p99"]])
            prof = artifact.get("self_profile", {})
            if prof:
                profiles.append([cell_id, prof.get("epochs", 0),
                                 prof.get("scrapes", 0),
                                 prof.get("run_s", 0.0),
                                 prof.get("scrape_s", 0.0),
                                 prof.get("epochs_per_wall_s", 0.0)])
    return rows, hist_rows, profiles


def _decision_rows(envelopes: dict[str, dict]):
    """Funnel + rejection-breakdown rows from captured decision audits."""
    funnel_rows = []
    reject_rows = []
    for cell_id in sorted(envelopes):
        env = envelopes[cell_id]
        for artifact in env.get("telemetry") or []:
            decisions = artifact.get("decisions") or {}
            for point, stages in sorted(
                    (decisions.get("funnel") or {}).items()):
                funnel_rows.append([
                    cell_id, point,
                    stages.get("candidates", 0), stages.get("eligible", 0),
                    stages.get("budget_passed", 0), stages.get("acted", 0)])
            for point, reasons in sorted(
                    (decisions.get("rejections") or {}).items()):
                for reason, count in sorted(reasons.items()):
                    reject_rows.append([cell_id, point, reason, count])
    return funnel_rows, reject_rows


def _fleet_rows(envelopes: dict[str, dict]):
    """Aggregate + per-class QoS rows from captured fleet snapshots."""
    agg_rows = []
    class_rows = []
    for cell_id in sorted(envelopes):
        env = envelopes[cell_id]
        for artifact in env.get("telemetry") or []:
            fleet = artifact.get("fleet") or {}
            if not fleet:
                continue
            agg_rows.append([
                cell_id, fleet.get("spawned", 0), fleet.get("exited", 0),
                fleet.get("oom_kills", 0), fleet.get("protected_kills", 0),
                fleet.get("peak_active", 0), fleet.get("deferred", 0),
                fleet.get("fairness_spread", 0.0)])
            for name, cls in sorted((fleet.get("classes") or {}).items()):
                hist = cls.get("fault_us") or {}
                class_rows.append([
                    cell_id, name, cls.get("tenants", 0),
                    cls.get("oom_kills", 0), cls.get("promotions", 0),
                    cls.get("mean_huge_coverage", 0.0),
                    cls.get("mean_bloat_mb", 0.0),
                    hist.get("p50", ""), hist.get("p99", "")])
    return agg_rows, class_rows


def render_report(cache: ResultCache, title: str = "HawkEye repro — run report") -> str:
    """Render the whole dashboard for one sweep cache as an HTML string."""
    envelopes = latest_envelopes(cache)
    groups = _group_by_experiment(envelopes)
    sections = []
    titles = {
        "fig1": "Figure 1 — Redis RSS under insert / delete-80% / re-insert",
        "tab1": "Table 1 — fault counts and latency, alloc-touch-free ×10",
        "tab8": "Table 8 — async pre-zeroing on fault-bound workloads",
        "tab9": "Table 9 — HawkEye-PMU vs HawkEye-G, mixed sensitivity sets",
        "fig5": "Figure 5 — promotion speedup from a fragmented start",
        "smoke": "Smoke grid — seconds-scale touch run",
        "fleet": "Fleet churn — multi-tenant fairness/tail QoS vs "
                 "arrival rate",
        "fleet-smoke": "Fleet churn smoke grid (CI arrival rate)",
    }
    for experiment, envs in groups.items():
        body = (_fig1_section(envs) if experiment == "fig1"
                else _metrics_section(envs))
        sections.append(
            f'<section class="card"><h2>'
            f"{_esc(titles.get(experiment, experiment))}</h2>{body}</section>")

    attr_rows, hist_rows, profiles = _attribution_rows(envelopes)
    if attr_rows:
        sections.append(
            '<section class="card"><h2>Simulated-time attribution '
            "(per subsystem)</h2>"
            + _table(["cell", "subsystem", "events", "span (µs)", "share"],
                     attr_rows, numeric_from=2)
            + "</section>")
    if hist_rows:
        sections.append(
            '<section class="card"><h2>Latency percentiles '
            "(log2-bucket interpolation, ≤ 2× error)</h2>"
            + _table(["cell", "tracepoint", "samples", "p50 (µs)",
                      "p95 (µs)", "p99 (µs)"], hist_rows, numeric_from=2)
            + "</section>")
    funnel_rows, reject_rows = _decision_rows(envelopes)
    if funnel_rows:
        sections.append(
            '<section class="card"><h2>Decision funnel '
            "(candidates → eligible → budget-passed → acted)</h2>"
            + _table(["cell", "point", "candidates", "eligible",
                      "budget passed", "acted"], funnel_rows, numeric_from=2)
            + "</section>")
    if reject_rows:
        sections.append(
            '<section class="card"><h2>Rejections by reason</h2>'
            + _table(["cell", "point", "reason", "rejections"],
                     reject_rows, numeric_from=3)
            + "</section>")
    fleet_agg, fleet_classes = _fleet_rows(envelopes)
    if fleet_agg:
        body = _table(["cell", "spawned", "exited", "OOM kills",
                       "protected kills", "peak active", "deferred",
                       "fairness spread"], fleet_agg, numeric_from=1)
        if fleet_classes:
            body += ("<h3>Per tenant class</h3>"
                     + _table(["cell", "class", "tenants", "OOM kills",
                               "promotions", "huge coverage", "bloat (MB)",
                               "fault p50 (µs)", "fault p99 (µs)"],
                              fleet_classes, numeric_from=2))
        sections.append(
            '<section class="card"><h2>Fleet churn '
            "(tenant lifetimes, OOM accounting, per-class QoS)</h2>"
            + body + "</section>")
    heat_rows, heat_panels = _heat_rows(envelopes)
    if heat_rows:
        body = _table(["cell", "process", "samples", "regions", "hot",
                       "wss p50 (pages)", "p95", "p99"],
                      heat_rows, numeric_from=2)
        shown = heat_panels[:_MAX_HEAT_PANELS]
        for cell_id, proc in shown:
            body += (f"<h3>{_esc(cell_id)} — {_esc(proc.get('process'))} "
                     f"pid={_esc(proc.get('pid'))}</h3>"
                     + heatmap_svg(proc))
        if len(heat_panels) > len(shown):
            body += (f'<p class="meta">{len(heat_panels) - len(shown)} more '
                     "panel(s) elided — export the full set with "
                     "<code>repro heat --cache-dir … --svg-dir …</code>.</p>")
        sections.append(
            '<section class="card"><h2>Spatial access heat '
            "(adaptive monitoring regions)</h2>" + body + "</section>")
    if profiles:
        sections.append(
            '<section class="card"><h2>Simulator self-profile '
            "(wall clock)</h2>"
            + _table(["cell", "epochs", "scrapes", "run (s)", "scrape (s)",
                      "epochs / wall-s"], profiles)
            + "</section>")
    if not sections:
        sections.append(
            '<section class="card"><p>No cached cells found under '
            f"<code>{_esc(cache.root)}</code>. Run a sweep first, e.g. "
            "<code>repro sweep run smoke</code>.</p></section>")

    series_light = "\n".join(
        f"  --series-{i + 1}: {c};" for i, c in enumerate(SERIES_LIGHT))
    series_dark = "\n".join(
        f"    --series-{i + 1}: {c};" for i, c in enumerate(SERIES_DARK))
    css = _CSS.replace("__SERIES_LIGHT__", series_light) \
              .replace("__SERIES_DARK__", series_dark) \
              .replace("__HEAT_LIGHT__", _heat_vars(HEAT_LIGHT)) \
              .replace("__HEAT_DARK__", _heat_vars(HEAT_DARK, "    ")) \
              .replace("__HEAT_CELLS__", _HEAT_CELL_CSS)
    cells = len(envelopes)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{css}</style>
</head>
<body>
<main>
<h1>{_esc(title)}</h1>
<p class="subtitle">{cells} cell(s) from <code>{_esc(cache.root)}</code>
— generated offline, no external assets.</p>
{"".join(sections)}
<p class="meta">HawkEye/HotOS-ASPLOS'19 reproduction — paper figures at
reduced scale; see docs/observability.md for the telemetry pipeline.</p>
</main>
<script>{_JS}</script>
</body>
</html>
"""
