"""Tolerance-band regression gate against checked-in baselines.

A *baseline* is a JSON file mapping cell ids to their blessed metric
values (see :func:`bless`); :func:`compare` re-derives the same metrics
from a sweep cache and classifies every (cell, metric) pair:

* **pass** — relative delta within the warn band;
* **warn** — between the warn and fail bands (reported, exit 0);
* **fail** — beyond the fail band, or a metric that appeared/vanished;
* **missing** — a baselined cell absent from the cache entirely.

The simulator is deterministic for a fixed source tree, so the default
bands are tight: any drift at all is a *behaviour change* — either a
regression or something to re-bless deliberately (``repro report
regress --bless``).  Deltas are symmetric on purpose: an unexplained
improvement is still an unexplained change.  All compared metrics are
simulated-time quantities; wall-clock never enters the baseline, so the
gate behaves identically on a laptop and in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.report.data import latest_envelopes, metrics_by_cell
from repro.runner.cache import ResultCache

#: baseline file schema version.
BASELINE_VERSION = 1

#: default tolerance bands (relative).  The simulator is deterministic,
#: so these are deliberately tight; they exist to absorb float noise
#: and intentional sub-percent retunes, not real drift.
DEFAULT_WARN = 0.01
DEFAULT_FAIL = 0.05


class BaselineError(ReproError):
    """A baseline file was missing or malformed."""


@dataclass
class MetricDelta:
    """One metric compared against its blessed value."""

    name: str
    baseline: float | None
    current: float | None
    rel: float | None          # signed relative delta; None when undefined
    status: str                # pass | warn | fail | new

    def describe(self) -> str:
        """One-line human rendering."""
        if self.baseline is None:
            return f"{self.name}: new metric (={self.current:g})"
        if self.current is None:
            return f"{self.name}: metric vanished (was {self.baseline:g})"
        delta = f"{self.rel:+.2%}" if self.rel is not None else "n/a"
        return (f"{self.name}: {self.baseline:g} -> {self.current:g} "
                f"({delta})")


@dataclass
class CellComparison:
    """Every metric delta for one cell, with the cell's worst status."""

    cell_id: str
    status: str                # pass | warn | fail | missing | new
    deltas: list[MetricDelta] = field(default_factory=list)

    def flagged(self) -> list[MetricDelta]:
        """The deltas that are not clean passes, worst first."""
        rank = {"fail": 0, "warn": 1, "new": 2, "pass": 3}
        return sorted((d for d in self.deltas if d.status != "pass"),
                      key=lambda d: rank[d.status])


@dataclass
class RegressionReport:
    """The full comparison: one :class:`CellComparison` per cell."""

    cells: list[CellComparison]
    warn_band: float
    fail_band: float

    def counts(self) -> dict[str, int]:
        """Histogram of cell statuses."""
        out: dict[str, int] = {}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    @property
    def ok(self) -> bool:
        """Gate verdict: no fails and no missing cells."""
        return all(c.status in ("pass", "warn", "new") for c in self.cells)


def _classify(rel: float | None, warn: float, fail: float) -> str:
    """Band a relative delta (None = undefined ratio = automatic fail)."""
    if rel is None:
        return "fail"
    if abs(rel) <= warn:
        return "pass"
    if abs(rel) <= fail:
        return "warn"
    return "fail"


def compare_metrics(baseline: dict[str, float], current: dict[str, float],
                    warn: float, fail: float) -> list[MetricDelta]:
    """Classify every metric present in either dict.

    A metric the baseline has never seen is ``new`` — visible but not
    gating, so purely additive telemetry (a freshly landed subsystem's
    families) doesn't fail the gate before it can be blessed.  A metric
    that *vanished* stays a hard fail: losing a tracked signal is a
    regression.
    """
    deltas: list[MetricDelta] = []
    for name in sorted(set(baseline) | set(current)):
        base, cur = baseline.get(name), current.get(name)
        if base is None:
            deltas.append(MetricDelta(name, base, cur, None, "new"))
            continue
        if cur is None:
            deltas.append(MetricDelta(name, base, cur, None, "fail"))
            continue
        if base == 0.0:
            rel = None if cur != 0.0 else 0.0
        else:
            rel = (cur - base) / abs(base)
        deltas.append(MetricDelta(name, base, cur, rel,
                                  _classify(rel, warn, fail)))
    return deltas


def compare(baseline: dict, cache: ResultCache,
            warn: float | None = None, fail: float | None = None) -> RegressionReport:
    """Compare a sweep cache against a loaded baseline document.

    ``warn``/``fail`` override the bands recorded in the baseline.
    Cells in the cache but not the baseline report as ``new`` (visible
    but not gating — bless to start tracking them).
    """
    tolerance = baseline.get("tolerance", {})
    warn = tolerance.get("warn", DEFAULT_WARN) if warn is None else warn
    fail = tolerance.get("fail", DEFAULT_FAIL) if fail is None else fail
    current = metrics_by_cell(latest_envelopes(cache))
    cells: list[CellComparison] = []
    baselined = baseline.get("cells", {})
    for cell_id in sorted(set(baselined) | set(current)):
        if cell_id not in current:
            cells.append(CellComparison(cell_id, "missing"))
            continue
        if cell_id not in baselined:
            cells.append(CellComparison(cell_id, "new"))
            continue
        deltas = compare_metrics(baselined[cell_id].get("metrics", {}),
                                 current[cell_id], warn, fail)
        worst = "pass"
        for delta in deltas:
            if delta.status == "fail":
                worst = "fail"
                break
            if delta.status == "warn":
                worst = "warn"
        cells.append(CellComparison(cell_id, worst, deltas))
    return RegressionReport(cells, warn, fail)


def bless(cache: ResultCache, warn: float = DEFAULT_WARN,
          fail: float = DEFAULT_FAIL, note: str = "") -> dict:
    """Build a baseline document from a sweep cache's current contents."""
    envelopes = latest_envelopes(cache)
    if not envelopes:
        raise BaselineError(f"no cached cells under {cache.root} to bless")
    sources = {env.get("source", "") for env in envelopes.values()}
    return {
        "version": BASELINE_VERSION,
        "note": note,
        "source": sorted(sources)[0] if len(sources) == 1 else "mixed",
        "tolerance": {"warn": warn, "fail": fail},
        "cells": {
            cell_id: {"metrics": metrics}
            for cell_id, metrics in sorted(metrics_by_cell(envelopes).items())
        },
    }


def load_baseline(path: str | Path) -> dict:
    """Read and sanity-check a baseline file."""
    path = Path(path)
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "cells" not in doc:
        raise BaselineError(f"baseline {path} has no 'cells' section")
    return doc


def save_baseline(doc: dict, path: str | Path) -> Path:
    """Write a baseline document (stable formatting for clean diffs)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_report(report: RegressionReport, verbose: bool = False) -> str:
    """Render a comparison as aligned text (the CLI's output)."""
    lines = [
        f"regression check (warn > {report.warn_band:.2%}, "
        f"fail > {report.fail_band:.2%})"
    ]
    for cell in report.cells:
        flagged = cell.flagged()
        marker = {"pass": "ok  ", "warn": "WARN", "fail": "FAIL",
                  "missing": "MISS", "new": "new "}[cell.status]
        detail = ""
        if cell.status == "missing":
            detail = "  (baselined cell absent from cache)"
        elif cell.status == "new":
            detail = "  (not in baseline; bless to track)"
        elif flagged:
            gating = sum(1 for d in flagged if d.status in ("fail", "warn"))
            bits = []
            if gating:
                bits.append(f"{gating} metric(s) outside bands")
            if gating < len(flagged):
                bits.append(f"{len(flagged) - gating} new metric(s)")
            detail = "  (" + ", ".join(bits) + ")"
        lines.append(f"  {marker}  {cell.cell_id}{detail}")
        show = flagged if not verbose else cell.deltas
        for delta in show:
            lines.append(f"          {delta.status:<4} {delta.describe()}")
    counts = report.counts()
    summary = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    lines.append(f"  -> {summary}: {'OK' if report.ok else 'REGRESSION'}")
    return "\n".join(lines)
