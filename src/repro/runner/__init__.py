"""Sweep runner: declarative experiment grids, fan-out, result cache.

``repro.runner`` turns the paper's evaluation into an addressable grid
of cells (experiment x case x policy x scale).  The registry enumerates
cells, the scheduler drives them across worker processes with per-cell
timeout/retry/crash isolation, and the cache content-addresses each
result by (cell config, source digest) so unchanged cells never rerun.
Surfaced on the CLI as ``repro sweep run/status/clean``.
"""

from repro.runner.cache import (
    CACHE_ENV_VAR,
    DEFAULT_CACHE_DIR,
    ResultCache,
    cell_key,
    clear_digest_memo,
    default_cache_dir,
    source_digest,
)
from repro.runner.manifest import Manifest
from repro.runner.registry import (
    Cell,
    Experiment,
    UnknownCellError,
    cells_for,
    execute_cell,
    experiment_names,
    get_experiment,
    parse_selectors,
    register,
    unregister,
)
from repro.runner.scheduler import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT_S,
    GOOD_STATUSES,
    CellOutcome,
    SweepReport,
    run_sweep,
)

__all__ = [
    "CACHE_ENV_VAR",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_RETRIES",
    "DEFAULT_TIMEOUT_S",
    "GOOD_STATUSES",
    "Cell",
    "CellOutcome",
    "Experiment",
    "Manifest",
    "ResultCache",
    "SweepReport",
    "UnknownCellError",
    "cell_key",
    "cells_for",
    "clear_digest_memo",
    "default_cache_dir",
    "execute_cell",
    "experiment_names",
    "get_experiment",
    "parse_selectors",
    "register",
    "run_sweep",
    "source_digest",
    "unregister",
]
