"""Stock experiment adapters: the paper benchmark bodies as sweep cells.

Each function here is the body of one ``benchmarks/test_*`` experiment,
reshaped to the registry's ``run(case, policy, scale) -> dict`` contract
so the sweep runner can enumerate, fan out, cache and diff individual
grid cells.  The benchmark tests fetch their numbers back through the
runner (``benchmarks/conftest.sweep_results``), so this module is the
single source of truth for how a cell is produced; the pytest files keep
only the paper tables, the printing and the shape assertions.

Results must be JSON-able dicts of plain scalars/lists/dicts and must be
deterministic for a fixed (case, policy, scale) — the cache and the
serial-vs-parallel equivalence guarantee both depend on it.
"""

from __future__ import annotations

from repro.errors import OutOfMemoryError
from repro.experiments import Scale, fragment, make_kernel, useful_bytes
from repro.metrics.series import SeriesRecorder
from repro.runner.registry import register
from repro.units import GB, MB, SEC
from repro.workloads.graph import Graph500
from repro.workloads.haccio import HaccIO
from repro.workloads.microbench import (
    AllocTouchFree,
    RandomAccess,
    SequentialAccess,
)
from repro.workloads.npb import NPBWorkload
from repro.workloads.redis import RedisBulkInsert, RedisFig1
from repro.workloads.sparsehash import SparseHash
from repro.workloads.spinup import JVMSpinUp, KVMSpinUp
from repro.workloads.xsbench import XSBench

# --------------------------------------------------------------------- #
# Figure 1 — Redis RSS across insert / delete / re-insert phases        #
# --------------------------------------------------------------------- #

FIG1_POLICIES = ("linux-2mb", "ingens-90", "hawkeye-g")


def run_fig1(case: str, policy: str, scale: Scale) -> dict:
    """Figure 1 cell: Redis insert/delete-80%/re-insert RSS trajectory."""
    kernel = make_kernel(48 * GB, policy, scale)
    recorder = SeriesRecorder(kernel, every_epochs=10)
    recorder.probe(
        "rss_mb", lambda k: sum(p.rss_pages() for p in k.processes) * 4096 / MB)
    run = kernel.spawn(RedisFig1(scale=scale.factor))
    oom = False
    try:
        kernel.run(max_epochs=4000)
    except OutOfMemoryError:
        oom = True
    proc = run.proc
    series = recorder["rss_mb"]
    return {
        "policy": policy,
        "oom": oom,
        "finished": run.finished,
        "t_end_s": kernel.now_us / SEC,
        "rss_mb": proc.rss_pages() * 4096 / MB,
        "useful_mb": useful_bytes(kernel, proc) / MB,
        "recovered_pages": int(kernel.stats.bloat_pages_recovered),
        "rss_series": {"times": list(series.times), "values": list(series.values)},
    }


# --------------------------------------------------------------------- #
# Table 1 — fault counts/latency for alloc-touch-free x10               #
# --------------------------------------------------------------------- #

TAB1_POLICIES = ("linux-4kb", "linux-2mb", "ingens-90", "hawkeye-4kb", "hawkeye-g")

TAB1_ROUNDS = 10
#: think time between rounds: identical across configurations.
TAB1_GAP_US = 3 * SEC


def run_tab1(case: str, policy: str, scale: Scale) -> dict:
    """Table 1 cell: fault count/latency for alloc-touch-free x10."""
    kernel = make_kernel(16 * GB, policy, scale, boot_zeroed=True)
    if policy.startswith("hawkeye"):
        # idealised no-zeroing columns: pre-zeroing keeps up with frees
        kernel.policy.prezero._limiter.per_second = 1e9
    run = kernel.spawn(
        AllocTouchFree(10 * GB, rounds=TAB1_ROUNDS, scale=scale.factor,
                       gap_us=TAB1_GAP_US)
    )
    kernel.run(max_epochs=3000)
    stats = run.proc.stats
    return {
        "faults": int(stats.faults),
        "fault_time_s": stats.fault_time_us / SEC,
        "avg_fault_us": stats.fault_time_us / max(stats.faults, 1),
    }


# --------------------------------------------------------------------- #
# Table 8 — async pre-zeroing on fault-bound workloads                  #
# --------------------------------------------------------------------- #

TAB8_POLICIES = ("linux-4kb", "linux-2mb", "ingens-90", "hawkeye-4kb", "hawkeye-g")
TAB8_WORKLOADS = ("redis-bulk", "sparsehash", "hacc-io", "jvm-spinup", "kvm-spinup")


def _tab8_workload(name: str, scale: Scale):
    return {
        "redis-bulk": lambda: RedisBulkInsert(scale=scale.factor),
        "sparsehash": lambda: SparseHash(scale=scale.factor),
        "hacc-io": lambda: HaccIO(scale=scale.factor),
        "jvm-spinup": lambda: JVMSpinUp(scale=scale.factor),
        "kvm-spinup": lambda: KVMSpinUp(scale=scale.factor),
    }[name]()


def run_tab8(case: str, policy: str, scale: Scale) -> dict:
    """Table 8 cell: one fault-bound workload under one policy."""
    kernel = make_kernel(96 * GB, policy, scale, boot_zeroed=False)
    if policy.startswith("hawkeye"):
        # let the pre-zero thread convert boot-dirty memory first (at
        # full scale it runs continuously; the workload starts later)
        kernel.policy.prezero._limiter.per_second = 1e9
        kernel.run_epochs(2)
    wl = _tab8_workload(case, scale)
    run = kernel.spawn(wl)
    kernel.run(max_epochs=2000)
    if not run.finished:
        raise RuntimeError(f"{case}/{policy} did not finish within the epoch cap")
    time_s = run.op_time_us / SEC
    if case == "redis-bulk":
        # throughput: values inserted per second (values are 2 MB)
        return {"metric": "values_per_s", "value": wl.values_inserted() / time_s}
    return {"metric": "time_s", "value": time_s}


# --------------------------------------------------------------------- #
# Table 9 — HawkEye-PMU vs HawkEye-G on mixed workload sets             #
# --------------------------------------------------------------------- #

TAB9_POLICIES = ("linux-4kb", "hawkeye-pmu", "hawkeye-g")
TAB9_SETS = ("random+sequential", "cg.D+mg.D")


def _tab9_workloads(case: str, scale: Scale):
    if case == "random+sequential":
        return [
            RandomAccess(scale=scale.factor, work_us=233 * SEC),
            SequentialAccess(scale=scale.factor, work_us=514 * SEC),
        ]
    return [
        NPBWorkload("cg.D", scale=scale.factor, work_us=500 * SEC),
        NPBWorkload("mg.D", scale=scale.factor, work_us=560 * SEC),
    ]


def run_tab9(case: str, policy: str, scale: Scale) -> dict:
    """Table 9 cell: a mixed sensitivity set raced under one policy."""
    kernel = make_kernel(96 * GB, policy, scale)
    fragment(kernel)
    runs = [kernel.spawn(wl) for wl in _tab9_workloads(case, scale)]
    kernel.run(max_epochs=6000)
    if not all(r.finished for r in runs):
        raise RuntimeError(f"{case}/{policy} did not finish within the epoch cap")
    return {"times_s": {r.proc.name: r.elapsed_us / SEC for r in runs}}


# --------------------------------------------------------------------- #
# Figure 5 — speedup and time saved per promotion, fragmented start     #
# --------------------------------------------------------------------- #

FIG5_POLICIES = ("linux-4kb", "linux-2mb", "ingens-90", "hawkeye-pmu", "hawkeye-g")
FIG5_WORKLOADS = ("graph500", "xsbench", "cg.D")

FIG5_WORK_S = 500.0


def _fig5_workload(name: str, scale: Scale):
    work_us = FIG5_WORK_S * SEC
    return {
        "graph500": lambda: Graph500(scale=scale.factor, work_us=work_us),
        "xsbench": lambda: XSBench(scale=scale.factor, work_us=work_us),
        "cg.D": lambda: NPBWorkload("cg.D", scale=scale.factor, work_us=work_us),
    }[name]()


def run_fig5(case: str, policy: str, scale: Scale) -> dict:
    """Figure 5 cell: promotion speedup/efficiency from a fragmented start."""
    kernel = make_kernel(96 * GB, policy, scale)
    fragment(kernel)
    run = kernel.spawn(_fig5_workload(case, scale))
    kernel.run(max_epochs=6000)
    if not run.finished:
        raise RuntimeError(f"{case}/{policy} did not finish within the epoch cap")
    return {
        "time_s": run.elapsed_us / SEC,
        "promotions": int(run.proc.stats.promotions),
    }


# --------------------------------------------------------------------- #
# smoke — a seconds-scale grid for CI and the runner's own tests        #
# --------------------------------------------------------------------- #

SMOKE_POLICIES = ("linux-4kb", "linux-2mb", "hawkeye-g")


def run_smoke(case: str, policy: str, scale: Scale) -> dict:
    """Smoke cell: a seconds-scale touch run (CI and runner tests)."""
    kernel = make_kernel(2 * GB, policy, scale, boot_zeroed=True)
    run = kernel.spawn(AllocTouchFree(1 * GB, rounds=2, scale=scale.factor))
    kernel.run(max_epochs=500)
    stats = run.proc.stats
    return {
        "finished": run.finished,
        "time_s": run.elapsed_us / SEC,
        "faults": int(stats.faults),
        "avg_fault_us": stats.fault_time_us / max(stats.faults, 1),
        "promotions": int(stats.promotions),
    }


register(
    "fig1", "Figure 1: Redis RSS under insert/delete-80%/re-insert",
    cases=("redis-fig1",), policies=FIG1_POLICIES, run=run_fig1,
)
register(
    "tab1", "Table 1: fault counts and latency, alloc-touch-free x10",
    cases=("alloc-touch-free",), policies=TAB1_POLICIES, run=run_tab1,
)
register(
    "tab8", "Table 8: async pre-zeroing on fault-bound workloads",
    cases=TAB8_WORKLOADS, policies=TAB8_POLICIES, run=run_tab8,
)
register(
    "tab9", "Table 9: HawkEye-PMU vs HawkEye-G on mixed sensitivity sets",
    cases=TAB9_SETS, policies=TAB9_POLICIES, run=run_tab9,
)
register(
    "fig5", "Figure 5: promotion speedup and efficiency, fragmented start",
    cases=FIG5_WORKLOADS, policies=FIG5_POLICIES, run=run_fig5,
)
# --------------------------------------------------------------------- #
# numa — placement policy x node count on an asymmetric workload        #
# --------------------------------------------------------------------- #

NUMA_POLICIES = ("linux-2mb", "hawkeye-g")
#: placement mode x node count.  local = first-touch on the home node
#: (the locality ceiling); interleave = round-robin pages across nodes
#: (the remote-access floor); balanced = interleave start + knumad hint
#: faults migrating hot memory home; replicated = interleave start +
#: Mitosis-style per-node page-table replicas (no remote *walks*, the
#: data accesses stay remote).
NUMA_CASES = (
    "local-2", "interleave-2", "balanced-2", "replicated-2",
    "local-4", "interleave-4", "balanced-4", "replicated-4",
)

NUMA_WORK_S = 200.0


def run_numa(case: str, policy: str, scale: Scale) -> dict:
    """NUMA cell: one placement mode on a node-0-homed compute workload.

    The workload is deliberately asymmetric — every thread runs on node
    0 while the footprint spans the machine — so interleaved placement
    makes half (or 3/4) of all page walks remote.  Balancing should
    claw that share back toward the local-placement ceiling; replicated
    page tables should zero it by construction.
    """
    from repro.experiments import scaled_tlb
    from repro.numa.mempolicy import MemPolicy, MemPolicyKind
    from repro.workloads.compute import ComputeWorkload

    mode, nodes_str = case.rsplit("-", 1)
    nodes = int(nodes_str)
    kernel = make_kernel(
        24 * GB, policy, scale,
        numa_nodes=nodes,
        numa_balance=(mode == "balanced"),
        replicated_pt=(mode == "replicated"),
        # Scaled TLB (as in the virtualised experiments): at 1/64 memory
        # a full-size TLB covers the whole scaled footprint even at base
        # pages, hiding the walk traffic the remote-share metric prices.
        tlb=scaled_tlb(scale),
    )
    mempolicy = (None if mode == "local"
                 else MemPolicy(MemPolicyKind.INTERLEAVE))
    wl = ComputeWorkload(
        "numa-compute", 8 * GB, work_us=NUMA_WORK_S * SEC,
        access_rate=20.0, scale=scale.factor,
    )
    run = kernel.spawn(wl, node=0, mempolicy=mempolicy)
    kernel.run(max_epochs=3000)
    if not run.finished:
        raise RuntimeError(f"{case}/{policy} did not finish within the epoch cap")
    numa = kernel.numa
    stats = kernel.stats
    from repro.kernel.procfs import numastat

    return {
        "nodes": nodes,
        "mode": mode,
        "time_s": run.elapsed_us / SEC,
        "remote_walk_share": numa.remote_walk_share() if numa else 0.0,
        "hint_faults": int(stats.numa_hint_faults),
        "pages_migrated": int(stats.numa_pages_migrated),
        "huge_migrated": int(stats.numa_huge_migrated),
        "split_migrations": int(stats.numa_split_migrations),
        "pt_replica_pages": int(numa.replica_overhead_pages()) if numa else 0,
        "promotions": int(run.proc.stats.promotions),
        "numastat": numastat(kernel),
    }


register(
    "smoke", "seconds-scale touch grid (CI cache smoke test)",
    cases=("touch",), policies=SMOKE_POLICIES, run=run_smoke,
)
register(
    "numa", "NUMA placement: local vs interleave vs balanced vs replicated-PT",
    cases=NUMA_CASES, policies=NUMA_POLICIES, run=run_numa,
)

# The fleet churn experiments live with their subsystem; importing the
# module registers them alongside the paper grids above.
from repro.fleet import experiment as _fleet_experiment  # noqa: E402,F401
