"""Content-addressed result cache for sweep cells.

Each completed cell is stored as one JSON *envelope* file named by its
cache key: a SHA-256 over the cell's config (experiment, case, policy,
scale), the experiment's declared version, and a digest of the
simulator's source tree.  Any of those changing changes the key, so a
rerun after a source edit re-executes every affected cell while an
unchanged rerun is a 100 % cache hit — ``--resume`` after an interrupt
falls out of the same property.

Only successful results are cached; failures and timeouts always rerun.
Writes are atomic (tmp file + rename) so a sweep killed mid-write never
leaves a corrupt entry — unreadable entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.registry import Cell

#: environment override for the cache location (CI points this at the
#: artifact directory).
CACHE_ENV_VAR = "REPRO_SWEEP_CACHE"
DEFAULT_CACHE_DIR = ".sweep-cache"

_digest_memo: dict[str, str] = {}


def default_cache_dir() -> Path:
    """Cache root: $REPRO_SWEEP_CACHE if set, else ./.sweep-cache."""
    return Path(os.environ.get(CACHE_ENV_VAR, DEFAULT_CACHE_DIR))


def source_digest() -> str:
    """SHA-256 over the simulator source tree (paths + contents).

    Covers every ``.py`` file under ``src/repro`` — adapters included —
    so cached results can never outlive the code that produced them.
    Memoised per process: a sweep hashes the tree once, not per cell.
    """
    base = Path(__file__).resolve().parents[1]  # src/repro
    key = str(base)
    if key not in _digest_memo:
        h = hashlib.sha256()
        for path in sorted(base.rglob("*.py")):
            h.update(str(path.relative_to(base)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _digest_memo[key] = h.hexdigest()
    return _digest_memo[key]


def clear_digest_memo() -> None:
    """Forget the memoised source digest (test helper)."""
    _digest_memo.clear()


def cell_key(cell: "Cell", digest: str, version: int = 1,
             key_material: str = "") -> str:
    """Content address of one cell's result.

    ``key_material`` is extra experiment-supplied content that joins the
    hash — scenario-backed experiments pass their scenario file's digest
    here, so editing the scenario invalidates exactly its own cells.
    Empty material hashes identically to the historical three-field
    payload, so stock experiment keys are unchanged.
    """
    fields: dict = {"cell": cell.config(), "version": version, "source": digest}
    if key_material:
        fields["material"] = key_material
    payload = json.dumps(fields, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


class ResultCache:
    """JSON result store under ``<root>/results/<key>.json``."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    def path_for(self, key: str) -> Path:
        """Filesystem path of the envelope stored under ``key``."""
        return self.results_dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached envelope for ``key``, or None (corrupt = miss)."""
        path = self.path_for(key)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    #: per-process sequence for unique tmp names (distinct writers in
    #: one process, e.g. threads, also get distinct names).
    _tmp_seq = itertools.count()

    def put(self, key: str, envelope: dict) -> Path:
        """Atomically store an envelope; returns its path.

        The tmp name is unique per writer (pid + sequence number), so
        two sweeps sharing a cache dir — CI matrix jobs pointed at one
        ``$REPRO_SWEEP_CACHE`` — can race on the same key without one
        renaming the other's half-written file into place.  The final
        ``os.replace`` stays atomic; last writer wins with an intact
        envelope either way.
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = self.results_dir / (
            f"{key}.{os.getpid()}.{next(self._tmp_seq)}.json.tmp"
        )
        try:
            with open(tmp, "w") as fh:
                json.dump(envelope, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        finally:
            # A failed dump (or a crash between dump and rename cleaned
            # up on the next run) must not leave stray tmp files behind.
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        return path

    def entries(self) -> Iterator[dict]:
        """Yield every readable cached envelope."""
        if not self.results_dir.is_dir():
            return
        for path in sorted(self.results_dir.glob("*.json")):
            try:
                with open(path) as fh:
                    yield json.load(fh)
            except (OSError, json.JSONDecodeError):
                continue

    def __len__(self) -> int:
        if not self.results_dir.is_dir():
            return 0
        return sum(1 for _ in self.results_dir.glob("*.json"))

    def clear(self) -> int:
        """Delete all cached results; returns how many were removed."""
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed
