"""Sweep manifest: the on-disk record of one sweep's cells and statuses.

The manifest makes a sweep resumable as a *spec*, not just as cached
bytes: ``repro sweep run --resume`` reloads the cell list of the last
sweep from ``<cache>/manifest.json`` and re-executes only the cells
that are not already complete (completed cells short-circuit through
the result cache anyway; the manifest is what remembers *which* cells
the sweep was made of and how each attempt went).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.runner.registry import Cell

MANIFEST_VERSION = 1

#: statuses that need no re-execution on resume.
DONE_STATUSES = ("ok", "cached")


class Manifest:
    """Mutable sweep record, persisted atomically after every change."""

    def __init__(self, path: str | Path, data: dict | None = None):
        self.path = Path(path)
        self.data = data or {
            "version": MANIFEST_VERSION,
            "source": None,
            "started_at": None,
            "jobs": None,
            "cells": {},
        }

    # ------------------------------------------------------------------ #
    # persistence                                                         #
    # ------------------------------------------------------------------ #

    @classmethod
    def load(cls, path: str | Path) -> "Manifest | None":
        """Read a manifest back, or None when absent/corrupt."""
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("version") != MANIFEST_VERSION:
            return None
        return cls(path, data)

    def save(self) -> None:
        """Write the manifest atomically next to the result cache."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w") as fh:
            # no sort_keys: the cells dict keeps sweep order across loads
            json.dump(self.data, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------ #
    # sweep lifecycle                                                     #
    # ------------------------------------------------------------------ #

    def begin(self, cells: list[Cell], keys: dict[Cell, str], source: str,
              jobs: int) -> None:
        """Record a sweep's spec; entries start ``pending``.

        Cells already present keep their record (a resumed sweep only
        re-registers what it is about to run).
        """
        self.data["source"] = source
        self.data["started_at"] = time.time()
        self.data["jobs"] = jobs
        for cell in cells:
            entry = self.data["cells"].get(cell.cell_id)
            if entry is None or entry.get("key") != keys[cell]:
                self.data["cells"][cell.cell_id] = {
                    "config": cell.config(),
                    "key": keys[cell],
                    "status": "pending",
                    "attempts": 0,
                    "wall_s": 0.0,
                    "error": None,
                }

    def mark(self, cell: Cell, status: str, wall_s: float = 0.0,
             attempts: int = 0, error: str | None = None) -> None:
        """Record a cell's terminal status for this sweep."""
        entry = self.data["cells"].setdefault(cell.cell_id, {
            "config": cell.config(), "key": None,
        })
        entry.update({
            "status": status,
            "wall_s": round(wall_s, 3),
            "attempts": attempts,
            "error": error,
        })

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    def cells(self) -> list[Cell]:
        """Every cell in the manifest's spec, in recorded order."""
        return [Cell.from_config(e["config"]) for e in self.data["cells"].values()]

    def pending_cells(self) -> list[Cell]:
        """Cells that still need execution (not ok/cached)."""
        return [
            Cell.from_config(e["config"])
            for e in self.data["cells"].values()
            if e.get("status") not in DONE_STATUSES
        ]

    def summary(self) -> dict[str, int]:
        """Histogram of per-cell statuses recorded so far."""
        counts: dict[str, int] = {}
        for entry in self.data["cells"].values():
            status = entry.get("status", "pending")
            counts[status] = counts.get(status, 0) + 1
        return counts
