"""Declarative registry of sweep cells.

The paper's evaluation is a grid — {figure/table} x {policy column} x
{workload} — and each grid point is a **cell**: one independent kernel
run producing one JSON-able result.  Experiments register their grids
here (name, cases, policy columns, a ``run(case, policy, scale)``
callable); the scheduler enumerates cells, fans them out across worker
processes, and the cache content-addresses each cell's result.

A :class:`Cell` is pure data (experiment id, case, policy, scale
divisor), so it pickles across process boundaries and hashes stably;
the callable is resolved from this registry inside the worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.experiments import POLICIES, Scale, reset_sim_state


class UnknownCellError(ReproError, KeyError):
    """A selector or cell referenced an unregistered experiment/case/policy."""


@dataclass(frozen=True)
class Cell:
    """One sweep grid point: experiment x case x policy at a scale."""

    experiment: str
    case: str
    policy: str
    scale_denominator: int = 128

    @property
    def cell_id(self) -> str:
        """Human-readable stable identifier (also the manifest key)."""
        return (f"{self.experiment}/{self.case}:{self.policy}"
                f"@{self.scale_denominator}")

    @property
    def scale(self) -> Scale:
        return Scale.from_denominator(self.scale_denominator)

    def config(self) -> dict:
        """The cell's identity as a plain dict (hashed into the cache key)."""
        return {
            "experiment": self.experiment,
            "case": self.case,
            "policy": self.policy,
            "scale_denominator": self.scale_denominator,
        }

    @classmethod
    def from_config(cls, config: dict) -> "Cell":
        return cls(
            experiment=config["experiment"],
            case=config["case"],
            policy=config["policy"],
            scale_denominator=config["scale_denominator"],
        )


@dataclass(frozen=True)
class Experiment:
    """A registered experiment grid.

    ``run(case, policy, scale)`` must be deterministic and return a
    JSON-able dict; ``version`` is baked into cache keys, so bumping it
    invalidates every cached cell of the experiment (use when the
    result *semantics* change without a source-digest change, e.g. in
    an interactive session).
    """

    name: str
    title: str
    cases: tuple[str, ...]
    policies: tuple[str, ...]
    run: Callable[[str, str, Scale], dict]
    version: int = 1
    #: extra content hashed into every cell key (scenario-backed
    #: experiments put their scenario file's digest here, so an edited
    #: scenario file invalidates its cached cells the same way a source
    #: edit does).  Empty for stock experiments — keys are unchanged.
    key_material: str = ""


#: name -> Experiment.  Populated by repro.runner.adapters at import.
EXPERIMENTS: dict[str, Experiment] = {}


def register(
    name: str,
    title: str,
    cases: tuple[str, ...],
    policies: tuple[str, ...],
    run: Callable[[str, str, Scale], dict],
    version: int = 1,
    replace: bool = False,
    key_material: str = "",
) -> Experiment:
    """Register an experiment grid; returns the Experiment record."""
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        raise UnknownCellError(f"unknown policies {unknown} for experiment {name!r}")
    if name in EXPERIMENTS and not replace:
        raise ValueError(f"experiment {name!r} already registered")
    exp = Experiment(name, title, tuple(cases), tuple(policies), run,
                     version, key_material)
    EXPERIMENTS[name] = exp
    return exp


def unregister(name: str) -> None:
    """Drop a registered experiment (test helper)."""
    EXPERIMENTS.pop(name, None)


def _ensure_adapters() -> None:
    """Load the stock experiment adapters exactly once."""
    import repro.runner.adapters  # noqa: F401  (registers on import)


def get_experiment(name: str) -> Experiment:
    """Look up a registered experiment; raises UnknownCellError."""
    _ensure_adapters()
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise UnknownCellError(
            f"unknown experiment {name!r}; have {sorted(EXPERIMENTS)}"
        ) from None


def experiment_names() -> list[str]:
    """Registered experiment names, sorted."""
    _ensure_adapters()
    return sorted(EXPERIMENTS)


def cells_for(
    experiment: str,
    scale_denominator: int = 128,
    cases: tuple[str, ...] | None = None,
    policies: tuple[str, ...] | None = None,
) -> list[Cell]:
    """Enumerate an experiment's cells (optionally a sub-grid)."""
    exp = get_experiment(experiment)
    for case in cases or ():
        if case not in exp.cases:
            raise UnknownCellError(
                f"unknown case {case!r} for {experiment}; have {list(exp.cases)}")
    for policy in policies or ():
        if policy not in exp.policies:
            raise UnknownCellError(
                f"unknown policy {policy!r} for {experiment}; have {list(exp.policies)}")
    return [
        Cell(exp.name, case, policy, scale_denominator)
        for case in (cases or exp.cases)
        for policy in (policies or exp.policies)
    ]


def parse_selectors(selectors: list[str], scale_denominator: int = 128) -> list[Cell]:
    """Expand CLI selectors into a deduplicated cell list.

    Grammar per selector: ``all`` | ``EXP`` | ``EXP/CASE`` |
    ``EXP:POLICY`` | ``EXP/CASE:POLICY``.
    """
    _ensure_adapters()
    cells: list[Cell] = []
    seen: set[Cell] = set()
    for selector in selectors:
        if selector == "all":
            expanded = [
                c for name in experiment_names()
                for c in cells_for(name, scale_denominator)
            ]
        else:
            exp_part, _, policy = selector.partition(":")
            exp_name, _, case = exp_part.partition("/")
            expanded = cells_for(
                exp_name,
                scale_denominator,
                cases=(case,) if case else None,
                policies=(policy,) if policy else None,
            )
        for cell in expanded:
            if cell not in seen:
                seen.add(cell)
                cells.append(cell)
    return cells


def execute_cell(cell: Cell) -> dict:
    """Run one cell to completion in the current process.

    Resets process-global simulator state first so the result is
    identical whether the cell runs in a fresh worker or mid-way
    through a long session, then JSON-round-trips the payload so the
    in-memory result is exactly what a cache hit would return.
    """
    import json

    exp = get_experiment(cell.experiment)
    if cell.case not in exp.cases:
        raise UnknownCellError(f"unknown case {cell.case!r} for {cell.experiment}")
    if cell.policy not in exp.policies:
        raise UnknownCellError(f"unknown policy {cell.policy!r} for {cell.experiment}")
    reset_sim_state()
    result = exp.run(cell.case, cell.policy, cell.scale)
    return json.loads(json.dumps(result))


def execute_cell_with_telemetry(cell: Cell) -> tuple[dict, list[dict]]:
    """Run one cell with telemetry capture armed.

    Returns ``(result, artifacts)`` where ``result`` is exactly what
    :func:`execute_cell` returns (capture observes, never perturbs
    simulated state) and ``artifacts`` is one JSON-able
    ``RunTelemetry.to_dict()`` per kernel the cell built — the payload
    the scheduler persists beside the cache entry.
    """
    from repro.metrics import telemetry

    telemetry.start_capture()
    try:
        result = execute_cell(cell)
    finally:
        artifacts = telemetry.end_capture({"cell_id": cell.cell_id})
    return result, [a.to_dict() for a in artifacts]
