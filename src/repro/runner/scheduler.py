"""Sweep scheduler: cached, fanned-out, crash-isolated cell execution.

``run_sweep`` takes a list of cells and drives each one to a terminal
:class:`CellOutcome`:

* **cached** — the result cache already holds this cell under its
  content address (config + source digest); nothing runs.
* **ok** — the cell executed (serially in-process for ``jobs <= 1``,
  else on a ``ProcessPoolExecutor``) and its envelope was cached.
* **timeout** — the per-cell wall-clock budget expired (enforced with a
  real-time interval timer inside the executing process, so a runaway
  cell cannot stall the sweep).
* **failed** — the cell raised; the traceback is captured in the
  outcome instead of propagating (one bad cell never kills the sweep).
* **crashed** — the worker process died outright (segfault, OOM kill,
  ``os._exit``).  The broken pool is rebuilt and the remaining cells
  continue.

Timeouts, failures and crashes are retried up to ``retries`` extra
attempts before the structured failure is reported.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable

from repro.runner.cache import ResultCache, cell_key, source_digest
from repro.runner.manifest import Manifest
from repro.runner.registry import Cell, execute_cell_with_telemetry, get_experiment

#: default per-cell wall-clock budget (seconds); generous — a paper
#: cell at 1/128 scale takes single-digit seconds.
DEFAULT_TIMEOUT_S = 900.0
#: default extra attempts after a failed/timed-out/crashed first try.
DEFAULT_RETRIES = 1

#: outcome statuses that carry a usable result.
GOOD_STATUSES = ("ok", "cached")


@dataclass
class CellOutcome:
    """Terminal state of one cell within a sweep."""

    cell: Cell
    status: str                 # ok | cached | failed | timeout | crashed
    result: dict | None = None
    error: str | None = None
    wall_s: float = 0.0
    attempts: int = 0
    key: str = ""
    #: RunTelemetry.to_dict() artifacts captured while the cell ran
    #: (restored from the cache envelope for cached outcomes).  Not part
    #: of as_record(): the JSONL/CSV row stays lean; readers that want
    #: telemetry go through the cache entries or this attribute.
    telemetry: list | None = None

    @property
    def good(self) -> bool:
        return self.status in GOOD_STATUSES

    def as_record(self) -> dict:
        """JSON-able row (the shape metrics.export serialises)."""
        record = {
            "cell_id": self.cell.cell_id,
            **self.cell.config(),
            "status": self.status,
            "attempts": self.attempts,
            "wall_s": round(self.wall_s, 3),
            "key": self.key,
        }
        if self.error:
            record["error"] = self.error
        if self.result is not None:
            record["result"] = self.result
        return record


class _CellTimeout(BaseException):
    """Raised by the interval timer inside a timed-out cell."""


def _pool(max_workers: int) -> ProcessPoolExecutor:
    """A worker pool whose children inherit this process's state.

    Fork (when the platform has it) is pinned explicitly: workers must
    inherit the already-imported simulator and any experiments
    registered at runtime, and the default start method is not fork on
    every platform/Python version.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = None
    return ProcessPoolExecutor(max_workers=max_workers, mp_context=ctx)


def _fmt_budget(timeout_s: float) -> str:
    """Human-readable budget string; sub-second budgets keep precision."""
    return f"{timeout_s:g}s"


def _guarded_execute(cell: Cell, timeout_s: float | None) -> tuple:
    """Run one cell, trapping failure/timeout into a status tuple.

    Runs in the worker process (or inline for serial sweeps).  Returns
    ``(status, result, error, wall_s, telemetry)`` — never raises, so a
    worker only dies if the cell takes the whole process down with it.

    The timeout outcome is computed *before* the interval timer is
    disarmed and the return happens *after*: the alarm can fire at any
    bytecode boundary, including between the cell finishing and the
    cleanup running, so the whole compute-and-disarm sequence sits
    inside one handler that converts a late ``_CellTimeout`` into the
    timeout outcome instead of letting it escape the contract.
    """
    start = time.perf_counter()
    use_alarm = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    outcome: tuple | None = None
    old_handler = None
    if use_alarm:
        def _on_alarm(signum, frame):
            raise _CellTimeout()

        old_handler = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        try:
            result, telemetry = execute_cell_with_telemetry(cell)
            outcome = ("ok", result, None,
                       time.perf_counter() - start, telemetry)
        except _CellTimeout:
            pass  # fall through to the shared timeout outcome below
        except Exception:
            outcome = ("failed", None, traceback.format_exc(limit=8),
                       time.perf_counter() - start, None)
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, old_handler)
    except _CellTimeout:
        # The alarm fired after the body completed but before the timer
        # was disarmed: the pending signal raised out of the ``finally``
        # (or on the way into it).  State may be partially restored, so
        # redo the disarm idempotently; the already-computed outcome
        # (if any) survives — the cell did finish, the signal was just
        # late.  With no computed outcome we fall through to timeout.
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            if old_handler is not None:
                signal.signal(signal.SIGALRM, old_handler)
    if outcome is None:
        outcome = ("timeout", None,
                   f"cell exceeded its {_fmt_budget(timeout_s)} budget",
                   time.perf_counter() - start, None)
    return outcome


def _execute_round(cells: list[Cell], jobs: int,
                   timeout_s: float | None) -> list[tuple[Cell, tuple]]:
    """One attempt at every cell; crash-isolated when pooled.

    Pooled results are *collected* in completion order (``as_completed``
    keeps the sweep responsive) but *returned* in submission order, so
    everything downstream — retry scheduling, manifest marks, progress
    callbacks — observes the same deterministic cell order regardless of
    worker count.
    """
    if not cells:
        return []
    if jobs <= 1:
        return [(cell, _guarded_execute(cell, timeout_s)) for cell in cells]
    settled: dict[Cell, tuple] = {}
    with _pool(min(jobs, len(cells))) as pool:
        futures = {pool.submit(_guarded_execute, cell, timeout_s): cell
                   for cell in cells}
        for future in as_completed(futures):
            cell = futures[future]
            try:
                settled[cell] = future.result()
            except BrokenProcessPool:
                # A worker died; every cell in flight on the broken pool
                # reports a crash (retried on the next round's new pool).
                settled[cell] = ("crashed", None,
                                 "worker process died while running this cell",
                                 0.0, None)
            except Exception as exc:  # submission/pickling problems
                settled[cell] = ("failed", None, repr(exc), 0.0, None)
    return [(cell, settled[cell]) for cell in cells]


def _execute_isolated(cells: list[Cell],
                      timeout_s: float | None) -> list[tuple[Cell, tuple]]:
    """Run each cell in its own single-worker pool.

    Used to retry cells from a broken pool: when a worker dies, every
    in-flight future reports a crash, so the actual crasher cannot be
    told apart from innocent bystanders.  One pool per cell confines a
    repeat crash to the cell that caused it.
    """
    out: list[tuple[Cell, tuple]] = []
    for cell in cells:
        with _pool(1) as pool:
            try:
                out.append((cell,
                            pool.submit(_guarded_execute, cell, timeout_s).result()))
            except BrokenProcessPool:
                out.append((cell, ("crashed", None,
                                   "worker process died while running this cell",
                                   0.0, None)))
            except Exception as exc:
                out.append((cell, ("failed", None, repr(exc), 0.0, None)))
    return out


@dataclass
class SweepReport:
    """Everything ``run_sweep`` learned, in cell order."""

    outcomes: list[CellOutcome]
    source: str = ""
    wall_s: float = 0.0

    def counts(self) -> dict[str, int]:
        """Histogram of outcome statuses."""
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def executed(self) -> int:
        """Cells that actually ran (everything not served from cache)."""
        return sum(1 for o in self.outcomes if o.status != "cached")

    @property
    def ok(self) -> bool:
        return all(o.good for o in self.outcomes)

    def results(self) -> dict[str, dict]:
        """cell_id -> result payload for the good outcomes."""
        return {o.cell.cell_id: o.result for o in self.outcomes if o.good}


def run_sweep(
    cells: list[Cell],
    *,
    jobs: int = 1,
    timeout_s: float | None = DEFAULT_TIMEOUT_S,
    retries: int = DEFAULT_RETRIES,
    cache: ResultCache | None = None,
    manifest: Manifest | None = None,
    force: bool = False,
    progress: Callable[[CellOutcome], None] | None = None,
) -> SweepReport:
    """Drive every cell to a terminal outcome; never raises per-cell.

    ``force`` bypasses cache lookups (results are still stored).  The
    manifest, when given, is updated and persisted after every cell so
    an interrupted sweep can be resumed.
    """
    started = time.perf_counter()
    digest = source_digest()
    keys = {}
    for cell in cells:
        exp = get_experiment(cell.experiment)
        keys[cell] = cell_key(cell, digest, exp.version, exp.key_material)
    if manifest is not None:
        manifest.begin(cells, keys, digest, jobs)
        manifest.save()

    outcomes: dict[Cell, CellOutcome] = {}

    def settle(outcome: CellOutcome) -> None:
        outcomes[outcome.cell] = outcome
        if manifest is not None:
            manifest.mark(outcome.cell, outcome.status, outcome.wall_s,
                          outcome.attempts, outcome.error)
            manifest.save()
        if progress is not None:
            progress(outcome)

    pending: list[Cell] = []
    for cell in cells:
        envelope = None if (cache is None or force) else cache.get(keys[cell])
        if envelope is not None:
            settle(CellOutcome(cell, "cached", envelope["result"],
                               key=keys[cell],
                               telemetry=envelope.get("telemetry")))
        else:
            pending.append(cell)

    attempts = {cell: 0 for cell in pending}
    last_status: dict[Cell, str] = {}
    while pending:
        round_cells, pending = pending, []
        # Cells that crashed last round retry in isolation (own pool),
        # so a repeat crash cannot take unrelated cells down with it.
        isolated = [c for c in round_cells if last_status.get(c) == "crashed"]
        pooled = [c for c in round_cells if last_status.get(c) != "crashed"]
        round_results = _execute_round(pooled, jobs, timeout_s)
        round_results += _execute_isolated(isolated, timeout_s)
        for cell, (status, result, error, wall, telemetry) in round_results:
            attempts[cell] += 1
            last_status[cell] = status
            if status == "ok":
                envelope = {
                    "key": keys[cell],
                    "cell_id": cell.cell_id,
                    "cell": cell.config(),
                    "source": digest,
                    "result": result,
                    "telemetry": telemetry or [],
                    "timing": {
                        "wall_s": round(wall, 3),
                        "finished_at": time.time(),
                        "attempts": attempts[cell],
                    },
                }
                if cache is not None:
                    cache.put(keys[cell], envelope)
                settle(CellOutcome(cell, "ok", result, wall_s=wall,
                                   attempts=attempts[cell], key=keys[cell],
                                   telemetry=telemetry or []))
            elif attempts[cell] <= retries:
                pending.append(cell)
            else:
                settle(CellOutcome(cell, status, None, error=error,
                                   wall_s=wall, attempts=attempts[cell],
                                   key=keys[cell]))

    return SweepReport(
        outcomes=[outcomes[cell] for cell in cells],
        source=digest,
        wall_s=time.perf_counter() - started,
    )
