"""Declarative scenarios: versioned schema, loader, timeline executor.

See docs/usage.md ("Author a scenario") for the full schema reference
and examples/scenarios/ for runnable documents.
"""

from repro.scenario.executor import (
    discover_scenarios,
    experiment_name,
    register_scenario,
    register_scenario_file,
    run_scenario_case,
)
from repro.scenario.schema import (
    SCHEMA_VERSION,
    Scenario,
    ScenarioError,
    load_scenario,
    parse_scenario_text,
    scenario_digest,
    validate_scenario,
)

__all__ = [
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "discover_scenarios",
    "experiment_name",
    "load_scenario",
    "parse_scenario_text",
    "register_scenario",
    "register_scenario_file",
    "run_scenario_case",
    "scenario_digest",
    "validate_scenario",
]
