"""Timeline executor: drive the kernel epoch loop from a Scenario.

``run_scenario_case`` executes one (case, policy) grid point of a
validated :class:`~repro.scenario.schema.Scenario` and returns a
JSON-able result; ``register_scenario`` wraps that in a registry
:class:`~repro.runner.registry.Experiment` whose cells flow through the
sweep scheduler, content-addressed cache (the scenario digest joins the
cache key via ``Experiment.key_material``), telemetry capture,
regression gate and HTML report exactly like the hand-written adapters.

Within a phase, actions apply in a fixed documented order —
kill, restart, spawn, hog, balloon, node_pressure, fragment — then the
kernel runs ``run_s`` epochs.  After the last phase the timeline
optionally drains (runs until every workload finishes, bounded by
``max_epochs`` total) and the scenario's assertions are evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import OutOfMemoryError
from repro.experiments import (
    Scale,
    make_kernel,
    rss_bytes,
    useful_bytes,
)
from repro.scenario.schema import (
    Scenario,
    ScenarioError,
    SpawnSpec,
    load_scenario,
)
from repro.units import GB, MB, SEC

#: frame-table owner id for balloon-held frames (cf. the fragmenter's
#: FILE_CACHE_OWNER = -2); balloon frames are not reclaimable.
BALLOON_OWNER = -3


@dataclass
class _ManagedProcess:
    """One scenario-managed process: its spec, live handle and history."""

    name: str
    workload: str
    spawn: SpawnSpec | None          # None for hogs
    hog_gb: float = 0.0
    hog_hold_s: float = 0.0
    node: int | None = None
    run: object = None               # WorkloadRun
    alive: bool = False
    restarts: int = 0
    #: faults accumulated by incarnations that were torn down.
    prior_faults: int = 0


@dataclass
class _Timeline:
    """Mutable execution state for one (case, policy) grid point."""

    kernel: object
    scale: Scale
    processes: dict[str, _ManagedProcess] = field(default_factory=dict)
    balloon_frames: list[int] = field(default_factory=list)
    pressure_frames: list[int] = field(default_factory=list)
    fleet: object = None             # FleetManager once a fleet action ran
    oom: bool = False


def _make_mempolicy(kind: str | None, node: int | None):
    if kind is None:
        return None
    from repro.numa.mempolicy import MemPolicy, MemPolicyKind

    mp_kind = MemPolicyKind(kind)
    if mp_kind in (MemPolicyKind.PREFERRED, MemPolicyKind.BIND):
        return MemPolicy(mp_kind, node=node if node is not None else 0)
    return MemPolicy(mp_kind)


def _spawn_one(tl: _Timeline, name: str, spec: SpawnSpec) -> None:
    from repro.workloads.catalog import make_workload

    workload = make_workload(spec.workload, tl.scale.factor)
    run = tl.kernel.spawn(workload, name=name, node=spec.node,
                          mempolicy=_make_mempolicy(spec.mempolicy, spec.node))
    managed = tl.processes.get(name)
    if managed is None:
        managed = _ManagedProcess(name=name, workload=spec.workload,
                                  spawn=spec, node=spec.node)
        tl.processes[name] = managed
    managed.run = run
    managed.alive = True


def _spawn_hog(tl: _Timeline, hog) -> None:
    from repro.workloads.hog import MemoryHog

    workload = MemoryHog(footprint_bytes=hog.gb * GB,
                         hold_us=hog.hold_s * SEC, scale=tl.scale.factor)
    run = tl.kernel.spawn(workload, name=hog.name, node=hog.node)
    managed = tl.processes.get(hog.name)
    if managed is None:
        managed = _ManagedProcess(name=hog.name, workload="memhog",
                                  spawn=None, hog_gb=hog.gb,
                                  hog_hold_s=hog.hold_s, node=hog.node)
        tl.processes[hog.name] = managed
    managed.run = run
    managed.alive = True


def _kill(tl: _Timeline, name: str) -> None:
    managed = tl.processes[name]
    if managed.alive and managed.run is not None:
        managed.prior_faults += managed.run.proc.stats.faults
        tl.kernel.exit_process(managed.run.proc)
        managed.alive = False


def _restart(tl: _Timeline, name: str) -> None:
    managed = tl.processes[name]
    _kill(tl, name)
    managed.restarts += 1
    if managed.spawn is not None:
        _spawn_one(tl, name, managed.spawn)
    else:
        from repro.scenario.schema import HogSpec

        _spawn_hog(tl, HogSpec(gb=managed.hog_gb, name=name,
                               hold_s=managed.hog_hold_s, node=managed.node))


def _inflate(tl: _Timeline, pages: int, frames: list[int],
             node: int | None = None) -> int:
    """Take ``pages`` order-0 frames straight from the buddy."""
    taken = 0
    kwargs = {} if node is None else {"node": node, "strict": True}
    while taken < pages:
        got = tl.kernel.buddy.try_alloc(0, False, BALLOON_OWNER, **kwargs)
        if got is None:
            break
        frames.append(got[0])
        taken += 1
    return taken


def _release(tl: _Timeline, frames: list[int]) -> None:
    for frame in frames:
        tl.kernel.buddy.free(frame, 0)
    frames.clear()


def _run_epochs(tl: _Timeline, count: int) -> None:
    try:
        tl.kernel.run_epochs(count)
    except OutOfMemoryError:
        tl.oom = True


def _apply_fleet(tl: _Timeline, spec) -> None:
    """First fleet action attaches the manager; later ones re-rate it."""
    if tl.fleet is None:
        from repro.fleet import FleetManager, FleetSpec

        tl.fleet = FleetManager(
            tl.kernel,
            FleetSpec(rate_per_s=spec.rate_per_s, seed=spec.seed,
                      max_tenants=spec.max_tenants),
            scale_factor=tl.scale.factor,
        )
    else:
        tl.fleet.set_rate(spec.rate_per_s)


def _gb_to_pages(tl: _Timeline, gb: float) -> int:
    from repro.units import BASE_PAGE_SIZE

    return max(1, int(tl.scale.bytes(gb * GB)) // BASE_PAGE_SIZE)


def _apply_phase(tl: _Timeline, phase) -> None:
    for name in phase.kill:
        _kill(tl, name)
    for name in phase.restart:
        _restart(tl, name)
    for spec in phase.spawn:
        if spec.count == 1:
            _spawn_one(tl, spec.name, spec)
        else:
            for j in range(spec.count):
                _spawn_one(tl, f"{spec.name}-{j}", spec)
    for hog in phase.hog:
        _spawn_hog(tl, hog)
    if phase.balloon is not None:
        if phase.balloon.release:
            _release(tl, tl.balloon_frames)
        if phase.balloon.gb:
            _inflate(tl, _gb_to_pages(tl, phase.balloon.gb),
                     tl.balloon_frames)
    for pressure in phase.node_pressure:
        _inflate(tl, _gb_to_pages(tl, pressure.gb), tl.pressure_frames,
                 node=pressure.node)
    if phase.fragment is not None:
        tl.kernel.fragmenter.fragment(
            keep_fraction=phase.fragment.keep_fraction,
            target_fmfi=phase.fragment.target_fmfi)
    if phase.fleet is not None:
        _apply_fleet(tl, phase.fleet)
    if phase.run_s and not tl.oom:
        _run_epochs(tl, phase.run_s)


# --------------------------------------------------------------------- #
# measurement + assertions                                               #
# --------------------------------------------------------------------- #


def _process_report(tl: _Timeline, managed: _ManagedProcess) -> dict:
    proc = managed.run.proc
    factor = tl.scale.factor
    rss = rss_bytes(proc) if managed.alive else 0
    useful = useful_bytes(tl.kernel, proc) if managed.alive else 0
    return {
        "workload": managed.workload,
        "alive": managed.alive,
        "finished": bool(managed.run.finished),
        "restarts": managed.restarts,
        "faults": managed.prior_faults + proc.stats.faults,
        "promotions": proc.stats.promotions,
        "rss_mb_full": round(rss / factor / MB, 3),
        "bloat_mb_full": round(max(0, rss - useful) / factor / MB, 3),
        "mmu_overhead": round(proc.mmu_overhead, 6),
    }


def _fault_p99_us(kernel) -> float | None:
    """p99 over the merged fault-latency histograms, or None untraced."""
    from repro.trace import LatencyHistogram, TraceKind

    tracer = kernel.trace
    if tracer is None:
        return None
    merged = LatencyHistogram()
    for kind in (TraceKind.FAULT_BASE, TraceKind.FAULT_HUGE,
                 TraceKind.FAULT_COW):
        hist = tracer.histograms.get(kind)
        if hist is None:
            continue
        merged.count += hist.count
        merged.total_us += hist.total_us
        merged.min_us = min(merged.min_us, hist.min_us)
        merged.max_us = max(merged.max_us, hist.max_us)
        for idx, count in hist.buckets.items():
            merged.buckets[idx] = merged.buckets.get(idx, 0) + count
    if not merged.count:
        return None
    return merged.quantile(0.99)


def _evaluate_assertion(spec, tl: _Timeline, reports: dict,
                        fault_p99: float | None) -> dict:
    record: dict = {"kind": spec.kind}
    if spec.kind == "bloat-ceiling":
        if spec.process is not None:
            record["process"] = spec.process
            actual = reports[spec.process]["bloat_mb_full"]
        else:
            actual = round(sum(r["bloat_mb_full"] for r in reports.values()), 3)
        record.update(actual_mb=actual, limit_mb=spec.max_mb,
                      passed=actual <= spec.max_mb)
    elif spec.kind == "fault-p99":
        actual = fault_p99
        record.update(actual_us=None if actual is None else round(actual, 3),
                      limit_us=spec.max_us,
                      passed=actual is not None and actual <= spec.max_us)
    else:  # fairness-spread
        values = [r[spec.metric] for r in reports.values()]
        positive = [v for v in values if v > 0]
        if len(positive) < 2:
            ratio = 1.0
        else:
            ratio = max(positive) / min(positive)
        record.update(metric=spec.metric, actual_ratio=round(ratio, 4),
                      limit_ratio=spec.max_ratio,
                      passed=ratio <= spec.max_ratio)
    return record


def format_assertion_failure(record: dict) -> str:
    """One failed assertion as a measured-value-vs-threshold sentence.

    The record is one entry of a scenario result's ``assertions`` list
    (see :func:`_evaluate_assertion`); the rendering names the measured
    value and the limit it broke, so a failing ``repro scenario run``
    says *what* was out of bounds, not just that something was.
    """
    kind = record.get("kind")
    if kind == "bloat-ceiling":
        scope = (f" [{record['process']}]"
                 if record.get("process") is not None else " [total]")
        return (f"bloat-ceiling{scope}: measured {record['actual_mb']} MB "
                f"> limit {record['limit_mb']} MB")
    if kind == "fault-p99":
        if record.get("actual_us") is None:
            return (f"fault-p99: no fault samples recorded "
                    f"(limit {record['limit_us']} us)")
        return (f"fault-p99: measured {record['actual_us']} us "
                f"> limit {record['limit_us']} us")
    if kind == "fairness-spread":
        return (f"fairness-spread[{record.get('metric')}]: measured ratio "
                f"{record['actual_ratio']} > limit {record['limit_ratio']}")
    detail = ", ".join(f"{k}={v}" for k, v in sorted(record.items())
                       if k not in ("kind", "passed"))
    return f"{kind}: {detail}"


# --------------------------------------------------------------------- #
# the grid-point runner + registration                                   #
# --------------------------------------------------------------------- #


def run_scenario_case(scenario: Scenario, case: str, policy: str,
                      scale: Scale) -> dict:
    """Execute one (case, policy) grid point; returns a JSON-able dict."""
    machine = scenario.case(case).machine
    kernel = make_kernel(
        machine.mem_gb * GB, policy, scale,
        numa_nodes=machine.numa_nodes,
        numa_balance=machine.numa_balance,
        swap_bytes_full=machine.swap_gb * GB,
        boot_zeroed=machine.boot_zeroed,
    )
    if any(a.kind == "fault-p99" for a in scenario.assertions):
        from repro import trace

        # telemetry capture may already have attached one (attach is
        # idempotent); warn_on_drop off — histograms are drop-exact.
        trace.attach(kernel, warn_on_drop=False)

    tl = _Timeline(kernel=kernel, scale=scale)
    for phase in scenario.phases:
        if tl.oom:
            break
        _apply_phase(tl, phase)
    if scenario.drain and not tl.oom:
        remaining = scenario.max_epochs - kernel.stats.epochs
        if remaining > 0:
            try:
                kernel.run(max_epochs=remaining)
            except OutOfMemoryError:
                tl.oom = True

    reports = {name: _process_report(tl, managed)
               for name, managed in tl.processes.items()}
    fault_p99 = _fault_p99_us(kernel)
    assertions = [_evaluate_assertion(a, tl, reports, fault_p99)
                  for a in scenario.assertions]
    stats = kernel.stats
    result = {
        "scenario": scenario.name,
        "case": case,
        "policy": policy,
        "epochs": stats.epochs,
        "time_s": round(kernel.now_us / SEC, 3),
        "oom": tl.oom,
        "fmfi": round(kernel.fmfi(), 4),
        "faults": sum(r["faults"] for r in reports.values()),
        "rss_mb_full": round(sum(r["rss_mb_full"] for r in reports.values()), 3),
        "bloat_mb_full": round(sum(r["bloat_mb_full"] for r in reports.values()), 3),
        "processes": reports,
        "assertions": assertions,
        "assertions_passed": all(a["passed"] for a in assertions),
    }
    if fault_p99 is not None:
        result["fault_p99_us"] = round(fault_p99, 3)
    if tl.fleet is not None:
        # conditional key: fleetless scenario results stay byte-identical.
        result["fleet"] = tl.fleet.snapshot()
    return result


def experiment_name(scenario: Scenario) -> str:
    """The registry name scenario cells run under."""
    return f"scn-{scenario.name}"


def register_scenario(scenario: Scenario, replace: bool = True):
    """Register a scenario as a sweep experiment; returns the record.

    The scenario's content digest becomes the experiment's
    ``key_material``, so cached cells are invalidated by scenario edits
    exactly like source edits — and a warm rerun of an unchanged
    scenario is a 100 % cache hit.
    """
    from repro.runner.registry import register

    def run(case: str, policy: str, scale: Scale) -> dict:
        return run_scenario_case(scenario, case, policy, scale)

    return register(
        experiment_name(scenario),
        title=scenario.title,
        cases=scenario.case_names(),
        policies=scenario.policies,
        run=run,
        replace=replace,
        key_material=f"scenario:{scenario.digest}",
    )


def register_scenario_file(path: str | Path):
    """Load, validate and register a scenario file in one step."""
    return register_scenario(load_scenario(path))


def discover_scenarios(directory: str | Path) -> list[Path]:
    """Scenario files under ``directory`` (.yaml/.yml/.json), sorted."""
    directory = Path(directory)
    if not directory.is_dir():
        raise ScenarioError("scenario", f"{directory} is not a directory")
    return sorted(
        path for suffix in ("*.yaml", "*.yml", "*.json")
        for path in directory.glob(suffix)
    )
