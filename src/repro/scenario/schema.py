"""Versioned declarative scenario schema and validating loader.

A *scenario* is a JSON or YAML document describing a multi-process
experiment as data: a machine, a grid of policy columns (and optional
case variants), a phased timeline — spawn/kill/restart workloads from
the catalog, fragmenter bursts, memory hogs, balloon inflation, NUMA
node pressure — and in-scenario assertions (bloat ceiling, p99 fault
latency, fairness spread).  ``load_scenario`` parses and validates the
document; :mod:`repro.scenario.executor` compiles the result into
registry cells and drives the kernel epoch loop.

Validation is exhaustive and failures carry a precise dotted/indexed
path plus a did-you-mean suggestion where one exists::

    scenario.phases[2].spawn.workload: unknown workload 'redsi', did you mean 'redis-fig1'?

Schema version 1 (the ``scenario`` key) is the only one understood; the
full field reference lives in docs/usage.md.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.experiments import POLICIES

#: the schema version this loader understands.
SCHEMA_VERSION = 1

#: simulated seconds per epoch at the default epoch_us; phase ``run_s``
#: counts epochs, which are 1 simulated second each.
_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")

_ASSERTION_KINDS = ("bloat-ceiling", "fault-p99", "fairness-spread")
_FAIRNESS_METRICS = ("rss_mb_full", "faults", "mmu_overhead")
_MEMPOLICIES = ("local", "interleave", "preferred", "bind")

#: every key a phase mapping may carry, in the order actions apply.
PHASE_ACTION_ORDER = ("kill", "restart", "spawn", "hog", "balloon",
                      "node_pressure", "fragment", "fleet")
_PHASE_KEYS = ("name",) + PHASE_ACTION_ORDER + ("run_s",)


class ScenarioError(ReproError, ValueError):
    """A scenario document failed validation.

    ``path`` is the dotted/indexed location of the offending field
    (``scenario.phases[2].spawn.workload``); ``str()`` renders
    ``<path>: <message>``.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}")


def _suggest(value: str, options) -> str:
    """``, did you mean '...'?`` when a close match exists, else ''."""
    matches = difflib.get_close_matches(str(value), list(options), n=1,
                                        cutoff=0.5)
    return f", did you mean {matches[0]!r}?" if matches else ""


# --------------------------------------------------------------------- #
# validated model                                                        #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class MachineSpec:
    """The kernel the scenario builds (full-scale sizes; see Scale)."""

    mem_gb: float = 48.0
    numa_nodes: int = 1
    numa_balance: bool = False
    swap_gb: float = 0.0
    boot_zeroed: bool = True


@dataclass(frozen=True)
class SpawnSpec:
    """One ``spawn`` action: launch catalog workload(s)."""

    workload: str
    name: str
    count: int = 1
    node: int | None = None
    mempolicy: str | None = None


@dataclass(frozen=True)
class HogSpec:
    """One ``hog`` action: a resident anonymous-memory hog."""

    gb: float
    name: str
    hold_s: float = 3600.0
    node: int | None = None


@dataclass(frozen=True)
class BalloonSpec:
    """One ``balloon`` action: take frames straight from the buddy."""

    gb: float = 0.0
    release: bool = False


@dataclass(frozen=True)
class NodePressureSpec:
    """One ``node_pressure`` action: a balloon pinned to one NUMA node."""

    node: int
    gb: float


@dataclass(frozen=True)
class FragmentSpec:
    """One ``fragment`` action: a fragmenter burst."""

    keep_fraction: float = 0.1
    target_fmfi: float | None = None


@dataclass(frozen=True)
class FleetPhaseSpec:
    """One ``fleet`` action: start (or re-rate) multi-tenant churn.

    The first fleet action in a timeline attaches a
    :class:`~repro.fleet.manager.FleetManager` with this arrival rate;
    later ones just change the rate, so a scenario can ramp churn phase
    by phase.
    """

    rate_per_s: float
    seed: int = 0
    max_tenants: int = 0


@dataclass(frozen=True)
class PhaseSpec:
    """One timeline phase: actions applied in a fixed order, then
    ``run_s`` epochs of the kernel loop."""

    name: str
    kill: tuple[str, ...] = ()
    restart: tuple[str, ...] = ()
    spawn: tuple[SpawnSpec, ...] = ()
    hog: tuple[HogSpec, ...] = ()
    balloon: BalloonSpec | None = None
    node_pressure: tuple[NodePressureSpec, ...] = ()
    fragment: FragmentSpec | None = None
    fleet: FleetPhaseSpec | None = None
    run_s: int = 0


@dataclass(frozen=True)
class AssertionSpec:
    """One in-scenario assertion, checked after the timeline drains.

    * ``bloat-ceiling`` — RSS minus useful bytes, descaled to full-scale
      MB, per ``process`` or totalled, must stay <= ``max_mb``.
    * ``fault-p99`` — the p99 of the merged fault-latency log2
      histograms (base+huge+COW) must stay <= ``max_us``.
    * ``fairness-spread`` — max/min of ``metric`` across processes must
      stay <= ``max_ratio``.
    """

    kind: str
    max_mb: float | None = None
    max_us: float | None = None
    max_ratio: float | None = None
    metric: str | None = None
    process: str | None = None


@dataclass(frozen=True)
class CaseSpec:
    """One case variant: a name plus machine overrides."""

    name: str
    machine: MachineSpec


@dataclass(frozen=True)
class Scenario:
    """A fully validated scenario document."""

    name: str
    title: str
    description: str
    policies: tuple[str, ...]
    cases: tuple[CaseSpec, ...]
    phases: tuple[PhaseSpec, ...]
    assertions: tuple[AssertionSpec, ...]
    max_epochs: int = 6000
    drain: bool = True
    #: sha256 over the canonical JSON of the parsed document — the
    #: cache-key material, so editing the scenario invalidates exactly
    #: its own cells (whitespace/comment edits do not).
    digest: str = ""
    #: where the document came from (diagnostics only; not hashed).
    source_path: str = ""

    def case_names(self) -> tuple[str, ...]:
        """The case column of the scenario's grid, in document order."""
        return tuple(case.name for case in self.cases)

    def case(self, name: str) -> CaseSpec:
        """Look up one case variant by name; raises KeyError."""
        for case in self.cases:
            if case.name == name:
                return case
        raise KeyError(name)


# --------------------------------------------------------------------- #
# validation primitives                                                  #
# --------------------------------------------------------------------- #


def _expect_mapping(value, path: str, allowed: tuple[str, ...],
                    required: tuple[str, ...] = ()) -> dict:
    if not isinstance(value, dict):
        raise ScenarioError(path, f"expected a mapping, got {type(value).__name__}")
    for key in value:
        if not isinstance(key, str) or key not in allowed:
            raise ScenarioError(f"{path}.{key}",
                                f"unknown key {key!r}{_suggest(key, allowed)}")
    for key in required:
        if key not in value:
            raise ScenarioError(path, f"missing required key {key!r}")
    return value


def _expect_str(value, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(path, f"expected a string, got {type(value).__name__}")
    return value


def _expect_name(value, path: str) -> str:
    name = _expect_str(value, path)
    if not _NAME_RE.match(name):
        raise ScenarioError(
            path, f"invalid name {name!r} (want lowercase [a-z0-9._-])")
    return name


def _expect_bool(value, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(path, f"expected a boolean, got {type(value).__name__}")
    return value


def _expect_number(value, path: str, *, minimum=None, maximum=None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(path, f"expected a number, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ScenarioError(path, f"must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ScenarioError(path, f"must be <= {maximum}, got {value}")
    return float(value)


def _expect_int(value, path: str, *, minimum=None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(path, f"expected an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise ScenarioError(path, f"must be >= {minimum}, got {value}")
    return value


def _expect_choice(value, path: str, options) -> str:
    name = _expect_str(value, path)
    if name not in options:
        raise ScenarioError(
            path, f"unknown {path.rsplit('.', 1)[-1]} {name!r}"
                  f"{_suggest(name, options)}")
    return name


def _listify(value, path: str) -> list[tuple[object, str]]:
    """A value that may be one item or a list: ``(item, item_path)``."""
    if isinstance(value, list):
        return [(item, f"{path}[{i}]") for i, item in enumerate(value)]
    return [(value, path)]


# --------------------------------------------------------------------- #
# section validators                                                     #
# --------------------------------------------------------------------- #


def _workload_names() -> tuple[str, ...]:
    from repro.workloads.catalog import WORKLOADS

    return tuple(sorted(WORKLOADS))


def _validate_machine(value, path: str, base: MachineSpec) -> MachineSpec:
    raw = _expect_mapping(value, path, ("mem_gb", "numa_nodes", "numa_balance",
                                        "swap_gb", "boot_zeroed"))
    spec = MachineSpec(
        mem_gb=_expect_number(raw["mem_gb"], f"{path}.mem_gb", minimum=1e-3)
        if "mem_gb" in raw else base.mem_gb,
        numa_nodes=_expect_int(raw["numa_nodes"], f"{path}.numa_nodes", minimum=1)
        if "numa_nodes" in raw else base.numa_nodes,
        numa_balance=_expect_bool(raw["numa_balance"], f"{path}.numa_balance")
        if "numa_balance" in raw else base.numa_balance,
        swap_gb=_expect_number(raw["swap_gb"], f"{path}.swap_gb", minimum=0)
        if "swap_gb" in raw else base.swap_gb,
        boot_zeroed=_expect_bool(raw["boot_zeroed"], f"{path}.boot_zeroed")
        if "boot_zeroed" in raw else base.boot_zeroed,
    )
    if spec.numa_balance and spec.numa_nodes < 2:
        raise ScenarioError(f"{path}.numa_balance",
                            "needs numa_nodes >= 2 to balance anything")
    return spec


def _validate_node(raw: dict, path: str, key: str, nodes: int) -> int | None:
    if key not in raw:
        return None
    node = _expect_int(raw[key], f"{path}.{key}", minimum=0)
    if node >= nodes:
        raise ScenarioError(f"{path}.{key}",
                            f"node {node} out of range (machine has {nodes})")
    return node


def _validate_spawn(value, path: str, nodes: int, index: int) -> SpawnSpec:
    raw = _expect_mapping(value, path,
                          ("workload", "name", "count", "node", "mempolicy"),
                          required=("workload",))
    workloads = _workload_names()
    workload = _expect_str(raw["workload"], f"{path}.workload")
    if workload not in workloads:
        raise ScenarioError(f"{path}.workload",
                            f"unknown workload {workload!r}"
                            f"{_suggest(workload, workloads)}")
    name = (_expect_name(raw["name"], f"{path}.name")
            if "name" in raw else f"{workload}-{index}")
    count = (_expect_int(raw["count"], f"{path}.count", minimum=1)
             if "count" in raw else 1)
    mempolicy = (_expect_choice(raw["mempolicy"], f"{path}.mempolicy",
                                _MEMPOLICIES)
                 if "mempolicy" in raw else None)
    return SpawnSpec(workload=workload, name=name, count=count,
                     node=_validate_node(raw, path, "node", nodes),
                     mempolicy=mempolicy)


def _validate_hog(value, path: str, nodes: int, index: int) -> HogSpec:
    raw = _expect_mapping(value, path, ("gb", "name", "hold_s", "node"),
                          required=("gb",))
    return HogSpec(
        gb=_expect_number(raw["gb"], f"{path}.gb", minimum=1e-3),
        name=(_expect_name(raw["name"], f"{path}.name")
              if "name" in raw else f"hog-{index}"),
        hold_s=(_expect_number(raw["hold_s"], f"{path}.hold_s", minimum=0)
                if "hold_s" in raw else 3600.0),
        node=_validate_node(raw, path, "node", nodes),
    )


def _validate_balloon(value, path: str) -> BalloonSpec:
    raw = _expect_mapping(value, path, ("gb", "release"))
    release = (_expect_bool(raw["release"], f"{path}.release")
               if "release" in raw else False)
    gb = (_expect_number(raw["gb"], f"{path}.gb", minimum=1e-3)
          if "gb" in raw else 0.0)
    if not release and "gb" not in raw:
        raise ScenarioError(path, "needs 'gb' (inflate) or 'release: true'")
    return BalloonSpec(gb=gb, release=release)


def _validate_node_pressure(value, path: str, nodes: int) -> NodePressureSpec:
    raw = _expect_mapping(value, path, ("node", "gb"), required=("node", "gb"))
    if nodes < 2:
        raise ScenarioError(path, "needs a multi-node machine "
                                  "(machine.numa_nodes >= 2)")
    node = _validate_node(raw, path, "node", nodes)
    return NodePressureSpec(
        node=node,
        gb=_expect_number(raw["gb"], f"{path}.gb", minimum=1e-3),
    )


def _validate_fleet(value, path: str) -> FleetPhaseSpec:
    raw = _expect_mapping(value, path, ("rate_per_s", "seed", "max_tenants"),
                          required=("rate_per_s",))
    return FleetPhaseSpec(
        rate_per_s=_expect_number(raw["rate_per_s"], f"{path}.rate_per_s",
                                  minimum=1e-6),
        seed=(_expect_int(raw["seed"], f"{path}.seed", minimum=0)
              if "seed" in raw else 0),
        max_tenants=(_expect_int(raw["max_tenants"], f"{path}.max_tenants",
                                 minimum=0)
                     if "max_tenants" in raw else 0),
    )


def _validate_fragment(value, path: str) -> FragmentSpec:
    raw = _expect_mapping(value, path, ("keep_fraction", "target_fmfi"))
    target = (_expect_number(raw["target_fmfi"], f"{path}.target_fmfi",
                             minimum=0.0, maximum=1.0)
              if "target_fmfi" in raw else None)
    return FragmentSpec(
        keep_fraction=(_expect_number(raw["keep_fraction"],
                                      f"{path}.keep_fraction",
                                      minimum=0.0, maximum=1.0)
                       if "keep_fraction" in raw else 0.1),
        target_fmfi=target,
    )


@dataclass
class _NameTracker:
    """Spawn-order bookkeeping: which process names exist when."""

    known: set = field(default_factory=set)

    def add(self, name: str, path: str) -> None:
        if name in self.known:
            raise ScenarioError(path, f"duplicate process name {name!r}")
        self.known.add(name)

    def require(self, name, path: str) -> str:
        name = _expect_str(name, path)
        if name not in self.known:
            raise ScenarioError(
                path, f"unknown process {name!r} (not spawned in an "
                      f"earlier phase){_suggest(name, self.known)}")
        return name


def _validate_phase(value, path: str, index: int, nodes: int,
                    names: _NameTracker) -> PhaseSpec:
    raw = _expect_mapping(value, path, _PHASE_KEYS)
    name = (_expect_name(raw["name"], f"{path}.name")
            if "name" in raw else f"phase-{index}")

    kills = tuple(names.require(item, ipath)
                  for item, ipath in _listify(raw.get("kill", []), f"{path}.kill"))
    restarts = tuple(names.require(item, ipath)
                     for item, ipath in _listify(raw.get("restart", []),
                                                 f"{path}.restart"))
    spawns = []
    for k, (item, ipath) in enumerate(_listify(raw.get("spawn", []),
                                               f"{path}.spawn")):
        spec = _validate_spawn(item, ipath, nodes, index=len(names.known))
        if spec.count == 1:
            names.add(spec.name, f"{ipath}.name")
        else:
            for j in range(spec.count):
                names.add(f"{spec.name}-{j}", f"{ipath}.name")
        spawns.append(spec)
    hogs = []
    for item, ipath in _listify(raw.get("hog", []), f"{path}.hog"):
        spec = _validate_hog(item, ipath, nodes, index=len(names.known))
        names.add(spec.name, f"{ipath}.name")
        hogs.append(spec)
    pressure = tuple(_validate_node_pressure(item, ipath, nodes)
                     for item, ipath in _listify(raw.get("node_pressure", []),
                                                 f"{path}.node_pressure"))
    return PhaseSpec(
        name=name,
        kill=kills,
        restart=restarts,
        spawn=tuple(spawns),
        hog=tuple(hogs),
        balloon=(_validate_balloon(raw["balloon"], f"{path}.balloon")
                 if "balloon" in raw else None),
        node_pressure=pressure,
        fragment=(_validate_fragment(raw["fragment"], f"{path}.fragment")
                  if "fragment" in raw else None),
        fleet=(_validate_fleet(raw["fleet"], f"{path}.fleet")
               if "fleet" in raw else None),
        run_s=(_expect_int(raw["run_s"], f"{path}.run_s", minimum=0)
               if "run_s" in raw else 0),
    )


def _validate_assertion(value, path: str, names: _NameTracker) -> AssertionSpec:
    raw = _expect_mapping(value, path,
                          ("kind", "max_mb", "max_us", "max_ratio",
                           "metric", "process"),
                          required=("kind",))
    kind = _expect_str(raw["kind"], f"{path}.kind")
    if kind not in _ASSERTION_KINDS:
        raise ScenarioError(f"{path}.kind",
                            f"unknown assertion kind {kind!r}"
                            f"{_suggest(kind, _ASSERTION_KINDS)}")
    wanted = {"bloat-ceiling": ("max_mb",), "fault-p99": ("max_us",),
              "fairness-spread": ("max_ratio",)}[kind]
    allowed_extra = {"bloat-ceiling": ("process",), "fault-p99": (),
                     "fairness-spread": ("metric",)}[kind]
    for key in raw:
        if key != "kind" and key not in wanted + allowed_extra:
            raise ScenarioError(f"{path}.{key}",
                                f"key {key!r} not valid for kind {kind!r}")
    for key in wanted:
        if key not in raw:
            raise ScenarioError(path, f"kind {kind!r} needs {key!r}")
    process = (names.require(raw["process"], f"{path}.process")
               if "process" in raw else None)
    metric = (_expect_choice(raw["metric"], f"{path}.metric",
                             _FAIRNESS_METRICS)
              if "metric" in raw else "rss_mb_full")
    return AssertionSpec(
        kind=kind,
        max_mb=(_expect_number(raw["max_mb"], f"{path}.max_mb", minimum=0)
                if "max_mb" in raw else None),
        max_us=(_expect_number(raw["max_us"], f"{path}.max_us", minimum=0)
                if "max_us" in raw else None),
        max_ratio=(_expect_number(raw["max_ratio"], f"{path}.max_ratio",
                                  minimum=1.0)
                   if "max_ratio" in raw else None),
        metric=metric if kind == "fairness-spread" else None,
        process=process,
    )


# --------------------------------------------------------------------- #
# document-level validation and loading                                  #
# --------------------------------------------------------------------- #

_TOP_KEYS = ("scenario", "name", "title", "description", "machine",
             "policies", "cases", "phases", "assertions", "max_epochs",
             "drain")


def validate_scenario(document, *, digest: str = "",
                      source_path: str = "") -> Scenario:
    """Validate a parsed scenario document into a :class:`Scenario`.

    Raises :class:`ScenarioError` with a precise field path on the
    first problem found.
    """
    raw = _expect_mapping(document, "scenario",
                          _TOP_KEYS, required=("scenario", "name",
                                               "policies", "phases"))
    version = _expect_int(raw["scenario"], "scenario.scenario")
    if version != SCHEMA_VERSION:
        raise ScenarioError("scenario.scenario",
                            f"unsupported schema version {version} "
                            f"(this loader understands {SCHEMA_VERSION})")
    name = _expect_name(raw["name"], "scenario.name")
    title = (_expect_str(raw["title"], "scenario.title")
             if "title" in raw else name)
    description = (_expect_str(raw["description"], "scenario.description")
                   if "description" in raw else "")

    if not isinstance(raw["policies"], list) or not raw["policies"]:
        raise ScenarioError("scenario.policies",
                            "expected a non-empty list of policy names")
    policies = []
    for i, item in enumerate(raw["policies"]):
        policy = _expect_str(item, f"scenario.policies[{i}]")
        if policy not in POLICIES:
            raise ScenarioError(f"scenario.policies[{i}]",
                                f"unknown policy {policy!r}"
                                f"{_suggest(policy, sorted(POLICIES))}")
        if policy in policies:
            raise ScenarioError(f"scenario.policies[{i}]",
                                f"duplicate policy {policy!r}")
        policies.append(policy)

    base_machine = _validate_machine(raw.get("machine", {}),
                                     "scenario.machine", MachineSpec())

    cases: list[CaseSpec] = []
    if "cases" in raw:
        if not isinstance(raw["cases"], list) or not raw["cases"]:
            raise ScenarioError("scenario.cases",
                                "expected a non-empty list of case mappings")
        for i, item in enumerate(raw["cases"]):
            cpath = f"scenario.cases[{i}]"
            craw = _expect_mapping(item, cpath, ("name", "machine"),
                                   required=("name",))
            cname = _expect_name(craw["name"], f"{cpath}.name")
            if any(c.name == cname for c in cases):
                raise ScenarioError(f"{cpath}.name",
                                    f"duplicate case name {cname!r}")
            machine = _validate_machine(craw.get("machine", {}),
                                        f"{cpath}.machine", base_machine)
            cases.append(CaseSpec(cname, machine))
    else:
        cases.append(CaseSpec("timeline", base_machine))

    max_epochs = (_expect_int(raw["max_epochs"], "scenario.max_epochs",
                              minimum=1)
                  if "max_epochs" in raw else 6000)
    drain = (_expect_bool(raw["drain"], "scenario.drain")
             if "drain" in raw else True)

    if not isinstance(raw["phases"], list) or not raw["phases"]:
        raise ScenarioError("scenario.phases",
                            "expected a non-empty list of phase mappings")
    # node-indexed actions must be valid on every case's machine, so
    # validate against the smallest node count in the grid.
    min_nodes = min(case.machine.numa_nodes for case in cases)
    names = _NameTracker()
    phases = tuple(
        _validate_phase(item, f"scenario.phases[{i}]", i, min_nodes, names)
        for i, item in enumerate(raw["phases"])
    )
    budget = sum(phase.run_s for phase in phases)
    if budget > max_epochs:
        raise ScenarioError("scenario.max_epochs",
                            f"phase run_s total {budget} exceeds "
                            f"max_epochs {max_epochs}")

    assertions = ()
    if "assertions" in raw:
        if not isinstance(raw["assertions"], list):
            raise ScenarioError("scenario.assertions",
                                "expected a list of assertion mappings")
        assertions = tuple(
            _validate_assertion(item, f"scenario.assertions[{i}]", names)
            for i, item in enumerate(raw["assertions"])
        )

    return Scenario(
        name=name, title=title, description=description,
        policies=tuple(policies), cases=tuple(cases), phases=phases,
        assertions=assertions, max_epochs=max_epochs, drain=drain,
        digest=digest or scenario_digest(document),
        source_path=source_path,
    )


def scenario_digest(document) -> str:
    """sha256 over the canonical JSON of a parsed scenario document.

    Hashing the *parsed* content (not file bytes) means whitespace and
    comment edits keep the cache warm while any meaningful edit changes
    every affected cell key.
    """
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def parse_scenario_text(text: str, *, path: str = "<string>") -> dict:
    """Parse scenario text: JSON always, YAML when PyYAML is available."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError("scenario", f"invalid JSON in {path}: {exc}")
    try:
        import yaml
    except ImportError:  # pragma: no cover - yaml is in the toolchain
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            raise ScenarioError(
                "scenario",
                f"{path} is not JSON and PyYAML is not installed")
    try:
        document = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError("scenario", f"invalid YAML in {path}: {exc}")
    if document is None:
        raise ScenarioError("scenario", f"{path} is empty")
    return document


def load_scenario(path: str | Path) -> Scenario:
    """Load and validate a scenario file (.yaml/.yml/.json)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError("scenario", f"cannot read {path}: {exc}")
    document = parse_scenario_text(text, path=str(path))
    return validate_scenario(document, digest=scenario_digest(document),
                             source_path=str(path))
