"""Analytic hardware model: TLB hierarchy, page-walk costs and PMU."""

from repro.tlb.mmu_model import MMUEpoch, MMUModel, RegionLoad
from repro.tlb.perf import PMUCounters
from repro.tlb.tlb import TLBConfig
from repro.tlb.walk import nested_walk_cycles, pattern_latency_factor, walk_cycles

__all__ = [
    "MMUEpoch",
    "MMUModel",
    "PMUCounters",
    "RegionLoad",
    "TLBConfig",
    "nested_walk_cycles",
    "pattern_latency_factor",
    "walk_cycles",
]
