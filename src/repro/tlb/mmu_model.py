"""Per-epoch MMU overhead computation.

Each epoch, every running process presents the hardware model with a set
of :class:`RegionLoad` records describing what its access profile touched:
how many huge-page-sized regions, at what access-coverage, what fraction
of them are currently mapped huge, and with what pattern.  The model
computes

* TLB demand per page-size class and capacity miss fractions
  (:class:`repro.tlb.tlb.TLBConfig`),
* a per-pattern miss ratio — random reuse pays the capacity term,
  sequential streams miss once per page regardless of TLB size,
* walker cycles per useful cycle ``x`` from the walk-cost tables, and
* the saturating overhead ``x / (1 + x)``, the fraction of wall cycles the
  page walker keeps the pipeline stalled — the quantity the paper's
  Table 4 methodology measures via performance counters.

This is the "actual" overhead in the paper's terms.  HawkEye-G never sees
it; it estimates from access-coverage alone, and the gap between the two
is precisely what the HawkEye-PMU variant exploits (paper §2.4, Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.patterns import Pattern
from repro.tlb.perf import PMUCounters
from repro.tlb.tlb import TLBConfig
from repro.tlb.walk import blended_walk_cycles, pattern_latency_factor
from repro.units import BASE_PAGE_SIZE, CYCLES_PER_USEC, HUGE_PAGE_SIZE

#: Miss-frequency discount for strided reuse relative to random.
STRIDED_MISS_FACTOR = 0.6


@dataclass(frozen=True)
class RegionLoad:
    """One access-profile region's contribution to TLB load this epoch."""

    touched_regions: int          # huge-page-sized regions touched
    coverage: float               # base pages accessed per touched region (0..512)
    promoted_fraction: float      # fraction of touched regions mapped huge
    weight: float                 # share of the process's accesses
    pattern: Pattern = Pattern.RANDOM
    stride: int = 8               # bytes between consecutive accesses (sequential)
    #: fraction of this load's pages resident on a remote NUMA node; walks
    #: into those pages pay ``remote_penalty`` (SLIT distance ratio).
    #: Zero on single-node kernels, keeping the cost math untouched.
    remote_fraction: float = 0.0
    remote_penalty: float = 1.0


@dataclass
class MMUEpoch:
    """Result of one epoch's overhead computation for one process."""

    overhead: float = 0.0             # fraction of cycles spent walking
    walk_cycles_per_useful: float = 0.0
    demand_base: float = 0.0
    demand_huge: float = 0.0
    miss_base: float = 0.0
    miss_huge: float = 0.0
    tlb_miss_rate: float = 0.0        # misses per access (Table 3 column)
    #: share of walk cycles attributable to remote-node memory (the extra
    #: cost *and* the remote portion of the base cost).
    remote_walk_fraction: float = 0.0

    def charge(self, pmu: PMUCounters, useful_us: float) -> tuple[float, float]:
        """Feed the PMU with this epoch's walker activity.

        Returns ``(walk_cycles, total_cycles)`` for process accounting.
        """
        useful_cycles = useful_us * CYCLES_PER_USEC
        walk = self.walk_cycles_per_useful * useful_cycles
        total = useful_cycles + walk
        pmu.record(walk, total)
        return walk, total


@dataclass
class MMUModel:
    """The analytic hardware model shared by all processes of a kernel."""

    tlb: TLBConfig = field(default_factory=TLBConfig)

    def epoch(
        self,
        loads: list[RegionLoad],
        access_rate: float,
        host_huge_fraction: float | None = None,
    ) -> MMUEpoch:
        """Compute the epoch's MMU overhead.

        ``access_rate`` is the process's memory accesses per useful
        microsecond; ``host_huge_fraction`` switches walk costs to the
        nested tables when the process runs inside a VM.
        """
        result = MMUEpoch()
        if not loads or access_rate <= 0:
            return result

        for load in loads:
            huge_regions = load.touched_regions * load.promoted_fraction
            base_regions = load.touched_regions - huge_regions
            result.demand_base += base_regions * load.coverage
            result.demand_huge += huge_regions
        result.miss_base, result.miss_huge = self.tlb.miss_fractions(
            result.demand_base, result.demand_huge
        )

        walk_per_us = 0.0
        misses_per_us = 0.0
        remote_walk_per_us = 0.0
        total_weight = sum(load.weight for load in loads)
        for load in loads:
            accesses = access_rate * load.weight
            for size, share, capacity_miss in (
                ("4k", 1.0 - load.promoted_fraction, result.miss_base),
                ("2m", load.promoted_fraction, result.miss_huge),
            ):
                if share <= 0:
                    continue
                miss_ratio = self._miss_ratio(load, size, capacity_miss)
                cost = blended_walk_cycles(size, host_huge_fraction)
                cost *= pattern_latency_factor(load.pattern)
                if load.remote_fraction > 0.0:
                    # Walks into remote pages pay the SLIT distance ratio;
                    # guarded so single-node float math stays untouched.
                    rf = load.remote_fraction
                    remote_cost = cost * rf * load.remote_penalty
                    cost = cost * (1.0 - rf) + remote_cost
                    remote_walk_per_us += accesses * share * miss_ratio * remote_cost
                walk_per_us += accesses * share * miss_ratio * cost
                misses_per_us += accesses * share * miss_ratio

        x = walk_per_us / CYCLES_PER_USEC
        result.walk_cycles_per_useful = x
        result.overhead = x / (1.0 + x)
        if remote_walk_per_us > 0.0:
            result.remote_walk_fraction = remote_walk_per_us / walk_per_us
        # misses per access: normalise by the total access stream, which
        # is access_rate spread over the loads' weights
        result.tlb_miss_rate = misses_per_us / (access_rate * total_weight)
        return result

    @staticmethod
    def _miss_ratio(load: RegionLoad, size: str, capacity_miss: float) -> float:
        """Fraction of this load's accesses that miss the TLB."""
        if load.pattern is Pattern.SEQUENTIAL:
            # One compulsory miss per page streamed through, amortised over
            # the accesses that page receives; capacity is irrelevant.
            page = BASE_PAGE_SIZE if size == "4k" else HUGE_PAGE_SIZE
            return min(1.0, load.stride / page)
        if load.pattern is Pattern.STRIDED:
            return STRIDED_MISS_FACTOR * capacity_miss
        return capacity_miss
