"""Hardware performance-counter emulation (paper Table 4).

HawkEye-PMU reads three counters to measure address-translation overhead:

====  ==================================
C1    ``DTLB_LOAD_MISSES_WALK_DURATION``
C2    ``DTLB_STORE_MISSES_WALK_DURATION``
C3    ``CPU_CLK_UNHALTED``
====  ==================================

with ``MMU overhead = (C1 + C2) * 100 / C3``.  The emulated counters are
fed by the MMU model each epoch; walk cycles are split between the load
and store counters with the canonical ~2:1 load:store ratio so both
counters carry realistic values.  ``read_overhead`` applies exactly the
Table 4 formula, making the measurement path of HawkEye-PMU structurally
identical to the real system's.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fraction of data accesses that are loads (typical integer-code mix).
LOAD_FRACTION = 2.0 / 3.0


@dataclass
class PMUCounters:
    """Per-process emulated counter state."""

    dtlb_load_walk_duration: float = 0.0
    dtlb_store_walk_duration: float = 0.0
    cpu_clk_unhalted: float = 0.0

    #: values at the last ``sample()`` call, for interval measurements.
    _last_c1: float = 0.0
    _last_c2: float = 0.0
    _last_c3: float = 0.0

    def record(self, walk_cycles: float, total_cycles: float) -> None:
        """Accumulate one epoch's walker activity and elapsed cycles."""
        self.dtlb_load_walk_duration += walk_cycles * LOAD_FRACTION
        self.dtlb_store_walk_duration += walk_cycles * (1.0 - LOAD_FRACTION)
        self.cpu_clk_unhalted += total_cycles

    def read_overhead(self) -> float:
        """Lifetime MMU overhead fraction per the Table 4 methodology."""
        if self.cpu_clk_unhalted <= 0:
            return 0.0
        c1 = self.dtlb_load_walk_duration
        c2 = self.dtlb_store_walk_duration
        return (c1 + c2) / self.cpu_clk_unhalted

    def sample(self) -> float:
        """Interval MMU overhead since the previous ``sample()`` call.

        This is what HawkEye-PMU consults each decision period: overheads
        of the recent past, not of the whole process lifetime.
        """
        dc1 = self.dtlb_load_walk_duration - self._last_c1
        dc2 = self.dtlb_store_walk_duration - self._last_c2
        dc3 = self.cpu_clk_unhalted - self._last_c3
        self._last_c1 = self.dtlb_load_walk_duration
        self._last_c2 = self.dtlb_store_walk_duration
        self._last_c3 = self.cpu_clk_unhalted
        if dc3 <= 0:
            return 0.0
        return (dc1 + dc2) / dc3
