"""TLB hierarchy configuration and the capacity miss model.

Models the experimental platform of the paper (§4, Intel Haswell-EP
E5-2690 v3): a split L1 DTLB with 64 entries for 4 KiB pages and 8 entries
for 2 MiB pages, and a unified 1024-entry L2 TLB shared by both sizes.

The miss model is analytic rather than trace-driven: given the number of
distinct translations a process needs per sampling interval (its *demand*)
for each page-size class, the L2 is split between classes in proportion to
demand (competitive sharing) and the fraction of accesses that miss is the
classic capacity term ``max(0, 1 - capacity / demand)`` — exact for
uniform random reuse over the demand set, and the pattern term of
:mod:`repro.tlb.mmu_model` corrects it for sequential/strided access.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TLBConfig:
    """Entry counts of the simulated TLB hierarchy."""

    l1_base: int = 64
    l1_huge: int = 8
    l2_shared: int = 1024

    def capacities(self, demand_base: float, demand_huge: float) -> tuple[float, float]:
        """Effective per-class capacities under competitive L2 sharing."""
        total = demand_base + demand_huge
        share = demand_base / total if total > 0 else 0.5
        return (self.l1_base + self.l2_shared * share,
                self.l1_huge + self.l2_shared * (1.0 - share))

    def miss_fractions(self, demand_base: float, demand_huge: float) -> tuple[float, float]:
        """Capacity miss fraction per class for the given demands."""
        cap_base, cap_huge = self.capacities(demand_base, demand_huge)
        miss_base = max(0.0, 1.0 - cap_base / demand_base) if demand_base > 0 else 0.0
        miss_huge = max(0.0, 1.0 - cap_huge / demand_huge) if demand_huge > 0 else 0.0
        return miss_base, miss_huge

    def base_reach_bytes(self) -> int:
        """Bytes covered when every entry holds a 4 KiB translation."""
        from repro.units import BASE_PAGE_SIZE

        return (self.l1_base + self.l2_shared) * BASE_PAGE_SIZE

    def huge_reach_bytes(self) -> int:
        """Bytes covered when every entry holds a 2 MiB translation."""
        from repro.units import HUGE_PAGE_SIZE

        return (self.l1_huge + self.l2_shared) * HUGE_PAGE_SIZE
