"""Page-walk cost model, native and nested (virtualised).

Costs are average cycles of walker activity per TLB miss, calibrated so
the end-to-end MMU overheads the model produces land on the paper's
measurements (Table 3: cg.D 39 % at 4 KiB vs 0.02 % at 2 MiB; §4 Figure 9:
virtualisation amplifying overheads enough for 2.7× speedups):

* A 4 KiB walk on a loaded machine averages ~48 cycles: four levels,
  mostly hitting page-walk caches and L2/L3 for the leaf PTE.
* A 2 MiB walk is nearly free (~2 cycles effective): the PMD-level walk is
  one level shorter and the much smaller page-table working set lives in
  the walk caches, which is why huge pages eliminate rather than merely
  reduce walk time.
* Nested (two-dimensional) walks multiply: a 4K-on-4K guest walk touches
  up to 24 memory references; costs follow the guest×host size matrix.

``pattern_latency_factor`` models prefetch overlap: sequential streams
expose walk latency to the prefetcher, hiding roughly half of it.
"""

from __future__ import annotations

from repro.patterns import Pattern

#: Average walker cycles per miss for native translations, by page size.
NATIVE_WALK_CYCLES = {"4k": 48.0, "2m": 2.0}

#: Average walker cycles per miss for nested translations,
#: keyed by (guest page size, host page size).
NESTED_WALK_CYCLES = {
    ("4k", "4k"): 160.0,
    ("4k", "2m"): 110.0,
    ("2m", "4k"): 40.0,
    ("2m", "2m"): 10.0,
}

_PATTERN_FACTORS = {
    Pattern.RANDOM: 1.0,
    Pattern.STRIDED: 0.8,
    Pattern.SEQUENTIAL: 0.5,
}


def walk_cycles(page_size: str) -> float:
    """Native walk cost in cycles for ``page_size`` ('4k' or '2m')."""
    return NATIVE_WALK_CYCLES[page_size]


def nested_walk_cycles(guest_size: str, host_size: str) -> float:
    """Two-dimensional walk cost for a guest/host page-size combination."""
    return NESTED_WALK_CYCLES[(guest_size, host_size)]


def pattern_latency_factor(pattern: Pattern) -> float:
    """Fraction of walk latency the prefetcher cannot hide."""
    return _PATTERN_FACTORS[pattern]


def blended_walk_cycles(page_size: str, host_huge_fraction: float | None) -> float:
    """Walk cost given how much of the backing host memory is huge-mapped.

    ``None`` means native execution; otherwise the guest's walks are
    nested and the cost interpolates between host-4K and host-2M backing
    by the fraction of the guest's physical range the host maps huge.
    """
    if host_huge_fraction is None:
        return walk_cycles(page_size)
    f = min(1.0, max(0.0, host_huge_fraction))
    return (nested_walk_cycles(page_size, "2m") * f
            + nested_walk_cycles(page_size, "4k") * (1.0 - f))
