"""First-class kernel tracepoints with latency histograms.

The simulator's policy decisions and cost-charging sites emit structured
:class:`TraceEvent` records through a per-kernel :class:`Tracer` — the
analogue of Linux's static tracepoints read through ``perf``/eBPF.  Every
event carries the *simulated-time span* the site charged (fault latency,
promotion cost, scan time, …), so a recorded run decomposes into a
per-subsystem time-attribution table (:func:`attribution`) — a free
generalisation of the paper's Tables 1 and 8.

Zero-cost-when-disabled contract: every emission site is guarded by the
module-level :data:`enabled` flag *first*, so with no tracer attached the
only per-event cost is one global-bool test (the analogue of a nop-patched
static branch).  ``repro bench touch`` gates this: a tracer attached with
``tracer.enabled = False`` must cost < 5 % over no tracer at all.

Usage::

    from repro import trace

    tracer = trace.attach(kernel)
    ... run the workload ...
    print(trace.format_attribution(tracer.attribution()))
    trace.detach(kernel)

Events land in a bounded ring-buffer-style sink that **drops new events
when full** (like ``perf``'s ring buffer), counting drops; the per-kind
event counts, span totals and latency histograms are updated on every
emission and therefore stay exact even when the event list saturates.
"""

from __future__ import annotations

import enum
import math
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel

#: Global master switch, managed by :func:`attach` / :func:`detach`.
#: Emission sites test this module attribute before anything else, so a
#: kernel with no tracer pays a single bool check per potential event.
enabled: bool = False

#: Number of kernels with a tracer currently attached (drives ``enabled``).
_attached: int = 0

#: Default ring-buffer capacity (events kept before drops start).
DEFAULT_CAPACITY = 200_000


class TraceKind(enum.Enum):
    """The tracepoint catalogue.

    Values are dotted ``subsystem.event`` names; the prefix before the
    first dot is the *subsystem* used for attribution grouping, and
    filters accept either the full name or the bare subsystem.
    """

    FAULT_BASE = "fault.base"
    FAULT_HUGE = "fault.huge"
    FAULT_COW = "fault.cow"
    PROMOTE_COLLAPSE = "promote.collapse"
    PROMOTE_INPLACE = "promote.inplace"
    DEMOTE = "demote"
    MADVISE_FREE = "madvise.free"
    BLOAT_SCAN = "bloat.scan"
    BLOAT_RECOVER = "bloat.recover"
    COMPACT = "compact"
    PREZERO = "prezero"
    SWAP_IN = "swap.in"
    SWAP_OUT = "swap.out"
    KSM_MERGE = "ksm.merge"
    OOM = "oom"
    KTHREAD_EPOCH = "kthread.epoch"
    NUMA_HINT = "numa.hint"
    NUMA_MIGRATE = "numa.migrate"
    NUMA_REMOTE_WALK = "numa_walk.remote"
    # zero-span policy-decision instants, emitted by repro.audit when
    # both an audit log and a tracer are attached; detail = outcome:reason.
    DECISION_PROMOTE = "decision.promote"
    DECISION_COLLAPSE = "decision.collapse_node"
    DECISION_BLOAT = "decision.bloat"
    DECISION_KNUMAD = "decision.knumad"
    DECISION_FAULT = "decision.fault_size"
    # zero-span per-process WSS/region counters, emitted by repro.heat
    # when both a heat monitor and a tracer are attached; detail =
    # `key=value;…` pairs rendered as Perfetto counter tracks.
    HEAT_WSS = "heat.wss"

    @property
    def subsystem(self) -> str:
        """Attribution group: the part of the name before the first dot."""
        return self.value.split(".", 1)[0]


@dataclass(slots=True)
class TraceEvent:
    """One emitted tracepoint record.

    ``span_us`` is the simulated time the site charged for the traced
    operation (0 for pure decision events); ``page`` is a vpn for
    base-page-granularity events and an hvpn for huge-region-granularity
    ones (see ``docs/observability.md`` for the per-kind convention).
    """

    t_us: float
    kind: TraceKind
    process: str
    span_us: float = 0.0
    page: Optional[int] = None
    detail: str = ""

    @property
    def t_seconds(self) -> float:
        """Timestamp in simulated seconds."""
        return self.t_us / SEC

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        where = f" page={self.page}" if self.page is not None else ""
        return (
            f"[{self.t_seconds:9.3f}s] {self.kind.value:<16} "
            f"{self.process:<12} span={self.span_us:.2f}us{where} {self.detail}"
        )


class LatencyHistogram:
    """Power-of-two latency buckets, like ``perf``'s log2 histograms.

    Bucket ``i`` counts samples with ``2**i <= span_us < 2**(i+1)``;
    sub-microsecond samples land in negative buckets and zero spans in a
    dedicated underflow bucket.
    """

    #: bucket index used for exactly-zero samples.
    ZERO_BUCKET = -64

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total_us = 0.0
        self.min_us = float("inf")
        self.max_us = 0.0

    def add(self, span_us: float) -> None:
        """Record one latency sample."""
        if span_us <= 0.0:
            idx = self.ZERO_BUCKET
        else:
            # frexp: span = m * 2**e with 0.5 <= m < 1, so the enclosing
            # power-of-two bucket [2**(e-1), 2**e) has index e - 1.
            idx = math.frexp(span_us)[1] - 1
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total_us += span_us
        if span_us < self.min_us:
            self.min_us = span_us
        if span_us > self.max_us:
            self.max_us = span_us

    @property
    def mean_us(self) -> float:
        """Mean sample value in µs (0 when empty)."""
        return self.total_us / self.count if self.count else 0.0

    def items(self) -> list[tuple[int, int]]:
        """``(bucket_index, count)`` pairs in ascending bucket order."""
        return sorted(self.buckets.items())

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the log2 buckets.

        Samples are interpolated linearly within their bucket, as if
        uniformly distributed over ``[2**i, 2**(i+1))``.  Error bound:
        the true quantile provably lies in the same bucket as the
        estimate, so the estimate is off by less than one bucket width —
        within a factor of 2 of the true value, and the signed error is
        at most ``2**i`` µs for a quantile landing in bucket ``i``.  The
        exact min/max are tracked separately, so the estimate is clamped
        into ``[min_us, max_us]`` (this makes single-sample and
        extreme-quantile estimates exact).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for idx, count in self.items():
            if cumulative + count >= target:
                lo, hi = self.bucket_bounds(idx)
                fraction = (target - cumulative) / count
                estimate = lo + fraction * (hi - lo)
                return min(max(estimate, self.min_us), self.max_us)
            cumulative += count
        return self.max_us

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 estimates (see :meth:`quantile`)."""
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def to_dict(self) -> dict:
        """JSON-able form: buckets, exact moments, and p50/p95/p99.

        The percentile fields are derived (recomputed by
        :meth:`from_dict` round-trips); buckets/count/total/min/max are
        the lossless state.
        """
        out: dict = {
            "buckets": {str(idx): count for idx, count in self.items()},
            "count": self.count,
            "total_us": self.total_us,
        }
        if self.count:
            out["min_us"] = self.min_us
            out["max_us"] = self.max_us
            out.update(self.percentiles())
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram serialised by :meth:`to_dict`."""
        hist = cls()
        hist.buckets = {int(idx): count for idx, count in data["buckets"].items()}
        hist.count = data["count"]
        hist.total_us = data["total_us"]
        if hist.count:
            hist.min_us = data["min_us"]
            hist.max_us = data["max_us"]
        return hist

    @staticmethod
    def bucket_bounds(idx: int) -> tuple[float, float]:
        """The ``[lo, hi)`` µs range of bucket ``idx``."""
        if idx == LatencyHistogram.ZERO_BUCKET:
            return 0.0, 0.0
        return 2.0 ** idx, 2.0 ** (idx + 1)


class Tracer:
    """Per-kernel tracepoint sink: ring buffer, exact counters, consumers.

    The event list is bounded by ``capacity``; once full, **new events are
    dropped** (and counted in :attr:`dropped`) — the per-kind counters,
    span totals and histograms keep updating, so :meth:`attribution`
    remains exact regardless of drops.  ``consumers`` receive every event
    (drops included) and back live consumers such as
    :class:`repro.metrics.events.EventLog`.
    """

    def __init__(self, kernel: "Kernel", capacity: int = DEFAULT_CAPACITY,
                 warn_on_drop: bool = True):
        self.kernel = kernel
        self.capacity = capacity
        #: per-tracer gate: False pauses emission while staying attached
        #: (the disabled-overhead benchmark measures exactly this state).
        self.enabled = True
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._warned_drop = not warn_on_drop
        self.counts: dict[TraceKind, int] = {}
        self.spans: dict[TraceKind, float] = {}
        self.histograms: dict[TraceKind, LatencyHistogram] = {}
        self.consumers: list[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------ #
    # emission                                                            #
    # ------------------------------------------------------------------ #

    def emit(
        self,
        kind: TraceKind,
        process: str,
        span_us: float = 0.0,
        page: int | None = None,
        detail: str = "",
    ) -> None:
        """Emit one event at the kernel's current simulated time."""
        event = TraceEvent(self.kernel.now_us, kind, process, span_us, page, detail)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.spans[kind] = self.spans.get(kind, 0.0) + span_us
        if span_us > 0.0:
            hist = self.histograms.get(kind)
            if hist is None:
                hist = self.histograms[kind] = LatencyHistogram()
            hist.add(span_us)
        if len(self.events) < self.capacity:
            self.events.append(event)
        else:
            self.dropped += 1
            if not self._warned_drop:
                self._warned_drop = True
                warnings.warn(
                    f"trace ring buffer full ({self.capacity} events): "
                    "dropping new events (counters stay exact)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        for consumer in self.consumers:
            consumer(event)

    def subscribe(self, consumer: Callable[[TraceEvent], None]) -> None:
        """Register a callable invoked for every emitted event."""
        self.consumers.append(consumer)

    # ------------------------------------------------------------------ #
    # queries                                                             #
    # ------------------------------------------------------------------ #

    def of_kind(self, kind: TraceKind) -> list[TraceEvent]:
        """Buffered events of one kind, in emission order."""
        return [e for e in self.events if e.kind is kind]

    def for_process(self, process: str) -> list[TraceEvent]:
        """Buffered events attributed to one process name."""
        return [e for e in self.events if e.process == process]

    def filter(
        self,
        kinds: Sequence[str] | None = None,
        process: str | None = None,
        since: float | None = None,
        until: float | None = None,
    ) -> list[TraceEvent]:
        """Buffered events through :func:`filter_events`."""
        return filter_events(self.events, kinds, process, since, until)

    def attribution(self) -> dict[str, tuple[int, float]]:
        """Exact per-subsystem ``(events, span_us)`` totals (drop-immune)."""
        out: dict[str, tuple[int, float]] = {}
        for kind, count in self.counts.items():
            sub = kind.subsystem
            prev = out.get(sub, (0, 0.0))
            out[sub] = (prev[0] + count, prev[1] + self.spans.get(kind, 0.0))
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self.events)


# ---------------------------------------------------------------------- #
# attachment                                                              #
# ---------------------------------------------------------------------- #


def attach(kernel: "Kernel", capacity: int = DEFAULT_CAPACITY,
           warn_on_drop: bool = True) -> Tracer:
    """Attach a :class:`Tracer` to ``kernel`` and arm the global flag.

    Returns the kernel's existing tracer unchanged if one is already
    attached (re-attachment is idempotent).  ``warn_on_drop=False``
    silences the one-shot ring-buffer-full warning (telemetry capture
    uses a deliberately small buffer and relies on the exact counters).
    """
    global enabled, _attached
    if kernel.trace is not None:
        return kernel.trace
    tracer = Tracer(kernel, capacity, warn_on_drop)
    kernel.trace = tracer
    _attached += 1
    enabled = True
    return tracer


def detach(kernel: "Kernel") -> Tracer | None:
    """Detach ``kernel``'s tracer; disarm the flag when none remain.

    Returns the detached tracer (its buffered events stay readable), or
    None if the kernel had no tracer.
    """
    global enabled, _attached
    tracer = kernel.trace
    if tracer is None:
        return None
    kernel.trace = None
    _attached -= 1
    if _attached <= 0:
        _attached = 0
        enabled = False
    return tracer


def reset() -> None:
    """Force the module back to the no-tracer state (test isolation)."""
    global enabled, _attached
    enabled = False
    _attached = 0


# ---------------------------------------------------------------------- #
# stream helpers (work on any TraceEvent iterable, live or replayed)      #
# ---------------------------------------------------------------------- #


def _kind_matches(kind: TraceKind, wanted: Sequence[str]) -> bool:
    """Whether a kind matches any filter term (full name or subsystem)."""
    for term in wanted:
        if kind.value == term or kind.subsystem == term:
            return True
    return False


def filter_events(
    events: Iterable[TraceEvent],
    kinds: Sequence[str] | None = None,
    process: str | None = None,
    since: float | None = None,
    until: float | None = None,
) -> list[TraceEvent]:
    """Filter an event stream by kind/subsystem, process and time window.

    ``kinds`` entries may be full tracepoint names (``"fault.base"``) or
    bare subsystems (``"fault"``); ``since``/``until`` are simulated
    seconds, half-open ``[since, until)``.
    """
    out = []
    for e in events:
        if kinds and not _kind_matches(e.kind, kinds):
            continue
        if process is not None and e.process != process:
            continue
        t = e.t_us / SEC
        if since is not None and t < since:
            continue
        if until is not None and t >= until:
            continue
        out.append(e)
    return out


def attribution(events: Iterable[TraceEvent]) -> dict[str, tuple[int, float]]:
    """Per-subsystem ``(events, span_us)`` totals over an event stream.

    Use :meth:`Tracer.attribution` on a live tracer instead — it stays
    exact when the ring buffer drops; this helper serves replayed or
    filtered streams.
    """
    out: dict[str, tuple[int, float]] = {}
    for e in events:
        sub = e.kind.subsystem
        prev = out.get(sub, (0, 0.0))
        out[sub] = (prev[0] + 1, prev[1] + e.span_us)
    return out


def format_attribution(
    table: dict[str, tuple[int, float]], title: str = "simulated-time attribution"
) -> str:
    """Render an attribution table as aligned text, largest span first."""
    from repro.metrics.tables import format_table

    total_us = sum(span for _, span in table.values()) or 1.0
    rows = [
        (sub, count, span / 1000.0, 100.0 * span / total_us)
        for sub, (count, span) in sorted(
            table.items(), key=lambda item: -item[1][1]
        )
    ]
    return format_table(
        ["subsystem", "events", "time_ms", "share_%"], rows, title=title
    )


def format_histogram(hist: LatencyHistogram, title: str, width: int = 40) -> str:
    """Render one latency histogram perf-style (log2 buckets, hash bars)."""
    lines = [
        f"{title}: {hist.count} samples, "
        f"mean {hist.mean_us:.2f}us, min {hist.min_us:.2f}us, max {hist.max_us:.2f}us"
    ]
    if not hist.count:
        return lines[0]
    peak = max(count for _, count in hist.items())
    for idx, count in hist.items():
        lo, hi = LatencyHistogram.bucket_bounds(idx)
        bar = "#" * max(1, round(width * count / peak))
        if idx == LatencyHistogram.ZERO_BUCKET:
            label = f"{'0':>10} us"
        else:
            label = f"{lo:>10.3g} us"
        lines.append(f"  {label} .. {hi:>10.3g}: {count:>8}  {bar}")
    return "\n".join(lines)
