"""Size, time and address-granularity constants shared across the simulator.

The simulator works in *pages*: a base page is 4 KiB and a huge page is
2 MiB (x86-64 PMD level), i.e. 512 base pages.  Physical frames and virtual
page numbers are plain integers; byte quantities appear only at the API
boundary (workload footprints, reported RSS) and in the page *content*
model (offset of the first non-zero byte inside a 4 KiB page).

Simulated time is kept in microseconds as a float.  One *epoch* of the
kernel main loop corresponds to one second of simulated time; background
kernel threads receive per-epoch work budgets which makes every
"rate-limited" mechanism of the paper directly expressible.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

BASE_PAGE_SIZE = 4 * KB
HUGE_PAGE_ORDER = 9
PAGES_PER_HUGE = 1 << HUGE_PAGE_ORDER  # 512
HUGE_PAGE_SIZE = BASE_PAGE_SIZE * PAGES_PER_HUGE  # 2 MiB

#: Largest buddy order kept on the free lists (order 10 == 4 MiB blocks,
#: one above the huge-page order, mirroring Linux's MAX_ORDER neighbourhood).
MAX_ORDER = 10

USEC = 1.0
MSEC = 1000.0
SEC = 1_000_000.0

#: Simulated CPU frequency, cycles per microsecond (2.3 GHz Haswell-EP).
CYCLES_PER_USEC = 2300.0


def pages_of(nbytes: int) -> int:
    """Number of base pages needed to hold ``nbytes`` (rounded up)."""
    return -(-nbytes // BASE_PAGE_SIZE)


def huge_pages_of(nbytes: int) -> int:
    """Number of huge pages needed to hold ``nbytes`` (rounded up)."""
    return -(-nbytes // HUGE_PAGE_SIZE)


def huge_align_down(page: int) -> int:
    """Round a base-page number down to its huge-page boundary."""
    return page & ~(PAGES_PER_HUGE - 1)


def huge_align_up(page: int) -> int:
    """Round a base-page number up to the next huge-page boundary."""
    return (page + PAGES_PER_HUGE - 1) & ~(PAGES_PER_HUGE - 1)


def is_huge_aligned(page: int) -> bool:
    """True when ``page`` sits on a huge-page boundary."""
    return (page & (PAGES_PER_HUGE - 1)) == 0


def bytes_human(nbytes: float) -> str:
    """Render a byte count as a compact human-readable string."""
    for unit, size in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(nbytes) >= size:
            return f"{nbytes / size:.1f}{unit}"
    return f"{nbytes:.0f}B"
