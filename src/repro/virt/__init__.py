"""Virtualisation substrate: hypervisor, VMs, KSM and ballooning.

Models the two-layer setups of the paper's §4: a host kernel whose
processes are virtual machines, each VM being a full guest
:class:`~repro.kernel.kernel.Kernel` whose physical frames are backed by
a host VMA.  Nested page-walk costs blend guest page size with the host's
mapping granularity of the backing region, reproducing the amplified MMU
overheads of Figure 9; KSM plus guest pre-zeroing reproduces the
ballooning-equivalent memory return channel of Figure 11.
"""

from repro.virt.balloon import BalloonDriver
from repro.virt.hypervisor import Hypervisor, VirtualMachine
from repro.virt.ksm import KSMThread

__all__ = ["BalloonDriver", "Hypervisor", "KSMThread", "VirtualMachine"]
