"""Para-virtual balloon driver (the Figure 11 comparator).

The balloon driver knows, through its in-guest component, exactly which
guest frames are free, and returns their host backing directly: host PTEs
are unmapped and the host frames freed.  When the guest reallocates a
ballooned frame, the normal backing-fault path brings the host page back.

This is the explicit, para-virtual channel the paper contrasts with its
fully-transparent pre-zeroing + KSM alternative — same net effect,
different trust/compatibility trade-offs (§4, Figure 11).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.kthread import RateLimiter
from repro.units import PAGES_PER_HUGE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.virt.hypervisor import VirtualMachine


class BalloonDriver:
    """Returns a VM's free guest frames to the host, rate-limited."""

    def __init__(self, vm: "VirtualMachine", pages_per_sec: float = 50_000.0):
        self.vm = vm
        self._limiter = RateLimiter(pages_per_sec, vm.guest.config.epoch_us)
        self.returned_pages = 0

    def run_epoch(self) -> int:
        """Return up to this epoch's budget of free guest frames to the host."""
        self._limiter.refill()
        host = self.vm.hypervisor.host
        pt = self.vm.host_proc.page_table
        returned = 0
        for start, order, _ in list(self.vm.guest.buddy.iter_free_blocks()):
            for frame in range(start, start + (1 << order)):
                vpn = self.vm.host_vpn(frame)
                if (vpn >> 9) in pt.huge:
                    # Returning any page of a host huge region breaks it.
                    host.demote_region(self.vm.host_proc, vpn >> 9)
                pte = pt.base.get(vpn)
                if pte is None:
                    continue
                if not self._limiter.take():
                    self.returned_pages += returned
                    return returned
                if pte.shared_zero:
                    pt.unmap_base(vpn)
                    host.zero_registry.unshare()
                else:
                    pt.unmap_base(vpn)
                    host._rmap.pop(pte.frame, None)
                    host.buddy.free(pte.frame, 0)
                self.vm.host_proc.region(vpn >> 9).resident -= 1
                returned += 1
        self.returned_pages += returned
        return returned
