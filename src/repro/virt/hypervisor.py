"""Hypervisor and virtual machines.

A :class:`VirtualMachine` is a guest kernel whose frame allocations are
*backed* by faults on a host process's ``guest-ram`` VMA: guest frame
``f`` lives at host virtual page ``vma.start + f``, so guest frame
regions and host huge regions correspond one-to-one.  The coupling points:

* **backing faults** — when the guest allocates frames whose host pages
  are not yet mapped (or were KSM-merged away), the host fault path runs
  and its latency is charged to the guest's fault; a Linux host zeroes
  synchronously here, which is what makes VM spin-up so slow without
  host-side pre-zeroing (Table 8);
* **nested walks** — the guest's MMU model prices walks by the fraction
  of the backing region the host currently maps huge (Figure 9's
  host/guest/both matrix);
* **PMU attribution** — the guest's walker cycles are fed into the host
  PMU of the VM's host process, so a host-side HawkEye-PMU can identify
  which VM suffers address-translation overhead, exactly as hardware
  counters attribute guest-mode walks to the VCPU thread;
* **coverage mirroring** — the host access-bit sampler sees a VM region
  as covered in proportion to its guest-allocated frames, giving
  host-side HawkEye-G its access_map signal;
* **swap pressure** — when the (overcommitted) host swaps a VM's backing
  pages, the VM's progress is throttled proportionally to its swapped
  fraction (Figure 11's no-ballooning baseline).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.kernel.kernel import Kernel, KernelConfig
from repro.tlb.perf import PMUCounters
from repro.units import PAGES_PER_HUGE, pages_of
from repro.vm.process import Process
from repro.workloads.base import Workload, WorkloadRun

#: progress slowdown per unit swapped fraction of a VM's backing.
SWAP_THRASH_FACTOR = 20.0


class _HostMirrorProfile:
    """Access profile the host sampler sees for a VM's RAM region."""

    cache_sensitivity = 0.0
    access_rate = 0.0

    def __init__(self, vm: "VirtualMachine"):
        self.vm = vm

    def loads(self, kernel, proc):
        return []

    def region_coverage(self, kernel, proc) -> dict[int, int]:
        """Host region coverage = guest frame occupancy of the region."""
        vm = self.vm
        guest_frames = vm.guest.frames
        base_hvpn = vm.ram_vma.start >> 9
        nregions = vm.ram_pages // PAGES_PER_HUGE
        occupancy = guest_frames.allocated[: nregions * PAGES_PER_HUGE]
        counts = occupancy.reshape(nregions, PAGES_PER_HUGE).sum(axis=1)
        return {
            base_hvpn + i: int(counts[i]) for i in range(nregions) if counts[i] > 0
        }


class VirtualMachine:
    """One guest kernel backed by a host process."""

    def __init__(
        self,
        hypervisor: "Hypervisor",
        name: str,
        ram_bytes: int,
        guest_policy_factory: Callable[[Kernel], object],
        guest_config: Optional[KernelConfig] = None,
    ):
        self.hypervisor = hypervisor
        self.name = name
        host = hypervisor.host
        self.host_proc = Process(f"vm-{name}")
        host.processes.append(self.host_proc)
        host.pmu[self.host_proc.pid] = PMUCounters()
        self.ram_vma = host.mmap(self.host_proc, ram_bytes, "guest-ram")
        self.ram_pages = pages_of(ram_bytes)
        self.host_proc.access_profile = _HostMirrorProfile(self)

        if guest_config is None:
            guest_config = KernelConfig(
                mem_bytes=ram_bytes, epoch_us=host.config.epoch_us
            )
        self.guest = Kernel(guest_config, guest_policy_factory)
        self.guest.frame_alloc_hook = self._back_frames
        self.guest.host_huge_fraction = lambda proc: self._host_huge_fraction
        self._host_huge_fraction = 0.0
        self._prev_walk = 0.0
        self._prev_total = 0.0

    # ------------------------------------------------------------------ #
    # backing                                                             #
    # ------------------------------------------------------------------ #

    def host_vpn(self, guest_frame: int) -> int:
        """Host virtual page backing a guest physical frame."""
        return self.ram_vma.start + guest_frame

    def _back_frames(self, start: int, count: int) -> float:
        """Fault in host backing for newly-allocated guest frames."""
        host = self.hypervisor.host
        cost = 0.0
        pt = self.host_proc.page_table
        for frame in range(start, start + count):
            vpn = self.host_vpn(frame)
            pte = pt.base.get(vpn)
            if pte is None and (vpn >> 9) not in pt.huge:
                cost += host.fault(self.host_proc, vpn)
            elif pte is not None and pte.shared_zero:
                cost += host.fault(self.host_proc, vpn)  # COW break
            # Mark the backing as holding guest data so host-side bloat
            # recovery never de-duplicates an in-use guest page; only KSM
            # (which reads guest truth) may reclaim VM memory.
            translated = pt.translate(vpn)
            if translated is not None:
                host.frames.write(translated[0], first_nonzero=9)
        return cost

    def guest_zero_mask(self, host_hvpn: int) -> np.ndarray:
        """Guest-truth zero mask for the 512 frames behind a host region."""
        guest_frame0 = (host_hvpn << 9) - self.ram_vma.start
        return self.guest.frames.zero_mask(guest_frame0, PAGES_PER_HUGE)

    # ------------------------------------------------------------------ #
    # epoch coupling                                                      #
    # ------------------------------------------------------------------ #

    def refresh(self) -> None:
        """Update nested-walk cost inputs and host PMU attribution."""
        regions = [
            r for r in self.host_proc.regions.values() if r.resident > 0
        ]
        if regions:
            huge = sum(1 for r in regions if r.is_huge)
            self._host_huge_fraction = huge / len(regions)
        walk = sum(p.stats.walk_cycles for p in self.guest.processes)
        total = sum(p.stats.total_cycles for p in self.guest.processes)
        self.hypervisor.host.pmu[self.host_proc.pid].record(
            walk - self._prev_walk, total - self._prev_total
        )
        self._prev_walk, self._prev_total = walk, total
        self._apply_swap_pressure()

    def _apply_swap_pressure(self) -> None:
        swap = self.hypervisor.host.swap
        if swap is None:
            self.guest.external_slowdown = 0.0
            return
        pid = self.host_proc.pid
        mine = sum(1 for (spid, _) in swap.swapped if spid == pid)
        frac = mine / max(self.ram_pages, 1)
        self.guest.external_slowdown = frac * SWAP_THRASH_FACTOR

    # ------------------------------------------------------------------ #
    # workload management                                                 #
    # ------------------------------------------------------------------ #

    def spawn(self, workload: Workload, name: str | None = None) -> WorkloadRun:
        """Start a workload inside the guest kernel."""
        return self.guest.spawn(workload, name)

    @property
    def active(self) -> bool:
        return bool(self.guest.active_runs())


class Hypervisor:
    """A host kernel plus its virtual machines, run in lockstep epochs."""

    def __init__(self, host_config: KernelConfig, host_policy_factory):
        self.host = Kernel(host_config, host_policy_factory)
        self.vms: list[VirtualMachine] = []
        self.ksm = None
        self.balloons: list = []

    def create_vm(
        self,
        name: str,
        ram_bytes: int,
        guest_policy_factory,
        guest_config: Optional[KernelConfig] = None,
    ) -> VirtualMachine:
        """Create and register a new VM backed by a host process."""
        vm = VirtualMachine(self, name, ram_bytes, guest_policy_factory, guest_config)
        self.vms.append(vm)
        return vm

    def enable_ksm(self, pages_per_sec: float = 50_000.0):
        """Start host-side same-page merging over all VM regions."""
        from repro.virt.ksm import KSMThread

        self.ksm = KSMThread(self, pages_per_sec=pages_per_sec)
        return self.ksm

    def enable_ballooning(self, pages_per_sec: float = 50_000.0) -> None:
        """Attach a balloon driver to every current VM."""
        from repro.virt.balloon import BalloonDriver

        self.balloons = [BalloonDriver(vm, pages_per_sec) for vm in self.vms]

    def run_epoch(self) -> None:
        """Advance guests, host, KSM, balloons and swap drain by one epoch."""
        for vm in self.vms:
            vm.guest.run_epoch()
        self.host.run_epoch()
        if self.ksm is not None:
            self.ksm.run_epoch()
        for balloon in self.balloons:
            balloon.run_epoch()
        self._drain_swap()
        for vm in self.vms:
            vm.refresh()

    #: keep this fraction of host memory free while paging VMs back in.
    SWAP_DRAIN_RESERVE = 0.05

    def _drain_swap(self) -> None:
        """Demand-page swapped VM memory back while the host has room.

        Guests keep touching their working sets, so whenever ballooning
        or KSM frees host memory, the swapped-out hot pages fault back in
        (at swap-in cost) and the thrash subsides — the recovery path of
        the Figure 11 experiment."""
        swap = self.host.swap
        if swap is None or not swap.swapped:
            return
        reserve = int(self.host.buddy.total_pages * self.SWAP_DRAIN_RESERVE)
        budget = max(0, (self.host.buddy.free_pages - reserve) // 4)
        if budget == 0:
            return
        procs = {vm.host_proc.pid: vm.host_proc for vm in self.vms}
        for pid, vpn in list(swap.swapped)[:budget]:
            proc = procs.get(pid)
            if proc is None:
                swap.swapped.discard((pid, vpn))
                continue
            self.host.fault(proc, vpn)

    def run(self, max_epochs: int = 100_000) -> int:
        """Run epochs until every VM's workloads finish (or the cap)."""
        done = 0
        while any(vm.active for vm in self.vms) and done < max_epochs:
            self.run_epoch()
            done += 1
        return done
