"""Kernel same-page merging at the host, with guest-content indirection.

Like Linux's ``ksmd``, the thread scans the host pages backing each VM
and merges identical content; in this model it targets the dominant case
the paper exploits — zero-filled guest pages — by reading the *guest's*
frame content (KSM reads page bytes, so it sees guest truth).

Interaction with huge pages follows the coordinated designs the paper
cites (Ingens, SmartMD): a host *huge* page is broken for merging only
when almost all of it is zero in the guest, so useful huge mappings
survive; base-mapped host pages merge individually.

Combined with guest-side async pre-zeroing, this is the paper's §4
"memory sharing in virtualized environments" channel: a guest frees
memory → the guest pre-zero thread clears it → ksmd merges the backing
host pages onto the zero frame → the host regains the memory, with the
same net effect as ballooning but fully transparent (Figure 11).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import audit, trace
from repro.kernel.kthread import RateLimiter
from repro.units import PAGES_PER_HUGE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.virt.hypervisor import Hypervisor

#: zero fraction (guest truth) above which a host huge page is demoted
#: so its zero pages can merge.  Guest frees scatter across guest frame
#: space, so half-zero backing pages are common; reclaiming 256+ pages
#: justifies breaking the mapping (the coordinated demotion trade-off of
#: Ingens/SmartMD the paper discusses in §3.2).
DEMOTE_ZERO_FRACTION = 0.5


class KSMThread:
    """Host-side same-page-merging daemon over VM backing regions."""

    def __init__(self, hypervisor: "Hypervisor", pages_per_sec: float = 50_000.0):
        self.hypervisor = hypervisor
        self._limiter = RateLimiter(pages_per_sec, hypervisor.host.config.epoch_us)
        self._cursor: dict[str, int] = {}
        self.merged_pages = 0

    def run_epoch(self) -> int:
        """Scan VM backing regions round-robin and merge guest-zero pages."""
        self._limiter.refill()
        host = self.hypervisor.host
        cpu_before = host.stats.khugepaged_cpu_us
        merged = 0
        for vm in self.hypervisor.vms:
            merged += self._scan_vm(vm)
        if merged and trace.enabled and (tp := host.trace) is not None and tp.enabled:
            tp.emit(trace.TraceKind.KSM_MERGE, "ksmd",
                    host.stats.khugepaged_cpu_us - cpu_before,
                    detail=f"merged={merged}")
        return merged

    def _scan_vm(self, vm) -> int:
        host = self.hypervisor.host
        base_hvpn = vm.ram_vma.start >> 9
        nregions = vm.ram_pages // PAGES_PER_HUGE
        if nregions == 0:
            return 0
        start = self._cursor.get(vm.name, 0)
        merged = 0
        for step in range(nregions):
            if not self._limiter.take(PAGES_PER_HUGE):
                break
            idx = (start + step) % nregions
            merged += self._scan_region(vm, base_hvpn + idx)
            self._cursor[vm.name] = (idx + 1) % nregions
        host.stats.ksm_merged_pages += merged
        self.merged_pages += merged
        return merged

    def _scan_region(self, vm, host_hvpn: int) -> int:
        """Merge guest-zero pages of one host huge region."""
        host = self.hypervisor.host
        proc = vm.host_proc
        pt = proc.page_table
        zero_mask = vm.guest_zero_mask(host_hvpn)
        nz = int(zero_mask.sum())
        # Scanning cost: one cheap hash/compare per page in the region.
        host.stats.khugepaged_cpu_us += host.costs.ksm_compare_us * PAGES_PER_HUGE / 64.0

        if host_hvpn in pt.huge:
            if nz < DEMOTE_ZERO_FRACTION * PAGES_PER_HUGE:
                return 0
            host.demote_region(proc, host_hvpn)

        merged = 0
        vpn0 = host_hvpn << 9
        for offset in range(PAGES_PER_HUGE):
            if not zero_mask[offset]:
                continue
            pte = pt.base.get(vpn0 + offset)
            if pte is None or pte.shared_zero:
                continue
            host._rmap.pop(pte.frame, None)
            if audit.enabled and (al := host.audit) is not None \
                    and al.enabled:
                al.ledger.record(pte.frame, 1, audit.EV_KSM_MERGED,
                                 host.zero_registry.zero_frame)
            host.buddy.free(pte.frame, 0)
            pte.frame = host.zero_registry.zero_frame
            pte.shared_zero = True
            pt.shared_zero_count += 1
            pt.sync_pte(vpn0 + offset, pte)
            host.zero_registry.share()
            merged += 1
        return merged
