"""Virtual-memory substrate: VMAs, page tables, processes and regions."""

from repro.vm.page_table import BasePTE, HugePTE, PageTable
from repro.vm.process import Process, RegionInfo
from repro.vm.vma import VMA, VMAList

__all__ = ["VMA", "VMAList", "PageTable", "BasePTE", "HugePTE", "Process", "RegionInfo"]
