"""Per-process page tables with 4 KiB and 2 MiB mappings.

The table keeps two maps: base PTEs keyed by virtual page number and huge
PTEs keyed by huge-region number (``vpn >> 9``).  A virtual page is mapped
by at most one of the two — promotion replaces 512 base PTEs with one huge
PTE, demotion does the reverse.  Base PTEs can also be *shared-zero*
mappings onto the canonical zero frame (copy-on-write), which is how
HawkEye's bloat recovery returns memory without unmapping anything.

Alongside the authoritative PTE dicts, the table maintains flat numpy
*mirrors* — ``vpn -> frame`` (−1 when unmapped), ``vpn -> private`` and
``hvpn -> huge frame`` — so range operations (region scans, contiguity
checks, rmap walks, NUMA placement counts) become array slices instead of
512 dict probes per huge region.  The dicts stay the source of truth;
every mutation path updates the mirrors in the same call, and the few
call sites that mutate a PTE *in place* (COW breaks, migration, page
deduplication) re-sync via :meth:`PageTable.sync_pte` /
:meth:`PageTable.sync_huge`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidAddressError
from repro.units import PAGES_PER_HUGE, huge_align_down

#: initial mirror capacity in base pages (grows by doubling).
_INITIAL_VPN_CAPACITY = 8 * PAGES_PER_HUGE


class BasePTE:
    """A 4 KiB mapping: physical frame plus access metadata.

    ``shared_zero`` marks a copy-on-write mapping of the canonical zero
    frame (bloat recovery, §3.2); ``shared_cow`` marks a copy-on-write
    mapping of a KSM-merged content frame (same-page merging).  Both are
    broken by the fault path on write.
    """

    __slots__ = ("frame", "accessed", "dirty", "shared_zero", "shared_cow")

    def __init__(self, frame: int, shared_zero: bool = False):
        self.frame = frame
        self.accessed = False
        self.dirty = False
        self.shared_zero = shared_zero
        self.shared_cow = False

    @property
    def private(self) -> bool:
        """True when this mapping exclusively owns its frame."""
        return not (self.shared_zero or self.shared_cow)


class HugePTE:
    """A 2 MiB mapping: start frame of an order-9 physical block."""

    __slots__ = ("frame", "accessed", "dirty")

    def __init__(self, frame: int):
        self.frame = frame
        self.accessed = False
        self.dirty = False


class PageTable:
    """Both-granularity page table for one process."""

    def __init__(self) -> None:
        self.base: dict[int, BasePTE] = {}
        self.huge: dict[int, HugePTE] = {}
        #: mappings currently shared onto the canonical zero frame.
        self.shared_zero_count = 0
        #: vpn -> frame mirror of ``base`` (-1 = not base-mapped).
        self._mframe = np.full(_INITIAL_VPN_CAPACITY, -1, dtype=np.int64)
        #: vpn -> base-mapped AND private (exclusively owns its frame).
        self._mpriv = np.zeros(_INITIAL_VPN_CAPACITY, dtype=bool)
        #: hvpn -> huge start frame mirror of ``huge`` (-1 = not mapped).
        self._mhuge = np.full(
            _INITIAL_VPN_CAPACITY // PAGES_PER_HUGE, -1, dtype=np.int64
        )

    # ------------------------------------------------------------------ #
    # mirror maintenance                                                 #
    # ------------------------------------------------------------------ #

    def _ensure_base(self, end_vpn: int) -> None:
        """Grow the base mirrors to cover vpns below ``end_vpn``."""
        cap = self._mframe.shape[0]
        if end_vpn <= cap:
            return
        while cap < end_vpn:
            cap *= 2
        mframe = np.full(cap, -1, dtype=np.int64)
        mframe[: self._mframe.shape[0]] = self._mframe
        self._mframe = mframe
        mpriv = np.zeros(cap, dtype=bool)
        mpriv[: self._mpriv.shape[0]] = self._mpriv
        self._mpriv = mpriv

    def _ensure_huge(self, hvpn: int) -> None:
        """Grow the huge mirror to cover region ``hvpn``."""
        cap = self._mhuge.shape[0]
        if hvpn < cap:
            return
        while cap <= hvpn:
            cap *= 2
        mhuge = np.full(cap, -1, dtype=np.int64)
        mhuge[: self._mhuge.shape[0]] = self._mhuge
        self._mhuge = mhuge

    def sync_pte(self, vpn: int, pte: BasePTE) -> None:
        """Re-sync the mirrors after an in-place mutation of a base PTE.

        Required after any call site changes ``pte.frame`` or the shared
        flags directly (COW breaks, frame migration, zero/KSM dedup).
        """
        self._mframe[vpn] = pte.frame
        self._mpriv[vpn] = not (pte.shared_zero or pte.shared_cow)

    def sync_huge(self, hvpn: int, pte: HugePTE) -> None:
        """Re-sync the huge mirror after an in-place frame change."""
        self._mhuge[hvpn] = pte.frame

    # ------------------------------------------------------------------ #
    # mapping                                                            #
    # ------------------------------------------------------------------ #

    def map_base(self, vpn: int, frame: int, shared_zero: bool = False) -> BasePTE:
        """Install a 4 KiB mapping (optionally onto the shared zero frame)."""
        if vpn in self.base:
            raise InvalidAddressError(f"vpn {vpn} already mapped")
        if (vpn >> 9) in self.huge:
            raise InvalidAddressError(f"vpn {vpn} inside huge mapping")
        pte = BasePTE(frame, shared_zero)
        self.base[vpn] = pte
        self._ensure_base(vpn + 1)
        self._mframe[vpn] = frame
        self._mpriv[vpn] = not shared_zero
        if shared_zero:
            self.shared_zero_count += 1
        return pte

    def map_base_range(
        self, vpn0: int, extents: list[tuple[int, int, bool]], accessed: bool = False
    ) -> int:
        """Install base PTEs for consecutive vpns over physical ``extents``.

        ``extents`` is a list of ``(start_frame, count, zeroed)`` runs (the
        shape :meth:`repro.mem.buddy.BuddyAllocator.try_alloc_run` returns);
        virtual pages ``vpn0, vpn0+1, ...`` map onto the extents' frames in
        order.  One bounds/overlap check per run replaces the per-page
        checks of :meth:`map_base`.  Returns the number of PTEs installed.
        """
        total = sum(count for _, count, _ in extents)
        if total == 0:
            return 0
        if (self._mframe[vpn0 : vpn0 + total] >= 0).any():
            raise InvalidAddressError(f"range [{vpn0}, {vpn0 + total}) overlaps base mappings")
        if (self._mhuge[vpn0 >> 9 : ((vpn0 + total - 1) >> 9) + 1] >= 0).any():
            raise InvalidAddressError(f"range [{vpn0}, {vpn0 + total}) overlaps a huge mapping")
        self._ensure_base(vpn0 + total)
        base = self.base
        mframe = self._mframe
        vpn = vpn0
        for start, count, _ in extents:
            for i in range(count):
                pte = BasePTE(start + i)
                pte.accessed = accessed
                base[vpn + i] = pte
            mframe[vpn : vpn + count] = np.arange(start, start + count, dtype=np.int64)
            vpn += count
        self._mpriv[vpn0 : vpn0 + total] = True
        return total

    def map_huge(self, hvpn: int, frame: int) -> HugePTE:
        """Install a 2 MiB mapping over an order-9 physical block."""
        if hvpn in self.huge:
            raise InvalidAddressError(f"huge region {hvpn} already mapped")
        pte = HugePTE(frame)
        self.huge[hvpn] = pte
        self._ensure_huge(hvpn)
        self._mhuge[hvpn] = frame
        return pte

    def unmap_base(self, vpn: int) -> BasePTE:
        """Remove and return a base PTE; raises if absent."""
        pte = self.base.pop(vpn, None)
        if pte is None:
            raise InvalidAddressError(f"vpn {vpn} not base-mapped")
        self._mframe[vpn] = -1
        self._mpriv[vpn] = False
        if pte.shared_zero:
            self.shared_zero_count -= 1
        return pte

    def unmap_base_run_private(self, vpn0: int, count: int) -> None:
        """Drop ``count`` consecutive *private* base PTEs (bulk teardown).

        Callers guarantee every page in the run is base-mapped and
        private, so no shared-zero accounting applies; the dict deletions
        happen in ascending order and the mirrors clear as one slice.
        """
        base = self.base
        for vpn in range(vpn0, vpn0 + count):
            del base[vpn]
        self._mframe[vpn0 : vpn0 + count] = -1
        self._mpriv[vpn0 : vpn0 + count] = False

    def unmap_huge(self, hvpn: int) -> HugePTE:
        """Remove and return a huge PTE; raises if absent."""
        pte = self.huge.pop(hvpn, None)
        if pte is None:
            raise InvalidAddressError(f"huge region {hvpn} not mapped")
        self._mhuge[hvpn] = -1
        return pte

    # ------------------------------------------------------------------ #
    # promotion / demotion plumbing                                      #
    # ------------------------------------------------------------------ #

    def demote_huge(self, hvpn: int) -> list[tuple[int, BasePTE]]:
        """Replace a huge PTE with 512 base PTEs onto the same frames.

        Returns the new ``(vpn, pte)`` pairs; the physical block stays
        allocated and contiguous — only the mapping granularity changes.
        """
        huge_pte = self.unmap_huge(hvpn)
        vpn0 = hvpn << 9
        self._ensure_base(vpn0 + PAGES_PER_HUGE)
        created = []
        base = self.base
        frame0 = huge_pte.frame
        accessed = huge_pte.accessed
        dirty = huge_pte.dirty
        for i in range(PAGES_PER_HUGE):
            pte = BasePTE(frame0 + i)
            pte.accessed = accessed
            pte.dirty = dirty
            base[vpn0 + i] = pte
            created.append((vpn0 + i, pte))
        self._mframe[vpn0 : vpn0 + PAGES_PER_HUGE] = np.arange(
            frame0, frame0 + PAGES_PER_HUGE, dtype=np.int64
        )
        self._mpriv[vpn0 : vpn0 + PAGES_PER_HUGE] = True
        return created

    def region_base_vpns(self, hvpn: int) -> list[int]:
        """Base-mapped VPNs inside huge region ``hvpn``."""
        vpn0 = hvpn << 9
        seg = self._mframe[vpn0 : vpn0 + PAGES_PER_HUGE]
        return (np.nonzero(seg >= 0)[0] + vpn0).tolist()

    def region_mirror(self, hvpn: int) -> tuple[np.ndarray, np.ndarray]:
        """``(frames, private)`` mirror slices for one huge region.

        Read-only views over the region's 512 vpn slots (shorter when the
        mirror has never grown that far — missing slots are unmapped).
        ``frames[i] == -1`` means vpn ``(hvpn << 9) + i`` is not
        base-mapped.
        """
        vpn0 = hvpn << 9
        return (
            self._mframe[vpn0 : vpn0 + PAGES_PER_HUGE],
            self._mpriv[vpn0 : vpn0 + PAGES_PER_HUGE],
        )

    def contiguous_private_block(self, vpn0: int) -> int | None:
        """Start frame when a region's 512 pages form one aligned block.

        Array check over the mirrors: all 512 pages base-mapped, private,
        onto consecutive frames starting at an order-9 boundary.
        """
        seg = self._mframe[vpn0 : vpn0 + PAGES_PER_HUGE]
        if seg.shape[0] < PAGES_PER_HUGE:
            return None
        frame0 = int(seg[0])
        if frame0 < 0 or frame0 % PAGES_PER_HUGE != 0:
            return None
        if not self._mpriv[vpn0 : vpn0 + PAGES_PER_HUGE].all():
            return None
        expect = np.arange(frame0, frame0 + PAGES_PER_HUGE, dtype=np.int64)
        if not np.array_equal(seg, expect):
            return None
        return frame0

    # ------------------------------------------------------------------ #
    # lookup                                                             #
    # ------------------------------------------------------------------ #

    def translate(self, vpn: int) -> tuple[int, bool] | None:
        """Physical frame for ``vpn`` and whether the mapping is huge."""
        huge_pte = self.huge.get(vpn >> 9)
        if huge_pte is not None:
            return huge_pte.frame + (vpn - huge_align_down(vpn)), True
        pte = self.base.get(vpn)
        if pte is not None:
            return pte.frame, False
        return None

    def translate_range(self, vpn0: int, count: int) -> np.ndarray:
        """Frames for ``count`` consecutive vpns (-1 where unmapped).

        Vectorized :meth:`translate` over both granularities; huge-mapped
        vpns resolve to ``huge_frame + offset``.
        """
        out = np.full(count, -1, dtype=np.int64)
        seg = self._mframe[vpn0 : vpn0 + count]
        out[: seg.shape[0]] = seg
        hlo, hhi = vpn0 >> 9, (vpn0 + count - 1) >> 9
        hseg = self._mhuge[hlo : hhi + 1]
        if hseg.size and (hseg >= 0).any():
            vpns = np.arange(vpn0, vpn0 + count, dtype=np.int64)
            idx = (vpns >> 9) - hlo
            valid = idx < hseg.shape[0]
            hframes = np.where(valid, hseg[np.minimum(idx, hseg.shape[0] - 1)], -1)
            mask = hframes >= 0
            out[mask] = hframes[mask] + (vpns[mask] & (PAGES_PER_HUGE - 1))
        return out

    def is_mapped(self, vpn: int) -> bool:
        """Whether the virtual page is mapped at either granularity."""
        return vpn in self.base or (vpn >> 9) in self.huge

    def huge_count_in_range(self, hvpn_lo: int, hvpn_hi: int) -> int:
        """Number of huge-mapped regions in ``[hvpn_lo, hvpn_hi)``."""
        return int((self._mhuge[hvpn_lo:hvpn_hi] >= 0).sum())

    # ------------------------------------------------------------------ #
    # accounting                                                         #
    # ------------------------------------------------------------------ #

    def clear(self) -> None:
        """Drop every mapping (process teardown); mirrors reset wholesale."""
        self.base.clear()
        self.huge.clear()
        self.shared_zero_count = 0
        self._mframe[:] = -1
        self._mpriv[:] = False
        self._mhuge[:] = -1

    def resident_pages(self) -> int:
        """RSS in base pages, excluding shared-zero (deduplicated) mappings."""
        return len(self.base) - self.shared_zero_count + len(self.huge) * PAGES_PER_HUGE

    def huge_mapped_pages(self) -> int:
        """Base-page count covered by huge mappings."""
        return len(self.huge) * PAGES_PER_HUGE
