"""Per-process page tables with 4 KiB and 2 MiB mappings.

The table keeps two maps: base PTEs keyed by virtual page number and huge
PTEs keyed by huge-region number (``vpn >> 9``).  A virtual page is mapped
by at most one of the two — promotion replaces 512 base PTEs with one huge
PTE, demotion does the reverse.  Base PTEs can also be *shared-zero*
mappings onto the canonical zero frame (copy-on-write), which is how
HawkEye's bloat recovery returns memory without unmapping anything.
"""

from __future__ import annotations

from repro.errors import InvalidAddressError
from repro.units import PAGES_PER_HUGE, huge_align_down


class BasePTE:
    """A 4 KiB mapping: physical frame plus access metadata.

    ``shared_zero`` marks a copy-on-write mapping of the canonical zero
    frame (bloat recovery, §3.2); ``shared_cow`` marks a copy-on-write
    mapping of a KSM-merged content frame (same-page merging).  Both are
    broken by the fault path on write.
    """

    __slots__ = ("frame", "accessed", "dirty", "shared_zero", "shared_cow")

    def __init__(self, frame: int, shared_zero: bool = False):
        self.frame = frame
        self.accessed = False
        self.dirty = False
        self.shared_zero = shared_zero
        self.shared_cow = False

    @property
    def private(self) -> bool:
        """True when this mapping exclusively owns its frame."""
        return not (self.shared_zero or self.shared_cow)


class HugePTE:
    """A 2 MiB mapping: start frame of an order-9 physical block."""

    __slots__ = ("frame", "accessed", "dirty")

    def __init__(self, frame: int):
        self.frame = frame
        self.accessed = False
        self.dirty = False


class PageTable:
    """Both-granularity page table for one process."""

    def __init__(self) -> None:
        self.base: dict[int, BasePTE] = {}
        self.huge: dict[int, HugePTE] = {}
        #: mappings currently shared onto the canonical zero frame.
        self.shared_zero_count = 0

    # ------------------------------------------------------------------ #
    # mapping                                                            #
    # ------------------------------------------------------------------ #

    def map_base(self, vpn: int, frame: int, shared_zero: bool = False) -> BasePTE:
        """Install a 4 KiB mapping (optionally onto the shared zero frame)."""
        if vpn in self.base:
            raise InvalidAddressError(f"vpn {vpn} already mapped")
        if (vpn >> 9) in self.huge:
            raise InvalidAddressError(f"vpn {vpn} inside huge mapping")
        pte = BasePTE(frame, shared_zero)
        self.base[vpn] = pte
        if shared_zero:
            self.shared_zero_count += 1
        return pte

    def map_base_range(
        self, vpn0: int, extents: list[tuple[int, int, bool]], accessed: bool = False
    ) -> int:
        """Install base PTEs for consecutive vpns over physical ``extents``.

        ``extents`` is a list of ``(start_frame, count, zeroed)`` runs (the
        shape :meth:`repro.mem.buddy.BuddyAllocator.try_alloc_run` returns);
        virtual pages ``vpn0, vpn0+1, ...`` map onto the extents' frames in
        order.  One bounds/overlap check per run replaces the per-page
        checks of :meth:`map_base`.  Returns the number of PTEs installed.
        """
        total = sum(count for _, count, _ in extents)
        if total == 0:
            return 0
        if not self.base.keys().isdisjoint(range(vpn0, vpn0 + total)):
            raise InvalidAddressError(f"range [{vpn0}, {vpn0 + total}) overlaps base mappings")
        if not self.huge.keys().isdisjoint(range(vpn0 >> 9, ((vpn0 + total - 1) >> 9) + 1)):
            raise InvalidAddressError(f"range [{vpn0}, {vpn0 + total}) overlaps a huge mapping")
        base = self.base
        vpn = vpn0
        for start, count, _ in extents:
            for i in range(count):
                pte = BasePTE(start + i)
                pte.accessed = accessed
                base[vpn + i] = pte
            vpn += count
        return total

    def map_huge(self, hvpn: int, frame: int) -> HugePTE:
        """Install a 2 MiB mapping over an order-9 physical block."""
        if hvpn in self.huge:
            raise InvalidAddressError(f"huge region {hvpn} already mapped")
        pte = HugePTE(frame)
        self.huge[hvpn] = pte
        return pte

    def unmap_base(self, vpn: int) -> BasePTE:
        """Remove and return a base PTE; raises if absent."""
        pte = self.base.pop(vpn, None)
        if pte is None:
            raise InvalidAddressError(f"vpn {vpn} not base-mapped")
        if pte.shared_zero:
            self.shared_zero_count -= 1
        return pte

    def unmap_huge(self, hvpn: int) -> HugePTE:
        """Remove and return a huge PTE; raises if absent."""
        pte = self.huge.pop(hvpn, None)
        if pte is None:
            raise InvalidAddressError(f"huge region {hvpn} not mapped")
        return pte

    # ------------------------------------------------------------------ #
    # promotion / demotion plumbing                                      #
    # ------------------------------------------------------------------ #

    def demote_huge(self, hvpn: int) -> list[tuple[int, BasePTE]]:
        """Replace a huge PTE with 512 base PTEs onto the same frames.

        Returns the new ``(vpn, pte)`` pairs; the physical block stays
        allocated and contiguous — only the mapping granularity changes.
        """
        huge_pte = self.unmap_huge(hvpn)
        vpn0 = hvpn << 9
        created = []
        for i in range(PAGES_PER_HUGE):
            pte = BasePTE(huge_pte.frame + i)
            pte.accessed = huge_pte.accessed
            pte.dirty = huge_pte.dirty
            self.base[vpn0 + i] = pte
            created.append((vpn0 + i, pte))
        return created

    def region_base_vpns(self, hvpn: int) -> list[int]:
        """Base-mapped VPNs inside huge region ``hvpn``."""
        vpn0 = hvpn << 9
        return [vpn for vpn in range(vpn0, vpn0 + PAGES_PER_HUGE) if vpn in self.base]

    # ------------------------------------------------------------------ #
    # lookup                                                             #
    # ------------------------------------------------------------------ #

    def translate(self, vpn: int) -> tuple[int, bool] | None:
        """Physical frame for ``vpn`` and whether the mapping is huge."""
        huge_pte = self.huge.get(vpn >> 9)
        if huge_pte is not None:
            return huge_pte.frame + (vpn - huge_align_down(vpn)), True
        pte = self.base.get(vpn)
        if pte is not None:
            return pte.frame, False
        return None

    def is_mapped(self, vpn: int) -> bool:
        """Whether the virtual page is mapped at either granularity."""
        return vpn in self.base or (vpn >> 9) in self.huge

    # ------------------------------------------------------------------ #
    # accounting                                                         #
    # ------------------------------------------------------------------ #

    def resident_pages(self) -> int:
        """RSS in base pages, excluding shared-zero (deduplicated) mappings."""
        return len(self.base) - self.shared_zero_count + len(self.huge) * PAGES_PER_HUGE

    def huge_mapped_pages(self) -> int:
        """Base-page count covered by huge mappings."""
        return len(self.huge) * PAGES_PER_HUGE
