"""Processes: address space, per-region metadata and time accounting.

``RegionInfo`` is the per-huge-region record every policy in the paper
keys off: FreeBSD's ``population_map`` (residency), Ingens's
``access_bitvector`` (utilisation + idleness) and HawkEye's ``access_map``
(EMA access-coverage) are all views over this structure (§3.3).  Storage
lives in :class:`repro.core.region_table.RegionTable` — parallel numpy
arrays the epoch hot paths (access-bit sampling, EMA ranking, WSS) read
as whole columns; ``RegionInfo`` is a per-slot proxy so scalar call
sites keep the dict-of-records shape.

Time accounting follows the execution model of the evaluation: a process
retires its workload's *useful work* at a rate discounted by page-fault
time and by the MMU overhead the hardware model reports for its current
mappings, so execution-time differences between policies emerge from
promotion decisions exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.region_table import RegionInfo, RegionTable
from repro.vm.page_table import PageTable
from repro.vm.vma import VMAList

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import AccessProfile

__all__ = ["Process", "ProcessStats", "RegionInfo", "RegionTable"]


@dataclass
class ProcessStats:
    """Counters a single process accumulates over its lifetime."""

    faults: int = 0
    huge_faults: int = 0
    cow_faults: int = 0
    fault_time_us: float = 0.0
    promotions: int = 0
    demotions: int = 0
    walk_cycles: float = 0.0
    total_cycles: float = 0.0
    #: walk cycles spent on remote-node page walks (0 on single-node).
    remote_walk_cycles: float = 0.0


class Process:
    """A simulated process: one address space plus execution state."""

    _next_pid = 1

    def __init__(self, name: str):
        self.pid = Process._next_pid
        Process._next_pid = self.pid + 1
        self.name = name
        self.page_table = PageTable()
        self.vmas = VMAList()
        self.regions: RegionTable = RegionTable()
        self.stats = ProcessStats()
        #: opaque access profile installed by the running workload phase.
        self.access_profile: Optional["AccessProfile"] = None
        #: measured MMU overhead for the last epoch (fraction of cycles).
        self.mmu_overhead: float = 0.0
        #: useful work retired so far / wall-clock attributed, microseconds.
        self.work_done_us: float = 0.0
        self.run_time_us: float = 0.0
        self.fault_time_epoch_us: float = 0.0
        self.finished = False
        #: creation order, used by FCFS policies (Linux khugepaged).
        self.launch_index = self.pid
        #: NUMA node this process's threads run on (scheduler placement).
        self.home_node: int = 0
        #: process-wide placement policy; None means local (first-touch).
        #: Typed loosely to keep single-node builds import-free of numa.
        self.mempolicy = None

    def region(self, hvpn: int) -> RegionInfo:
        """Get or create the metadata record for huge region ``hvpn``."""
        return self.regions.get_or_create(hvpn)

    def rss_pages(self) -> int:
        """Resident set size in base pages (excludes shared-zero mappings)."""
        return self.page_table.resident_pages()

    def huge_regions(self) -> list[RegionInfo]:
        """Regions currently mapped huge."""
        return [r for r in self.regions.values() if r.is_huge]

    def candidate_regions(self) -> list[RegionInfo]:
        """Regions not yet huge that have at least one resident page."""
        return [r for r in self.regions.values() if not r.is_huge and r.resident > 0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.pid} {self.name!r} rss={self.rss_pages()}p>"
