"""Virtual memory areas.

A VMA is a contiguous range of virtual pages with one backing kind.  The
kind matters to HawkEye §3.1: anonymous regions must be zero-filled on
fault (and therefore benefit from the pre-zeroed free lists), while
file-backed and copy-on-write regions are about to be overwritten with
other content, so the fault path steers them to the *non-zero* lists to
avoid wasting pre-zeroed frames.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field

from repro.errors import InvalidAddressError


class VMAKind(enum.Enum):
    """Backing type of a VMA: anonymous, file-backed or copy-on-write."""
    ANON = "anon"
    FILE = "file"
    COW = "cow"


class HugePageHint(enum.Enum):
    """Per-VMA huge-page advice (madvise MADV_HUGEPAGE / MADV_NOHUGEPAGE).

    The paper's related-work section points at compiler/application hints
    through the madvise interface; policies honour them here: ``NEVER``
    excludes a VMA from huge mappings and promotion entirely, ``ALWAYS``
    marks it eligible even under policies that would otherwise defer
    (e.g. it exempts the VMA from HawkEye's huge-page limits).
    """

    DEFAULT = "default"
    ALWAYS = "always"      # MADV_HUGEPAGE
    NEVER = "never"        # MADV_NOHUGEPAGE


@dataclass
class VMA:
    """A contiguous virtual range ``[start, start + npages)`` of base pages."""

    start: int
    npages: int
    name: str = "anon"
    kind: VMAKind = VMAKind.ANON
    hint: HugePageHint = HugePageHint.DEFAULT
    #: per-VMA NUMA placement override (``mbind``); None defers to the
    #: process policy.  Typed loosely so single-node code never imports
    #: the numa package.
    mempolicy: object | None = None

    @property
    def end(self) -> int:
        return self.start + self.npages

    def contains(self, vpn: int) -> bool:
        """Whether the virtual page lies inside this VMA."""
        return self.start <= vpn < self.end

    def covers(self, vpn: int, npages: int) -> bool:
        """Whether [vpn, vpn+npages) lies entirely inside this VMA."""
        return self.start <= vpn and vpn + npages <= self.end


class VMAList:
    """Sorted, non-overlapping collection of VMAs with bisect lookup."""

    def __init__(self) -> None:
        self._vmas: list[VMA] = []
        self._starts: list[int] = []

    def __len__(self) -> int:
        return len(self._vmas)

    def __iter__(self):
        return iter(self._vmas)

    def add(self, vma: VMA) -> VMA:
        """Insert a VMA, rejecting overlaps; returns it."""
        idx = bisect.bisect_left(self._starts, vma.start)
        if idx > 0 and self._vmas[idx - 1].end > vma.start:
            raise InvalidAddressError(f"VMA at {vma.start} overlaps {self._vmas[idx - 1].name}")
        if idx < len(self._vmas) and vma.end > self._vmas[idx].start:
            raise InvalidAddressError(f"VMA at {vma.start} overlaps {self._vmas[idx].name}")
        self._vmas.insert(idx, vma)
        self._starts.insert(idx, vma.start)
        return vma

    def find(self, vpn: int) -> VMA:
        """VMA containing ``vpn``; raises :class:`InvalidAddressError` if none."""
        idx = bisect.bisect_right(self._starts, vpn) - 1
        if idx >= 0 and self._vmas[idx].contains(vpn):
            return self._vmas[idx]
        raise InvalidAddressError(f"no VMA maps virtual page {vpn}")

    def try_find(self, vpn: int) -> VMA | None:
        """VMA containing the page, or None."""
        idx = bisect.bisect_right(self._starts, vpn) - 1
        if idx >= 0 and self._vmas[idx].contains(vpn):
            return self._vmas[idx]
        return None

    def remove(self, vma: VMA) -> None:
        """Remove a VMA previously added; raises if absent."""
        idx = bisect.bisect_left(self._starts, vma.start)
        if idx >= len(self._vmas) or self._vmas[idx] is not vma:
            raise InvalidAddressError(f"VMA {vma.name}@{vma.start} not present")
        del self._vmas[idx]
        del self._starts[idx]

    def highest_end(self) -> int:
        """One past the last mapped virtual page (0 when empty)."""
        return self._vmas[-1].end if self._vmas else 0
