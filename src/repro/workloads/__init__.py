"""Workload models: trace generators calibrated to the paper's benchmarks.

Submodules: ``graph`` (Graph500, PageRank), ``xsbench``, ``npb`` (class D),
``redis`` (four Redis configurations + MongoDB), ``sparsehash``, ``haccio``,
``spinup`` (JVM/KVM), ``microbench`` (Tables 1/9), ``spec`` (SPEC/CloudSuite
presets), ``catalog`` (Table 2 / Figure 3 data) and ``trace`` (replay a
recorded trace file).
"""

from repro.workloads.base import (
    AccessProfile,
    ContentSpec,
    FreeOp,
    MmapOp,
    Phase,
    RegionAccessSpec,
    SleepOp,
    TouchOp,
    Workload,
    WorkloadRun,
)

__all__ = [
    "AccessProfile",
    "ContentSpec",
    "FreeOp",
    "MmapOp",
    "Phase",
    "RegionAccessSpec",
    "SleepOp",
    "TouchOp",
    "Workload",
    "WorkloadRun",
]
