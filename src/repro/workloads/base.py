"""Workload framework: operations, phases, access profiles and the executor.

A workload is a list of :class:`Phase` objects.  Each phase optionally

* executes *operations* — mmap, touch (fault-driven allocation with a
  content model), free (madvise), sleep — whose time cost is dominated by
  page-fault latency, and then
* retires *useful work* (``work_us``) or *serves requests* for a fixed
  wall duration (``duration_us``), while an :class:`AccessProfile`
  describes the memory accesses the hardware model prices each epoch.

The executor (:class:`WorkloadRun`) steps a phase machine once per kernel
epoch.  Wall time splits into fault time (from the operations), walker
stalls (the MMU overhead of the current mapping state) and useful
compute, so a policy that promotes the right regions sooner finishes the
same work in less wall time — the execution-time differences the paper's
evaluation reports.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.patterns import Pattern
from repro.tlb.mmu_model import RegionLoad
from repro.units import CYCLES_PER_USEC, PAGES_PER_HUGE, SEC
from repro.vm.process import Process
from repro.vm.vma import VMA, VMAKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel


# ---------------------------------------------------------------------- #
# access profiles                                                         #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RegionAccessSpec:
    """Steady-state access behaviour over (part of) one named VMA."""

    region: str
    #: base pages accessed per sample interval within each touched huge
    #: region (0..512) — the paper's access-coverage metric.
    coverage: int = PAGES_PER_HUGE
    #: share of the process's accesses going to this spec.
    weight: float = 1.0
    pattern: Pattern = Pattern.RANDOM
    #: hot range within the VMA, as fractions of its length.  Figure 6 of
    #: the paper shows Graph500/XSBench hot-spots concentrated in *high*
    #: virtual addresses — expressed here as hot_start close to 1-hot_len.
    hot_start: float = 0.0
    hot_len: float = 1.0
    stride: int = 8

    def hot_hvpns(self, vma: VMA) -> range:
        """Huge regions the hot range overlaps."""
        lo = vma.start + int(self.hot_start * vma.npages)
        hi = vma.start + int((self.hot_start + self.hot_len) * vma.npages)
        hi = min(hi, vma.end)
        if hi <= lo:
            return range(0)
        return range(lo >> 9, ((hi - 1) >> 9) + 1)


@dataclass
class AccessProfile:
    """What a process's accesses look like while a phase computes."""

    specs: list[RegionAccessSpec]
    #: memory accesses per useful microsecond (calibrated per workload so
    #: the model reproduces the paper's measured MMU overheads).
    access_rate: float = 20.0
    #: susceptibility to cache pollution from the pre-zeroing thread
    #: (Figure 10 interference model); 1.0 ≈ omnetpp's worst case.
    cache_sensitivity: float = 0.3

    def loads(self, kernel: "Kernel", proc: Process) -> list[RegionLoad]:
        """Convert specs into hardware-model loads for the current epoch."""
        out: list[RegionLoad] = []
        numa = kernel.numa
        for spec in self.specs:
            vma = _try_vma(proc, spec.region)
            if vma is None:
                continue
            hvpns = spec.hot_hvpns(vma)
            if not hvpns:
                continue
            promoted = proc.page_table.huge_count_in_range(hvpns.start, hvpns.stop)
            remote_fraction, remote_penalty = (
                numa.load_remoteness(proc, hvpns) if numa is not None
                else (0.0, 1.0)
            )
            out.append(
                RegionLoad(
                    touched_regions=len(hvpns),
                    coverage=float(min(spec.coverage, PAGES_PER_HUGE)),
                    promoted_fraction=promoted / len(hvpns),
                    weight=spec.weight,
                    pattern=spec.pattern,
                    stride=spec.stride,
                    remote_fraction=remote_fraction,
                    remote_penalty=remote_penalty,
                )
            )
        return out

    def region_coverage(self, kernel: "Kernel", proc: Process) -> dict[int, int]:
        """Per-huge-region access-coverage ground truth for bit sampling."""
        coverage: dict[int, int] = {}
        for spec in self.specs:
            vma = _try_vma(proc, spec.region)
            if vma is None:
                continue
            for hvpn in spec.hot_hvpns(vma):
                coverage[hvpn] = max(coverage.get(hvpn, 0), spec.coverage)
        return coverage

    def coverage_array(self, kernel: "Kernel", proc: Process,
                       hvpns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`region_coverage` lookup over an hvpn array.

        Returns the access-coverage sample for each requested region
        (0 for regions outside every spec's hot range) — the same max
        composition over specs as the dict form, computed with range
        masks instead of per-region dict entries.
        """
        out = np.zeros(hvpns.shape[0], dtype=np.int64)
        for spec in self.specs:
            vma = _try_vma(proc, spec.region)
            if vma is None:
                continue
            hot = spec.hot_hvpns(vma)
            if not hot:
                continue
            mask = (hvpns >= hot.start) & (hvpns < hot.stop)
            np.maximum(out, np.where(mask, spec.coverage, 0), out=out)
        return out


def _try_vma(proc: Process, name: str) -> VMA | None:
    for vma in proc.vmas:
        if vma.name == name:
            return vma
    return None


# ---------------------------------------------------------------------- #
# operations                                                              #
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ContentSpec:
    """What a touch writes into each page.

    ``first_nonzero`` defaults to 9 bytes — the measured mean distance to
    the first non-zero byte across the paper's 56 workloads (Figure 3,
    mean 9.11) — so bloat-recovery scan costs are realistic by default.
    ``zero`` leaves pages zero-filled (reads, or writes of zeroes);
    ``shared_tag`` gives every page identical content for KSM experiments.
    """

    zero: bool = False
    first_nonzero: int = 9
    shared_tag: Optional[int] = None


class Op(abc.ABC):
    """One resumable workload operation."""

    @abc.abstractmethod
    def execute(self, kernel: "Kernel", run: "WorkloadRun", budget_us: float) -> tuple[float, bool]:
        """Run until done or out of budget; returns (time consumed, done)."""

    def reset(self) -> None:
        """Clear resume state so the op can run again (repeated workloads)."""


@dataclass
class MmapOp(Op):
    """Create a named anonymous (or file-backed) mapping."""

    region: str
    nbytes: int
    kind: VMAKind = VMAKind.ANON

    def execute(self, kernel, run, budget_us):
        """Create the named VMA; completes instantly."""
        kernel.mmap(run.proc, self.nbytes, self.region, self.kind)
        run.invalidate_vma_cache()
        return 1.0, True


@dataclass
class TouchOp(Op):
    """Touch (fault + write) pages of a region.

    ``stride_pages`` > 1 touches every k-th base page — the sparse-access
    pattern that turns huge-at-fault allocation into memory bloat.
    ``rate_pages_per_sec`` paces the touches (client-driven workloads);
    ``work_per_page_us`` adds application CPU per touched page.
    """

    region: str
    start_page: int = 0
    npages: Optional[int] = None
    stride_pages: int = 1
    content: ContentSpec = field(default_factory=ContentSpec)
    rate_pages_per_sec: Optional[float] = None
    work_per_page_us: float = 0.0
    _pos: int = field(default=0, repr=False)

    def reset(self) -> None:
        """Clear resume state (fresh run of the same op object)."""
        self._pos = 0

    def total_touches(self, vma: VMA) -> int:
        """Number of pages this op will touch in the given VMA."""
        span = self.npages if self.npages is not None else vma.npages - self.start_page
        return max(0, -(-span // self.stride_pages))

    def execute(self, kernel, run, budget_us):
        """Fault and write pages until done, paced, or out of budget."""
        proc = run.proc
        vma = run.vma(self.region)
        total = self.total_touches(vma)
        if kernel.batched_faults and self.stride_pages == 1 and self._pos < total:
            # Dense touch: the bulk fault fast path (scalar-equivalent,
            # including the budget stop, per-page work and rate pacing —
            # the per-page budget increment max(cost + work, pace) is
            # uniform within each uniform run, so it batches exactly).
            vpn = vma.start + self.start_page + self._pos
            max_this_call = total - self._pos
            if self.rate_pages_per_sec is not None:
                max_this_call = min(
                    max_this_call, int(self.rate_pages_per_sec * budget_us / SEC) + 1
                )
            pace_us = SEC / self.rate_pages_per_sec if self.rate_pages_per_sec else 0.0
            consumed, pages = kernel.fault_range(
                proc,
                vpn,
                max_this_call,
                budget_us,
                self.content,
                vma,
                work_us=self.work_per_page_us,
                pace_us=pace_us,
            )
            self._pos += pages
            return consumed, self._pos >= total
        consumed = 0.0
        max_this_call = total - self._pos
        if self.rate_pages_per_sec is not None:
            max_this_call = min(max_this_call, int(self.rate_pages_per_sec * budget_us / SEC) + 1)
        pace_us = SEC / self.rate_pages_per_sec if self.rate_pages_per_sec else 0.0
        done_now = 0
        frames = kernel.frames
        while done_now < max_this_call and consumed < budget_us:
            vpn = vma.start + self.start_page + self._pos * self.stride_pages
            cost = kernel.fault(proc, vpn)
            translated = proc.page_table.translate(vpn)
            if translated is not None:
                frame, _ = translated
                if self.content.zero:
                    frames.write_zero(frame)
                else:
                    frames.write(frame, self.content.first_nonzero, self.content.shared_tag)
            consumed += max(cost + self.work_per_page_us, pace_us)
            self._pos += 1
            done_now += 1
        return consumed, self._pos >= total


@dataclass
class FreeOp(Op):
    """madvise(DONTNEED) part of a region back to the kernel.

    ``stride_regions``/``keep_fraction`` express the random-deletion
    patterns of the paper's Redis experiments: free ``npages`` pages
    starting at ``start_page``, or with ``sparse`` free every page whose
    index hashes below the fraction (deterministic pseudo-random).
    """

    region: str
    start_page: int = 0
    npages: Optional[int] = None
    sparse_fraction: Optional[float] = None
    seed: int = 11
    _rng: Optional[random.Random] = field(default=None, repr=False, compare=False)

    def execute(self, kernel, run, budget_us):
        """Release the configured range (or sparse subset) via madvise."""
        proc = run.proc
        vma = run.vma(self.region)
        span = self.npages if self.npages is not None else vma.npages - self.start_page
        base = vma.start + self.start_page
        if self.sparse_fraction is None:
            cost = kernel.madvise_free(proc, base, span)
            return cost, True
        # One RNG per op instance, re-seeded per run so repeated executions
        # free the same deterministic subset.
        if self._rng is None:
            self._rng = random.Random(self.seed)
        else:
            self._rng.seed(self.seed)
        draw = self._rng.random
        frac = self.sparse_fraction
        drop = [draw() < frac for _ in range(span)]
        cost = 0.0
        i = 0
        while i < span:
            if drop[i]:
                j = i + 1
                while j < span and drop[j]:
                    j += 1
                cost += kernel.madvise_free(proc, base + i, j - i)
                i = j
            else:
                i += 1
        return cost, True


@dataclass
class SleepOp(Op):
    """Idle wall time (the 'after some time gap' of Figure 1's phase 3)."""

    duration_us: float
    _elapsed: float = field(default=0.0, repr=False)

    def reset(self) -> None:
        """Clear accumulated sleep time."""
        self._elapsed = 0.0

    def execute(self, kernel, run, budget_us):
        """Consume idle wall time from the epoch budget."""
        use = min(budget_us, self.duration_us - self._elapsed)
        self._elapsed += use
        return use, self._elapsed >= self.duration_us - 1e-9


# ---------------------------------------------------------------------- #
# phases and workloads                                                    #
# ---------------------------------------------------------------------- #


@dataclass
class Phase:
    """One stage of a workload's life."""

    name: str
    ops: list[Op] = field(default_factory=list)
    #: useful compute to retire after the ops complete.
    work_us: float = 0.0
    #: fixed wall duration to spend serving (mutually exclusive with work).
    duration_us: float = 0.0
    profile: Optional[AccessProfile] = None
    #: request-serving model for duration phases.
    request_rate: float = 0.0        # offered requests per second
    request_cost_us: float = 0.0     # CPU per request

    def __post_init__(self) -> None:
        if self.work_us and self.duration_us:
            raise ValueError(f"phase {self.name!r}: work_us and duration_us are exclusive")


class Workload(abc.ABC):
    """Base class: a named generator of phases."""

    name = "workload"

    @abc.abstractmethod
    def build_phases(self) -> list[Phase]:
        """Construct this workload's phase list (fresh op state)."""


class WorkloadRun:
    """Executor driving one process through its workload, epoch by epoch."""

    def __init__(self, kernel: "Kernel", proc: Process, workload: Workload):
        self.kernel = kernel
        self.proc = proc
        self.workload = workload
        self.phases = workload.build_phases()
        self.finished = False
        self.finish_time_us: Optional[float] = None
        self.start_time_us = kernel.now_us
        #: requests served per duration phase name.
        self.served: dict[str, float] = {}
        #: wall time consumed by operations (faults, frees, pacing, and
        #: per-page work) — finer-grained than epoch-quantised elapsed_us,
        #: which is what fault-bound experiments (Table 8) report.
        self.op_time_us = 0.0
        self._phase_idx = 0
        self._op_idx = 0
        self._work_done = 0.0
        self._phase_wall = 0.0
        self._vma_cache: dict[str, VMA] = {}

    # -- helpers --------------------------------------------------------- #

    def vma(self, name: str) -> VMA:
        """Resolve a region name to its VMA (cached)."""
        vma = self._vma_cache.get(name)
        if vma is None:
            vma = self.kernel.find_vma(self.proc, name)
            self._vma_cache[name] = vma
        return vma

    def invalidate_vma_cache(self) -> None:
        """Drop the name->VMA cache after mappings change."""
        self._vma_cache.clear()

    @property
    def current_phase(self) -> Optional[Phase]:
        if self._phase_idx < len(self.phases):
            return self.phases[self._phase_idx]
        return None

    @property
    def elapsed_us(self) -> float:
        end = self.finish_time_us if self.finish_time_us is not None else self.kernel.now_us
        return end - self.start_time_us

    def phase_name(self) -> str:
        """Name of the current phase ('done' after completion)."""
        phase = self.current_phase
        return phase.name if phase else "done"

    # -- epoch step ------------------------------------------------------ #

    def step(self, epoch_us: float) -> None:
        """Advance this workload by (up to) one epoch of wall time."""
        if self.finished:
            return
        proc = self.proc
        proc.fault_time_epoch_us = 0.0
        budget = epoch_us
        mmu_epoch = None  # cached per phase within this epoch
        mmu_phase = -1
        while budget > 1e-9:
            phase = self.current_phase
            if phase is None:
                self._finish()
                break
            proc.access_profile = phase.profile
            if self._op_idx < len(phase.ops):
                consumed, done = phase.ops[self._op_idx].execute(self.kernel, self, budget)
                budget -= consumed
                self.op_time_us += consumed
                self._charge_cycles(0.0, consumed)
                if done:
                    self._op_idx += 1
                    mmu_phase = -1  # mapping state changed: recompute
                continue
            if mmu_phase != self._phase_idx:
                mmu_epoch = self._compute_mmu_epoch(phase)
                mmu_phase = self._phase_idx
            if phase.work_us > self._work_done:
                budget = self._retire_work(phase, mmu_epoch, budget)
            elif self._phase_wall < phase.duration_us:
                budget = self._serve(phase, mmu_epoch, budget)
            else:
                self._next_phase()
                mmu_epoch = None
        proc.run_time_us += epoch_us - max(budget, 0.0)

    def _compute_mmu_epoch(self, phase: Phase):
        profile = phase.profile
        if profile is None:
            self.proc.mmu_overhead = 0.0
            return None
        loads = profile.loads(self.kernel, self.proc)
        host_frac = self.kernel.host_huge_fraction(self.proc)
        epoch = self.kernel.mmu.epoch(loads, profile.access_rate, host_frac)
        self.proc.mmu_overhead = epoch.overhead
        return epoch

    def _progress_rate(self, phase: Phase, mmu_epoch) -> float:
        """Useful-work microseconds retired per wall microsecond."""
        overhead = mmu_epoch.overhead if mmu_epoch is not None else 0.0
        sensitivity = phase.profile.cache_sensitivity if phase.profile else 0.0
        interference = self.kernel.prezero_interference * sensitivity
        slowdown = self.kernel.external_slowdown
        return (1.0 - overhead) / ((1.0 + interference) * (1.0 + slowdown))

    def _retire_work(self, phase: Phase, mmu_epoch, budget: float) -> float:
        rate = self._progress_rate(phase, mmu_epoch)
        needed_wall = (phase.work_us - self._work_done) / rate if rate > 0 else budget
        use = min(budget, needed_wall)
        useful = use * rate
        self._work_done += useful
        self._phase_wall += use
        self._charge_cycles(useful, use, mmu_epoch)
        if self._work_done >= phase.work_us - 1e-6:
            self._next_phase()
        return budget - use

    def _serve(self, phase: Phase, mmu_epoch, budget: float) -> float:
        use = min(budget, phase.duration_us - self._phase_wall)
        rate = self._progress_rate(phase, mmu_epoch)
        if phase.request_rate > 0 and phase.request_cost_us > 0:
            capacity = use * rate / phase.request_cost_us
            offered = phase.request_rate * use / SEC
            self.served[phase.name] = self.served.get(phase.name, 0.0) + min(capacity, offered)
        self._phase_wall += use
        self._charge_cycles(use * rate, use, mmu_epoch)
        if self._phase_wall >= phase.duration_us - 1e-9:
            self._next_phase()
        return budget - use

    def _charge_cycles(self, useful_us: float, wall_us: float, mmu_epoch=None) -> None:
        """Feed the process's PMU and cycle accounting."""
        pmu = self.kernel.pmu[self.proc.pid]
        if mmu_epoch is not None and useful_us > 0:
            walk, total = mmu_epoch.charge(pmu, useful_us)
        else:
            walk, total = 0.0, wall_us * CYCLES_PER_USEC
            pmu.record(walk, total)
        self.proc.stats.walk_cycles += walk
        self.proc.stats.total_cycles += total
        if walk > 0.0 and mmu_epoch is not None \
                and mmu_epoch.remote_walk_fraction > 0.0 \
                and (numa := self.kernel.numa) is not None:
            numa.charge_remote_walk(self.proc, walk * mmu_epoch.remote_walk_fraction)

    def _next_phase(self) -> None:
        self._phase_idx += 1
        self._op_idx = 0
        self._work_done = 0.0
        self._phase_wall = 0.0
        if self._phase_idx >= len(self.phases):
            self._finish()

    def _finish(self) -> None:
        if not self.finished:
            self.finished = True
            self.finish_time_us = self.kernel.now_us + self.kernel.config.epoch_us
            self.proc.finished = True
            self.proc.access_profile = None
