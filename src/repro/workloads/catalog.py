"""Benchmark-suite catalog: Table 2, Figure 3 and per-app TLB profiles.

Table 2 of the paper surveys seven benchmark suites (79 applications) and
finds only 15 "TLB sensitive" — more than 3 % speedup from huge pages.
The catalog below gives every application a coarse TLB profile (access
rate + pattern) chosen so the hardware model classifies exactly the
paper's 15 as sensitive; the Table 2 benchmark *computes* the
classification through the model rather than echoing the paper's counts.

Figure 3 reports the average distance to the first non-zero byte of 4 KiB
pages across 56 workloads: 9.11 bytes overall.  ``FIRST_NONZERO_BYTES``
records per-suite averages consistent with that mean; the Figure 3
benchmark materialises pages with those offsets and measures the
zero-scan cost through the frame-table scan model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns import Pattern


@dataclass(frozen=True)
class AppProfile:
    """Coarse TLB behaviour of one benchmark application."""

    name: str
    suite: str
    #: accesses per useful µs against a TLB-saturating working set.
    access_rate: float
    pattern: Pattern = Pattern.RANDOM
    #: whether the paper lists the app as TLB sensitive (ground truth).
    paper_sensitive: bool = False


def _suite(suite: str, insensitive: list[str], sensitive: dict[str, float]) -> list[AppProfile]:
    apps = [
        AppProfile(name, suite, access_rate=rate, paper_sensitive=True)
        for name, rate in sensitive.items()
    ]
    # Insensitive apps: low access rates and/or streaming patterns keep
    # their modelled speedup under the 3 % threshold.
    for i, name in enumerate(insensitive):
        pattern = Pattern.SEQUENTIAL if i % 3 == 0 else Pattern.STRIDED
        apps.append(AppProfile(name, suite, access_rate=0.4 + 0.1 * (i % 4), pattern=pattern))
    return apps


#: every application of Table 2, with calibrated profiles.
APPLICATIONS: list[AppProfile] = (
    _suite(
        "SPEC CPU2006_int",
        ["perlbench", "bzip2", "gcc", "gobmk", "hmmer", "sjeng", "libquantum", "h264ref"],
        {"mcf": 18.0, "astar": 4.0, "omnetpp": 6.0, "xalancbmk": 3.5},
    )
    + _suite(
        "SPEC CPU2006_fp",
        ["bwaves", "gamess", "milc", "gromacs", "leslie3d", "namd", "dealII",
         "soplex", "povray", "calculix", "tonto", "lbm", "wrf", "sphinx3",
         "specrand_i", "specrand_f"],
        {"zeusmp": 3.2, "GemsFDTD": 4.5, "cactusADM": 5.5},
    )
    + _suite(
        "PARSEC",
        ["blackscholes", "bodytrack", "facesim", "ferret", "fluidanimate",
         "freqmine", "raytrace", "streamcluster", "swaptions", "vips", "x264"],
        {"canneal": 7.0, "dedup": 3.0},
    )
    + _suite(
        "SPLASH-2",
        ["barnes", "fmm", "ocean", "radiosity", "volrend", "water-nsquared",
         "water-spatial", "cholesky", "fft", "radix"],
        {},
    )
    + _suite(
        "Biobench",
        ["blastp", "blastn", "clustalw", "fasta", "hmmer-bio", "phylip", "grappa"],
        {"tigr": 9.0, "mummer": 12.0},
    )
    + _suite(
        "NPB",
        ["ep", "ft", "is", "lu", "mg", "sp", "ua"],
        {"cg": 32.0, "bt": 3.4},
    )
    + _suite(
        "CloudSuite",
        ["data-caching", "data-serving", "in-memory-analytics", "media-streaming",
         "web-search"],
        {"graph-analytics": 8.0, "data-analytics": 4.2},
    )
)

#: Table 2's ground truth: suite -> (total apps, sensitive apps).
TABLE2_PAPER = {
    "SPEC CPU2006_int": (12, 4),
    "SPEC CPU2006_fp": (19, 3),
    "PARSEC": (13, 2),
    "SPLASH-2": (10, 0),
    "Biobench": (9, 2),
    "NPB": (9, 2),
    "CloudSuite": (7, 2),
}

#: speedup threshold for "TLB sensitive" (paper: > 3 %).
SENSITIVITY_THRESHOLD = 0.03


# ---------------------------------------------------------------------- #
# Figure 3: distance to the first non-zero byte                           #
# ---------------------------------------------------------------------- #

#: average first-non-zero-byte offset of in-use 4 KiB pages, per suite /
#: workload (bytes).  Weighted by the workload counts below they average
#: ≈9.11 bytes, the paper's Figure 3 headline.
FIRST_NONZERO_BYTES: dict[str, float] = {
    "SPEC CPU2006": 8.4,
    "PARSEC": 7.4,
    "NPB": 12.5,
    "CloudSuite": 9.8,
    "redis": 6.5,
    "memcached": 7.0,
    "graph500": 12.3,
    "xsbench": 10.4,
}

#: how many distinct workloads each Figure 3 bar aggregates (56 total).
FIRST_NONZERO_WEIGHTS: dict[str, int] = {
    "SPEC CPU2006": 20,
    "PARSEC": 12,
    "NPB": 9,
    "CloudSuite": 7,
    "redis": 2,
    "memcached": 2,
    "graph500": 2,
    "xsbench": 2,
}

#: the paper's measured overall average (bytes).
FIRST_NONZERO_PAPER_MEAN = 9.11


def first_nonzero_mean() -> float:
    """Catalog-weighted mean distance to the first non-zero byte."""
    total = sum(FIRST_NONZERO_WEIGHTS.values())
    return sum(
        FIRST_NONZERO_BYTES[k] * w for k, w in FIRST_NONZERO_WEIGHTS.items()
    ) / total


def suites() -> list[str]:
    """The Table 2 suite names."""
    return list(TABLE2_PAPER)


def apps_in(suite: str) -> list[AppProfile]:
    """All catalogued applications of one suite."""
    return [a for a in APPLICATIONS if a.suite == suite]
