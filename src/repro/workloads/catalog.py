"""Benchmark-suite catalog: Table 2, Figure 3 and per-app TLB profiles.

Table 2 of the paper surveys seven benchmark suites (79 applications) and
finds only 15 "TLB sensitive" — more than 3 % speedup from huge pages.
The catalog below gives every application a coarse TLB profile (access
rate + pattern) chosen so the hardware model classifies exactly the
paper's 15 as sensitive; the Table 2 benchmark *computes* the
classification through the model rather than echoing the paper's counts.

Figure 3 reports the average distance to the first non-zero byte of 4 KiB
pages across 56 workloads: 9.11 bytes overall.  ``FIRST_NONZERO_BYTES``
records per-suite averages consistent with that mean; the Figure 3
benchmark materialises pages with those offsets and measures the
zero-scan cost through the frame-table scan model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.patterns import Pattern


@dataclass(frozen=True)
class AppProfile:
    """Coarse TLB behaviour of one benchmark application."""

    name: str
    suite: str
    #: accesses per useful µs against a TLB-saturating working set.
    access_rate: float
    pattern: Pattern = Pattern.RANDOM
    #: whether the paper lists the app as TLB sensitive (ground truth).
    paper_sensitive: bool = False


def _suite(suite: str, insensitive: list[str], sensitive: dict[str, float]) -> list[AppProfile]:
    apps = [
        AppProfile(name, suite, access_rate=rate, paper_sensitive=True)
        for name, rate in sensitive.items()
    ]
    # Insensitive apps: low access rates and/or streaming patterns keep
    # their modelled speedup under the 3 % threshold.
    for i, name in enumerate(insensitive):
        pattern = Pattern.SEQUENTIAL if i % 3 == 0 else Pattern.STRIDED
        apps.append(AppProfile(name, suite, access_rate=0.4 + 0.1 * (i % 4), pattern=pattern))
    return apps


#: every application of Table 2, with calibrated profiles.
APPLICATIONS: list[AppProfile] = (
    _suite(
        "SPEC CPU2006_int",
        ["perlbench", "bzip2", "gcc", "gobmk", "hmmer", "sjeng", "libquantum", "h264ref"],
        {"mcf": 18.0, "astar": 4.0, "omnetpp": 6.0, "xalancbmk": 3.5},
    )
    + _suite(
        "SPEC CPU2006_fp",
        ["bwaves", "gamess", "milc", "gromacs", "leslie3d", "namd", "dealII",
         "soplex", "povray", "calculix", "tonto", "lbm", "wrf", "sphinx3",
         "specrand_i", "specrand_f"],
        {"zeusmp": 3.2, "GemsFDTD": 4.5, "cactusADM": 5.5},
    )
    + _suite(
        "PARSEC",
        ["blackscholes", "bodytrack", "facesim", "ferret", "fluidanimate",
         "freqmine", "raytrace", "streamcluster", "swaptions", "vips", "x264"],
        {"canneal": 7.0, "dedup": 3.0},
    )
    + _suite(
        "SPLASH-2",
        ["barnes", "fmm", "ocean", "radiosity", "volrend", "water-nsquared",
         "water-spatial", "cholesky", "fft", "radix"],
        {},
    )
    + _suite(
        "Biobench",
        ["blastp", "blastn", "clustalw", "fasta", "hmmer-bio", "phylip", "grappa"],
        {"tigr": 9.0, "mummer": 12.0},
    )
    + _suite(
        "NPB",
        ["ep", "ft", "is", "lu", "mg", "sp", "ua"],
        {"cg": 32.0, "bt": 3.4},
    )
    + _suite(
        "CloudSuite",
        ["data-caching", "data-serving", "in-memory-analytics", "media-streaming",
         "web-search"],
        {"graph-analytics": 8.0, "data-analytics": 4.2},
    )
)

#: Table 2's ground truth: suite -> (total apps, sensitive apps).
TABLE2_PAPER = {
    "SPEC CPU2006_int": (12, 4),
    "SPEC CPU2006_fp": (19, 3),
    "PARSEC": (13, 2),
    "SPLASH-2": (10, 0),
    "Biobench": (9, 2),
    "NPB": (9, 2),
    "CloudSuite": (7, 2),
}

#: speedup threshold for "TLB sensitive" (paper: > 3 %).
SENSITIVITY_THRESHOLD = 0.03


# ---------------------------------------------------------------------- #
# Figure 3: distance to the first non-zero byte                           #
# ---------------------------------------------------------------------- #

#: average first-non-zero-byte offset of in-use 4 KiB pages, per suite /
#: workload (bytes).  Weighted by the workload counts below they average
#: ≈9.11 bytes, the paper's Figure 3 headline.
FIRST_NONZERO_BYTES: dict[str, float] = {
    "SPEC CPU2006": 8.4,
    "PARSEC": 7.4,
    "NPB": 12.5,
    "CloudSuite": 9.8,
    "redis": 6.5,
    "memcached": 7.0,
    "graph500": 12.3,
    "xsbench": 10.4,
}

#: how many distinct workloads each Figure 3 bar aggregates (56 total).
FIRST_NONZERO_WEIGHTS: dict[str, int] = {
    "SPEC CPU2006": 20,
    "PARSEC": 12,
    "NPB": 9,
    "CloudSuite": 7,
    "redis": 2,
    "memcached": 2,
    "graph500": 2,
    "xsbench": 2,
}

#: the paper's measured overall average (bytes).
FIRST_NONZERO_PAPER_MEAN = 9.11


def first_nonzero_mean() -> float:
    """Catalog-weighted mean distance to the first non-zero byte."""
    total = sum(FIRST_NONZERO_WEIGHTS.values())
    return sum(
        FIRST_NONZERO_BYTES[k] * w for k, w in FIRST_NONZERO_WEIGHTS.items()
    ) / total


def suites() -> list[str]:
    """The Table 2 suite names."""
    return list(TABLE2_PAPER)


def apps_in(suite: str) -> list[AppProfile]:
    """All catalogued applications of one suite."""
    return [a for a in APPLICATIONS if a.suite == suite]


# ---------------------------------------------------------------------- #
# runnable workload registry                                              #
# ---------------------------------------------------------------------- #


def _build_workloads() -> dict[str, tuple[str, Callable[[float], object]]]:
    """name -> (description, factory(scale_factor)).

    The single registry the CLI and the scenario DSL resolve workload
    names through.  Imports are deferred so ``import
    repro.workloads.catalog`` stays cheap for the Table 2 consumers.
    """
    from repro.workloads.graph import Graph500, PageRank
    from repro.workloads.haccio import HaccIO
    from repro.workloads.hog import MemoryHog
    from repro.workloads.microbench import (
        AllocTouchFree,
        RandomAccess,
        SequentialAccess,
    )
    from repro.workloads.npb import NPB_SPECS, NPBWorkload
    from repro.workloads.redis import (
        RedisBulkInsert,
        RedisChurn,
        RedisFig1,
        RedisLight,
    )
    from repro.workloads.sparsehash import SparseHash
    from repro.workloads.spinup import JVMSpinUp, KVMSpinUp
    from repro.workloads.xsbench import XSBench

    registry: dict[str, tuple[str, Callable[[float], object]]] = {
        "graph500": ("Graph500 BFS, hot data in high VAs",
                     lambda f: Graph500(scale=f)),
        "xsbench": ("XSBench Monte Carlo lookups", lambda f: XSBench(scale=f)),
        "pagerank": ("PageRank over an edge list", lambda f: PageRank(scale=f)),
        "redis-fig1": ("Figure 1 insert/delete/re-insert churn",
                       lambda f: RedisFig1(scale=f)),
        "redis-churn": ("Table 7 churn + serve", lambda f: RedisChurn(scale=f)),
        "redis-bulk": ("Table 8 2MB-value inserts",
                       lambda f: RedisBulkInsert(scale=f)),
        "redis-light": ("lightly loaded server (Figure 8)",
                        lambda f: RedisLight(scale=f)),
        "sparsehash": ("hash-table build (Table 8)",
                       lambda f: SparseHash(scale=f)),
        "hacc-io": ("in-memory FS checkpoint (Table 8)",
                    lambda f: HaccIO(scale=f)),
        "kvm-spinup": ("KVM guest spin-up (Table 8)",
                       lambda f: KVMSpinUp(scale=f)),
        "jvm-spinup": ("JVM spin-up (Table 8)", lambda f: JVMSpinUp(scale=f)),
        "alloc-touch-free": ("Table 1 microbenchmark",
                             lambda f: AllocTouchFree(scale=f)),
        "random-4g": ("Table 9 random scan", lambda f: RandomAccess(scale=f)),
        "sequential-4g": ("Table 9 sequential scan",
                          lambda f: SequentialAccess(scale=f)),
        "memhog": ("resident 8 GB memory hog (scenario perturbation)",
                   lambda f: MemoryHog(scale=f)),
    }
    for _name in NPB_SPECS:
        registry[_name] = (
            f"NPB {_name} (Table 3)",
            lambda f, _n=_name: NPBWorkload(_n, scale=f),
        )
    return registry


#: runnable workload registry: name -> (description, factory(scale_factor)).
WORKLOADS = _build_workloads()


def workload_names() -> list[str]:
    """Registered runnable workload names, sorted."""
    return sorted(WORKLOADS)


def make_workload(name: str, scale_factor: float):
    """Instantiate a catalogued workload at ``scale_factor``."""
    try:
        _, factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; have {workload_names()}") from None
    return factory(scale_factor)
