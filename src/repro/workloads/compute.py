"""Generic allocate-then-compute workloads, with paper calibrations.

Most of the paper's benchmarks share one shape: allocate the whole
footprint up front (in whatever memory state the machine is in — the
fragmentation experiments rely on this), then compute over it with a
characteristic access pattern.  :class:`ComputeWorkload` captures that
shape; the calibrated subclasses live in :mod:`repro.workloads.graph`,
:mod:`repro.workloads.xsbench` and :mod:`repro.workloads.npb`.

Calibration: with the hardware model's constants, a process accessing far
more base pages than the 1088 TLB entries at ``access_rate`` R (accesses
per useful µs) under a random pattern has

    x ≈ R × miss × 48 / 2300,   overhead = x / (1 + x)

so R ≈ overhead/(1-overhead) × 2300/48 ÷ miss.  Each workload model picks
R (and pattern) to land on the paper's measured 4 KiB overhead.
"""

from __future__ import annotations

from repro.patterns import Pattern
from repro.units import SEC
from repro.workloads.base import (
    AccessProfile,
    MmapOp,
    Phase,
    RegionAccessSpec,
    TouchOp,
    Workload,
)

#: default linear memory scale for experiments (1/64 of the paper's
#: machine: a "48 GB" experiment simulates 768 MB).  Policy thresholds
#: are fractional, so behaviour is scale-invariant; background-thread
#: rates must be scaled alongside (see repro.experiments).
DEFAULT_SCALE = 1.0 / 64.0


class ComputeWorkload(Workload):
    """Allocate ``footprint`` then retire ``work_us`` of compute.

    ``hot_start``/``hot_len`` place the hot region within the VA space
    (the paper's Figure 6 shows Graph500/XSBench hot-spots living in high
    VAs, which is what defeats sequential-scan promotion).
    """

    def __init__(
        self,
        name: str,
        footprint_bytes: int,
        work_us: float,
        access_rate: float,
        coverage: int = 512,
        pattern: Pattern = Pattern.RANDOM,
        hot_start: float = 0.0,
        hot_len: float = 1.0,
        cache_sensitivity: float = 0.3,
        scale: float = 1.0,
        region: str = "heap",
    ):
        self.name = name
        self.footprint_bytes = int(footprint_bytes * scale)
        self.work_us = work_us
        self.region = region
        self.profile = AccessProfile(
            specs=[
                RegionAccessSpec(
                    region,
                    coverage=coverage,
                    pattern=pattern,
                    hot_start=hot_start,
                    hot_len=hot_len,
                )
            ],
            access_rate=access_rate,
            cache_sensitivity=cache_sensitivity,
        )

    def build_phases(self) -> list[Phase]:
        """Allocate-everything init phase, then one compute phase."""
        return [
            Phase(
                "init",
                ops=[MmapOp(self.region, self.footprint_bytes), TouchOp(self.region)],
            ),
            Phase("compute", work_us=self.work_us, profile=self.profile),
        ]


def expected_overhead(access_rate: float, pattern: Pattern = Pattern.RANDOM,
                      miss: float = 0.96) -> float:
    """Back-of-envelope overhead for a TLB-saturating 4 KiB working set."""
    from repro.tlb.walk import pattern_latency_factor, walk_cycles
    from repro.units import CYCLES_PER_USEC

    x = access_rate * miss * walk_cycles("4k") * pattern_latency_factor(pattern) / CYCLES_PER_USEC
    return x / (1.0 + x)


def seconds(n: float) -> float:
    """Readability helper: seconds -> microseconds."""
    return n * SEC
