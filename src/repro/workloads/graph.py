"""Graph workloads: Graph500 and PageRank.

Calibration (paper):

* **Graph500** — §4 uses ~12 GB instances.  Figure 6 (left) shows its
  hot-spots concentrated in the *high* VAs of the address space and MMU
  overheads around 12–14 % with base pages; Table 5's Linux-4KB execution
  time is ≈2280 s.  ``access_rate=7.5`` random gives ≈13 % overhead at
  4 KiB and ≈0 when the hot region is huge-mapped, reproducing the ≈1.14×
  speedups of Table 5.
* **PageRank** — used in the overcommit experiment (Figure 11) as the
  HPC-style batch workload; a random-access graph kernel with a mid-size
  footprint.
"""

from __future__ import annotations

from repro.patterns import Pattern
from repro.units import GB, SEC
from repro.workloads.compute import ComputeWorkload


class Graph500(ComputeWorkload):
    """BFS on a synthetic Kronecker graph (Graph500 benchmark)."""

    def __init__(
        self,
        scale: float = 1.0,
        footprint_bytes: int = 12 * GB,
        work_us: float = 1980 * SEC,
        name: str = "graph500",
    ):
        super().__init__(
            name=name,
            footprint_bytes=footprint_bytes,
            work_us=work_us,
            access_rate=7.5,          # ≈13 % MMU overhead at 4 KiB
            coverage=512,
            pattern=Pattern.RANDOM,
            hot_start=0.55,           # hot region in high VAs (Figure 6)
            hot_len=0.45,
            cache_sensitivity=0.5,
            scale=scale,
        )


class PageRank(ComputeWorkload):
    """PageRank over an in-memory edge list (GAP-style)."""

    def __init__(
        self,
        scale: float = 1.0,
        footprint_bytes: int = 16 * GB,
        work_us: float = 600 * SEC,
        name: str = "pagerank",
    ):
        super().__init__(
            name=name,
            footprint_bytes=footprint_bytes,
            work_us=work_us,
            access_rate=5.0,          # ≈9 % MMU overhead at 4 KiB
            coverage=480,
            pattern=Pattern.RANDOM,
            hot_start=0.0,
            hot_len=1.0,
            cache_sensitivity=0.6,
            scale=scale,
        )
