"""HACC-IO: the CORAL parallel-IO benchmark against an in-memory FS.

Table 8 runs HACC-IO with a 6 GB payload on an in-memory filesystem, so
"IO" is page faults on the tmpfs pages plus a memory-bandwidth copy.  The
payload writes go to anonymous buffers first (zeroed on fault) and then
stream into the FS pages, giving both a fault-bound and a copy component.
"""

from __future__ import annotations

from repro.units import GB, SEC
from repro.workloads.base import ContentSpec, MmapOp, Phase, TouchOp, Workload
from repro.vm.vma import VMAKind


class HaccIO(Workload):
    """6 GB particle-IO checkpoint into an in-memory filesystem."""

    name = "hacc-io"

    def __init__(self, scale: float = 1.0, payload_bytes: int = 6 * GB,
                 io_work_us: float = 2.3 * SEC):
        self.payload_bytes = int(payload_bytes * scale)
        self.io_work_us = io_work_us * scale

    def build_phases(self) -> list[Phase]:
        """A single fault-plus-copy checkpoint phase."""
        pages = self.payload_bytes // 4096
        per_page_work = self.io_work_us / max(pages, 1)
        return [
            Phase(
                "checkpoint",
                ops=[
                    MmapOp("particles", self.payload_bytes),
                    TouchOp("particles", content=ContentSpec(first_nonzero=0),
                            work_per_page_us=per_page_work),
                ],
            ),
        ]
