"""A resident anonymous-memory hog.

The scenario DSL's ``hog`` perturbation: grab a footprint, touch every
page so it is genuinely resident (non-zero content — a hog is data, not
bloat), then hold it for a configurable time.  Squeezes the free-memory
headroom every other process sees, the way a co-tenant batch job would.
"""

from __future__ import annotations

from repro.units import GB, SEC
from repro.workloads.base import (
    ContentSpec,
    MmapOp,
    Phase,
    SleepOp,
    TouchOp,
    Workload,
)


class MemoryHog(Workload):
    """Allocate ``footprint_bytes``, touch it all, hold for ``hold_us``."""

    name = "memhog"

    def __init__(self, footprint_bytes: float = 8 * GB,
                 hold_us: float = 3600 * SEC, scale: float = 1.0):
        self.footprint_bytes = int(footprint_bytes * scale)
        #: hold time is simulated time and deliberately unscaled.
        self.hold_us = hold_us

    def build_phases(self) -> list[Phase]:
        """mmap + touch the footprint, then sleep out the hold time."""
        ops = [
            MmapOp("hog", self.footprint_bytes),
            TouchOp("hog", content=ContentSpec(first_nonzero=0)),
        ]
        if self.hold_us > 0:
            ops.append(SleepOp(self.hold_us))
        return [Phase("hog", ops=ops)]
