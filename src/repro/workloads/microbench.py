"""Microbenchmarks from the paper's motivation and evaluation sections.

* :class:`AllocTouchFree` — §2.2 / Table 1: allocate a 10 GB buffer,
  touch one byte in every base page, free the buffer; repeated 10 times
  (≈100 GB of faults).  Purely fault-bound: the workload that shows why
  async promotion (Ingens) loses the fewer-page-faults benefit of huge
  pages and why synchronous zeroing dominates huge-fault latency.
* :class:`RandomAccess` / :class:`SequentialAccess` — Table 9: two 4 GB
  workloads with identical *access-coverage* (every base page of the
  buffer touched each interval) but opposite MMU behaviour: random
  pointer-chasing at ≈60 % walk overhead vs a streaming pass at <1 %.
  HawkEye-G cannot tell them apart; HawkEye-PMU can.
"""

from __future__ import annotations

from repro.patterns import Pattern
from repro.units import GB, SEC
from repro.workloads.base import (
    AccessProfile,
    ContentSpec,
    FreeOp,
    MmapOp,
    Phase,
    RegionAccessSpec,
    TouchOp,
    Workload,
)
from repro.workloads.compute import ComputeWorkload


class AllocTouchFree(Workload):
    """The Table 1 microbenchmark: N rounds of (alloc, touch, free)."""

    name = "alloc-touch-free"

    def __init__(self, buffer_bytes: int = 10 * GB, rounds: int = 10,
                 scale: float = 1.0, gap_us: float = 0.0):
        self.buffer_bytes = int(buffer_bytes * scale)
        self.rounds = rounds
        #: think time between rounds; gives background threads (e.g. the
        #: pre-zero thread) the window they would have at full scale,
        #: where each round takes tens of seconds.
        self.gap_us = gap_us

    def build_phases(self) -> list[Phase]:
        """One alloc/touch/free phase per round, with optional gaps."""
        phases = []
        for i in range(self.rounds):
            region = f"buf{i}"
            ops = [
                MmapOp(region, self.buffer_bytes),
                # touch one byte per base page => first_nonzero=0
                TouchOp(region, content=ContentSpec(first_nonzero=0)),
                FreeOp(region),
            ]
            if self.gap_us > 0:
                from repro.workloads.base import SleepOp

                ops.append(SleepOp(self.gap_us))
            phases.append(Phase(f"round-{i}", ops=ops))
        return phases


class RandomAccess(ComputeWorkload):
    """Table 9 'random(4GB)': high coverage, high measured overhead."""

    def __init__(self, scale: float = 1.0, footprint_bytes: int = 4 * GB,
                 work_us: float = 233 * SEC, name: str = "random-4g"):
        super().__init__(
            name=name,
            footprint_bytes=footprint_bytes,
            work_us=work_us,
            access_rate=74.0,         # ≈60 % MMU overhead at 4 KiB
            coverage=512,
            pattern=Pattern.RANDOM,
            scale=scale,
        )


class SequentialAccess(ComputeWorkload):
    """Table 9 'sequential(4GB)': same coverage, <1 % measured overhead."""

    def __init__(self, scale: float = 1.0, footprint_bytes: int = 4 * GB,
                 work_us: float = 514 * SEC, name: str = "sequential-4g"):
        super().__init__(
            name=name,
            footprint_bytes=footprint_bytes,
            work_us=work_us,
            access_rate=74.0,         # same rate, but streaming
            coverage=512,             # same access-coverage as random!
            pattern=Pattern.SEQUENTIAL,
            scale=scale,
        )


class SparseTouch(Workload):
    """Touch a fraction of pages in every huge region (bloat generator).

    Models a fragmented allocator placing small objects sparsely across a
    huge-page-backed heap; with huge-at-fault policies this creates
    zero-filled bloat that §3.2's recovery can reclaim.
    """

    name = "sparse-touch"

    def __init__(self, footprint_bytes: int, stride_pages: int = 4,
                 hold_us: float = 100 * SEC, scale: float = 1.0,
                 name: str = "sparse-touch"):
        self.name = name
        self.footprint_bytes = int(footprint_bytes * scale)
        self.stride_pages = stride_pages
        self.hold_us = hold_us

    def build_phases(self) -> list[Phase]:
        """Sparse allocation phase, then a hold phase with its profile."""
        profile = AccessProfile(
            specs=[RegionAccessSpec("heap", coverage=512 // self.stride_pages)],
            access_rate=5.0,
        )
        return [
            Phase(
                "alloc",
                ops=[
                    MmapOp("heap", self.footprint_bytes),
                    TouchOp("heap", stride_pages=self.stride_pages,
                            content=ContentSpec(first_nonzero=0)),
                ],
            ),
            Phase("hold", duration_us=self.hold_us, profile=profile),
        ]
