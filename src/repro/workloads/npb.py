"""NAS Parallel Benchmarks, class D — calibrated to the paper's Table 3.

Table 3 gives, per workload: RSS, WSS, native-4K TLB-miss rate, MMU
overhead ("% cycles") at 4 KiB and 2 MiB, and speedup native/virtual.
Each model below picks footprint (RSS), hot fraction (WSS/RSS), pattern
and access rate so the hardware model lands on the measured 4 KiB
overhead; the 2 MiB overheads then fall out near zero (matching the
paper's sub-2 % values), and the speedups follow as 1/(1-overhead).

===========  =====  =========  ===========  ==========  ============
workload     RSS    WSS        4K overhead  2M overhead  speedup (nat)
bt.D         10 GB  7–10 GB    6.4 %        1.31 %       1.05×
sp.D         12 GB  8–12 GB    4.7 %        0.25 %       1.01×
lu.D          8 GB  8 GB       3.3 %        0.18 %       1.0×
mg.D         26 GB  24 GB      1.04 %       0.04 %       1.01×
cg.D         16 GB  7–8 GB     39 %         0.02 %       1.62×
ft.D         78 GB  7–35 GB    3.9 %        2.14 %       1.01×
ua.D         9.6GB  5–7 GB     0.8 %        0.03 %       1.01×
===========  =====  =========  ===========  ==========  ============

The headline divergence the paper builds on: **mg.D has a much larger
working set than cg.D yet ~40× lower MMU overhead** (sequential/strided
stencil sweeps vs random sparse-matrix gathers) — which is why
working-set size is a poor proxy for MMU overhead (§2.4) and why
HawkEye-PMU beats HawkEye-G on the cg.D+mg.D mix (Table 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.patterns import Pattern
from repro.units import GB, SEC
from repro.workloads.compute import ComputeWorkload


@dataclass(frozen=True)
class NPBSpec:
    """Calibrated parameters for one NPB class-D workload."""

    name: str
    rss_bytes: int
    wss_fraction: float       # hot fraction of the footprint
    access_rate: float        # accesses per useful µs
    pattern: Pattern
    coverage: int
    paper_overhead_4k: float  # Table 3 "% cycles" at 4 KiB
    paper_overhead_2m: float
    paper_speedup_native: float
    paper_speedup_virtual: float
    work_us: float


NPB_SPECS: dict[str, NPBSpec] = {
    "bt.D": NPBSpec("bt.D", 10 * GB, 0.85, 3.4, Pattern.RANDOM, 400,
                    0.064, 0.0131, 1.05, 1.15, 1000 * SEC),
    "sp.D": NPBSpec("sp.D", 12 * GB, 0.83, 2.4, Pattern.RANDOM, 420,
                    0.047, 0.0025, 1.01, 1.06, 1000 * SEC),
    "lu.D": NPBSpec("lu.D", 8 * GB, 1.0, 1.7, Pattern.RANDOM, 450,
                    0.033, 0.0018, 1.00, 1.01, 1000 * SEC),
    "mg.D": NPBSpec("mg.D", 26 * GB, 0.92, 1.1, Pattern.STRIDED, 512,
                    0.0104, 0.0004, 1.01, 1.11, 1350 * SEC),
    "cg.D": NPBSpec("cg.D", 16 * GB, 0.47, 32.0, Pattern.RANDOM, 512,
                    0.39, 0.0002, 1.62, 2.7, 1190 * SEC),
    "ft.D": NPBSpec("ft.D", 78 * GB, 0.26, 2.0, Pattern.RANDOM, 380,
                    0.039, 0.0214, 1.01, 1.04, 1000 * SEC),
    "ua.D": NPBSpec("ua.D", 9.6 * GB, 0.63, 0.41, Pattern.RANDOM, 430,
                    0.008, 0.0003, 1.01, 1.03, 1000 * SEC),
}


class NPBWorkload(ComputeWorkload):
    """One NPB class-D benchmark instance."""

    def __init__(self, which: str, scale: float = 1.0, work_us: float | None = None,
                 name: str | None = None):
        spec = NPB_SPECS[which]
        self.spec = spec
        super().__init__(
            name=name or spec.name,
            footprint_bytes=spec.rss_bytes,
            work_us=work_us if work_us is not None else spec.work_us,
            access_rate=spec.access_rate,
            coverage=spec.coverage,
            pattern=spec.pattern,
            hot_start=0.0,
            hot_len=spec.wss_fraction,
            cache_sensitivity=0.4,
            scale=scale,
        )


def cg_d(scale: float = 1.0, **kw) -> NPBWorkload:
    """Convenience constructor for NPB cg.D."""
    return NPBWorkload("cg.D", scale=scale, **kw)


def mg_d(scale: float = 1.0, **kw) -> NPBWorkload:
    """Convenience constructor for NPB mg.D."""
    return NPBWorkload("mg.D", scale=scale, **kw)
