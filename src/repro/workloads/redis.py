"""Redis (and MongoDB) key-value store models.

Four configurations the paper evaluates:

* :class:`RedisFig1` — the §2.1 bloat experiment: insert 45 GB of
  4 KB values (P1), delete 80 % of keys (P2, releasing memory back to the
  kernel via madvise — the kernel breaks the covering huge mappings), and
  after a gap insert 2 MB values until the dataset is 45 GB again (P3).
  On Linux/Ingens, khugepaged-style collapse of the sparse old heap
  re-maps its freed pages as zero-filled bloat, driving the system to OOM
  before P3 completes; HawkEye's watermark/emergency bloat recovery
  de-duplicates the zero pages and survives.
* :class:`RedisChurn` — Table 7: insert 8M×4 KB pairs, delete 60 %, then
  serve at capacity.  Exposes the bloat-vs-throughput trade-off across
  policies.
* :class:`RedisBulkInsert` — Table 8: throughput inserting 2 MB values,
  purely fault-bound; the workload where async pre-zeroing of huge pages
  shines.
* :class:`RedisLight` — Figure 8: a lightly-loaded server (10 K req/s
  over 40 GB of 1 KB values) whose keys are requested uniformly, so its
  huge pages all look equally (un)deserving; the TLB-insensitive
  co-runner that baits Linux's FCFS and Ingens's proportional policies.
"""

from __future__ import annotations

from repro.patterns import Pattern
from repro.units import GB, SEC
from repro.workloads.base import (
    AccessProfile,
    ContentSpec,
    FreeOp,
    MmapOp,
    Phase,
    RegionAccessSpec,
    SleepOp,
    TouchOp,
    Workload,
)

#: server-side CPU per request for a capacity-bound Redis (calibrated so
#: Table 7's 2 MB-page throughput lands near the paper's 113.8 K ops/s).
REQUEST_COST_US = 8.79


class RedisFig1(Workload):
    """The Figure 1 insert / delete-80% / re-insert bloat workload."""

    name = "redis-fig1"

    def __init__(
        self,
        scale: float = 1.0,
        dataset_bytes: int = 45 * GB,
        p3_bytes: int = 36 * GB,
        insert_rate_pages_per_sec: float = 20_000.0,
        gap_us: float = 120 * SEC,
    ):
        self.dataset_bytes = int(dataset_bytes * scale)
        self.p3_bytes = int(p3_bytes * scale)
        self.insert_rate = insert_rate_pages_per_sec * scale
        self.gap_us = gap_us

    def build_phases(self) -> list[Phase]:
        """P1 insert, P2 delete-80%, gap, P3 re-insert, steady state."""
        survivors = AccessProfile(
            specs=[RegionAccessSpec("heap", coverage=100)], access_rate=2.0
        )
        return [
            Phase(
                "P1-insert",
                ops=[
                    MmapOp("heap", self.dataset_bytes),
                    TouchOp("heap", content=ContentSpec(first_nonzero=0),
                            rate_pages_per_sec=self.insert_rate,
                            work_per_page_us=1.0),
                ],
            ),
            Phase("P2-delete", ops=[FreeOp("heap", sparse_fraction=0.8)]),
            Phase("gap", ops=[SleepOp(self.gap_us)], profile=survivors),
            Phase(
                "P3-reinsert",
                ops=[
                    MmapOp("heap2", self.p3_bytes),
                    TouchOp("heap2", content=ContentSpec(first_nonzero=0),
                            rate_pages_per_sec=self.insert_rate,
                            work_per_page_us=1.0),
                ],
                profile=survivors,
            ),
            Phase("steady", duration_us=30 * SEC, profile=survivors),
        ]


class RedisChurn(Workload):
    """Table 7: populate, delete 60 % of keys, serve at capacity."""

    name = "redis-churn"

    def __init__(
        self,
        scale: float = 1.0,
        dataset_bytes: int = 32 * GB,
        delete_fraction: float = 0.6,
        serve_us: float = 120 * SEC,
        settle_us: float = 120 * SEC,
        insert_rate_pages_per_sec: float = 200_000.0,
    ):
        self.dataset_bytes = int(dataset_bytes * scale)
        self.delete_fraction = delete_fraction
        self.serve_us = serve_us
        self.settle_us = settle_us
        self.insert_rate = insert_rate_pages_per_sec * scale

    def serving_profile(self) -> AccessProfile:
        # Requests hit the surviving ~40 % of each huge region at random:
        # ≈7 % MMU overhead with base pages (Table 7's 106.1K vs 113.8K).
        """Access profile of capacity-bound serving over the survivors."""
        survivor_coverage = int(512 * (1.0 - self.delete_fraction))
        return AccessProfile(
            specs=[RegionAccessSpec("heap", coverage=survivor_coverage)],
            access_rate=3.64,
        )

    def build_phases(self) -> list[Phase]:
        """Insert, delete-60%, settle, then a capacity-bound serve phase."""
        profile = self.serving_profile()
        return [
            Phase(
                "insert",
                ops=[
                    MmapOp("heap", self.dataset_bytes),
                    TouchOp("heap", content=ContentSpec(first_nonzero=0),
                            rate_pages_per_sec=self.insert_rate,
                            work_per_page_us=1.0),
                ],
            ),
            Phase("delete", ops=[FreeOp("heap", sparse_fraction=self.delete_fraction)]),
            Phase("settle", duration_us=self.settle_us, profile=profile),
            Phase(
                "serve",
                duration_us=self.serve_us,
                profile=profile,
                request_rate=1e9,  # offered load far above capacity
                request_cost_us=REQUEST_COST_US,
            ),
        ]


class RedisBulkInsert(Workload):
    """Table 8: insert 2 MB values as fast as faults allow."""

    name = "redis-bulk"

    #: application CPU per 2 MB value (serialisation, dict insert), spread
    #: over its 512 pages.  Calibrated to Table 8's Linux 4K/2M ratio.
    VALUE_CPU_US = 1050.0

    def __init__(self, scale: float = 1.0, dataset_bytes: int = 45 * GB):
        self.dataset_bytes = int(dataset_bytes * scale)

    def build_phases(self) -> list[Phase]:
        """One fault-bound 2 MB-value insert phase."""
        return [
            Phase(
                "insert",
                ops=[
                    MmapOp("heap", self.dataset_bytes),
                    TouchOp("heap", content=ContentSpec(first_nonzero=0),
                            work_per_page_us=self.VALUE_CPU_US / 512.0),
                ],
            ),
        ]

    def values_inserted(self) -> int:
        """Number of 2 MB values the dataset comprises."""
        from repro.units import HUGE_PAGE_SIZE

        return self.dataset_bytes // HUGE_PAGE_SIZE


class RedisLight(Workload):
    """Figure 8: lightly-loaded server, uniformly-accessed keys."""

    name = "redis-light"

    def __init__(
        self,
        scale: float = 1.0,
        dataset_bytes: int = 40 * GB,
        request_rate: float = 10_000.0,
        serve_us: float = 2400 * SEC,
        insert_rate_pages_per_sec: float = 400_000.0,
    ):
        self.dataset_bytes = int(dataset_bytes * scale)
        self.request_rate = request_rate
        self.serve_us = serve_us
        self.insert_rate = insert_rate_pages_per_sec * scale

    def build_phases(self) -> list[Phase]:
        # Uniform random key requests touch every huge region at full
        # coverage — to access-coverage trackers Redis looks maximally
        # hot, but its low request rate makes huge pages nearly useless.
        """Paced load phase, then a long lightly-loaded serve phase."""
        profile = AccessProfile(
            specs=[RegionAccessSpec("heap", coverage=512)],
            access_rate=0.8,
        )
        return [
            Phase(
                "insert",
                ops=[
                    MmapOp("heap", self.dataset_bytes),
                    TouchOp("heap", content=ContentSpec(first_nonzero=0),
                            rate_pages_per_sec=self.insert_rate),
                ],
            ),
            Phase(
                "serve",
                duration_us=self.serve_us,
                profile=profile,
                request_rate=self.request_rate,
                request_cost_us=20.0,
            ),
        ]


class MongoDB(Workload):
    """MongoDB-style document store for the overcommit mix (Figure 11)."""

    name = "mongodb"

    def __init__(
        self,
        scale: float = 1.0,
        dataset_bytes: int = 24 * GB,
        request_rate: float = 30_000.0,
        serve_us: float = 600 * SEC,
        insert_rate_pages_per_sec: float = 400_000.0,
    ):
        self.dataset_bytes = int(dataset_bytes * scale)
        self.request_rate = request_rate
        self.serve_us = serve_us
        self.insert_rate = insert_rate_pages_per_sec * scale

    def build_phases(self) -> list[Phase]:
        """Paced document load, then a serving phase."""
        profile = AccessProfile(
            specs=[RegionAccessSpec("heap", coverage=320, hot_len=0.6)],
            access_rate=2.5,
        )
        return [
            Phase(
                "load",
                ops=[
                    MmapOp("heap", self.dataset_bytes),
                    TouchOp("heap", content=ContentSpec(first_nonzero=0),
                            rate_pages_per_sec=self.insert_rate),
                ],
            ),
            Phase(
                "serve",
                duration_us=self.serve_us,
                profile=profile,
                request_rate=self.request_rate,
                request_cost_us=25.0,
            ),
        ]
