"""SparseHash: Google's C++ associative-container build benchmark.

Table 8 of the paper: populating a 36 GB sparse hash map is dominated by
page-fault time (sequential-ish growth of the backing arrays).  The model
is a single allocation-and-touch pass plus the hashing CPU, calibrated so
Linux-2MB lands near the paper's 17.2 s (≈8.6 s of huge-fault zeroing on
36 GB plus ≈8.6 s of hashing work).
"""

from __future__ import annotations

from repro.units import GB, SEC
from repro.workloads.base import ContentSpec, MmapOp, Phase, TouchOp, Workload


class SparseHash(Workload):
    """Build a 36 GB sparsehash table (fault-bound)."""

    name = "sparsehash"

    def __init__(self, scale: float = 1.0, dataset_bytes: int = 36 * GB,
                 hash_work_us: float = 8.6 * SEC):
        self.dataset_bytes = int(dataset_bytes * scale)
        # hashing work scales with the data actually inserted
        self.hash_work_us = hash_work_us * scale

    def build_phases(self) -> list[Phase]:
        """One fault-bound table-build phase with hashing work."""
        pages = self.dataset_bytes // 4096
        per_page_work = self.hash_work_us / max(pages, 1)
        return [
            Phase(
                "build",
                ops=[
                    MmapOp("table", self.dataset_bytes),
                    TouchOp("table", content=ContentSpec(first_nonzero=2),
                            work_per_page_us=per_page_work),
                ],
            ),
        ]
