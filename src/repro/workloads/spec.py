"""SPEC CPU2006 and CloudSuite workload presets.

These instantiate the Table 2 catalog's TLB-sensitive applications as
runnable workloads, with footprints from the literature and access rates
taken from :mod:`repro.workloads.catalog` (so the classification the
Table 2 benchmark verifies and the runnable models stay consistent).

The four SPECint models (mcf, omnetpp, xalancbmk, astar) are the paper's
recurring cache-/TLB-sensitive examples; omnetpp and xalancbmk double as
the Figure 10 interference victims, so their ``cache_sensitivity`` values
match that calibration.
"""

from __future__ import annotations

from repro.patterns import Pattern
from repro.units import GB, MB, SEC
from repro.workloads.catalog import APPLICATIONS
from repro.workloads.compute import ComputeWorkload

#: (footprint, work seconds, hot fraction, cache sensitivity) per preset.
_PRESETS: dict[str, tuple[int, float, float, float]] = {
    "mcf": (1700 * MB, 700 * SEC, 1.0, 0.6),
    "omnetpp": (170 * MB, 500 * SEC, 1.0, 1.0),
    "xalancbmk": (430 * MB, 500 * SEC, 1.0, 0.8),
    "astar": (330 * MB, 500 * SEC, 1.0, 0.4),
    "canneal": (940 * MB, 600 * SEC, 1.0, 0.7),
    "dedup": (1600 * MB, 400 * SEC, 0.7, 0.5),
    "tigr": (600 * MB, 600 * SEC, 1.0, 0.4),
    "mummer": (2 * GB, 700 * SEC, 0.9, 0.4),
    "graph-analytics": (12 * GB, 900 * SEC, 0.8, 0.6),
    "data-analytics": (8 * GB, 800 * SEC, 0.8, 0.5),
}

_RATES = {app.name: (app.access_rate, app.pattern) for app in APPLICATIONS}


def available() -> list[str]:
    """Names of the runnable SPEC/CloudSuite presets."""
    return sorted(_PRESETS)


def make(name: str, scale: float = 1.0, work_us: float | None = None) -> ComputeWorkload:
    """Build a preset workload by catalog name."""
    if name not in _PRESETS:
        raise KeyError(f"no preset {name!r}; have {available()}")
    footprint, work, hot_len, sensitivity = _PRESETS[name]
    rate, pattern = _RATES[name]
    return ComputeWorkload(
        name=name,
        footprint_bytes=footprint,
        work_us=work if work_us is None else work_us,
        access_rate=rate,
        coverage=512 if pattern is Pattern.RANDOM else 480,
        pattern=pattern,
        hot_start=0.0,
        hot_len=hot_len,
        cache_sensitivity=sensitivity,
        scale=scale,
    )


class Mcf(ComputeWorkload):
    """429.mcf: pointer-chasing network simplex — the classic TLB hog."""

    def __init__(self, scale: float = 1.0, **kw):
        preset = make("mcf", scale, kw.pop("work_us", None))
        self.__dict__.update(preset.__dict__)


class Omnetpp(ComputeWorkload):
    """471.omnetpp: discrete-event simulation, the Figure 10 worst case."""

    def __init__(self, scale: float = 1.0, **kw):
        preset = make("omnetpp", scale, kw.pop("work_us", None))
        self.__dict__.update(preset.__dict__)
