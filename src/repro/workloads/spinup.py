"""Virtual-machine spin-up workloads (Table 8).

Both a KVM guest and a JVM configured to allocate all memory during
initialisation (``-Xms == -Xmx`` with AlwaysPreTouch) spend their start-up
time faulting in their entire footprint.  This is the extreme case for
asynchronous pre-zeroing: the paper measures KVM spin-up on 36 GB falling
from 9.7 s (Linux-2MB, synchronous zeroing) to 0.70 s with HawkEye —
13.8× — because the only remaining cost is the 13 µs fixed fault path per
huge page.

Freshly-initialised guest memory is almost entirely zero-filled, which is
also what makes spun-up VMs prime same-page-merging targets at the host
(the Figure 9/11 experiments).
"""

from __future__ import annotations

from repro.units import GB, SEC
from repro.workloads.base import ContentSpec, MmapOp, Phase, TouchOp, Workload


class VMSpinUp(Workload):
    """Allocate-everything-at-init spin-up; subclasses set the fixed work."""

    name = "vm-spinup"
    fixed_work_us = 0.5 * SEC

    def __init__(self, scale: float = 1.0, memory_bytes: int = 36 * GB,
                 name: str | None = None):
        if name is not None:
            self.name = name
        self.memory_bytes = int(memory_bytes * scale)
        # fixed init work scales with the footprint so the fault:work
        # ratio — which sets the spin-up speedups — is scale-invariant
        self.work_us = self.fixed_work_us * scale

    def build_phases(self) -> list[Phase]:
        """A single allocate-all-RAM-at-init phase."""
        return [
            Phase(
                "spinup",
                ops=[
                    MmapOp("guest-ram", self.memory_bytes),
                    # Guest init touches every page but writes almost
                    # nothing: the memory stays zero-filled.
                    TouchOp("guest-ram", content=ContentSpec(zero=True),
                            work_per_page_us=self.work_us / max(self.memory_bytes // 4096, 1)),
                ],
            ),
        ]


class KVMSpinUp(VMSpinUp):
    """KVM guest with fully preallocated RAM."""

    name = "kvm-spinup"
    fixed_work_us = 0.46 * SEC


class JVMSpinUp(VMSpinUp):
    """JVM with -Xms=-Xmx and AlwaysPreTouch."""

    name = "jvm-spinup"
    fixed_work_us = 0.9 * SEC
