"""Trace-driven workloads: replay recorded memory behaviour.

Downstream users rarely want to hand-model an application; they want to
replay what it did.  :class:`TraceWorkload` executes a flat list of trace
records — the subset of behaviour the simulator prices — and can be
loaded from a simple text format (one record per line, ``#`` comments):

```
mmap      heap 64MB
touch     heap 0 16384
advise    heap hugepage
compute   25s
free      heap 0 8192 sparse=0.5
serve     30s rate=10000 cost=12
```

Sizes accept ``KB/MB/GB`` suffixes; times accept ``s/ms/us``.  Each
record maps onto the same operations the built-in workload models use,
so traces compose with every policy and experiment helper.
"""

from __future__ import annotations

import io
from typing import Iterable

from repro.errors import ConfigError
from repro.units import GB, KB, MB, SEC
from repro.vm.vma import HugePageHint, VMAKind
from repro.workloads.base import (
    AccessProfile,
    ContentSpec,
    FreeOp,
    MmapOp,
    Op,
    Phase,
    RegionAccessSpec,
    SleepOp,
    TouchOp,
    Workload,
)

_SIZE_SUFFIXES = {"KB": KB, "MB": MB, "GB": GB, "B": 1}
_TIME_SUFFIXES = {"US": 1.0, "MS": 1000.0, "S": SEC}


def parse_size(token: str) -> int:
    """'64MB' -> bytes."""
    upper = token.upper()
    for suffix, mult in _SIZE_SUFFIXES.items():
        if upper.endswith(suffix):
            return int(float(upper[: -len(suffix)]) * mult)
    return int(token)


def parse_time(token: str) -> float:
    """'25s' -> microseconds."""
    upper = token.upper()
    for suffix, mult in sorted(_TIME_SUFFIXES.items(), key=lambda kv: -len(kv[0])):
        if upper.endswith(suffix):
            return float(upper[: -len(suffix)]) * mult
    return float(token)


def _kwargs(tokens: list[str]) -> dict[str, str]:
    out = {}
    for tok in tokens:
        if "=" not in tok:
            raise ConfigError(f"expected key=value, got {tok!r}")
        key, value = tok.split("=", 1)
        out[key] = value
    return out


class _AdviseOp(Op):
    """Deferred madvise(MADV_HUGEPAGE/NOHUGEPAGE) on a named region."""

    def __init__(self, region: str, hint: HugePageHint):
        self.region = region
        self.hint = hint

    def execute(self, kernel, run, budget_us):
        kernel.madvise_hugepage(run.proc, self.region, self.hint)
        run.invalidate_vma_cache()
        return 0.5, True


class TraceWorkload(Workload):
    """A workload defined entirely by a parsed trace."""

    def __init__(self, phases: list[Phase], name: str = "trace"):
        self.name = name
        self._phases = phases

    def build_phases(self) -> list[Phase]:
        """Deep-copy the parsed phases so op resume state is fresh."""
        import copy

        return copy.deepcopy(self._phases)

    # ------------------------------------------------------------------ #
    # parsing                                                             #
    # ------------------------------------------------------------------ #

    @classmethod
    def parse(cls, text: str | Iterable[str], name: str = "trace",
              scale: float = 1.0) -> "TraceWorkload":
        """Parse the text trace format; ``scale`` multiplies all sizes."""
        if isinstance(text, str):
            text = io.StringIO(text)
        phases: list[Phase] = []
        pending_ops: list[Op] = []
        counter = 0

        def flush(work_us=0.0, duration_us=0.0, profile=None,
                  request_rate=0.0, request_cost_us=0.0):
            nonlocal pending_ops, counter
            phases.append(Phase(
                f"t{counter}", ops=pending_ops, work_us=work_us,
                duration_us=duration_us, profile=profile,
                request_rate=request_rate, request_cost_us=request_cost_us,
            ))
            pending_ops = []
            counter += 1

        for lineno, raw in enumerate(text, 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            op, *args = line.split()
            try:
                cls._parse_record(op.lower(), args, scale, pending_ops, flush)
            except (ValueError, KeyError, IndexError) as exc:
                raise ConfigError(f"trace line {lineno}: {raw.strip()!r}: {exc}") from exc
        if pending_ops:
            flush()
        return cls(phases, name=name)

    @staticmethod
    def _parse_record(op, args, scale, pending_ops, flush):
        if op == "mmap":
            region, size = args[0], parse_size(args[1])
            kind = VMAKind(args[2]) if len(args) > 2 else VMAKind.ANON
            pending_ops.append(MmapOp(region, max(1, int(size * scale)), kind))
        elif op == "touch":
            region = args[0]
            start = int(args[1]) if len(args) > 1 else 0
            npages = int(args[2]) if len(args) > 2 else None
            kw = _kwargs(args[3:])
            pending_ops.append(TouchOp(
                region, start_page=int(start * scale),
                npages=None if npages is None else max(1, int(npages * scale)),
                stride_pages=int(kw.get("stride", 1)),
                rate_pages_per_sec=(float(kw["rate"]) * scale) if "rate" in kw else None,
                content=ContentSpec(zero=kw.get("zero", "0") == "1"),
            ))
        elif op == "free":
            region = args[0]
            kw = _kwargs([a for a in args[1:] if "=" in a])
            positional = [a for a in args[1:] if "=" not in a]
            start = int(positional[0]) if positional else 0
            npages = int(positional[1]) if len(positional) > 1 else None
            pending_ops.append(FreeOp(
                region, start_page=int(start * scale),
                npages=None if npages is None else max(1, int(npages * scale)),
                sparse_fraction=float(kw["sparse"]) if "sparse" in kw else None,
            ))
        elif op == "advise":
            region, hint = args[0], args[1].lower()
            mapping = {"hugepage": HugePageHint.ALWAYS,
                       "nohugepage": HugePageHint.NEVER,
                       "default": HugePageHint.DEFAULT}
            pending_ops.append(_AdviseOp(region, mapping[hint]))
        elif op == "sleep":
            pending_ops.append(SleepOp(parse_time(args[0])))
        elif op == "compute":
            work = parse_time(args[0])
            kw = _kwargs(args[1:])
            profile = None
            if "region" in kw:
                profile = AccessProfile(
                    specs=[RegionAccessSpec(
                        kw["region"],
                        coverage=int(kw.get("coverage", 512)),
                    )],
                    access_rate=float(kw.get("access_rate", 10.0)),
                )
            flush(work_us=work, profile=profile)
        elif op == "serve":
            duration = parse_time(args[0])
            kw = _kwargs(args[1:])
            flush(duration_us=duration,
                  request_rate=float(kw.get("rate", 0.0)),
                  request_cost_us=float(kw.get("cost", 0.0)))
        else:
            raise KeyError(f"unknown trace op {op!r}")

    @classmethod
    def from_file(cls, path, name: str | None = None, scale: float = 1.0) -> "TraceWorkload":
        with open(path) as handle:
            return cls.parse(handle, name=name or str(path), scale=scale)
