"""XSBench: Monte Carlo neutron-transport macro-kernel (Tramm et al.).

Calibration: §4's XSBench instances run ≈2430 s under Linux-4KB
(Table 5) and gain ≈1.15× with properly-placed huge pages; Figure 6
(right) shows the hot unionized-energy-grid lookups concentrated in the
top ~30 % of the VA space and MMU overheads taking ≈300 s to eliminate
under HawkEye but persisting past 1000 s under Linux/Ingens' sequential
scans.  ``access_rate=8.7`` random gives ≈15 % base-page overhead.
"""

from __future__ import annotations

from repro.patterns import Pattern
from repro.units import GB, SEC
from repro.workloads.compute import ComputeWorkload


class XSBench(ComputeWorkload):
    """The XSBench cross-section lookup kernel."""

    def __init__(
        self,
        scale: float = 1.0,
        footprint_bytes: int = 10 * GB,
        work_us: float = 2070 * SEC,
        name: str = "xsbench",
    ):
        super().__init__(
            name=name,
            footprint_bytes=footprint_bytes,
            work_us=work_us,
            access_rate=8.7,          # ≈15 % MMU overhead at 4 KiB
            coverage=512,
            pattern=Pattern.RANDOM,
            hot_start=0.7,            # hot grid data in the top 30 % of VAs
            hot_len=0.3,
            cache_sensitivity=0.4,
            scale=scale,
        )
