"""Shared fixtures: small kernels for fast unit/integration tests."""

from __future__ import annotations

import pytest

from repro import audit, heat, trace
from repro.core.hawkeye import HawkEyePolicy
from repro.metrics import telemetry
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy
from repro.units import MB


@pytest.fixture(autouse=True)
def _reset_trace():
    """Disarm the global trace/telemetry/audit/heat flags after every test."""
    yield
    trace.reset()
    telemetry.reset()
    audit.reset()
    heat.reset()


def small_config(mem_mb: int = 64, **overrides) -> KernelConfig:
    return KernelConfig(mem_bytes=mem_mb * MB, **overrides)


@pytest.fixture
def kernel4k() -> Kernel:
    """64 MB kernel running the Linux-4KB policy."""
    return Kernel(small_config(), Linux4KPolicy)


@pytest.fixture
def kernel_thp() -> Kernel:
    """64 MB kernel running Linux THP."""
    return Kernel(small_config(), lambda k: LinuxTHPPolicy(k, promote_per_sec=100.0))


@pytest.fixture
def kernel_hawkeye() -> Kernel:
    """64 MB kernel running HawkEye-G with fast background threads."""
    return Kernel(
        small_config(),
        lambda k: HawkEyePolicy(
            k, variant="g", promote_per_sec=100.0, prezero_pages_per_sec=1e6
        ),
    )


def spawn_simple(kernel: Kernel, heap_mb: int = 8, work_s: float = 2.0, name: str = "w"):
    """Spawn a tiny allocate-then-compute workload."""
    from repro.units import SEC
    from repro.workloads.base import (
        AccessProfile,
        MmapOp,
        Phase,
        RegionAccessSpec,
        TouchOp,
        Workload,
    )

    class Simple(Workload):
        def __init__(self):
            self.name = name

        def build_phases(self):
            return [
                Phase("alloc", ops=[MmapOp("heap", heap_mb * MB), TouchOp("heap")]),
                Phase(
                    "compute",
                    work_us=work_s * SEC,
                    profile=AccessProfile(
                        specs=[RegionAccessSpec("heap", coverage=512)],
                        access_rate=30.0,
                    ),
                ),
            ]

    return kernel.spawn(Simple())
