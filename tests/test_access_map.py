"""Unit tests for HawkEye's access_map (§3.3, Figure 4)."""

import pytest

from repro.core.access_map import NUM_BUCKETS, AccessMap, bucket_of


def test_bucket_boundaries_match_paper():
    """0-49 -> bucket 0, 50-99 -> bucket 1, ..., 450+ -> bucket 9."""
    assert bucket_of(0) == 0
    assert bucket_of(49) == 0
    assert bucket_of(50) == 1
    assert bucket_of(99) == 1
    assert bucket_of(449) == 8
    assert bucket_of(450) == 9
    assert bucket_of(512) == 9


def test_bucket_of_rejects_negative():
    with pytest.raises(ValueError):
        bucket_of(-1)


def test_update_places_region():
    amap = AccessMap()
    amap.update(10, 475)
    assert 10 in amap
    assert amap.highest_nonempty() == 9
    assert amap.head(9) == 10


def test_moving_up_inserts_at_head():
    amap = AccessMap()
    amap.update(1, 460)   # bucket 9
    amap.update(2, 100)   # bucket 2
    amap.update(2, 470)   # moves up into bucket 9 -> head
    assert list(amap.buckets[9]) == [2, 1]


def test_moving_down_inserts_at_tail():
    amap = AccessMap()
    amap.update(1, 460)
    amap.update(2, 465)
    amap.update(1, 0)     # down to bucket 0
    amap.update(2, 10)    # down to bucket 0, after 1
    assert list(amap.buckets[0]) == [1, 2]


def test_same_bucket_keeps_position():
    amap = AccessMap()
    amap.update(1, 460)   # head: [1]
    amap.update(2, 470)   # fresh insertion goes to the head: [2, 1]
    amap.update(1, 455)   # still bucket 9: no reordering
    assert list(amap.buckets[9]) == [2, 1]


def test_promotion_order_high_bucket_first_head_to_tail():
    amap = AccessMap()
    amap.update(1, 460)   # bucket 9
    amap.update(2, 200)   # bucket 4
    amap.update(3, 480)   # bucket 9, moved up -> head
    assert list(amap.iter_promotion_order()) == [3, 1, 2]
    assert amap.pop_next() == 3
    assert amap.pop_next() == 1
    assert amap.pop_next() == 2
    assert amap.pop_next() is None


def test_remove():
    amap = AccessMap()
    amap.update(5, 300)
    amap.remove(5)
    assert 5 not in amap
    assert len(amap) == 0
    amap.remove(5)  # idempotent


def test_coverage_clamped_to_512():
    amap = AccessMap()
    amap.update(1, 10_000)
    assert amap.highest_nonempty() == NUM_BUCKETS - 1


def test_pressure_estimate_tracks_population():
    amap = AccessMap()
    assert amap.pressure_estimate() == 0.0
    amap.update(1, 475)
    hot_only = amap.pressure_estimate()
    amap.update(2, 10)
    assert amap.pressure_estimate() > hot_only
    # hot regions contribute far more than cold ones
    cold_contribution = amap.pressure_estimate() - hot_only
    assert cold_contribution < hot_only / 5


def test_figure4_promotion_order():
    """The Figure 4 worked example: A1,B1,C1,C2,B2,C3,C4,B3,B4,A2,C5,A3.

    Reconstructed access_map state (bucket indices):
      A: A1=9, A2=4, A3=2
      B: B1=9, B2=8, B3=6, B4=5
      C: C1=9, C2=9, C3=7, C4=7, C5=3
    Per-process promotion order must follow bucket-descending order.
    """
    maps = {
        "A": [("A1", 9), ("A2", 4), ("A3", 2)],
        "B": [("B1", 9), ("B2", 8), ("B3", 6), ("B4", 5)],
        "C": [("C1", 9), ("C2", 9), ("C3", 7), ("C4", 7), ("C5", 3)],
    }
    for name, regions in maps.items():
        amap = AccessMap()
        # insert in reverse so that within-bucket head order matches the
        # figure's labelling (fresh insertions go to the bucket head)
        for i, (label, bucket) in reversed(list(enumerate(regions))):
            amap.update(i, bucket * 50 + 25)
        order = [regions[h][0] for h in amap.iter_promotion_order()]
        expected = [lbl for lbl, _ in sorted(regions, key=lambda r: -r[1])]
        assert order == expected
