"""Public API surface tests."""

import pytest

import repro
from repro.errors import (
    AllocationError,
    ConfigError,
    InvalidAddressError,
    OutOfMemoryError,
    ReproError,
)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_exception_hierarchy():
    for exc in (OutOfMemoryError, InvalidAddressError, AllocationError, ConfigError):
        assert issubclass(exc, ReproError)
    assert issubclass(ReproError, Exception)


def test_top_level_quickstart_shape():
    """The README/quickstart construction path works as documented."""
    from repro import HawkEyePolicy, Kernel, KernelConfig
    from repro.units import MB

    kernel = Kernel(KernelConfig(mem_bytes=64 * MB),
                    lambda k: HawkEyePolicy(k, variant="g"))
    assert kernel.policy.name == "hawkeye-g"
    assert kernel.buddy.free_pages > 0


def test_pattern_enum_exported():
    from repro import Pattern

    assert {p.value for p in Pattern} == {"random", "strided", "sequential"}


def test_process_region_metadata():
    from repro.vm.process import Process, RegionInfo

    proc = Process("x")
    region = proc.region(5)
    assert isinstance(region, RegionInfo)
    assert proc.region(5) is region, "get-or-create must be stable"
    region.resident = 256
    assert region.utilization() == 0.5
    assert proc.candidate_regions() == [region]
    region.is_huge = True
    assert proc.huge_regions() == [region]
    assert proc.candidate_regions() == []
