"""Directed tests for the decision audit: records, funnel, CLI verbs.

The core promise under test: a :class:`repro.audit.DecisionRecord`
carries the *exact* numbers the policy compared — so each test recomputes
those numbers independently (from region state and the policy's
configuration, never from the record itself) and asserts equality.
"""

from __future__ import annotations

import json

import pytest

from repro import audit
from repro.cli import main
from repro.core.access_map import BUCKET_WIDTH, NUM_BUCKETS
from repro.core.hawkeye import HawkEyePolicy
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.ingens import IngensPolicy
from repro.tlb.perf import PMUCounters
from repro.units import MB, PAGES_PER_HUGE
from repro.vm.process import Process

from tests.conftest import small_config, spawn_simple


def _base_kernel():
    """HawkEye kernel that faults base pages (promotion is explicit)."""
    return Kernel(
        small_config(),
        lambda k: HawkEyePolicy(k, huge_faults=False, prezero_enabled=False,
                                promote_per_sec=100.0),
    )


def _proc_with_heap(kernel, pages: int, name: str = "victim"):
    """A process with ``pages`` base pages faulted into its first region."""
    proc = Process(name)
    kernel.processes.append(proc)
    kernel.pmu[proc.pid] = PMUCounters()
    vma = kernel.mmap(proc, 4 * MB, "heap")
    for vpn in range(vma.start, vma.start + pages):
        kernel.fault(proc, vpn)
    return proc, vma


# --------------------------------------------------------------------- #
# frame provenance ledger                                                #
# --------------------------------------------------------------------- #


def test_ledger_alloc_free_cycle():
    kernel = _base_kernel()
    log = audit.attach(kernel)
    proc, vma = _proc_with_heap(kernel, 3)
    frame = proc.page_table.base[vma.start].frame
    rec = log.ledger.describe(frame)
    assert rec["live"] and rec["pid"] == proc.pid and rec["site"] == "fault"
    kernel.madvise_free(proc, vma.start, 3)
    rec = log.ledger.describe(frame)
    assert not rec["live"]
    assert rec["events"][-1][0] == "freed"
    audit.detach(kernel)


def test_attach_backfills_preexisting_allocations():
    kernel = _base_kernel()
    proc, vma = _proc_with_heap(kernel, 2)
    frame = proc.page_table.base[vma.start].frame
    log = audit.attach(kernel)  # after the faults
    rec = log.ledger.describe(frame)
    assert rec["live"] and rec["pid"] == proc.pid
    assert rec["site"] == "preexisting"
    audit.detach(kernel)
    assert not audit.enabled


# --------------------------------------------------------------------- #
# decision records vs independent recomputation                          #
# --------------------------------------------------------------------- #


def test_hawkeye_promotion_record_matches_recomputation():
    """The accept record's EMA/bucket equal values derived from region
    state and access-map arithmetic, not echoed back from the engine."""
    kernel = _base_kernel()
    log = audit.attach(kernel)
    policy = kernel.policy
    proc, vma = _proc_with_heap(kernel, PAGES_PER_HUGE)
    hvpn = vma.start >> 9
    region = proc.regions.get(hvpn)
    region.coverage_ema = 321.5
    # install the candidate the way the sampler would
    from repro.core.access_map import AccessMap

    amap = policy.access_maps.setdefault(proc.pid, AccessMap())
    amap.update(hvpn, region.coverage_ema)

    promoted = policy.engine.run_epoch()
    assert promoted >= 1
    (rec,) = log.decisions_for(pid=proc.pid, hvpn=hvpn, point="promote")
    assert rec.outcome == "accept" and rec.reason == "promoted"
    assert rec.stage == len(audit.FUNNEL_STAGES)
    # independent recomputation: the EMA was pinned above, the bucket is
    # plain arithmetic over it, and the promotion actually happened.
    assert rec.inputs["coverage_ema"] == 321.5
    assert rec.inputs["bucket"] == min(NUM_BUCKETS - 1,
                                       int(321.5) // BUCKET_WIDTH)
    assert rec.inputs["budget_left"] >= 1.0
    assert hvpn in proc.page_table.huge
    audit.detach(kernel)


def test_ingens_promotion_record_matches_recomputation():
    """Threshold and utilization in the record equal the configured
    threshold and the faulted-page fraction, recomputed from scratch."""
    faulted = 480
    kernel = Kernel(
        small_config(),
        lambda k: IngensPolicy(k, util_threshold=0.9, adaptive=False,
                               promote_per_sec=100.0),
    )
    log = audit.attach(kernel)
    proc, vma = _proc_with_heap(kernel, faulted)
    hvpn = vma.start >> 9
    kernel.policy.on_epoch()
    (rec,) = log.decisions_for(pid=proc.pid, hvpn=hvpn, point="promote")
    assert rec.outcome == "accept"
    assert rec.inputs["threshold"] == 0.9
    assert rec.inputs["utilization"] == faulted / PAGES_PER_HUGE
    assert hvpn in proc.page_table.huge
    audit.detach(kernel)


def test_funnel_monotone_and_consistent():
    """candidates >= eligible >= budget_passed >= acted per point, the
    candidate total equals the record count, rejects never exceed it."""
    kernel = _base_kernel()
    log = audit.attach(kernel)
    spawn_simple(kernel, heap_mb=8, work_s=600.0)
    kernel.run(max_epochs=80)  # several 30-epoch sampling periods
    assert log.recorded > 0
    for point, counts in log.funnel.items():
        for earlier, later in zip(counts, counts[1:]):
            assert earlier >= later, (point, counts)
    assert sum(counts[0] for counts in log.funnel.values()) == log.recorded
    for point, reasons in log.rejections.items():
        assert sum(reasons.values()) <= log.funnel[point][0]
    assert log.dropped == max(0, log.recorded - len(log.decisions))
    summary = log.funnel_summary()
    acted = sum(c["acted"] for c in summary.values())
    assert acted == sum(counts[3] for counts in log.funnel.values())
    audit.detach(kernel)


def test_decision_record_round_trips_to_dict(kernel_hawkeye):
    log = audit.attach(kernel_hawkeye)
    log.decide("promote", "w", 7, 42, "reject", "not_promotable", stage=1,
               inputs={"coverage_ema": 3.0})
    d = log.decisions[-1].to_dict()
    assert d["stage"] == "candidates" and d["reason"] == "not_promotable"
    assert d["inputs"] == {"coverage_ema": 3.0}
    assert "not_promotable" in str(log.decisions[-1])
    audit.detach(kernel_hawkeye)


def test_disabled_audit_records_nothing(kernel_hawkeye):
    log = audit.attach(kernel_hawkeye)
    log.enabled = False
    assert not log.ledger.enabled
    baseline = log.ledger.live.copy()  # boot-time backfill stays
    events_before = log.ledger.events_recorded
    spawn_simple(kernel_hawkeye, heap_mb=4, work_s=1.0)
    kernel_hawkeye.run(max_epochs=200)
    assert log.recorded == 0
    assert (log.ledger.live == baseline).all()
    assert log.ledger.events_recorded == events_before
    audit.detach(kernel_hawkeye)


# --------------------------------------------------------------------- #
# CLI verbs                                                              #
# --------------------------------------------------------------------- #

_FAST = ["--scale", "256", "--max-epochs", "200"]


def test_cli_why_replays_promotions(capsys):
    rc = main(["why", "kvm-spinup", *_FAST, "--point", "promote"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "replayable decisions" in out
    assert "promote" in out


def test_cli_audit_json_funnel_is_monotone(capsys):
    rc = main(["audit", "kvm-spinup", *_FAST, "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["recorded"] >= 0
    for point, stages in doc["funnel"].items():
        ordered = [stages[s] for s in audit.FUNNEL_STAGES]
        assert ordered == sorted(ordered, reverse=True), point


def test_cli_audit_table(capsys):
    rc = main(["audit", "kvm-spinup", *_FAST])
    assert rc == 0
    out = capsys.readouterr().out
    assert "decision funnel" in out
    assert "candidates" in out


def test_cli_audit_cache_mode_empty(tmp_path, capsys):
    rc = main(["audit", "--cache-dir", str(tmp_path)])
    assert rc == 0
    assert "no captured decision audits" in capsys.readouterr().out


def test_cli_pagemap_region_table(capsys):
    rc = main(["pagemap", "kvm-spinup", *_FAST, "--limit", "5"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "populated regions" in out
    assert "head frame" in out


def test_cli_pagemap_single_region(capsys):
    rc = main(["pagemap", "alloc-touch-free", *_FAST, "--region", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "flags" in out


def test_cli_top_watch(capsys):
    rc = main(["top", "sequential-4g", "--scale", "256",
               "--max-epochs", "40", "--interval", "0", "--watch", "0"])
    assert rc in (0, 1)  # the scan may not finish in 40 epochs
    out = capsys.readouterr().out
    assert "\x1b[1A" in out  # repainted in place at least once
    assert "sequential-4g/" in out


def test_cli_top_watch_rewinds_wrapped_rows(capsys, monkeypatch):
    """A row wider than the terminal wraps into several physical lines;
    the repaint must rewind all of them, not just one (drift bug)."""
    import os
    import shutil

    monkeypatch.setattr(shutil, "get_terminal_size",
                        lambda fallback=(80, 24): os.terminal_size((20, 24)))
    rc = main(["top", "sequential-4g", "--scale", "256",
               "--max-epochs", "40", "--interval", "0", "--watch", "0"])
    assert rc in (0, 1)
    out = capsys.readouterr().out
    # every repaint row is ~100 chars -> 5 physical lines at width 20;
    # the clear sequence must repeat once per physical line.
    assert "\x1b[1A\r\x1b[2K" * 5 in out
    assert "\x1b[1A\r\x1b[2K" * 6 not in out


def test_cli_why_filters_by_region(capsys):
    rc = main(["why", "kvm-spinup", *_FAST, "--region", "999999"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "none matched" in out
