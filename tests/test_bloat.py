"""Unit tests for bloat recovery (§3.2)."""

import pytest

from repro.core.bloat import BloatRecovery
from repro.kernel.kernel import Kernel
from repro.mem.watermarks import Watermarks
from repro.policies.linux import LinuxTHPPolicy
from repro.units import MB, PAGES_PER_HUGE
from tests.conftest import small_config
from tests.test_fault import make_proc


def make(mem_mb=64):
    kernel = Kernel(small_config(mem_mb), lambda k: LinuxTHPPolicy(k, khugepaged=False))
    return kernel


def bloated_proc(kernel, regions=4, used_per_region=8, nbytes=16 * MB):
    """A process with huge pages that are mostly zero-filled bloat."""
    proc, vma = make_proc(kernel, nbytes=nbytes)
    for r in range(regions):
        vpn = vma.start + r * PAGES_PER_HUGE
        kernel.fault(proc, vpn)  # huge fault maps 512 zeroed pages
        block = proc.page_table.huge[vpn >> 9].frame
        for i in range(used_per_region):
            kernel.frames.write(block + i, first_nonzero=9)
    return proc, vma


def recovery(kernel, overheads=None, **kw):
    overheads = overheads or {}
    return BloatRecovery(
        kernel,
        overhead_of=lambda proc: overheads.get(proc.name, 0.0),
        **kw,
    )


def test_inactive_below_watermark():
    kernel = make(mem_mb=256)
    bloated_proc(kernel)
    thread = recovery(kernel, scan_pages_per_sec=1e9)
    assert thread.run_epoch() == 0
    assert not thread.active


def test_recovers_when_watermark_crossed():
    kernel = make(mem_mb=16)  # 7 bloat regions = ~88% of memory
    proc, vma = bloated_proc(kernel, regions=7, nbytes=16 * MB)
    assert kernel.allocated_fraction() > 0.85
    thread = recovery(kernel, scan_pages_per_sec=1e9)
    recovered = thread.run_epoch()
    assert recovered > 0
    assert kernel.stats.bloat_pages_recovered == recovered
    # demoted regions are marked to avoid promote/demote thrash
    assert any(r.bloat_demoted for r in proc.regions.values())


def test_recovery_stops_at_low_watermark():
    kernel = make(mem_mb=32)
    bloated_proc(kernel, regions=8, nbytes=16 * MB)
    thread = recovery(kernel, scan_pages_per_sec=1e9)
    thread.run_epoch()
    assert kernel.allocated_fraction() < 0.70
    # yet not everything was demoted unnecessarily
    assert thread.watermarks.active is False


def test_zero_threshold_spares_dense_regions():
    kernel = make(mem_mb=16)
    proc, vma = bloated_proc(kernel, regions=3, nbytes=8 * MB)
    # make one region dense (>50% written)
    dense_hvpn = vma.start >> 9
    block = proc.page_table.huge[dense_hvpn].frame
    for i in range(300):
        kernel.frames.write(block + i, first_nonzero=9)
    thread = recovery(kernel, scan_pages_per_sec=1e9, zero_threshold=0.5)
    thread.run_epoch()
    assert proc.regions[dense_hvpn].is_huge, "dense huge page must survive"


def test_victim_order_lowest_overhead_first():
    kernel = make(mem_mb=32)
    light, vma_l = bloated_proc(kernel, regions=2, nbytes=8 * MB)
    light.name = "light"
    heavy, vma_h = bloated_proc(kernel, regions=2, nbytes=8 * MB)
    heavy.name = "heavy"
    thread = recovery(kernel, overheads={"light": 0.01, "heavy": 0.4},
                      scan_pages_per_sec=PAGES_PER_HUGE * 2.0,
                      watermarks=Watermarks(high=0.2, low=0.05))
    thread.run_epoch()  # budget: scan ~2 regions, all from `light`
    assert light.stats.demotions > 0
    assert heavy.stats.demotions == 0


def test_emergency_ignores_rate_limit():
    kernel = make(mem_mb=32)
    proc, _ = bloated_proc(kernel, regions=6, nbytes=16 * MB)
    thread = recovery(kernel, scan_pages_per_sec=1.0)
    freed = thread.emergency(pages_needed=600)
    assert freed >= 600


def test_scan_cost_charged():
    kernel = make(mem_mb=16)
    bloated_proc(kernel, regions=7, nbytes=16 * MB)
    thread = recovery(kernel, scan_pages_per_sec=1e9)
    thread.run_epoch()
    assert kernel.stats.bloat_cpu_us > 0
    assert kernel.stats.bloat_scan_bytes > 0
