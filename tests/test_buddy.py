"""Unit tests for the buddy allocator and its zero/non-zero free lists."""

import pytest

from repro.errors import AllocationError
from repro.mem.buddy import BuddyAllocator
from repro.mem.frames import FrameTable


def make(num_frames=4096):
    frames = FrameTable(num_frames)
    return frames, BuddyAllocator(frames)


def test_all_memory_free_at_boot():
    _, buddy = make()
    assert buddy.free_pages == 4096
    assert buddy.allocated_pages == 0


def test_alloc_free_roundtrip():
    frames, buddy = make()
    start, zeroed = buddy.alloc(order=0)
    assert frames.allocated[start]
    assert zeroed, "boot memory is zero content"
    assert buddy.free_pages == 4095
    buddy.free(start, 0)
    assert buddy.free_pages == 4096


def test_order9_alloc_is_huge_aligned():
    _, buddy = make()
    start, _ = buddy.alloc(order=9)
    assert start % 512 == 0


def test_split_and_coalesce_restores_block_counts():
    _, buddy = make(2048)
    before = buddy.free_block_counts()
    blocks = [buddy.alloc(order=0)[0] for _ in range(64)]
    for b in blocks:
        buddy.free(b, 0)
    assert buddy.free_block_counts() == before


def test_double_free_rejected():
    _, buddy = make()
    start, _ = buddy.alloc(order=3)
    buddy.free(start, 3)
    with pytest.raises(AllocationError):
        buddy.free(start, 3)


def test_alloc_failure_when_exhausted():
    _, buddy = make(1024)
    buddy.alloc(order=10)
    assert buddy.try_alloc(order=0) is None
    with pytest.raises(AllocationError):
        buddy.alloc(order=0)


def test_invalid_order_rejected():
    _, buddy = make()
    with pytest.raises(AllocationError):
        buddy.try_alloc(order=11)


def test_free_range_decomposes_into_blocks():
    _, buddy = make(2048)
    start, _ = buddy.alloc(order=9)
    # free an unaligned interior range
    buddy.free_range(start + 3, 200)
    assert buddy.free_pages == 2048 - 512 + 200
    buddy.free_range(start, 3)
    buddy.free_range(start + 203, 512 - 203)
    assert buddy.free_pages == 2048


def test_zero_list_preference():
    frames, buddy = make(2048)
    a, _ = buddy.alloc(order=0)
    frames.write(a)  # dirty it
    buddy.free(a, 0)
    # prefer_zero: should NOT hand back the dirty frame while zero
    # blocks remain
    b, zeroed = buddy.alloc(order=0, prefer_zero=True)
    assert zeroed
    # prefer_nonzero: should hand back the dirty frame
    c, zeroed_c = buddy.alloc(order=0, prefer_zero=False)
    assert c == a
    assert not zeroed_c


def test_merged_block_zero_state_follows_content():
    frames, buddy = make(1024)
    a, _ = buddy.alloc(order=0)
    frames.write(a)
    buddy.free(a, 0)
    # after coalescing, no block containing frame a may be on a zero list
    assert buddy.free_zeroed_pages() < buddy.free_pages
    for start, order, zeroed in buddy.iter_free_blocks():
        if start <= a < start + (1 << order):
            assert not zeroed


def test_pop_nonzero_and_reinsert_zeroed():
    frames, buddy = make(1024)
    a, _ = buddy.alloc(order=0)
    frames.write(a)
    buddy.free(a, 0)
    popped = buddy.pop_nonzero_block()
    assert popped is not None
    start, order = popped
    assert start <= a < start + (1 << order)
    buddy.reinsert_zeroed(start, order)
    assert buddy.pop_nonzero_block() is None
    assert buddy.free_zeroed_pages() == buddy.free_pages


def test_reinsert_dirty_keeps_block_dirty():
    frames, buddy = make(1024)
    a, _ = buddy.alloc(order=0)
    frames.write(a)
    buddy.free(a, 0)
    start, order = buddy.pop_nonzero_block()
    buddy.reinsert_dirty(start, order)
    assert buddy.pop_nonzero_block() == (start, order)
    buddy.reinsert_dirty(start, order)


def test_free_blocks_at_least():
    _, buddy = make(4096)
    assert buddy.free_blocks_at_least(9) >= 4
    buddy.alloc(order=9)
    counts = buddy.free_block_counts()
    assert sum(counts) == buddy.free_blocks_at_least(0)


def test_non_power_of_two_memory_seeded_fully():
    frames = FrameTable(3000)
    buddy = BuddyAllocator(frames)
    assert buddy.free_pages == 3000
    taken = []
    while True:
        got = buddy.try_alloc(0)
        if got is None:
            break
        taken.append(got[0])
    assert len(taken) == 3000
