"""Unit tests for the buddy allocator and its zero/non-zero free lists."""

import hypothesis.strategies as st
import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import AllocationError
from repro.mem.buddy import BuddyAllocator
from repro.mem.frames import FrameTable
from repro.numa.allocator import NodeAllocator
from repro.numa.topology import NumaTopology


def make(num_frames=4096):
    frames = FrameTable(num_frames)
    return frames, BuddyAllocator(frames)


def test_all_memory_free_at_boot():
    _, buddy = make()
    assert buddy.free_pages == 4096
    assert buddy.allocated_pages == 0


def test_alloc_free_roundtrip():
    frames, buddy = make()
    start, zeroed = buddy.alloc(order=0)
    assert frames.allocated[start]
    assert zeroed, "boot memory is zero content"
    assert buddy.free_pages == 4095
    buddy.free(start, 0)
    assert buddy.free_pages == 4096


def test_order9_alloc_is_huge_aligned():
    _, buddy = make()
    start, _ = buddy.alloc(order=9)
    assert start % 512 == 0


def test_split_and_coalesce_restores_block_counts():
    _, buddy = make(2048)
    before = buddy.free_block_counts()
    blocks = [buddy.alloc(order=0)[0] for _ in range(64)]
    for b in blocks:
        buddy.free(b, 0)
    assert buddy.free_block_counts() == before


def test_double_free_rejected():
    _, buddy = make()
    start, _ = buddy.alloc(order=3)
    buddy.free(start, 3)
    with pytest.raises(AllocationError):
        buddy.free(start, 3)


def test_alloc_failure_when_exhausted():
    _, buddy = make(1024)
    buddy.alloc(order=10)
    assert buddy.try_alloc(order=0) is None
    with pytest.raises(AllocationError):
        buddy.alloc(order=0)


def test_invalid_order_rejected():
    _, buddy = make()
    with pytest.raises(AllocationError):
        buddy.try_alloc(order=11)


def test_free_range_decomposes_into_blocks():
    _, buddy = make(2048)
    start, _ = buddy.alloc(order=9)
    # free an unaligned interior range
    buddy.free_range(start + 3, 200)
    assert buddy.free_pages == 2048 - 512 + 200
    buddy.free_range(start, 3)
    buddy.free_range(start + 203, 512 - 203)
    assert buddy.free_pages == 2048


def test_zero_list_preference():
    frames, buddy = make(2048)
    a, _ = buddy.alloc(order=0)
    frames.write(a)  # dirty it
    buddy.free(a, 0)
    # prefer_zero: should NOT hand back the dirty frame while zero
    # blocks remain
    b, zeroed = buddy.alloc(order=0, prefer_zero=True)
    assert zeroed
    # prefer_nonzero: should hand back the dirty frame
    c, zeroed_c = buddy.alloc(order=0, prefer_zero=False)
    assert c == a
    assert not zeroed_c


def test_merged_block_zero_state_follows_content():
    frames, buddy = make(1024)
    a, _ = buddy.alloc(order=0)
    frames.write(a)
    buddy.free(a, 0)
    # after coalescing, no block containing frame a may be on a zero list
    assert buddy.free_zeroed_pages() < buddy.free_pages
    for start, order, zeroed in buddy.iter_free_blocks():
        if start <= a < start + (1 << order):
            assert not zeroed


def test_pop_nonzero_and_reinsert_zeroed():
    frames, buddy = make(1024)
    a, _ = buddy.alloc(order=0)
    frames.write(a)
    buddy.free(a, 0)
    popped = buddy.pop_nonzero_block()
    assert popped is not None
    start, order = popped
    assert start <= a < start + (1 << order)
    buddy.reinsert_zeroed(start, order)
    assert buddy.pop_nonzero_block() is None
    assert buddy.free_zeroed_pages() == buddy.free_pages


def test_reinsert_dirty_keeps_block_dirty():
    frames, buddy = make(1024)
    a, _ = buddy.alloc(order=0)
    frames.write(a)
    buddy.free(a, 0)
    start, order = buddy.pop_nonzero_block()
    buddy.reinsert_dirty(start, order)
    assert buddy.pop_nonzero_block() == (start, order)
    buddy.reinsert_dirty(start, order)


def test_free_blocks_at_least():
    _, buddy = make(4096)
    assert buddy.free_blocks_at_least(9) >= 4
    buddy.alloc(order=9)
    counts = buddy.free_block_counts()
    assert sum(counts) == buddy.free_blocks_at_least(0)


def test_non_power_of_two_memory_seeded_fully():
    frames = FrameTable(3000)
    buddy = BuddyAllocator(frames)
    assert buddy.free_pages == 3000
    taken = []
    while True:
        got = buddy.try_alloc(0)
        if got is None:
            break
        taken.append(got[0])
    assert len(taken) == 3000


# ---------------------------------------------------------------------- #
# multi-node NodeAllocator properties (hypothesis)                        #
# ---------------------------------------------------------------------- #

NUMA_FRAMES = 1536
NUMA_NODES = 3


class NodeAllocatorMachine(RuleBasedStateMachine):
    """Frame conservation across per-node zones under arbitrary traffic.

    Invariants after every alloc/free interleaving:

    * global conservation: free + live pages == total, and the per-node
      breakdown conserves each zone's own total;
    * no free block straddles a zone boundary (coalescing cannot cross
      nodes);
    * strict allocations land on the requested node, spills are counted
      once as a miss (where they landed) and once as foreign (where they
      were asked to land).
    """

    def __init__(self):
        super().__init__()
        self.frames = FrameTable(NUMA_FRAMES)
        self.allocator = NodeAllocator(
            self.frames, NumaTopology(nodes=NUMA_NODES))
        self.live: list[tuple[int, int]] = []  # (start, order)

    @rule(order=st.integers(0, 9),
          node=st.one_of(st.none(), st.integers(0, NUMA_NODES - 1)),
          strict=st.booleans())
    def alloc(self, order, node, strict):
        got = self.allocator.try_alloc(order, node=node, strict=strict)
        if got is None:
            if node is not None and strict:
                # strict failure must mean the node itself has no block
                assert self.allocator.zone(node).try_alloc(order) is None
            return
        start, _ = got
        landed = self.allocator.node_of(start)
        if node is not None and strict:
            assert landed == node
        # a block never straddles its zone
        zone = self.allocator.zone(landed)
        assert zone.start <= start and start + (1 << order) <= zone.end
        self.live.append((start, order))

    @rule(idx=st.integers(0, 200))
    def free_block(self, idx):
        if not self.live:
            return
        start, order = self.live.pop(idx % len(self.live))
        self.allocator.free(start, order)

    @invariant()
    def conservation(self):
        live_pages = sum(1 << order for _, order in self.live)
        assert self.allocator.free_pages + live_pages == NUMA_FRAMES
        assert self.frames.allocated_count() == live_pages
        # per-node: each zone conserves its own range
        for node, (lo, hi) in enumerate(self.allocator.node_map.ranges):
            zone = self.allocator.zone(node)
            live_here = sum(
                1 << order for start, order in self.live if lo <= start < hi)
            assert zone.free_pages + live_here == hi - lo
            assert zone.allocated_pages == live_here

    @invariant()
    def free_blocks_stay_in_zone(self):
        for node, zone in enumerate(self.allocator.zones):
            for start, order, _ in zone.iter_free_blocks():
                assert self.allocator.node_of(start) == node
                assert start + (1 << order) <= zone.end

    @invariant()
    def placement_counters_balance(self):
        alc = self.allocator
        # every spill is exactly one miss (landing) + one foreign (wanted)
        assert sum(alc.numa_miss) == sum(alc.numa_foreign)
        # counters only grow with allocation traffic, never exceed it
        assert all(v >= 0 for v in alc.numa_hit + alc.numa_miss + alc.numa_foreign)


NodeAllocatorMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestNodeAllocatorProperties = NodeAllocatorMachine.TestCase


def test_node_allocator_double_free_rejected():
    frames = FrameTable(NUMA_FRAMES)
    allocator = NodeAllocator(frames, NumaTopology(nodes=NUMA_NODES))
    start, _ = allocator.alloc(order=3, node=1, strict=True)
    allocator.free(start, 3)
    with pytest.raises(AllocationError):
        allocator.free(start, 3)


def test_node_allocator_free_range_splits_at_zone_boundary():
    frames = FrameTable(NUMA_FRAMES)
    allocator = NodeAllocator(frames, NumaTopology(nodes=NUMA_NODES))
    # drain everything, then free a range straddling the node 0/1 boundary
    while allocator.try_alloc(0) is not None:
        pass
    boundary = allocator.node_map.ranges[0][1]
    allocator.free_range(boundary - 100, 200)
    assert allocator.zone(0).free_pages == 100
    assert allocator.zone(1).free_pages == 100
    assert allocator.free_pages == 200
