"""Unit tests for the benchmark-suite catalog (Table 2, Figure 3 data)."""

import pytest

from repro.tlb.mmu_model import MMUModel, RegionLoad
from repro.workloads import catalog


def test_suite_totals_match_table2():
    for suite, (total, _) in catalog.TABLE2_PAPER.items():
        assert len(catalog.apps_in(suite)) == total, suite
    assert len(catalog.APPLICATIONS) == 79


def test_paper_sensitive_counts():
    for suite, (_, sensitive) in catalog.TABLE2_PAPER.items():
        marked = sum(1 for a in catalog.apps_in(suite) if a.paper_sensitive)
        assert marked == sensitive, suite
    assert sum(1 for a in catalog.APPLICATIONS if a.paper_sensitive) == 15


def test_model_classification_matches_paper():
    """The hardware model must classify exactly the paper's 15 apps as
    TLB sensitive (>3% modelled speedup from huge pages)."""
    model = MMUModel()
    for app in catalog.APPLICATIONS:
        load = RegionLoad(2000, 512.0, 0.0, 1.0, app.pattern)
        overhead = model.epoch([load], access_rate=app.access_rate).overhead
        speedup = 1.0 / (1.0 - overhead) - 1.0
        assert (speedup > catalog.SENSITIVITY_THRESHOLD) == app.paper_sensitive, (
            f"{app.name}: speedup {speedup:.3f}"
        )


def test_known_sensitive_apps_present():
    names = {a.name for a in catalog.APPLICATIONS if a.paper_sensitive}
    assert {"mcf", "astar", "omnetpp", "xalancbmk", "cg", "bt",
            "tigr", "mummer", "canneal", "dedup"} <= names


def test_figure3_mean_distance():
    """Figure 3: overall mean distance to first non-zero byte ≈ 9.11 B."""
    assert catalog.first_nonzero_mean() == pytest.approx(
        catalog.FIRST_NONZERO_PAPER_MEAN, abs=0.05
    )
    assert sum(catalog.FIRST_NONZERO_WEIGHTS.values()) == 56
