"""Unit tests for the command-line interface."""

import pytest

from repro.cli import BENCHES, WORKLOADS, build_parser, cmd_compare, cmd_run, main
from repro.experiments import POLICIES


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "not-a-workload"])


def test_workload_registry_factories_build():
    for name, (desc, factory) in WORKLOADS.items():
        wl = factory(1 / 256)
        assert wl.build_phases(), name
        assert desc


def test_bench_targets_exist():
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
    for target, filename in BENCHES.items():
        assert (bench_dir / filename).exists(), target


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for policy in POLICIES:
        assert policy in out
    assert "kvm-spinup" in out
    assert "fig1" in out


def test_run_command(capsys):
    rc = main([
        "run", "kvm-spinup", "--policy", "hawkeye-g",
        "--mem-gb", "48", "--scale", "256", "--max-epochs", "200",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "completed" in out
    assert "page faults" in out


def test_run_command_procfs(capsys):
    rc = main([
        "run", "hacc-io", "--policy", "linux-2mb",
        "--scale", "256", "--max-epochs", "200", "--procfs",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MemTotal:" in out
    assert "pgfault" in out


def test_compare_command(capsys):
    rc = main([
        "compare", "sparsehash", "--scale", "256", "--mem-gb", "96",
        "--policies", "linux-4kb,linux-2mb", "--max-epochs", "500",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "linux-4kb" in out and "linux-2mb" in out
    assert "speedup vs linux-4kb" in out


def test_compare_rejects_unknown_policy(capsys):
    rc = main([
        "compare", "sparsehash", "--policies", "linux-4kb,bogus",
    ])
    assert rc == 2


def test_trace_run_writes_jsonl_and_summary(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    rc = main([
        "trace", "run", "alloc-touch-free", "--policy", "hawkeye-g",
        "--scale", "256", "--max-epochs", "500",
        "--out", str(out), "--summary",
    ])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "events emitted" in stdout
    assert "subsystem" in stdout  # attribution-table header
    assert "share_%" in stdout
    lines = out.read_text().splitlines()
    assert lines
    import json

    first = json.loads(lines[0])
    assert {"t_us", "kind", "process"} <= set(first)


def test_trace_run_kind_filter_restricts_output(tmp_path, capsys):
    out = tmp_path / "faults.jsonl"
    rc = main([
        "trace", "run", "alloc-touch-free", "--policy", "linux-4kb",
        "--scale", "256", "--max-epochs", "500",
        "--out", str(out), "--kind", "fault",
    ])
    assert rc == 0
    import json

    kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
    assert kinds
    assert all(k.startswith("fault") for k in kinds)


def test_trace_view_round_trip(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    main([
        "trace", "run", "alloc-touch-free", "--policy", "hawkeye-g",
        "--scale", "256", "--max-epochs", "500", "--out", str(out),
    ])
    capsys.readouterr()
    rc = main(["trace", "view", str(out), "--limit", "5", "--summary", "--hist"])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "events (of" in stdout
    assert "subsystem" in stdout


def test_trace_view_missing_file(capsys):
    assert main(["trace", "view", "/no/such/trace.jsonl"]) == 2


def test_top_prints_snapshot_rows(capsys):
    rc = main([
        "top", "alloc-touch-free", "--policy", "linux-2mb",
        "--scale", "256", "--max-epochs", "500", "--interval", "10",
    ])
    assert rc == 0
    lines = capsys.readouterr().out.splitlines()
    assert "t_s" in lines[0] and "pgfault/s" in lines[0]
    assert len(lines) > 2  # header + at least one sample + outcome line


def test_sweep_run_status_clean(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    rc = main(["sweep", "run", "smoke:linux-4kb", "--jobs", "1",
               "--cache-dir", cache_dir])
    assert rc == 0
    out = capsys.readouterr().out
    assert "smoke/touch:linux-4kb@128" in out

    # warm rerun: everything cached, --require-cached passes, JSONL out
    rc = main(["sweep", "run", "smoke:linux-4kb", "--cache-dir", cache_dir,
               "--require-cached", "--json"])
    assert rc == 0
    import json as _json

    record = _json.loads(capsys.readouterr().out.splitlines()[0])
    assert record["status"] == "cached"
    assert record["result"]["finished"] is True

    rc = main(["sweep", "status", "--cache-dir", cache_dir])
    assert rc == 0
    assert "1 cached results" in capsys.readouterr().out

    rc = main(["sweep", "clean", "--cache-dir", cache_dir])
    assert rc == 0
    assert "removed 1 cached results" in capsys.readouterr().out


def test_sweep_run_require_cached_fails_cold(tmp_path, capsys):
    rc = main(["sweep", "run", "smoke:linux-4kb", "--require-cached",
               "--cache-dir", str(tmp_path / "cold")])
    assert rc == 1
    assert "--require-cached" in capsys.readouterr().err


def test_sweep_run_csv_export(tmp_path, capsys):
    csv_path = tmp_path / "cells.csv"
    rc = main(["sweep", "run", "smoke:linux-2mb",
               "--cache-dir", str(tmp_path / "cache"), "--csv", str(csv_path)])
    assert rc == 0
    capsys.readouterr()
    rows = csv_path.read_text().splitlines()
    assert rows[0].startswith("cell_id,")
    assert "smoke/touch:linux-2mb@128" in rows[1]


def test_sweep_run_unknown_selector(tmp_path, capsys):
    rc = main(["sweep", "run", "not-an-experiment",
               "--cache-dir", str(tmp_path / "cache")])
    assert rc == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_sweep_resume_without_manifest(tmp_path, capsys):
    rc = main(["sweep", "run", "--resume",
               "--cache-dir", str(tmp_path / "empty")])
    assert rc == 2
    assert "nothing to resume" in capsys.readouterr().err


def test_sweep_resume_reruns_manifest(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "run", "smoke:hawkeye-g",
                 "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    rc = main(["sweep", "run", "--resume", "--cache-dir", cache_dir])
    assert rc == 0
    captured = capsys.readouterr()
    assert "resuming 1 cells" in captured.err
    assert "cached" in captured.out


def test_trace_export_chrome(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    main(["trace", "run", "alloc-touch-free", "--policy", "hawkeye-g",
          "--scale", "256", "--max-epochs", "500", "--out", str(jsonl)])
    capsys.readouterr()
    out = tmp_path / "trace.chrome.json"
    rc = main(["trace", "export", str(jsonl), "--chrome", "--out", str(out)])
    assert rc == 0
    assert "written to" in capsys.readouterr().out
    import json

    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    slices = [r for r in doc["traceEvents"] if r.get("ph") == "X"]
    assert slices and all(r["dur"] > 0 and r["ts"] >= 0 for r in slices)

    # default output name: input stem + .chrome.json
    rc = main(["trace", "export", str(jsonl), "--chrome"])
    assert rc == 0
    capsys.readouterr()
    assert (tmp_path / "trace.chrome.json").exists()


def test_trace_export_requires_format(tmp_path, capsys):
    jsonl = tmp_path / "t.jsonl"
    jsonl.write_text("")
    assert main(["trace", "export", str(jsonl)]) == 2
    assert "--chrome" in capsys.readouterr().err
    assert main(["trace", "export", "/no/such.jsonl", "--chrome"]) == 2


def test_trace_summary_prints_percentiles(tmp_path, capsys):
    rc = main(["trace", "run", "alloc-touch-free", "--policy", "linux-4kb",
               "--scale", "256", "--max-epochs", "500", "--summary"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "latency percentiles" in out
    assert "p50" in out and "p99" in out


def test_top_trace_flag_fills_drop_column(capsys):
    rc = main(["top", "alloc-touch-free", "--policy", "linux-2mb",
               "--scale", "256", "--max-epochs", "500", "--interval", "10",
               "--trace", "--trace-capacity", "50"])
    assert rc == 0
    lines = capsys.readouterr().out.splitlines()
    assert "trdrop/s" in lines[0]
    assert not lines[1].rstrip().endswith("-")


def test_top_without_trace_shows_dash(capsys):
    rc = main(["top", "alloc-touch-free", "--policy", "linux-2mb",
               "--scale", "256", "--max-epochs", "500", "--interval", "10"])
    assert rc == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[1].rstrip().endswith("-")


def test_report_html_and_regress_flow(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["sweep", "run", "smoke:linux-4kb",
                 "--cache-dir", cache_dir]) == 0
    capsys.readouterr()

    html_path = tmp_path / "report.html"
    rc = main(["report", "html", "--cache-dir", cache_dir,
               "--out", str(html_path)])
    assert rc == 0
    assert "written to" in capsys.readouterr().out
    html = html_path.read_text()
    assert html.lstrip().startswith("<!DOCTYPE html>")
    assert "<table" in html and "smoke/touch:linux-4kb@128" in html
    assert "attribution" in html
    # self-contained: no external fetches of any kind
    assert "http://" not in html and "https://" not in html

    baseline = tmp_path / "base.json"
    rc = main(["report", "regress", str(baseline), "--cache-dir", cache_dir,
               "--bless", "--note", "test seed"])
    assert rc == 0
    assert "blessed" in capsys.readouterr().out
    rc = main(["report", "regress", str(baseline), "--cache-dir", cache_dir])
    assert rc == 0
    assert "OK" in capsys.readouterr().out

    # tighten a blessed metric by 10%: the gate must exit non-zero
    import json

    doc = json.loads(baseline.read_text())
    for cell in doc["cells"].values():
        for name in cell["metrics"]:
            if name.endswith("avg_fault_us"):
                cell["metrics"][name] /= 1.10
    baseline.write_text(json.dumps(doc))
    rc = main(["report", "regress", str(baseline), "--cache-dir", cache_dir])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_report_regress_missing_baseline(tmp_path, capsys):
    rc = main(["report", "regress", str(tmp_path / "none.json"),
               "--cache-dir", str(tmp_path / "cache")])
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_report_html_empty_cache(tmp_path, capsys):
    html_path = tmp_path / "report.html"
    rc = main(["report", "html", "--cache-dir", str(tmp_path / "void"),
               "--out", str(html_path)])
    assert rc == 0
    assert "no cached" in html_path.read_text().lower()
