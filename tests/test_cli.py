"""Unit tests for the command-line interface."""

import pytest

from repro.cli import BENCHES, WORKLOADS, build_parser, cmd_compare, cmd_run, main
from repro.experiments import POLICIES


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "not-a-workload"])


def test_workload_registry_factories_build():
    for name, (desc, factory) in WORKLOADS.items():
        wl = factory(1 / 256)
        assert wl.build_phases(), name
        assert desc


def test_bench_targets_exist():
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
    for target, filename in BENCHES.items():
        assert (bench_dir / filename).exists(), target


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for policy in POLICIES:
        assert policy in out
    assert "kvm-spinup" in out
    assert "fig1" in out


def test_run_command(capsys):
    rc = main([
        "run", "kvm-spinup", "--policy", "hawkeye-g",
        "--mem-gb", "48", "--scale", "256", "--max-epochs", "200",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "completed" in out
    assert "page faults" in out


def test_run_command_procfs(capsys):
    rc = main([
        "run", "hacc-io", "--policy", "linux-2mb",
        "--scale", "256", "--max-epochs", "200", "--procfs",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "MemTotal:" in out
    assert "pgfault" in out


def test_compare_command(capsys):
    rc = main([
        "compare", "sparsehash", "--scale", "256", "--mem-gb", "96",
        "--policies", "linux-4kb,linux-2mb", "--max-epochs", "500",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "linux-4kb" in out and "linux-2mb" in out
    assert "speedup vs linux-4kb" in out


def test_compare_rejects_unknown_policy(capsys):
    rc = main([
        "compare", "sparsehash", "--policies", "linux-4kb,bogus",
    ])
    assert rc == 2
