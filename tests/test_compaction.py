"""Unit tests for memory compaction."""

import numpy as np
import pytest

from repro.mem.buddy import BuddyAllocator
from repro.mem.compaction import CompactionStats, Compactor
from repro.mem.frames import FrameTable
from repro.units import PAGES_PER_HUGE


class MigrationRegistry:
    """Trivial rmap standing in for the kernel's migrate callback."""

    def __init__(self):
        self.locations: dict[int, int] = {}  # logical page -> frame
        self.by_frame: dict[int, int] = {}
        self.refuse: set[int] = set()

    def place(self, logical: int, frame: int) -> None:
        self.locations[logical] = frame
        self.by_frame[frame] = logical

    def migrate(self, old: int, new: int) -> bool:
        if old in self.refuse:
            return False
        logical = self.by_frame.pop(old, None)
        if logical is None:
            return False
        self.place(logical, new)
        return True


def sparse_setup(num_frames=8192, per_chunk=10):
    """Allocate a few frames in every chunk so no order-9 block exists."""
    frames = FrameTable(num_frames)
    buddy = BuddyAllocator(frames)
    reg = MigrationRegistry()
    logical = 0
    taken = []
    while True:
        got = buddy.try_alloc(0, prefer_zero=False)
        if got is None:
            break
        taken.append(got[0])
    # keep `per_chunk` frames per chunk, free the rest
    keep = []
    for chunk in range(num_frames // PAGES_PER_HUGE):
        base = chunk * PAGES_PER_HUGE
        keep.extend(range(base, base + per_chunk))
    keep_set = set(keep)
    for f in taken:
        if f in keep_set:
            reg.place(logical, f)
            logical += 1
        else:
            buddy.free(f, 0)
    return frames, buddy, reg


def test_compaction_creates_huge_blocks():
    frames, buddy, reg = sparse_setup()
    assert buddy.free_blocks_at_least(9) == 0
    compactor = Compactor(buddy, reg.migrate)
    stats = compactor.run(budget_pages=200)
    assert stats.blocks_created > 0
    # created order-9 blocks may have coalesced into order-10 blocks;
    # compare order-9 allocation *capacity* instead of block count
    counts = buddy.free_block_counts()
    capacity = sum((1 << (o - 9)) * n for o, n in enumerate(counts) if o >= 9)
    assert capacity >= stats.blocks_created
    assert stats.pages_moved <= 200


def test_compaction_preserves_mappings_and_content():
    frames, buddy, reg = sparse_setup()
    # give each mapped frame distinctive content
    for logical, frame in reg.locations.items():
        frames.write(frame, first_nonzero=logical % 4096, tag=1000 + logical)
    compactor = Compactor(buddy, reg.migrate)
    compactor.run(budget_pages=500)
    for logical, frame in reg.locations.items():
        assert frames.allocated[frame]
        assert frames.content_tag[frame] == 1000 + logical
        assert frames.first_nonzero[frame] == logical % 4096


def test_compaction_respects_budget():
    frames, buddy, reg = sparse_setup()
    compactor = Compactor(buddy, reg.migrate)
    stats = compactor.run(budget_pages=15)
    assert stats.pages_moved <= 15


def test_unmovable_frame_abandons_chunk():
    frames, buddy, reg = sparse_setup(num_frames=2048)
    victim = next(iter(reg.by_frame))
    reg.refuse.add(victim)
    compactor = Compactor(buddy, reg.migrate)
    stats = compactor.run(budget_pages=10_000)
    assert stats.chunks_abandoned >= 1
    assert frames.allocated[victim]


def test_pinned_chunks_skipped():
    frames, buddy, reg = sparse_setup(num_frames=2048)
    some_frame = next(iter(reg.by_frame))
    frames.pinned[some_frame] = True
    compactor = Compactor(buddy, reg.migrate)
    compactor.run(budget_pages=10_000)
    assert frames.allocated[some_frame]
    chunk = some_frame // PAGES_PER_HUGE
    lo = chunk * PAGES_PER_HUGE
    assert frames.allocated[lo:lo + PAGES_PER_HUGE].sum() >= 1


def test_stats_merge():
    a = CompactionStats(pages_moved=1, blocks_created=2, chunks_abandoned=3, runs=1)
    b = CompactionStats(pages_moved=10, blocks_created=20, chunks_abandoned=30, runs=2)
    a.merge(b)
    assert (a.pages_moved, a.blocks_created, a.chunks_abandoned, a.runs) == (11, 22, 33, 3)


def test_free_page_conservation():
    frames, buddy, reg = sparse_setup()
    before_free = buddy.free_pages
    before_alloc = frames.allocated_count()
    compactor = Compactor(buddy, reg.migrate)
    compactor.run(budget_pages=300)
    assert buddy.free_pages == before_free
    assert frames.allocated_count() == before_alloc
