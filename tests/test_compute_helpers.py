"""Tests for compute-workload helpers and shared phase plumbing."""

import pytest

from repro.patterns import Pattern
from repro.units import GB, SEC
from repro.workloads.compute import ComputeWorkload, expected_overhead, seconds
from repro.workloads.microbench import SparseTouch


def test_seconds_helper():
    assert seconds(2.5) == 2.5 * SEC


def test_expected_overhead_back_of_envelope():
    """The helper must agree with the calibration notes in docs/."""
    # cg.D: rate 32, miss ~0.96 => ~39%
    assert expected_overhead(32.0) == pytest.approx(0.39, abs=0.02)
    # graph500: rate 7.5 => ~13%
    assert expected_overhead(7.5) == pytest.approx(0.13, abs=0.02)
    assert expected_overhead(0.0) == 0.0


def test_compute_workload_scales_footprint():
    wl = ComputeWorkload("x", footprint_bytes=64 * GB, work_us=1.0,
                         access_rate=1.0, scale=1 / 64)
    assert wl.footprint_bytes == 1 * GB


def test_compute_workload_phases_shape():
    wl = ComputeWorkload("x", footprint_bytes=1 * GB, work_us=5.0,
                         access_rate=1.0, hot_start=0.25, hot_len=0.5)
    init, compute = wl.build_phases()
    assert init.name == "init" and compute.name == "compute"
    assert compute.work_us == 5.0
    spec = compute.profile.specs[0]
    assert (spec.hot_start, spec.hot_len) == (0.25, 0.5)


def test_sparse_touch_generates_bloat_under_thp(kernel_thp):
    wl = SparseTouch(footprint_bytes=8 * 2 ** 20, stride_pages=8)
    run = kernel_thp.spawn(wl)
    kernel_thp.run_epochs(3)
    proc = run.proc
    # huge-at-fault maps whole regions while only 1/8 of pages are used
    assert proc.rss_pages() == 2048
    zeros = 0
    for hvpn in list(proc.page_table.huge):
        z, _ = kernel_thp.count_zero_pages(proc, hvpn)
        zeros += z
    assert zeros == 2048 - 256


def test_sparse_touch_no_bloat_under_4k(kernel4k):
    wl = SparseTouch(footprint_bytes=8 * 2 ** 20, stride_pages=8)
    run = kernel4k.spawn(wl)
    kernel4k.run_epochs(3)
    assert run.proc.rss_pages() == 256
