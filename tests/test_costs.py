"""Unit tests for the Table 1-calibrated cost model."""

import pytest

from repro.kernel.costs import CostModel
from repro.units import BASE_PAGE_SIZE, PAGES_PER_HUGE


@pytest.fixture
def costs() -> CostModel:
    return CostModel()


def test_base_fault_matches_table1(costs):
    """Table 1: 3.5 µs with sync zeroing, 2.65 µs without (25 % zeroing)."""
    assert costs.base_fault(True) == pytest.approx(3.5)
    assert costs.base_fault(False) == pytest.approx(2.65)
    zero_share = costs.zero_base_us / costs.base_fault(True)
    assert zero_share == pytest.approx(0.25, abs=0.03)


def test_huge_fault_matches_table1(costs):
    """Table 1: 465 µs with sync zeroing, 13 µs without (97 % zeroing)."""
    assert costs.huge_fault(True) == pytest.approx(465.0)
    assert costs.huge_fault(False) == pytest.approx(13.0)
    zero_share = costs.zero_huge_us / costs.huge_fault(True)
    assert zero_share == pytest.approx(0.97, abs=0.01)


def test_huge_fault_latency_ratio():
    """Table 1: huge faults ~133x slower than base faults when zeroing."""
    costs = CostModel()
    ratio = costs.huge_fault(True) / costs.base_fault(True)
    assert ratio == pytest.approx(133, rel=0.05)


def test_zero_block_scales_with_order(costs):
    assert costs.zero_block_us(0) == costs.zero_base_us
    assert costs.zero_block_us(9) == pytest.approx(costs.zero_base_us * 512)


def test_promotion_collapse_cost_components(costs):
    full = costs.promotion_collapse_us(PAGES_PER_HUGE)
    empty_ish = costs.promotion_collapse_us(1)
    assert full == pytest.approx(costs.remap_us + 512 * costs.copy_base_us)
    assert empty_ish == pytest.approx(
        costs.remap_us + costs.copy_base_us + 511 * costs.zero_base_us
    )


def test_scan_costs(costs):
    assert costs.scan_page_us(10) == pytest.approx(10 * costs.scan_byte_us)
    assert costs.scan_full_page_us() == pytest.approx(BASE_PAGE_SIZE * costs.scan_byte_us)
    # §3.2: scanning an average in-use page (~10 bytes) is ~400x cheaper
    # than scanning a full zero page.
    assert costs.scan_full_page_us() / costs.scan_page_us(10) > 100
