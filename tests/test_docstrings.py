"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


ALL_MODULES = list(walk_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname, method in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{module.__name__}.{name}.{mname}")
    assert not undocumented, "missing docstrings:\n" + "\n".join(undocumented)
