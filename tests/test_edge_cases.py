"""Edge cases and failure injection across the kernel stack."""

import pytest

from repro.errors import AllocationError, InvalidAddressError, OutOfMemoryError
from repro.kernel.kernel import Kernel, KernelConfig
from repro.policies.linux import Linux4KPolicy, LinuxTHPPolicy
from repro.units import MB, PAGES_PER_HUGE, SEC
from repro.workloads.base import MmapOp, Phase, TouchOp, Workload
from tests.conftest import small_config
from tests.test_fault import make_proc


class TestTinyMachines:
    def test_kernel_with_minimal_memory(self):
        # 4 MB: one order-10 block; the zero page takes one frame
        kernel = Kernel(small_config(4), Linux4KPolicy)
        assert kernel.buddy.free_pages == 1023

    def test_huge_fault_without_contiguity_falls_back(self):
        kernel = Kernel(small_config(8), lambda k: LinuxTHPPolicy(k, khugepaged=False))
        # consume every order-9-capable block so only smaller ones remain
        while kernel.buddy.try_alloc(order=9, owner=-9) is not None:
            pass
        proc, vma = make_proc(kernel, nbytes=2 * MB)
        kernel.fault(proc, vma.start)
        assert proc.stats.huge_faults == 0
        assert proc.page_table.is_mapped(vma.start)


class TestWorkloadEdges:
    def test_empty_phase_list_finishes_immediately(self, kernel4k):
        class Empty(Workload):
            name = "empty"

            def build_phases(self):
                return []

        run = kernel4k.spawn(Empty())
        kernel4k.run_epochs(1)
        assert run.finished

    def test_zero_page_touch(self, kernel4k):
        class Zero(Workload):
            name = "zero"

            def build_phases(self):
                return [Phase("a", ops=[MmapOp("h", 4096), TouchOp("h", npages=0)])]

        run = kernel4k.spawn(Zero())
        kernel4k.run_epochs(2)
        assert run.finished
        assert run.proc.stats.faults == 0

    def test_touch_beyond_vma_raises(self, kernel4k):
        class Overrun(Workload):
            name = "overrun"

            def build_phases(self):
                return [Phase("a", ops=[MmapOp("h", 1 * MB),
                                        TouchOp("h", start_page=200, npages=100)])]

        kernel4k.spawn(Overrun())
        with pytest.raises(InvalidAddressError):
            kernel4k.run_epochs(2)

    def test_multiple_vmas_get_guard_gaps(self, kernel4k):
        proc, _ = make_proc(kernel4k, nbytes=1 * MB)
        vma2 = kernel4k.mmap(proc, 1 * MB, "second")
        vmas = list(proc.vmas)
        assert len(vmas) == 2
        # no two VMAs may share a huge region (guard gap invariant)
        assert (vmas[0].end - 1) >> 9 < vmas[1].start >> 9


class TestMadviseEdges:
    def test_madvise_empty_range_noop(self, kernel4k):
        proc, vma = make_proc(kernel4k)
        kernel4k.madvise_free(proc, vma.start, 0)
        assert proc.rss_pages() == 0

    def test_madvise_unmapped_range_noop(self, kernel4k):
        proc, vma = make_proc(kernel4k)
        cost = kernel4k.madvise_free(proc, vma.start, 100)
        assert proc.rss_pages() == 0
        assert cost == 0.0

    def test_madvise_spanning_huge_boundary(self, kernel_thp):
        proc, vma = make_proc(kernel_thp, nbytes=8 * MB)
        kernel_thp.fault(proc, vma.start)
        kernel_thp.fault(proc, vma.start + PAGES_PER_HUGE)
        # free a range straddling the two huge regions
        kernel_thp.madvise_free(proc, vma.start + 500, 24)
        assert kernel_thp.stats.demotions == 2
        assert not proc.page_table.is_mapped(vma.start + 510)
        assert not proc.page_table.is_mapped(vma.start + 515)
        assert proc.page_table.is_mapped(vma.start)

    def test_double_madvise_idempotent(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)
        kernel_thp.madvise_free(proc, vma.start, 512)
        free_after_first = kernel_thp.buddy.free_pages
        kernel_thp.madvise_free(proc, vma.start, 512)
        assert kernel_thp.buddy.free_pages == free_after_first


class TestPromotionEdges:
    def test_promote_twice_fails_second_time(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)
        assert kernel_thp.promote_region(proc, vma.start >> 9) is None

    def test_demote_then_partial_free_then_promote(self, kernel_thp):
        proc, vma = make_proc(kernel_thp)
        kernel_thp.fault(proc, vma.start)
        hvpn = vma.start >> 9
        kernel_thp.demote_region(proc, hvpn)
        kernel_thp.madvise_free(proc, vma.start, 10)
        # collapse must refill the freed holes with zero pages
        cost = kernel_thp.promote_region(proc, hvpn)
        assert cost is not None
        zeros, _ = kernel_thp.count_zero_pages(proc, hvpn)
        assert zeros >= 10

    def test_promotion_with_memory_full_fails_gracefully(self):
        kernel = Kernel(small_config(4), lambda k: LinuxTHPPolicy(k, khugepaged=False))
        proc, vma = make_proc(kernel, nbytes=2 * MB)
        for i in range(300):
            kernel.fault(proc, vma.start + i)
        # eat the remaining memory so collapse cannot allocate a block
        hog, hog_vma = make_proc(kernel, nbytes=4 * MB)
        taken = 0
        for vpn in range(hog_vma.start, hog_vma.end):
            try:
                kernel.fault(hog, vpn)
                taken += 1
            except OutOfMemoryError:
                break
        assert kernel.promote_region(proc, vma.start >> 9) is None
        assert proc.page_table.is_mapped(vma.start), "mappings intact after failure"


class TestSwapEdges:
    def test_swap_disabled_by_default(self, kernel4k):
        assert kernel4k.swap is None

    def test_zero_capacity_swap_oomes(self):
        kernel = Kernel(KernelConfig(mem_bytes=4 * MB, swap_bytes=0), Linux4KPolicy)
        proc, vma = make_proc(kernel, nbytes=8 * MB)
        with pytest.raises(OutOfMemoryError):
            for vpn in range(vma.start, vma.end):
                kernel.fault(proc, vpn)


class TestBuddyEdges:
    def test_single_frame_machine(self):
        from repro.mem.buddy import BuddyAllocator
        from repro.mem.frames import FrameTable

        buddy = BuddyAllocator(FrameTable(1))
        start, zeroed = buddy.alloc(0)
        assert start == 0 and zeroed
        assert buddy.try_alloc(0) is None
        buddy.free(0, 0)
        assert buddy.free_pages == 1

    def test_carve_empty_range(self):
        from repro.mem.buddy import BuddyAllocator
        from repro.mem.frames import FrameTable

        buddy = BuddyAllocator(FrameTable(1024))
        while buddy.try_alloc(0) is not None:
            pass
        assert buddy.carve_range(0, 512) == []
